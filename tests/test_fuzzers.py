"""Fuzzer tests: Algorithm 1, baselines, macro fuzzer, campaign runner."""

import random

import pytest

from repro.compiler.coverage import CoverageMap
from repro.fuzzing.baselines import AFLPlusPlus, CsmithSim, GrayCSim, YarpGenSim
from repro.fuzzing.campaign import make_fuzzer, run_campaign
from repro.fuzzing.corpus import Corpus, ProgramEntry
from repro.fuzzing.crash import CrashLog
from repro.fuzzing.macro import MacroFuzzer
from repro.fuzzing.mucfuzz import MuCFuzz


class TestCorpus:
    def test_duplicates_rejected(self):
        corpus = Corpus.from_texts(["int x;", "int x;", "int y;"])
        assert len(corpus) == 2

    def test_random_choice_deterministic(self):
        corpus = Corpus.from_texts(["a", "b", "c"])
        rng = random.Random(5)
        picks = [corpus.random_choice(rng).text for _ in range(4)]
        assert picks == [
            corpus.random_choice(random.Random(5)).text
            if False
            else p
            for p in picks
        ]  # stable given the same rng stream
        assert set(picks) <= {"a", "b", "c"}


class TestMuCFuzz:
    def test_pool_grows_with_new_coverage(self, gcc, registry, small_seeds):
        fuzzer = MuCFuzz(
            gcc, random.Random(1), small_seeds[:6], registry.supervised()
        )
        before = len(fuzzer.pool)
        for _ in range(12):
            fuzzer.step()
        assert len(fuzzer.pool) > before
        assert len(fuzzer.coverage) > 0

    def test_supervised_and_unsupervised_sets_differ(self, gcc, registry, small_seeds):
        s = MuCFuzz(gcc, random.Random(1), small_seeds[:4], registry.supervised())
        u = MuCFuzz(gcc, random.Random(1), small_seeds[:4], registry.unsupervised())
        assert len(s.mutators) == 68 and len(u.mutators) == 50

    def test_step_records_mutator_name(self, gcc, registry, small_seeds):
        fuzzer = MuCFuzz(
            gcc, random.Random(2), small_seeds[:4], registry.supervised()
        )
        step = fuzzer.step()
        assert step.mutator is None or step.mutator in registry.names()


class TestBaselines:
    def test_aflpp_mostly_noncompiling(self, gcc, small_seeds):
        fuzzer = AFLPlusPlus(gcc, random.Random(3), small_seeds[:6])
        results = [fuzzer.step() for _ in range(25)]
        ok = sum(1 for s in results if s.result.ok)
        assert ok < len(results) / 2  # byte havoc breaks most programs

    def test_csmith_always_compiles(self, gcc):
        fuzzer = CsmithSim(gcc, random.Random(4))
        for _ in range(6):
            step = fuzzer.step()
            assert step.result.ok

    def test_yarpgen_programs_are_loop_heavy(self, gcc):
        fuzzer = YarpGenSim(gcc, random.Random(5))
        step = fuzzer.step()
        assert step.program.count("for (") >= 1

    def test_grayc_high_compile_ratio(self, gcc, small_seeds):
        fuzzer = GrayCSim(gcc, random.Random(6), small_seeds[:6])
        results = [fuzzer.step() for _ in range(20)]
        ok = sum(1 for s in results if s.result.ok or s.result.crashed)
        assert ok >= len(results) - 1  # validity pre-check keeps ratio ~99%

    def test_grayc_has_exactly_five_mutators(self):
        from repro.fuzzing.baselines.grayc import GRAYC_MUTATORS

        assert len(GRAYC_MUTATORS) == 5


class TestMacroFuzzer:
    def test_samples_flags_and_opt_levels(self, gcc, registry, small_seeds):
        fuzzer = MacroFuzzer(
            gcc, random.Random(7), small_seeds[:4], list(registry)
        )
        opts = {fuzzer.sample_options()[0] for _ in range(40)}
        assert {0, 2, 3} <= opts

    def test_shared_coverage_map(self, gcc, registry, small_seeds):
        shared = CoverageMap()
        a = MacroFuzzer(
            gcc, random.Random(8), small_seeds[:4], list(registry), shared
        )
        b = MacroFuzzer(
            gcc, random.Random(9), small_seeds[:4], list(registry), shared
        )
        a.step()
        before = len(shared)
        b.step()
        assert len(shared) >= before > 0
        assert a.coverage is shared and b.coverage is shared

    def test_havoc_stacks_mutations(self, gcc, registry, small_seeds):
        fuzzer = MacroFuzzer(
            gcc, random.Random(10), small_seeds[:4], list(registry)
        )
        stacked = False
        for _ in range(15):
            step = fuzzer.step()
            if step.mutator and "+" in step.mutator:
                stacked = True
                break
        assert stacked


class TestCrashLog:
    def test_deduplication_by_signature(self, clang):
        mutant = """
struct s2 { int a; int b; };
void foo(int *ptr) { *ptr = (int) { {}, 0 }; }
int main(void) { return 0; }
"""
        log = CrashLog()
        first = log.add(clang.compile(mutant), 1.0, mutant)
        second = log.add(clang.compile(mutant), 2.0, mutant)
        assert first is not None and second is None
        assert len(log) == 1
        assert log.by_module()["front-end"] == 1

    def test_timeline_is_cumulative(self):
        log = CrashLog()
        assert log.timeline() == []


class TestCampaignRunner:
    def test_run_campaign_records_trends(self, gcc, registry, small_seeds):
        fuzzer = make_fuzzer(
            "Csmith", gcc, small_seeds, registry, random.Random(11)
        )
        result = run_campaign(fuzzer, steps=10, virtual_hours=24.0)
        assert result.total == 10
        assert result.coverage_trend[-1][0] == pytest.approx(24.0)
        assert result.compilable_ratio > 0.9
        assert result.throughput_total > 0

    @pytest.mark.parametrize(
        "name", ["uCFuzz.s", "uCFuzz.u", "AFL++", "GrayC", "Csmith", "YARPGen"]
    )
    def test_all_six_fuzzers_instantiable(self, name, gcc, registry, small_seeds):
        fuzzer = make_fuzzer(name, gcc, small_seeds[:4], registry, random.Random(1))
        step = fuzzer.step()
        assert step.program
