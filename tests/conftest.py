"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

import repro.mutators  # noqa: F401 - populate the registry
from repro.compiler import CLANG_SIM, GCC_SIM, Compiler
from repro.fuzzing.seedgen import generate_seeds
from repro.muast.registry import global_registry


@pytest.fixture(scope="session")
def registry():
    return global_registry


@pytest.fixture(scope="session")
def gcc():
    return Compiler(*GCC_SIM)


@pytest.fixture(scope="session")
def clang():
    return Compiler(*CLANG_SIM)


@pytest.fixture(scope="session")
def compilers(gcc, clang):
    return [gcc, clang]


@pytest.fixture(scope="session")
def small_seeds():
    return generate_seeds(40)


@pytest.fixture()
def rng():
    return random.Random(12345)
