"""The flat-native middle end: buffer-direct irgen, flat inlining, journal.

Covers the bridge-elimination contract (a flat-native compile never
constructs object IR on the hot path), bit-pattern float immediate pooling,
IRBuffer edge cases (empty blocks, max-arity xdata, name-table interning
across inline splices), and full-pipeline equivalence: flat-native compiles
and campaigns are bit-identical to the object-IR reference.
"""

import copy
import math
import random
import struct

import pytest

from repro.cast.cache import FrontendCache
from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.compiler.coverage import CoverageMap
from repro.compiler.driver import Compiler, GCC_SIM
from repro.compiler.flatir import (
    BridgeCounters,
    FlatFunction,
    FunctionSnapshot,
    IRBuffer,
    from_nodes,
    to_nodes,
)
from repro.compiler.ir import ImmFloat
from repro.compiler.irgen import FlatIRGen, IRGen
from repro.compiler.passes import (
    OptContext,
    flat_inlinable,
    flat_inline_into_caller,
    inline_candidates,
    inline_into_caller,
    local_opt,
)
from repro.compiler.session import CompileSession
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.parallel import CellSpec, cell_key
from repro.fuzzing.progen import GenPolicy, ProgramGenerator
from repro.muast.registry import global_registry


def _front_end(text):
    try:
        unit = parse(text)
    except Exception:
        return None, None
    sema = Sema()
    if [d for d in sema.analyze(unit) if d.severity == "error"]:
        return None, None
    return unit, sema


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


# ---------------------------------------------------------------------------
# Satellite: bit-pattern float immediate pooling.


class TestFloatPoolBitPatterns:
    def test_signed_zeros_get_distinct_pool_slots(self):
        buf = IRBuffer("f")
        pos = buf.imm_float_enc(0.0)
        neg = buf.imm_float_enc(-0.0)
        assert pos != neg
        assert _bits(buf.imms[pos >> 2].value) == _bits(0.0)
        assert _bits(buf.imms[neg >> 2].value) == _bits(-0.0)

    def test_nan_payloads_get_distinct_pool_slots(self):
        quiet = struct.unpack("<d", bytes.fromhex("000000000000f87f"))[0]
        payload = struct.unpack("<d", bytes.fromhex("010000000000f87f"))[0]
        assert math.isnan(quiet) and math.isnan(payload)
        assert repr(quiet) == repr(payload)  # repr would have collided
        buf = IRBuffer("f")
        a = buf.imm_float_enc(quiet)
        b = buf.imm_float_enc(payload)
        assert a != b
        assert _bits(buf.imms[a >> 2].value) == _bits(quiet)
        assert _bits(buf.imms[b >> 2].value) == _bits(payload)

    def test_imm_enc_existing_operands_use_bit_pattern_keys(self):
        buf = IRBuffer("f")
        a = buf.imm_enc(ImmFloat(0.0))
        b = buf.imm_enc(ImmFloat(-0.0))
        assert a != b
        # Dedup still fires for the genuinely identical value.
        assert buf.imm_enc(ImmFloat(-0.0)) == b

    def test_pool_round_trip_preserves_bit_patterns(self):
        # Const-folding `x * -0.0 + 0.0` leaves both signed zeros as
        # immediates; a repr-keyed pool would collapse them into one slot.
        source = "double f(double x) { return x * -0.0 + 0.0; }"
        unit, sema = _front_end(source)
        fn = IRGen(sema, CoverageMap()).lower(unit).functions["f"]
        local_opt(fn, OptContext(cov=CoverageMap(), opt_level=2))
        buf = from_nodes(fn)
        before = sorted(
            _bits(i.value) for i in buf.imms if type(i) is ImmFloat
        )
        assert _bits(-0.0) in before and _bits(0.0) in before
        back = to_nodes(buf)
        assert back.dump() == fn.dump()
        rebuf = from_nodes(back)
        assert rebuf == buf
        after = sorted(
            _bits(i.value) for i in rebuf.imms if type(i) is ImmFloat
        )
        assert after == before


# ---------------------------------------------------------------------------
# Buffer-direct IR generation.


class TestFlatIRGenParity:
    def _check_program(self, text):
        unit, sema = _front_end(text)
        if unit is None:
            return 0
        obj_cov, flat_cov = CoverageMap(), CoverageMap()
        try:
            obj_module = IRGen(sema, obj_cov).lower(unit)
        except Exception:
            return 0
        counters = BridgeCounters()
        flat_module = FlatIRGen(sema, flat_cov, counters=counters).lower(unit)
        assert flat_module.dump() == obj_module.dump(), text
        assert frozenset(flat_cov.edges) == frozenset(obj_cov.edges)
        for fn in flat_module.functions.values():
            assert type(fn) is FlatFunction
        # Buffer-direct emission: lowering never crossed the IR bridge
        # (dump() above decodes fresh copies without counting).
        assert counters.encodes == 0 and counters.decodes == 0
        return len(flat_module.functions)

    def test_seed_corpus(self, small_seeds):
        assert sum(self._check_program(t) for t in small_seeds[:30]) > 30

    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs(self, seed):
        text = ProgramGenerator(
            random.Random(seed), GenPolicy(max_stmts=8)
        ).generate()
        self._check_program(text)

    def test_stats_match_object_irgen(self, small_seeds):
        for text in small_seeds[:10]:
            unit, sema = _front_end(text)
            if unit is None:
                continue
            obj = IRGen(sema, CoverageMap())
            obj.lower(unit)
            flat = FlatIRGen(sema, CoverageMap())
            flat.lower(unit)
            assert dict(flat.stats.counters) == dict(obj.stats.counters)


# ---------------------------------------------------------------------------
# Satellite: IRBuffer edge cases.


class TestBufferEdgeCases:
    def test_empty_blocks_after_flat_simplify_cfg(self):
        # The dead branch collapses under the flat pass set; dead rows stay
        # in the arrays but their blocks vanish from the block table, and
        # decode must not resurrect them.
        source = """
        int main(void) {
          int x = 1;
          if (0) { x = 2; x = 3; x = 4; }
          while (0) { x = 5; }
          return x;
        }
        """
        unit, sema = _front_end(source)
        obj_fn = IRGen(sema, CoverageMap()).lower(unit).functions["main"]
        flat_fn = FlatIRGen(sema, CoverageMap()).lower(unit).functions["main"]
        obj_ctx = OptContext(cov=CoverageMap(), opt_level=2)
        local_opt(obj_fn, obj_ctx)
        flat_ctx = OptContext(
            cov=CoverageMap(), opt_level=2, flat=True, flat_native=True
        )
        local_opt(flat_fn, flat_ctx)
        buf = flat_fn.buffer()
        live = sum(len(idxs) for _, idxs in buf.blocks)
        assert live < len(buf.opc)  # dead rows really were left behind
        assert flat_fn.dump() == obj_fn.dump()
        assert frozenset(flat_ctx.cov.edges) == frozenset(obj_ctx.cov.edges)
        assert dict(flat_ctx.stats.counters) == dict(obj_ctx.stats.counters)

    def test_call_xdata_max_arity_round_trip(self):
        args = ", ".join(f"int a{i}" for i in range(8))
        vals = ", ".join(f"x + {i}" for i in range(8))
        source = f"""
        int wide({args}) {{ return a0 + a7; }}
        int main(void) {{ int x = 1; return wide({vals}); }}
        """
        unit, sema = _front_end(source)
        fn = IRGen(sema, CoverageMap()).lower(unit).functions["main"]
        buf = from_nodes(fn)
        assert to_nodes(buf).dump() == fn.dump()
        assert from_nodes(to_nodes(buf)) == buf

    def test_gep_xdata_round_trip(self):
        source = """
        int grid[4][8];
        int main(void) {
          int i = 2;
          grid[i][i + 1] = 7;
          return grid[1][3];
        }
        """
        unit, sema = _front_end(source)
        fn = IRGen(sema, CoverageMap()).lower(unit).functions["main"]
        buf = from_nodes(fn)
        assert to_nodes(buf).dump() == fn.dump()
        assert from_nodes(to_nodes(buf)) == buf

    def test_clone_isolates_call_arg_lists(self):
        source = """
        int f(int a, int b) { return a + b; }
        int main(void) { int x = 1; return f(x, x + 1); }
        """
        unit, sema = _front_end(source)
        fn = IRGen(sema, CoverageMap()).lower(unit).functions["main"]
        buf = from_nodes(fn)
        dup = buf.clone()
        before = to_nodes(buf).dump()
        mutated = 0
        for x in dup.xdata:
            if len(x) == 3:  # a Call's (callee, args, arg_tys) entry
                x[1][:] = [0 for _ in x[1]]
                mutated += 1
        assert mutated  # the program really has a call to corrupt
        assert to_nodes(buf).dump() == before

    def test_inline_candidacy_agrees_at_size_boundary(self):
        # Exactly MAX_INLINE_INSTRS body instructions plus the Ret: the
        # object check counts ``block.instrs`` (terminator excluded) while
        # the buffer's index list includes the Ret row — the flat check
        # must not reject the boundary callee the object check accepts.
        decls = "\n".join(f"int base{i};" for i in range(3))
        expr = " + ".join(f"base{i} * {i + 3}" for i in range(3))
        source = (
            f"{decls}\n"
            f"static int wide(void) {{ return {expr}; }}\n"
            "int main(void) { return wide(); }\n"
        )
        unit, sema = _front_end(source)
        obj_module = IRGen(sema, CoverageMap()).lower(unit)
        flat_module = FlatIRGen(sema, CoverageMap()).lower(unit)
        obj_ctx = OptContext(cov=CoverageMap(), opt_level=2)
        flat_ctx = OptContext(
            cov=CoverageMap(), opt_level=2, flat=True, flat_native=True
        )
        for fn in obj_module.functions.values():
            local_opt(fn, obj_ctx)
        for fn in flat_module.functions.values():
            local_opt(fn, flat_ctx)
        wide = obj_module.functions["wide"]
        assert len(wide.blocks[0].instrs) == 12  # at the bound, not below
        assert set(inline_candidates(obj_module)) == {"wide"}
        assert flat_inlinable(flat_module.functions["wide"].buffer())

    def test_name_interning_across_inline_splices(self):
        # The callee must survive local_opt slot-free (params spill to
        # slots, which blocks candidacy), so it reads a global instead.
        source = """
        int base;
        static int bump(void) { return base * 3 + 7; }
        int main(void) {
          int total = 0;
          for (int i = 0; i < 4; i = i + 1) { total = total + bump(); }
          return total;
        }
        """
        unit, sema = _front_end(source)
        obj_module = IRGen(sema, CoverageMap()).lower(unit)
        flat_module = FlatIRGen(sema, CoverageMap()).lower(unit)
        obj_ctx = OptContext(cov=CoverageMap(), opt_level=2)
        flat_ctx = OptContext(
            cov=CoverageMap(), opt_level=2, flat=True, flat_native=True
        )
        for fn in obj_module.functions.values():
            local_opt(fn, obj_ctx)
        for fn in flat_module.functions.values():
            local_opt(fn, flat_ctx)
        obj_cands = inline_candidates(obj_module)
        flat_cands = {
            name: fn.buffer()
            for name, fn in flat_module.functions.items()
            if flat_inlinable(fn.buffer())
        }
        assert set(obj_cands) == set(flat_cands) == {"bump"}
        inline_into_caller(obj_module.functions["main"], obj_cands, obj_ctx)
        flat_inline_into_caller(
            flat_module.functions["main"], flat_cands, flat_ctx
        )
        caller = flat_module.functions["main"]
        assert caller.dump() == obj_module.functions["main"].dump()
        buf = caller.buffer()
        # Splicing re-interns callee names: the table stays duplicate-free.
        assert len(buf.names) == len(set(buf.names))
        assert frozenset(flat_ctx.cov.edges) == frozenset(obj_ctx.cov.edges)
        assert dict(flat_ctx.stats.counters) == dict(obj_ctx.stats.counters)


# ---------------------------------------------------------------------------
# Full-pipeline equivalence and the bridge-elimination contract.


_PROGRAM = """
int g[8];
float fz = -0.0f;
static int helper(int a, int b) { return a * b + 3; }
int tiny(int x) { return x + 1; }
int main(void) {
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) { g[i] = helper(i, i + 2); }
  int n = 8;
  while (n) { s = s + g[n - 1] + tiny(n); n = n - 1; }
  if (s > 100) goto done;
  s = s + tiny(41);
done:
  return s;
}
"""


class TestFlatNativeCompile:
    def test_knob_implies_flat_ir(self):
        compiler = Compiler(*GCC_SIM, flat_native=True)
        assert compiler.flat_native and compiler.flat_ir

    @pytest.mark.parametrize("arm", ["plain", "cache", "session"])
    def test_matches_object_compile(self, arm):
        ref = Compiler(*GCC_SIM).compile(_PROGRAM, 2, ())
        kwargs = {}
        if arm in ("cache", "session"):
            kwargs["cache"] = FrontendCache()
        if arm == "session":
            kwargs["session"] = CompileSession()
        compiler = Compiler(*GCC_SIM, flat_native=True, **kwargs)
        for _ in range(2):  # second compile exercises journal replay
            result = compiler.compile(_PROGRAM, 2, ())
            assert result.ok and result.asm == ref.asm
            assert result.features == ref.features
        assert compiler.bridge.encodes == 0
        assert compiler.bridge.decodes == 0

    def test_paranoid_differential(self):
        compiler = Compiler(
            *GCC_SIM,
            flat_native=True,
            cache=FrontendCache(),
            session=CompileSession(),
        )
        result = compiler.compile(_PROGRAM, 2, (), paranoid=True)
        assert result.ok

    def test_corpus_matches_object_compile(self, small_seeds):
        flat = Compiler(
            *GCC_SIM,
            flat_native=True,
            cache=FrontendCache(),
            session=CompileSession(),
        )
        ref = Compiler(*GCC_SIM)
        for text in small_seeds[:15]:
            a = flat.compile(text, 2, ())
            b = ref.compile(text, 2, ())
            assert a.ok == b.ok
            assert a.asm == b.asm
            assert a.features == b.features
        assert flat.bridge.decodes == 0


class TestFlatNativeCampaign:
    def _run(self, flat_native, steps=25):
        compiler = Compiler(*GCC_SIM, flat_native=flat_native)
        fuzzer = MuCFuzz(
            compiler,
            random.Random(11),
            ["int main(void) { return 0; }"],
            global_registry.supervised(),
            session=True,
            incremental=True,
            flat_native=flat_native,
        )
        for _ in range(steps):
            fuzzer.step()
        return fuzzer

    def test_campaign_parity_and_zero_decodes(self):
        obj = self._run(False)
        flat = self._run(True)
        assert frozenset(flat.coverage.edges) == frozenset(obj.coverage.edges)
        assert [p.text for p in flat.pool.entries] == [
            p.text for p in obj.pool.entries
        ]
        snap = flat.stats_snapshot()
        assert snap["flat_decodes"] == 0
        assert snap["flat_encodes"] == 0

    def test_cell_key_distinguishes_flat_native(self):
        base = dict(
            fuzzer_name="uCFuzz.s",
            personality="gcc-sim",
            version="14",
            bug_seed=1,
            seeds=("int main(void) { return 0; }",),
            steps=5,
            cell_seed=3,
        )
        plain = CellSpec(**base)
        flat = CellSpec(**base, flat_native=True)
        assert cell_key(plain) != cell_key(flat)


class TestFunctionSnapshotFlat:
    def test_snapshot_of_flat_function_skips_bridge(self):
        unit, sema = _front_end(_PROGRAM)
        counters = BridgeCounters()
        module = FlatIRGen(sema, CoverageMap(), counters=counters).lower(unit)
        fn = module.functions["tiny"]
        snap = FunctionSnapshot.of(fn, counters)
        assert counters.encodes == 0 and counters.decodes == 0
        assert snap.buf is not fn.buffer()
        assert to_nodes(snap.buf).dump() == fn.dump()

    def test_decayed_flat_function_counts_and_reencodes(self):
        unit, sema = _front_end(_PROGRAM)
        counters = BridgeCounters()
        module = FlatIRGen(sema, CoverageMap(), counters=counters).lower(unit)
        fn = module.functions["tiny"]
        _ = fn.blocks  # object access decays the carrier
        assert counters.decodes == 1
        fn.buffer()  # and coming back re-encodes
        assert counters.encodes == 1
