"""Feature extraction: lexical statistics and mutation fingerprints."""

import pytest

from repro.cast.parser import parse
from repro.compiler.features import ast_features, lexical_features


def feats(text):
    from repro.cast.sema import Sema

    unit = parse(text)
    Sema().analyze(unit)
    return ast_features(unit, text)


class TestLexicalFeatures:
    def test_token_statistics(self):
        f = lexical_features("int abcdefghij = 123456;")
        assert f["max_ident_len"] == 10
        assert f["max_number_len"] == 6

    def test_paren_depth(self):
        f = lexical_features("int x = ((((1))));")
        assert f["max_paren_depth"] == 4

    def test_unbalanced_parens_flag(self):
        assert lexical_features("int f((((")["unbalanced_parens"] == 1

    def test_garbage_falls_back_to_char_stats(self):
        f = lexical_features('"unterminated ((( ')
        assert f["lex_error"] == 1
        assert f["unterminated_literal"] == 1
        assert f["max_paren_depth"] == 3


FINGERPRINTS = [
    ("int f(int a) { return -(-a); }", "double_neg"),
    ("int f(int a) { return !!a; }", "not_not"),
    ("int f(int a) { return ~~a; }", "bnot_bnot"),
    ("int f(int a) { return a ^ 0; }", "xor_zero"),
    ("int f(int a) { return a + 0; }", "add_zero"),
    ("int f(int a) { return a * 1; }", "mul_one"),
    ("int f(int a) { return (0, a); }", "comma_zero"),
    ("void f(int a) { if (0) { a = 1; } }", "if_zero"),
    ("void f(int a) { if (1) { a = 1; } }", "if_const_true"),
    ("void f(int a) { while (0) { a = 1; } }", "while_zero"),
    ("void f(int a) { do { a = 1; } while (0); }", "do_while_zero"),
    ("void f(void) { l: ; }", "label_noop"),
    ("int a[4]; int f(int i) { return i[a]; }", "swapped_subscript"),
    ("int f(long v) { return *(int *)&v; }", "deref_of_cast"),
    ("int f(long v) { return (int)(char)v; }", "cast_chain"),
    ("const volatile int g; ", "const_volatile"),
    ("void f(int a) { a = a; }", "self_assign"),
    ("void f(int a) { if (a) { a = 1; } else { ; } }", "empty_else"),
    ("int f(int a) { return a << 40; }", "wide_shift"),
    ("int f(int a) { return 3 < 5; }", "literal_comparison"),
    ("_Complex double z; double *f(void) { return &__imag z; }", "addr_of_imag"),
    ("long g; char *f(void) { return (char *)&g; }", "char_ptr_cast"),
    ("void f(int a) { a++; a++; }", "adjacent_twins"),
]


@pytest.mark.parametrize("text,feature", FINGERPRINTS)
def test_fingerprint_detected(text, feature):
    assert feats(text).get(feature, 0) >= 1, feature


class TestCleanPrograms:
    def test_plain_program_has_no_fingerprints(self):
        f = feats(
            "int g = 3;\n"
            "int add(int a, int b) { return a + b; }\n"
            "int main(void) { int i, s = 0; "
            "for (i = 0; i < 4; i++) s = add(s, i); return s; }\n"
        )
        for key in ("double_neg", "not_not", "xor_zero", "if_zero",
                    "label_noop", "self_assign", "adjacent_twins"):
            assert f.get(key, 0) == 0, key

    def test_loop_nest_depth(self):
        f = feats(
            "void f(void) { int i, j, k; "
            "for (i = 0; i < 2; i++) for (j = 0; j < 2; j++) "
            "for (k = 0; k < 2; k++) ; }"
        )
        assert f["loop_nest_depth"] == 3

    def test_twins_require_identical_text(self):
        f = feats("void f(int a, int b) { a += 1; b += 2; }")
        assert f.get("adjacent_twins", 0) == 0
