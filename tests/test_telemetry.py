"""The telemetry layer: metrics, spans, sinks, events, reports, and the
determinism contract (telemetry on == telemetry off, serial == parallel),
plus the crash-bookkeeping and throughput-reporting fixes that rode along.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.compiler.crash import CompilerCrash, CompilerHang, StackFrame
from repro.compiler.driver import CompileResult, Compiler, GCC_SIM, default_compilers
from repro.fuzzing.campaign import Campaign, make_fuzzer, run_campaign
from repro.fuzzing.crash import CANONICAL_MODULES, CrashLog
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.parallel import cell_key
from repro.fuzzing.throughput import _time_run
from repro.llm.client import APIError, LLMClient
from repro.telemetry import (
    JSONLSink,
    MetricsRegistry,
    StepClock,
    TelemetrySession,
    Tracer,
    merge_stats,
    span,
    validate_event,
    validate_jsonl,
)
from repro.telemetry.events import EventSchemaError
from repro.telemetry.metrics import Histogram
from repro.telemetry.report import load_results, main as report_main, render_report


# ---------------------------------------------------------------------------
# Metrics registry


class TestMetrics:
    def test_counters_are_a_plain_dict_view(self):
        reg = MetricsRegistry()
        reg.inc("steps")
        reg.inc("steps", 2)
        assert reg.counters == {"steps": 3}
        assert reg.snapshot() == {"steps": 3}

    def test_wall_never_in_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("steps")
        reg.add_wall("parse", 0.25)
        assert reg.snapshot() == {"steps": 1}
        assert reg.wall_snapshot() == {"parse": 0.25}

    def test_histogram_buckets(self):
        h = Histogram(bounds=(1, 10))
        for v in (0.5, 5, 50):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == {"le_1": 1, "le_10": 1, "inf": 1}
        assert (snap["min"], snap["max"]) == (0.5, 50)

    def test_registry_merge_is_order_independent(self):
        def build(values):
            reg = MetricsRegistry()
            for v in values:
                reg.inc("n")
                reg.observe("tokens", v)
                reg.gauge("peak", v)
            return reg

        a, b = build([1, 100]), build([7])
        ab = MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba = MetricsRegistry()
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot() == ba.snapshot()
        assert ab.snapshot()["gauges"] == {"peak": 100}

    def test_merge_stats_recomputes_derived_rates(self):
        cells = [
            {"cache_hits": 8, "cache_misses": 2, "cache_hit_rate": 0.8,
             "attempts": 30, "steps": 10, "attempts_per_step": 3.0},
            {"cache_hits": 0, "cache_misses": 10, "cache_hit_rate": 0.0,
             "attempts": 10, "steps": 10, "attempts_per_step": 1.0},
        ]
        merged = merge_stats(cells)
        assert merged["cache_hits"] == 8
        assert merged["cache_misses"] == 12
        # 8/(8+12), not 0.8 + 0.0.
        assert merged["cache_hit_rate"] == pytest.approx(0.4)
        assert merged["attempts_per_step"] == pytest.approx(2.0)
        assert merge_stats(cells) == merge_stats(reversed(cells))

    def test_merge_stats_counts_list_events(self):
        # Event lists fold into value -> count dicts: the same mutator
        # quarantined in two cells counts twice instead of collapsing
        # into a set, and fold order still cannot change the result.
        cells = [
            {"quarantined_mutators": ["b", "a"]},
            {"quarantined_mutators": ["a", "c"]},
        ]
        merged = merge_stats(cells)
        assert merged["quarantined_mutators"] == {"a": 2, "b": 1, "c": 1}
        assert merge_stats(cells) == merge_stats(reversed(cells))

    def test_merge_stats_remerges_merged_summaries(self):
        # A summary of summaries sums the counter dicts rather than
        # re-counting them as opaque values.
        first = merge_stats([{"quarantined_mutators": ["m"]}])
        second = merge_stats([{"quarantined_mutators": ["m", "n"]}])
        total = merge_stats([first, second])
        assert total["quarantined_mutators"] == {"m": 2, "n": 1}


# ---------------------------------------------------------------------------
# Spans and the step clock


class TestSpans:
    def test_none_tracer_is_a_noop(self):
        with span(None, "lex") as s:
            pass
        assert s.tracer is None

    def test_span_accumulates_wall(self):
        timings: dict = {}
        tracer = Tracer(timings=timings)
        with tracer.span("parse"):
            pass
        with tracer.span("parse"):
            pass
        assert set(timings) == {"parse"}
        assert timings["parse"] >= 0

    def test_span_emits_event_with_step_clock(self, tmp_path):
        sink = JSONLSink(tmp_path / "t.jsonl")
        tracer = Tracer(timings={}, sink=sink, clock=StepClock())
        with tracer.span("irgen", module="m"):
            pass
        with pytest.raises(ValueError):
            with tracer.span("opt"):
                raise ValueError("boom")
        sink.close()
        rows = [json.loads(l) for l in (tmp_path / "t.jsonl").read_text().splitlines()]
        assert [r["seq"] for r in rows] == [1, 2]
        assert rows[0]["kind"] == "span" and rows[0]["name"] == "irgen"
        assert rows[0]["fields"] == {"module": "m"}
        assert rows[1]["fields"]["error"] == "ValueError"
        assert all("wall" in r for r in rows)

    def test_compiler_stage_spans_land_in_stage_timings(self, small_seeds):
        compiler = Compiler(*GCC_SIM)
        compiler.compile(small_seeds[0])
        assert set(compiler.stage_timings) >= {"lex", "parse", "sema"}

    def test_fuzzer_stats_snapshot_has_no_wall_keys(self, registry, small_seeds):
        compiler = Compiler(*GCC_SIM)
        fuzzer = MuCFuzz(
            compiler, random.Random(7), small_seeds[:6],
            registry.supervised(), name="uCFuzz.s",
        )
        for _ in range(3):
            fuzzer.step()
        # Steps may be served entirely by the incremental front end (which
        # skips lex/parse/sema by design); force one full front-end run so
        # the stage profile is populated deterministically.
        compiler.compile("int main(void) { return 42; }")
        snap = fuzzer.stats_snapshot()
        assert "stage_timings" not in snap
        assert all(not isinstance(v, dict) or k in ("gauges", "histograms")
                   for k, v in snap.items())
        profile = fuzzer.profile_snapshot()
        assert profile["stage_timings"]
        assert set(profile["stage_timings"]) >= {"lex", "parse", "sema"}


# ---------------------------------------------------------------------------
# Sink, rotation, schema


class TestSinkAndSchema:
    def test_validate_event_rejects_garbage(self):
        validate_event({"v": 1, "seq": 0, "kind": "step", "name": "kept"})
        for bad in (
            {"v": 2, "seq": 0, "kind": "step", "name": "kept"},
            {"v": 1, "seq": -1, "kind": "step", "name": "kept"},
            {"v": 1, "seq": 0, "kind": "nope", "name": "kept"},
            {"v": 1, "seq": 0, "kind": "step", "name": ""},
            {"v": 1, "seq": 0, "kind": "step", "name": "kept", "extra": 1},
            {"v": 1, "seq": 0, "kind": "step", "name": "k", "wall": -1.0},
            {"v": 1, "seq": 0, "kind": "step", "name": "k",
             "fields": {"x": object()}},
        ):
            with pytest.raises(EventSchemaError):
                validate_event(bad)

    def test_rotation_keeps_live_stream_at_path(self, tmp_path):
        sink = JSONLSink(tmp_path / "e.jsonl", max_bytes=200, max_files=2)
        session = TelemetrySession(sink=sink)
        for i in range(50):
            session.emit("step", "kept", index=i)
        session.close()
        assert sink.rotations > 0
        files = sink.files()
        assert files[-1] == tmp_path / "e.jsonl"
        assert len(files) <= 3  # live + max_files rotated
        total = sum(validate_jsonl(p) for p in files)
        assert 0 < total <= 50  # oldest generations may have been dropped
        assert sink.events_written == 50

    def test_validate_jsonl_catches_seq_regression(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        rows = [
            {"v": 1, "seq": 5, "kind": "step", "name": "kept"},
            {"v": 1, "seq": 4, "kind": "step", "name": "kept"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        with pytest.raises(EventSchemaError):
            validate_jsonl(path)

    def test_emit_noop_without_sink(self):
        session = TelemetrySession()
        session.emit("step", "kept", index=1)  # must not raise
        assert not session.enabled
        assert session.clock.peek() == 0  # no sink, no clock ticks


# ---------------------------------------------------------------------------
# The determinism contract: telemetry on == off, serial == parallel


def _campaign(compilers, seeds, registry, telemetry_dir=None, steps=15):
    return Campaign(
        compilers=compilers,
        seeds=seeds,
        registry=registry,
        steps=steps,
        telemetry_dir=telemetry_dir,
    )


class TestTelemetryParity:
    NAMES = ("uCFuzz.s", "AFL++")

    def test_sink_on_equals_sink_off(self, registry, small_seeds, tmp_path):
        seeds = small_seeds[:10]
        compilers = default_compilers()
        off = _campaign(compilers, seeds, registry).run(self.NAMES)
        on = _campaign(
            compilers, seeds, registry, telemetry_dir=str(tmp_path / "ev")
        ).run(self.NAMES)
        assert [r.to_json() for r in on] == [r.to_json() for r in off]
        files = sorted((tmp_path / "ev").glob("*.jsonl"))
        assert len(files) == len(off)
        assert all(validate_jsonl(p) > 0 for p in files)

    def test_parallel_with_telemetry_equals_serial_without(
        self, registry, small_seeds, tmp_path
    ):
        seeds = small_seeds[:10]
        compilers = default_compilers()
        off = _campaign(compilers, seeds, registry).run(self.NAMES)
        on = _campaign(
            compilers, seeds, registry, telemetry_dir=str(tmp_path / "ev")
        ).run(self.NAMES, parallelism=2)
        assert [r.to_json() for r in on] == [r.to_json() for r in off]

    def test_run_campaign_with_explicit_session(self, registry, small_seeds, tmp_path):
        def result_for(session):
            compiler = Compiler(*GCC_SIM)
            fuzzer = make_fuzzer(
                "uCFuzz.s", compiler, small_seeds[:8], registry,
                random.Random(99), telemetry=session,
            )
            return run_campaign(fuzzer, steps=12)

        plain = result_for(None)
        sinked_session = TelemetrySession.to_jsonl(tmp_path / "run.jsonl")
        sinked = result_for(sinked_session)
        sinked_session.close()
        assert sinked.to_json() == plain.to_json()
        assert validate_jsonl(tmp_path / "run.jsonl") > 0

    def test_grid_jsonl_records_cell_lifecycle(self, registry, small_seeds, tmp_path):
        campaign = _campaign(
            default_compilers(), small_seeds[:8], registry,
            telemetry_dir=str(tmp_path / "ev"), steps=10,
        )
        ckpt = tmp_path / "ckpt"
        first = campaign.run_resilient(self.NAMES, checkpoint_dir=str(ckpt))
        assert all(o.ok for o in first)
        rows = [
            json.loads(l)
            for l in (tmp_path / "ev" / "grid.jsonl").read_text().splitlines()
        ]
        assert len(rows) == len(first)
        assert {r["fields"]["status"] for r in rows} == {"ok"}
        # Resume: every cell is served from its checkpoint and says so.
        second = campaign.run_resilient(self.NAMES, checkpoint_dir=str(ckpt))
        assert all(o.from_checkpoint for o in second)
        rows = [
            json.loads(l)
            for l in (tmp_path / "ev" / "grid.jsonl").read_text().splitlines()
        ]
        assert {r["fields"]["status"] for r in rows} == {"checkpoint-skip"}

    def test_grid_jsonl_lifecycle_across_interrupt_and_resume(
        self, registry, small_seeds, tmp_path
    ):
        from repro.resilience import CellFault

        campaign = _campaign(
            default_compilers(), small_seeds[:8], registry,
            telemetry_dir=str(tmp_path / "ev"), steps=10,
        )
        ckpt = tmp_path / "ckpt"

        def grid_rows():
            path = tmp_path / "ev" / "grid.jsonl"
            assert validate_jsonl(path) > 0
            rows = [json.loads(l) for l in path.read_text().splitlines()]
            return {
                r["name"]: r["fields"]["status"]
                for r in rows
                if r["kind"] == "cell"
            }

        # "Interrupted" run: one cell keeps failing, as if the campaign
        # was killed while it was retrying.
        first = campaign.run_resilient(
            self.NAMES, checkpoint_dir=str(ckpt), cell_retries=0,
            faults={"AFL++": CellFault(kind="raise", attempts=None)},
        )
        by_key = grid_rows()
        failed = [o for o in first if o.failed]
        assert failed  # the injected fault must have bitten
        for outcome in first:
            key = cell_key(outcome.spec)
            assert by_key[key] == ("ok" if outcome.ok else "failed")
        # Resume without the fault: finished cells announce the skip, the
        # previously-failed cells rerun and land as "ok".
        second = campaign.run_resilient(self.NAMES, checkpoint_dir=str(ckpt))
        by_key = grid_rows()
        for outcome in second:
            key = cell_key(outcome.spec)
            expected = "checkpoint-skip" if outcome.from_checkpoint else "ok"
            assert by_key[key] == expected
        assert sum(s == "ok" for s in by_key.values()) == len(failed)
        assert sum(s == "checkpoint-skip" for s in by_key.values()) == len(
            first
        ) - len(failed)
        assert all(o.ok for o in second)

    def test_fabric_grid_events_validate_against_schema_v1(
        self, registry, small_seeds, tmp_path
    ):
        from repro.resilience import CellFault

        campaign = _campaign(
            [Compiler(*GCC_SIM)], small_seeds[:6], registry,
            telemetry_dir=str(tmp_path / "ev"), steps=5,
        )
        outcomes = campaign.run_fabric(
            ("uCFuzz.s", "Csmith"), fleet_size=2,
            heartbeat_interval=0.05, heartbeat_timeout=1.5,
            poison_threshold=2,
            faults={"uCFuzz.s": CellFault(kind="exit", attempts=None)},
        )
        assert [o.ok for o in outcomes] == [False, True]
        grid = tmp_path / "ev" / "grid.jsonl"
        assert validate_jsonl(grid) > 0  # every fabric event is schema-v1
        rows = [json.loads(l) for l in grid.read_text().splitlines()]
        fabric_names = {r["name"] for r in rows if r["kind"] == "fabric"}
        assert {"grid", "worker", "lease", "poison"} <= fabric_names
        lease_statuses = {
            r["fields"]["status"]
            for r in rows
            if r["kind"] == "fabric" and r["name"] == "lease"
        }
        assert {"grant", "renew", "reclaim"} <= lease_statuses


# ---------------------------------------------------------------------------
# The triage report


class TestTriageReport:
    @pytest.fixture()
    def checkpoint_dir(self, registry, small_seeds, tmp_path):
        campaign = _campaign(
            default_compilers(), small_seeds[:10], registry, steps=40
        )
        ckpt = tmp_path / "ckpt"
        outcomes = campaign.run_resilient(
            ("uCFuzz.s",), checkpoint_dir=str(ckpt)
        )
        assert all(o.ok for o in outcomes)
        return ckpt

    def test_render_from_checkpointed_campaign(self, checkpoint_dir):
        results = load_results(checkpoint_dir)
        assert results
        text = render_report(results)
        assert "unique crashes by module" in text
        for module in CANONICAL_MODULES:
            assert module in text

    def test_cli_text_and_json(self, checkpoint_dir, tmp_path, capsys):
        assert report_main(["--checkpoint-dir", str(checkpoint_dir)]) == 0
        capsys.readouterr()  # drop the text rendering
        trig = tmp_path / "trig"
        assert report_main(
            ["--checkpoint-dir", str(checkpoint_dir), "--json",
             "--triggers-dir", str(trig)]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(CANONICAL_MODULES) <= set(data["census"])
        assert data["cells"]
        assert data["stats"]["steps"] == sum(c["steps"] for c in data["cells"])
        if data["crashes"]:
            assert trig.exists() and list(trig.iterdir())

    def test_cli_empty_checkpoint_dir_fails_cleanly(self, tmp_path):
        assert report_main(["--checkpoint-dir", str(tmp_path / "empty")]) == 1


# ---------------------------------------------------------------------------
# CrashLog bookkeeping fixes (the satellites)


def _crash_result(module: str, bug_id: str, func: str) -> CompileResult:
    result = CompileResult(False, "gcc-sim-14")
    result.crash = CompilerCrash(
        bug_id=bug_id, module=module, kind="assert", message="boom",
        frames=(StackFrame(func, 1), StackFrame("caller", 2),
                StackFrame("main", 3)),
    )
    return result


def _hang_result(bug_id: str) -> CompileResult:
    result = CompileResult(False, "gcc-sim-14")
    result.hang = CompilerHang(bug_id=bug_id, module="optimization",
                               message="no progress")
    return result


class TestCrashLogFixes:
    def test_by_module_accepts_non_canonical_modules(self):
        log = CrashLog()
        log.add(_crash_result("driver", "g-1", "f1"), 1.0)
        log.add(_crash_result("ir-gen", "g-2", "f2"), 2.0)
        census = log.by_module()  # must not raise KeyError
        assert census["driver"] == 1
        assert census["ir-gen"] == 1
        for module in CANONICAL_MODULES:
            assert module in census
        assert census["front-end"] == 0

    def test_json_roundtrip_with_hangs_and_odd_modules(self):
        log = CrashLog()
        log.add(_crash_result("plugin", "g-1", "f1"), 1.5, program="int x;")
        log.add(_hang_result("g-hang"), 2.5, program="while(1);")
        restored = CrashLog.from_json(
            json.loads(json.dumps(log.to_json()))
        )
        assert restored.signatures() == log.signatures()
        assert restored.first_seen == log.first_seen
        assert restored.triggers == log.triggers
        assert restored.by_module() == log.by_module()
        kinds = {rec.kind for rec in restored.records.values()}
        assert kinds == {"assert", "hang"}

    def test_timeline_collapses_ties(self):
        log = CrashLog()
        log.add(_crash_result("ir-gen", "g-1", "f1"), 3.0)
        log.add(_crash_result("ir-gen", "g-2", "f2"), 3.0)
        log.add(_crash_result("ir-gen", "g-3", "f3"), 7.0)
        assert log.timeline() == [(3.0, 2), (7.0, 3)]
        times = [t for t, _ in log.timeline()]
        assert len(times) == len(set(times))


# ---------------------------------------------------------------------------
# Throughput reporting fixes


class _InstantFuzzer:
    """Steps take no measurable time: elapsed can be exactly zero."""

    coverage = ()
    pool = ()

    def step(self):
        pass

    def stats_snapshot(self):
        return {"steps": 0}

    def profile_snapshot(self):
        return {"stage_timings": {}}


class TestThroughputFixes:
    def test_time_run_zero_elapsed_reports_none(self, monkeypatch):
        import repro.fuzzing.throughput as tp

        monkeypatch.setattr(tp.time, "perf_counter", lambda: 1.0)
        report = _time_run(_InstantFuzzer(), steps=3)
        assert report["seconds"] == 0.0
        assert report["steps_per_sec"] is None

    def test_time_run_reports_profile(self, registry, small_seeds):
        compiler = Compiler(*GCC_SIM)
        fuzzer = MuCFuzz(
            compiler, random.Random(3), small_seeds[:6],
            registry.supervised(), name="uCFuzz.s",
        )
        report = _time_run(fuzzer, steps=2)
        assert "stage_timings" in report["profile"]
        assert "stage_timings" not in report["stats"]


# ---------------------------------------------------------------------------
# LLM transport telemetry


class TestLLMTelemetry:
    def test_counters_and_histogram(self):
        session = TelemetrySession()
        client = LLMClient(failure_rate=0.5, telemetry=session)
        rng = random.Random(0)
        ok = failures = 0
        for _ in range(40):
            try:
                client.invent(rng, set(), "unsupervised")
                ok += 1
            except APIError:
                failures += 1
        counters = session.metrics.counters
        assert counters["llm_requests"] == client.requests
        assert counters.get("llm_failures", 0) == client.failures == failures
        assert session.metrics.histograms["llm_tokens"].count == ok

    def test_telemetry_does_not_perturb_request_stream(self, tmp_path):
        def usage_trace(telemetry):
            client = LLMClient(failure_rate=0.3, telemetry=telemetry)
            rng = random.Random(42)
            trace = []
            for _ in range(25):
                try:
                    _, usage = client.invent(rng, set(), "unsupervised")
                    trace.append((usage.tokens, round(usage.wait_seconds, 6)))
                except APIError:
                    trace.append("throttled")
            return trace

        session = TelemetrySession.to_jsonl(tmp_path / "llm.jsonl")
        with_sink = usage_trace(session)
        session.close()
        assert usage_trace(None) == with_sink
        assert validate_jsonl(tmp_path / "llm.jsonl") > 0
