"""EMI-style differential tests for semantics-preserving mutators.

A large subset of the library performs transformations that must not change
program behaviour (identities, renamings, structural rewrites).  For those,
mutant and original must produce identical output under the interpreter —
the strongest correctness check a mutator can get, and exactly the oracle
EMI-style compiler testing builds on.

Mutators excluded here intentionally change semantics (literal perturbation,
condition flips, statement deletion, ...) — that is their job.
"""

import random

import pytest

import repro.mutators  # noqa: F401
from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.compiler.coverage import CoverageMap
from repro.compiler.interp import execute
from repro.compiler.irgen import IRGen
from repro.fuzzing.progen import GenPolicy, ProgramGenerator
from repro.muast import apply_mutator
from repro.muast.registry import global_registry

#: Mutators whose transformation is behaviour-preserving on UB-free inputs
#: (wrapping integer arithmetic, zero-initialized memory — the simulated
#: target's semantics).
PRESERVING = [
    # Expression identities / rewrites
    "WrapWithParens", "AddCastToSameType", "InsertRedundantCast",
    "AddIdentityOperation", "XorWithZero", "InsertBitwiseNotNot",
    "MultiplyByMinusOne", "InsertLogicalNotNot",
    "RotateBinaryExpr", "FactorCommonTerm", "DistributeMultiplication",
    "StrengthReduceMultiply", "ArraySubscriptToPointer",
    "PointerDerefToSubscript", "IncrementToAddAssign", "AddAssignToIncrement",
    "PrefixToPostfix", "ExpandCompoundAssign", "ContractToCompoundAssign",
    # Statement structure
    "NestCompound", "GroupStatements", "InsertNullStmt", "InsertLabelNoop",
    "CompoundToSingleStmt", "WrapStmtInIf", "GuardWithTautology",
    "WrapStmtInDoWhile", "WhileToDoWhile", "UnrollLoopOnce",
    "InsertContinueIntoLoop", "InsertBreakIntoLoop", "InsertDeadIf",
    "AddElseBranch", "SwapThenElse",
    # Declarations / functions
    "RenameVariable", "RenameGlobalVariable", "SplitVarDeclInit",
    "DuplicateVarDecl", "AddVarInitializer", "IntroduceTypedef",
    "RemoveQualifier", "ReorderFunctionParams", "AddUnusedParameter",
    "RemoveUnusedParameter", "MakeFunctionStatic", "AddInlineSpecifier",
    "AddFunctionPrototype", "GhostFunction", "DuplicateFunction",
    "RenameFunction", "AddFunctionAttribute", "ExtractReturnValueVariable",
    "InlineSimpleFunction", "VoidToIntFunction", "WrapFunctionBodyInDoWhile",
]

_SEEDS = (101, 202, 303, 404)

#: A crafted program containing the constructs the generator rarely emits,
#: so that every preserving mutator has at least one guaranteed instance.
_CRAFTED = """
int base = 6;
int shared_total = 0;
const int fixed = 9;
int accessor(void) {
  return base + 2;
}
void sink(int v, int spare) {
  shared_total += v;
  return;
}
int main(void) {
  int a = 3;
  int *p = &a;
  a = base * 8;
  a = a * 2 + a * 5;
  a += 1;
  ++a;
  *p = *p + 1;
  a = accessor() + fixed;
  sink(a, 7);
  sink(a - 1, 8);
  printf("%d %d\\n", a, shared_total);
  return 0;
}
"""


def _behaviour(text, fuel=300_000):
    unit = parse(text)
    sema = Sema()
    errs = [d for d in sema.analyze(unit) if d.severity == "error"]
    if errs:
        return None
    module = IRGen(sema, CoverageMap()).lower(unit)
    return execute(module, fuel=fuel).observable


@pytest.mark.parametrize("name", PRESERVING)
def test_mutator_preserves_behaviour(name):
    info = global_registry.get(name)
    checked = 0
    programs = [
        ProgramGenerator(
            random.Random(seed), GenPolicy(max_stmts=7, safe_math=True)
        ).generate()
        for seed in _SEEDS
    ]
    programs.append(_CRAFTED.strip() + "\n")
    for case, program in enumerate(programs):
        baseline = _behaviour(program)
        assert baseline is not None
        for trial in range(5):
            mutator = info.create(random.Random(case * 977 + trial))
            outcome = apply_mutator(mutator, program)
            if not outcome.changed or outcome.mutant_text == program:
                continue
            mutated = _behaviour(outcome.mutant_text)
            assert mutated is not None, (
                f"{name} broke compilability:\n{outcome.mutant_text}"
            )
            assert mutated == baseline, (
                f"{name} changed behaviour {baseline} -> {mutated}:\n"
                f"{outcome.mutant_text}"
            )
            checked += 1
            break
    # Not every preserving mutator applies to every random program; at
    # least one instance must have been exercised across the seeds.
    if checked == 0:
        pytest.skip(f"{name} found no instance in the sample programs")
