"""The campaign fabric: lease queue, journal, supervisor, chaos plans."""

from __future__ import annotations

import json

import pytest

from repro.fabric import JOURNAL_KEY, FabricJournal, WorkQueue, run_cells_fabric
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.parallel import CellSpec, cell_key
from repro.resilience import CellFault, ChaosPlan, CheckpointStore, WorkerFault
from repro.telemetry import validate_jsonl


def _spec(name: str = "uCFuzz.s", steps: int = 5) -> CellSpec:
    return CellSpec(
        fuzzer_name=name,
        personality="gcc",
        version="13.2",
        bug_seed=99,
        seeds=("int main() { return 0; }",),
        steps=steps,
        cell_seed=1234,
    )


# ---------------------------------------------------------------------------
# The lease state machine (fake clock, no processes)


class TestWorkQueue:
    def test_grant_renew_complete(self):
        q = WorkQueue(heartbeat_timeout=10.0)
        q.add(0, _spec())
        lease = q.acquire(worker_id=7, now=100.0)
        assert lease is not None
        assert (lease.index, lease.worker_id, lease.dispatch) == (0, 7, 0)
        assert lease.deadline == 110.0
        assert q.acquire(worker_id=8, now=100.0) is None  # queue empty
        assert q.renew(lease.lease_id, now=105.0)
        assert lease.deadline == 115.0
        done = q.complete(lease.lease_id)
        assert done is lease
        assert q.drained

    def test_expiry_reclaims_only_silent_leases(self):
        q = WorkQueue(heartbeat_timeout=10.0)
        q.add(0, _spec("uCFuzz.s"))
        q.add(1, _spec("Csmith"))
        stale = q.acquire(1, now=0.0)
        fresh = q.acquire(2, now=0.0)
        q.renew(fresh.lease_id, now=9.0)
        expired = q.reclaim_expired(now=11.0)
        assert [l.lease_id for l in expired] == [stale.lease_id]
        assert q.lease_count == 1
        # A heartbeat on a reclaimed lease is refused (lost-lease fencing).
        assert not q.renew(stale.lease_id, now=11.0)
        # Requeue bumps the dispatch count (the cell's next attempt).
        q.requeue(stale)
        again = q.acquire(3, now=12.0)
        assert again.index == stale.index and again.dispatch == 1

    def test_worker_death_reclaim(self):
        q = WorkQueue(heartbeat_timeout=10.0)
        q.add(0, _spec())
        lease = q.acquire(4, now=0.0)
        assert q.reclaim_worker(9) == []
        assert [l.lease_id for l in q.reclaim_worker(4)] == [lease.lease_id]
        assert q.lease_count == 0

    def test_overrun_detection_is_grant_anchored(self):
        q = WorkQueue(heartbeat_timeout=5.0)
        q.add(0, _spec())
        lease = q.acquire(1, now=0.0)
        q.renew(lease.lease_id, now=19.0)  # heartbeats keep arriving...
        over = q.reclaim_overrunning(now=20.0, cell_budget=15.0)
        assert over == [lease]  # ...but the cell itself has hung

    def test_poison_after_distinct_workers(self):
        q = WorkQueue(poison_threshold=2)
        q.add(0, _spec())
        lease = q.acquire(1, now=0.0)
        assert q.record_kill(lease, "run1:w1") == 1
        assert q.record_kill(lease, "run1:w1") == 1  # same worker: no double
        assert not q.is_poison(0)
        assert q.record_kill(lease, "run1:w2") == 2
        assert q.is_poison(0)
        q.mark_poison(0)
        assert 0 in q.poisoned

    def test_fail_respects_cell_retry_budget(self):
        q = WorkQueue(cell_retries=1)
        q.add(0, _spec())
        lease = q.acquire(1, now=0.0)
        _, retried = q.fail(lease.lease_id)
        assert retried and q.pending_count == 1
        lease = q.acquire(1, now=1.0)
        assert lease.dispatch == 1
        _, retried = q.fail(lease.lease_id)
        assert not retried
        assert q.drained

    def test_seeded_kills_count_toward_poison(self):
        q = WorkQueue(poison_threshold=2)
        q.add(0, _spec())
        q.seed_kills(0, ["run1:w3"])  # journal replay from a previous run
        lease = q.acquire(1, now=0.0)
        assert q.record_kill(lease, "run2:w0") == 2
        assert q.is_poison(0)


# ---------------------------------------------------------------------------
# The journal: durable transitions, restart-safe worker identity


class TestJournal:
    def test_unjournalled_without_store(self):
        journal = FabricJournal(None)
        journal.record("grant")
        journal.record_kill("cell-a", journal.worker_token(0))
        assert journal.counts["grant"] == 1
        assert journal.kills_for("cell-a") == ["run1:w0"]

    def test_state_survives_restart(self, tmp_path):
        store = CheckpointStore(tmp_path)
        first = FabricJournal(store)
        assert first.runs == 1
        first.record("grant")
        first.record_kill("cell-a", first.worker_token(2))
        first.record_poison("cell-b")
        second = FabricJournal(store)
        assert second.runs == 2
        assert second.kills_for("cell-a") == ["run1:w2"]
        assert second.is_poisoned("cell-b")
        assert second.counts["grant"] == 1
        # Same worker id, different run: a *distinct* killer.
        second.record_kill("cell-a", second.worker_token(2))
        assert second.kills_for("cell-a") == ["run1:w2", "run2:w2"]

    def test_renews_persist_lazily(self, tmp_path):
        store = CheckpointStore(tmp_path)
        journal = FabricJournal(store)
        journal.record_renew()
        assert store.load(JOURNAL_KEY)["counts"]["renew"] == 0  # not yet
        journal.record("grant")  # the next durable transition carries it
        assert store.load(JOURNAL_KEY)["counts"]["renew"] == 1

    def test_rejects_unknown_transition(self):
        with pytest.raises(ValueError):
            FabricJournal(None).record("teleport")


# ---------------------------------------------------------------------------
# Chaos plans: seeded, picklable, per-worker deterministic


class TestChaosPlan:
    def test_decisions_are_deterministic_and_seeded(self):
        plan = ChaosPlan(seed=5, kill_fraction=0.34)
        assert plan.decide(2, 0) == plan.decide(2, 0)
        assert [w for w in range(10) if plan.decide(w, 0)] == [1, 2, 4]
        other = ChaosPlan(seed=2, kill_fraction=0.34)
        assert [w for w in range(10) if other.decide(w, 0)] != [1, 2, 4]

    def test_faults_fire_only_on_first_lease(self):
        plan = ChaosPlan(seed=5, kill_fraction=1.0, stall_workers=(3,))
        assert plan.decide(0, 0).kind == "die"
        assert plan.decide(0, 1) is None
        assert plan.decide(3, 0).kind == "stall"

    def test_explicit_workers_beat_the_kill_draw(self):
        plan = ChaosPlan(seed=5, kill_fraction=1.0, stall_workers=(1,),
                         slow_workers=(2,))
        assert plan.decide(1, 0).kind == "stall"
        assert plan.decide(2, 0).kind == "slow"

    def test_worker_fault_kind_checked(self):
        with pytest.raises(ValueError):
            WorkerFault("vanish")


# ---------------------------------------------------------------------------
# End-to-end: the supervised fleet (kept small; the CI smoke goes further)

_FAST = dict(heartbeat_interval=0.05, heartbeat_timeout=1.5)


def _campaign(gcc, small_seeds, registry, steps=8, **kwargs) -> Campaign:
    return Campaign(
        compilers=[gcc], seeds=small_seeds[:6], registry=registry,
        steps=steps, **kwargs,
    )


def _same_result(a, b) -> bool:
    return a.to_json() == b.to_json()


class TestFabricEndToEnd:
    NAMES = ("uCFuzz.s", "Csmith", "YARPGen")

    def test_clean_grid_matches_serial(self, gcc, small_seeds, registry):
        campaign = _campaign(gcc, small_seeds, registry)
        serial = campaign.run(self.NAMES, parallelism=1)
        outcomes = campaign.run_fabric(self.NAMES, fleet_size=2, **_FAST)
        assert [o.ok for o in outcomes] == [True] * 3
        assert all(o.attempts == 1 for o in outcomes)
        for expect, got in zip(serial, outcomes):
            assert _same_result(expect, got.result)

    def test_worker_death_redistributes_work(self, gcc, small_seeds, registry):
        campaign = _campaign(gcc, small_seeds, registry)
        serial = campaign.run(self.NAMES, parallelism=1)
        # Seed 4 dooms exactly worker 1 of the first ten: it dies mid-cell,
        # the lease is reclaimed and the cell re-dispatched to a survivor,
        # with results identical to serial.
        outcomes = campaign.run_fabric(
            self.NAMES, fleet_size=2,
            chaos=ChaosPlan(seed=4, kill_fraction=0.34, die_after=0.02),
            **_FAST,
        )
        assert all(o.ok for o in outcomes), outcomes
        assert any(o.attempts > 1 for o in outcomes)  # something was stolen
        for expect, got in zip(serial, outcomes):
            assert _same_result(expect, got.result)

    def test_poison_cell_quarantined(self, gcc, small_seeds, registry):
        campaign = _campaign(gcc, small_seeds, registry, steps=5)
        outcomes = campaign.run_fabric(
            ("uCFuzz.s", "Csmith"), fleet_size=2, poison_threshold=2,
            faults={"uCFuzz.s": CellFault(kind="exit", attempts=None)},
            **_FAST,
        )
        poison, ok = outcomes
        assert poison.failed and poison.error_type == "poison"
        assert poison.attempts == 2  # two distinct workers died for it
        assert "distinct workers" in poison.error
        assert ok.ok

    def test_cell_error_uses_retry_budget_not_poison(
        self, gcc, small_seeds, registry
    ):
        campaign = _campaign(gcc, small_seeds, registry, steps=5)
        outcomes = campaign.run_fabric(
            ("uCFuzz.s", "Csmith"), fleet_size=2, cell_retries=1,
            faults={"uCFuzz.s": CellFault(kind="raise", attempts=None)},
            **_FAST,
        )
        failed, ok = outcomes
        assert failed.error_type == "InjectedCellFault"
        assert failed.attempts == 2  # initial + one retry, both raised
        assert ok.ok

    def test_transient_raise_absorbed_by_retry(self, gcc, small_seeds, registry):
        campaign = _campaign(gcc, small_seeds, registry, steps=5)
        serial = campaign.run(("uCFuzz.s",), parallelism=1)
        outcomes = campaign.run_fabric(
            ("uCFuzz.s",), fleet_size=1, cell_retries=1,
            faults={"uCFuzz.s": CellFault(kind="raise", attempts=(0,))},
            **_FAST,
        )
        assert outcomes[0].ok and outcomes[0].attempts == 2
        assert _same_result(serial[0], outcomes[0].result)

    def test_hung_cell_reaped_by_wall_clock_budget(
        self, gcc, small_seeds, registry
    ):
        campaign = _campaign(gcc, small_seeds, registry, steps=5)
        outcomes = campaign.run_fabric(
            ("uCFuzz.s", "Csmith"), fleet_size=2,
            cell_timeout=1.0, poison_threshold=2,
            faults={"uCFuzz.s": CellFault(kind="hang", attempts=None)},
            **_FAST,
        )
        hung, ok = outcomes
        # The hang burns workers (heartbeats keep arriving; only the cell
        # budget catches it) until the poison breaker quarantines the cell.
        assert hung.failed and hung.error_type == "poison"
        assert ok.ok

    def test_resume_serves_poison_verdict_from_journal(
        self, gcc, small_seeds, registry, tmp_path
    ):
        campaign = _campaign(gcc, small_seeds, registry, steps=5)
        kwargs = dict(
            fleet_size=2, poison_threshold=2,
            checkpoint_dir=str(tmp_path / "ckpt"),
            faults={"uCFuzz.s": CellFault(kind="exit", attempts=None)},
            **_FAST,
        )
        first = campaign.run_fabric(("uCFuzz.s", "Csmith"), **kwargs)
        assert first[0].error_type == "poison" and first[1].ok
        resumed = campaign.run_fabric(("uCFuzz.s", "Csmith"), **kwargs)
        assert all(o.from_checkpoint for o in resumed)
        assert resumed[0].error_type == "poison"
        assert _same_result(first[1].result, resumed[1].result)
        # The journal carries both the poison verdict and the kill ledger.
        journal = FabricJournal(CheckpointStore(tmp_path / "ckpt"))
        key = cell_key(campaign.cell_specs(("uCFuzz.s",))[0])
        assert journal.is_poisoned(key)
        assert len(journal.kills_for(key)) == 2

    def test_unpicklable_registry_falls_back_in_process(
        self, gcc, small_seeds
    ):
        from repro.muast.mutator import Mutator
        from repro.muast.registry import MutatorRegistry, register_mutator

        local_registry = MutatorRegistry()

        @register_mutator(
            "LocalNoop",
            "This mutator does nothing.",
            category="Statement",
            origin="supervised",
            registry=local_registry,
        )
        class LocalNoop(Mutator):
            def mutate(self) -> bool:
                return False

        campaign = Campaign(
            compilers=[gcc], seeds=small_seeds[:4],
            registry=local_registry, steps=4,
        )
        outcomes = campaign.run_fabric(
            ("uCFuzz.s", "Csmith"), fleet_size=2, **_FAST
        )
        assert all(o.ok for o in outcomes)

    def test_fabric_telemetry_validates_and_narrates(
        self, gcc, small_seeds, registry, tmp_path
    ):
        campaign = _campaign(
            gcc, small_seeds, registry, steps=5,
            telemetry_dir=str(tmp_path / "ev"),
        )
        outcomes = campaign.run_fabric(
            ("uCFuzz.s", "Csmith"), fleet_size=2, poison_threshold=2,
            faults={"uCFuzz.s": CellFault(kind="exit", attempts=None)},
            **_FAST,
        )
        assert [o.ok for o in outcomes] == [False, True]
        grid = tmp_path / "ev" / "grid.jsonl"
        assert validate_jsonl(grid) > 0
        events = [json.loads(l) for l in grid.read_text().splitlines()]
        fabric = [e for e in events if e["kind"] == "fabric"]
        statuses = {
            e["fields"].get("status") for e in fabric if e["name"] == "lease"
        }
        assert {"grant", "renew", "reclaim"} <= statuses, statuses
        assert sum(1 for e in fabric if e["name"] == "poison") == 1
        cell_rows = [e for e in events if e["kind"] == "cell"]
        assert {r["fields"]["status"] for r in cell_rows} == {"ok", "failed"}


# ---------------------------------------------------------------------------
# run_cells_fabric accepts raw specs (no Campaign required)


def test_run_cells_fabric_direct(gcc, small_seeds, registry):
    campaign = _campaign(gcc, small_seeds, registry, steps=4)
    specs = campaign.cell_specs(("Csmith",))
    outcomes = run_cells_fabric(specs, fleet_size=1, **_FAST)
    assert outcomes[0].ok and outcomes[0].spec is specs[0]
