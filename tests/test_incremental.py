"""Incremental pipeline correctness: grafted front ends and replayed IR.

The incremental machinery (dirty-region re-front-ending, per-decl summary
grafting, function-granular middle-end replay) is pure performance — every
test here pins down the invariant it rests on: an incremental compile is
observably identical to a from-scratch one.
"""

import random

from repro.cast.cache import FrontendCache, analyze_front_end
from repro.cast.incremental import assert_entries_equal
from repro.cast.rewriter import Rewriter
from repro.cast.source import SourceFile, SourceLocation, SourceRange
from repro.fuzzing.campaign import run_campaign
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.muast.mutator import apply_mutator


def _span(begin: int, end: int) -> SourceRange:
    return SourceRange(SourceLocation(begin), SourceLocation(end))


def _apply_script(text: str, edits) -> str:
    """Apply an edit script left to right — the contract edit_script makes."""
    parts, pos = [], 0
    for begin, end, replacement in edits:
        parts.append(text[pos:begin])
        parts.append(replacement)
        pos = end
    parts.append(text[pos:])
    return "".join(parts)


class TestRewriterEditScript:
    """edit_script() is what the incremental front end consumes; its spans
    must reproduce rewritten_text() exactly, including at decl boundaries."""

    TEXT = "int a = 1;\nint f(void) { return a; }\nint b = 2;\n"

    def test_script_reproduces_rewritten_text(self):
        rw = Rewriter(SourceFile(self.TEXT))
        assert rw.replace_text(_span(8, 9), "42")
        assert rw.remove_text(_span(37, 48))  # delete "int b = 2;\n"
        got = _apply_script(self.TEXT, rw.edit_script())
        assert got == rw.rewritten_text()

    def test_insertion_at_decl_boundary(self):
        """An edit exactly at a declaration's first byte must land before it."""
        rw = Rewriter(SourceFile(self.TEXT))
        loc = SourceLocation(11)  # start of int f
        assert rw.insert_text_before(loc, "static ")
        script = rw.edit_script()
        assert script == ((11, 11, "static "),)
        assert _apply_script(self.TEXT, script) == rw.rewritten_text()

    def test_deletion_spanning_to_end(self):
        rw = Rewriter(SourceFile(self.TEXT))
        assert rw.remove_text(_span(37, len(self.TEXT)))
        assert _apply_script(self.TEXT, rw.edit_script()) == self.TEXT[:37]

    def test_multi_span_edits_sorted_and_disjoint(self):
        rw = Rewriter(SourceFile(self.TEXT))
        # Register out of order; the script must come back position-sorted.
        assert rw.replace_text(_span(45, 46), "3")  # the literal in "int b"
        assert rw.replace_text(_span(8, 9), "7")
        assert rw.insert_text_before(
            SourceLocation(11), "/*x*/"
        )
        script = rw.edit_script()
        assert [s[:2] for s in script] == sorted(s[:2] for s in script)
        for (_, e0, _), (b1, _, _) in zip(script, script[1:]):
            assert e0 <= b1
        assert _apply_script(self.TEXT, script) == rw.rewritten_text()

    def test_overlapping_edits_rejected(self):
        rw = Rewriter(SourceFile(self.TEXT))
        assert rw.replace_text(_span(4, 9), "x = 1")
        assert not rw.replace_text(_span(8, 10), "y")
        # The rejected edit leaves no trace in the script.
        assert rw.edit_script() == ((4, 9, "x = 1"),)

    def test_same_point_insertions_keep_sequence_order(self):
        rw = Rewriter(SourceFile(self.TEXT))
        loc = SourceLocation(0)
        assert rw.insert_text_before(loc, "A")
        assert rw.insert_text_before(loc, "B")
        assert rw.rewritten_text().startswith("AB")
        assert _apply_script(self.TEXT, rw.edit_script()) == rw.rewritten_text()


class TestGraftInvariant:
    """Property over the mutator corpus: every mutant front-ended through
    the dirty-region path equals a full re-front-ending (token stream, AST,
    sema tables — the assert_entries_equal relation the paranoid mode uses).
    """

    def test_mutants_graft_equal_full(self, registry, small_seeds):
        cache = FrontendCache()
        rng = random.Random(99)
        mutators = registry.supervised()
        checked = 0
        for seed in small_seeds[:12]:
            parent = cache.front_end(seed)
            if parent.unit is None or parent.error_diagnostics:
                continue
            for _ in range(6):
                info = rng.choice(mutators)
                try:
                    outcome = apply_mutator(
                        info.create(rng), seed, cache=cache
                    )
                except Exception:
                    continue
                if not outcome.changed or not outcome.edits:
                    continue
                entry, plan = cache.front_end_incremental(
                    outcome.mutant_text, parent, outcome.edits
                )
                if plan is None:
                    continue  # cache hit or ineligible edit → full path ran
                assert_entries_equal(
                    entry, analyze_front_end(outcome.mutant_text)
                )
                checked += 1
        assert checked >= 10, "corpus produced too few incremental fronts"

    def test_edit_script_matches_mutant_text(self, registry, small_seeds):
        """The edits a mutator reports really do produce its mutant text."""
        rng = random.Random(5)
        cache = FrontendCache()
        seen = 0
        for seed in small_seeds[:10]:
            for info in registry.supervised()[:20]:
                try:
                    outcome = apply_mutator(info.create(rng), seed, cache=cache)
                except Exception:
                    continue
                if outcome.changed and outcome.edits:
                    assert _apply_script(seed, outcome.edits) == outcome.mutant_text
                    seen += 1
        assert seen >= 10


class TestIncrementalCompileParity:
    """Compiler.compile(edits_from=...) is observably identical to a full
    compile, and paranoid mode enforces that on every step."""

    def test_middle_end_replay_matches_full(self, registry, small_seeds):
        from repro.compiler import GCC_SIM, Compiler

        gcc = Compiler(*GCC_SIM)
        cache = FrontendCache()
        rng = random.Random(31)
        replayed = 0
        for seed in small_seeds[:10]:
            base = gcc.compile(seed, cache=cache)
            if not base.ok:
                continue
            for _ in range(4):
                info = rng.choice(registry.supervised())
                try:
                    outcome = apply_mutator(info.create(rng), seed, cache=cache)
                except Exception:
                    continue
                if not outcome.changed or not outcome.edits:
                    continue
                inc = gcc.compile(
                    outcome.mutant_text, cache=cache,
                    edits_from=(seed, outcome.edits),
                )
                full = gcc.compile(outcome.mutant_text)
                assert inc.ok == full.ok
                assert inc.diagnostics == full.diagnostics
                assert inc.coverage.edges == full.coverage.edges
                assert inc.asm == full.asm
                assert inc.features == full.features
                assert (inc.crash is None) == (full.crash is None)
                replayed += 1
        assert replayed >= 8
        assert gcc.middle_incremental_hits > 0

    def test_paranoid_fuzzing_steps(self, gcc, registry, small_seeds):
        fuzzer = MuCFuzz(
            gcc, random.Random(2024), small_seeds[:8],
            registry.supervised(), paranoid=True,
        )
        for _ in range(25):
            fuzzer.step()  # IncrementalDivergence would propagate
        stats = fuzzer.stats_snapshot()
        assert stats["cache_paranoid_checks"] > 0

    def test_incremental_equals_plain_cached_run(self, gcc, registry, small_seeds):
        """Step-for-step identity: the speedup changes no observable result."""
        inc = MuCFuzz(
            gcc, random.Random(7), small_seeds[:8], registry.supervised(),
            incremental=True,
        )
        plain = MuCFuzz(
            gcc, random.Random(7), small_seeds[:8], registry.supervised(),
            incremental=False,
        )
        for _ in range(40):
            a, b = inc.step(), plain.step()
            assert a.program == b.program
            assert a.mutator == b.mutator
            assert a.kept == b.kept
            assert a.result.coverage.edges == b.result.coverage.edges
            assert a.result.diagnostics == b.result.diagnostics
            assert a.result.asm == b.result.asm
        assert inc.coverage.edges == plain.coverage.edges
        assert inc.stats_snapshot()["cache_incremental_hits"] > 0

    def test_campaign_invariant_under_incremental(self, gcc, registry, small_seeds):
        def result_of(incremental):
            fuzzer = MuCFuzz(
                gcc, random.Random(11), small_seeds[:8],
                registry.supervised(), incremental=incremental,
            )
            r = run_campaign(fuzzer, steps=30)
            return (
                r.coverage_trend, r.compiled, r.total,
                [c.signature for c in r.crashes.entries]
                if hasattr(r.crashes, "entries") else r.crashes.timeline(),
            )

        assert result_of(True) == result_of(False)
