"""The resilience layer: deterministic retry/backoff, per-cell fault
isolation, checkpoint/resume, and mutator quarantine."""

from __future__ import annotations

import json
import random

import pytest

from repro.fuzzing.campaign import Campaign, CampaignResult
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.parallel import CellOutcome, cell_key, run_cell, run_cells
from repro.llm.client import APIError, LLMClient
from repro.llm.faults import Fault, FaultKind
from repro.llm.model import Implementation, Invention, SimulatedLLM
from repro.metamut.pipeline import MetaMut
from repro.metamut.validation import validate_implementation
from repro.muast.mutator import Mutator, MutatorCrash
from repro.muast.registry import MutatorInfo, MutatorRegistry, register_mutator
from repro.resilience import (
    CellFault,
    CheckpointStore,
    InjectedCellFault,
    MutatorQuarantine,
    RetryPolicy,
    run_with_retry,
)

# ---------------------------------------------------------------------------
# Retry policy determinism


def test_backoff_schedule_deterministic():
    policy = RetryPolicy(budget=4)
    a = policy.schedule(random.Random(7))
    b = policy.schedule(random.Random(7))
    assert a == b
    assert a != policy.schedule(random.Random(8))


def test_backoff_schedule_shape():
    policy = RetryPolicy(
        budget=6, base_backoff=2.0, multiplier=2.0, max_backoff=10.0, jitter=0.25
    )
    schedule = policy.schedule(random.Random(0))
    assert len(schedule) == 6
    for i, pause in enumerate(schedule):
        nominal = min(2.0 * 2.0**i, 10.0)
        assert nominal * 0.75 <= pause <= nominal * 1.25
    # Without jitter the schedule is the pure exponential, capped.
    flat = RetryPolicy(budget=4, max_backoff=10.0, jitter=0.0)
    assert flat.schedule(random.Random(0)) == [2.0, 4.0, 8.0, 10.0]


def test_run_with_retry_no_policy_is_single_shot():
    rng = random.Random(1)
    before = rng.getstate()
    with pytest.raises(ValueError):
        run_with_retry(None, rng, lambda: (_ for _ in ()).throw(ValueError()))
    # policy=None consumes no RNG: historical random streams stay intact.
    assert rng.getstate() == before
    value, retries, backoff = run_with_retry(None, rng, lambda: 42)
    assert (value, retries, backoff) == (42, 0, 0.0)


def test_run_with_retry_recovers_and_exhausts():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise APIError("throttled")
        return "ok"

    value, retries, backoff = run_with_retry(
        RetryPolicy(budget=3), random.Random(5), flaky, retryable=(APIError,)
    )
    assert value == "ok" and retries == 2 and backoff > 0
    # Budget exhausted: the last error propagates after budget retries.
    calls["n"] = -100
    with pytest.raises(APIError):
        run_with_retry(
            RetryPolicy(budget=2),
            random.Random(5),
            lambda: (_ for _ in ()).throw(APIError("always")),
            retryable=(APIError,),
        )


def test_llm_client_retry_deterministic():
    def transcript(seed: int) -> list:
        client = LLMClient(failure_rate=0.3, retry_policy=RetryPolicy(budget=3))
        rng = random.Random(seed)
        out = []
        for _ in range(20):
            try:
                usage = client._request(rng, 100)
                out.append(
                    (usage.tokens, usage.wait_seconds, usage.retries, usage.backoff_seconds)
                )
            except APIError:
                out.append("error")
        out.append((client.requests, client.retries, client.backoff_seconds))
        return out

    a, b = transcript(99), transcript(99)
    assert a == b
    assert any(isinstance(u, tuple) and u[2] > 0 for u in a[:-1])
    assert a != transcript(100)


def test_chat_usage_total_seconds_includes_backoff():
    client = LLMClient(failure_rate=1.0, retry_policy=RetryPolicy(budget=5))
    # Every attempt fails: the budget is spent, then APIError escapes.
    with pytest.raises(APIError):
        client._request(random.Random(0), 10)
    assert client.retries == 5
    assert client.backoff_seconds > 0


# ---------------------------------------------------------------------------
# Pipeline-level retry: Tables 2-3 stay honest, completion rate recovers


def test_pipeline_completion_rate_with_retry_budget():
    metamut = MetaMut(
        client=LLMClient(
            SimulatedLLM(),
            failure_rate=0.20,
            retry_policy=RetryPolicy(budget=3),
        )
    )
    campaign = metamut.run_unsupervised(100)
    # At a 20% per-request throttle rate an unprotected invocation (~6
    # requests) dies ~74% of the time; budget-3 retries push per-request
    # failure to 0.2^4 = 0.16%, so ≥95 of 100 invocations must complete.
    assert campaign.completion_rate >= 0.95
    assert campaign.total_retries > 0
    assert campaign.total_backoff_seconds > 0
    stats = campaign.ledger.retry_stats()
    assert stats["retries"] > 0
    assert stats["backoff_seconds"] > 0
    assert stats["retried_mutators"] > 0
    # Backoff is kept out of the Table 3 wait distribution (purity) but the
    # per-mutator backoff ledger carries it.
    retried = [r for r in campaign.valid if r.cost.retries]
    assert retried, "expected at least one valid mutator with retries"
    assert all(r.cost.total_backoff_seconds > 0 for r in retried)


def test_pipeline_default_stream_unchanged():
    # No retry policy: the historical RNG stream and ~24% invocation failure
    # rate are untouched (the seed suite asserts the 10-40 band; here we pin
    # that retries are exactly zero).
    campaign = MetaMut().run_unsupervised(40)
    assert campaign.total_retries == 0
    assert campaign.total_backoff_seconds == 0.0


# ---------------------------------------------------------------------------
# Validation fault census (satellite: exception type recorded)


def _implementation_with(kind: FaultKind) -> Implementation:
    from repro.muast.registry import global_registry

    invention = Invention("TestMutator", "desc", "Swap", "Stmt")
    return Implementation(invention, global_registry.supervised()[0], [Fault(kind)])


def test_validation_records_fault_type():
    program = "int main() { int a = 1; return a; }"
    crash = validate_implementation(
        _implementation_with(FaultKind.CRASH), [program], random.Random(3)
    )
    assert crash.goal == 3
    assert crash.fault_type == "MutatorCrash"
    hang = validate_implementation(
        _implementation_with(FaultKind.HANG), [program], random.Random(3)
    )
    assert hang.goal == 2
    assert hang.fault_type == "MutatorHang"


# ---------------------------------------------------------------------------
# Mutator quarantine (circuit breaker)


class _AlwaysCrash(Mutator):
    def mutate(self) -> bool:
        raise MutatorCrash("synthetic crash")


_CRASH_INFO = MutatorInfo(
    name="AlwaysCrash",
    description="This mutator always crashes.",
    cls=_AlwaysCrash,
    category="Statement",
    origin="unsupervised",
)


def test_quarantine_trips_after_consecutive_failures():
    quarantine = MutatorQuarantine(threshold=3)
    assert not quarantine.record_failure("m", "MutatorCrash")
    quarantine.record_success("m")  # resets the consecutive count
    assert not quarantine.record_failure("m", "MutatorCrash")
    assert not quarantine.record_failure("m", "MutatorCrash")
    assert quarantine.record_failure("m", "MutatorCrash")  # tripped
    assert not quarantine.allows("m")
    assert quarantine.allows("other")
    assert not quarantine.record_failure("m")  # already quarantined
    stats = quarantine.stats()
    assert stats["quarantined_mutators"] == ["m"]
    assert stats["quarantine_events"] == 1


def test_fuzzer_quarantines_crashing_mutator(gcc, small_seeds):
    quarantine = MutatorQuarantine(threshold=2)
    fuzzer = MuCFuzz(
        gcc,
        random.Random(11),
        small_seeds,
        [_CRASH_INFO],
        name="uCFuzz.q",
        quarantine=quarantine,
    )
    tripped_step = None
    for i in range(4):
        step = fuzzer.step()
        if step.stats.get("quarantined"):
            tripped_step = i
    assert tripped_step is not None
    assert not quarantine.allows("AlwaysCrash")
    snap = fuzzer.stats_snapshot()
    assert snap["quarantined_mutators"] == ["AlwaysCrash"]
    assert snap["mutator_failures"] == 2  # no failures after the trip
    assert snap["quarantine_skips"] >= 1


def test_quarantine_off_by_default(gcc, small_seeds, registry):
    fuzzer = MuCFuzz(gcc, random.Random(11), small_seeds, registry.supervised())
    snap = fuzzer.stats_snapshot()
    assert "quarantined_mutators" not in snap
    step = fuzzer.step()
    assert "quarantined" not in (step.stats or {})


# ---------------------------------------------------------------------------
# Per-cell fault isolation, retry, and checkpoint/resume


def _campaign(gcc, small_seeds, registry, steps=30) -> Campaign:
    return Campaign(
        compilers=[gcc], seeds=small_seeds[:8], registry=registry, steps=steps
    )


def _same_result(a: CampaignResult, b: CampaignResult) -> bool:
    return (
        a.fuzzer == b.fuzzer
        and a.coverage_trend == b.coverage_trend
        and a.crashes.signatures() == b.crashes.signatures()
        and a.compiled == b.compiled
        and a.total == b.total
    )


def test_injected_crash_recovered_by_retry_matches_serial(
    gcc, small_seeds, registry
):
    campaign = _campaign(gcc, small_seeds, registry)
    names = ("uCFuzz.s", "Csmith", "YARPGen")
    clean = campaign.run(names, parallelism=1)
    outcomes = campaign.run_resilient(
        names,
        parallelism=2,
        cell_retries=1,
        faults={"uCFuzz.s": CellFault(kind="exit", attempts=(0,))},
    )
    assert all(o.ok for o in outcomes)
    by_name = {o.spec.fuzzer_name: o for o in outcomes}
    assert by_name["uCFuzz.s"].attempts == 2  # crashed once, retried
    assert by_name["Csmith"].attempts == 1
    for expect, got in zip(clean, outcomes):
        assert got.result is not None
        assert _same_result(expect, got.result)


def test_persistent_crash_is_recorded_not_fatal(gcc, small_seeds, registry):
    campaign = _campaign(gcc, small_seeds, registry, steps=15)
    outcomes = campaign.run_resilient(
        parallelism=3,
        cell_retries=1,
        faults={"GrayC": CellFault(kind="exit", attempts=None)},
    )
    assert len(outcomes) == 6
    failed = [o for o in outcomes if o.failed]
    assert len(failed) == 1
    assert failed[0].spec.fuzzer_name == "GrayC"
    assert failed[0].error_type == "worker-crash"
    assert failed[0].attempts == 2  # original + one retry, both crashed
    assert failed[0].result is None
    assert sum(o.ok for o in outcomes) == 5


def test_injected_raise_recorded_in_serial_mode(gcc, small_seeds, registry):
    campaign = _campaign(gcc, small_seeds, registry, steps=10)
    outcomes = campaign.run_resilient(
        ("uCFuzz.s", "Csmith"),
        parallelism=1,
        cell_retries=0,
        faults={"uCFuzz.s": CellFault(kind="raise", attempts=None)},
    )
    assert outcomes[0].failed
    assert outcomes[0].error_type == "InjectedCellFault"
    assert "injected cell fault" in outcomes[0].error
    assert outcomes[1].ok


def test_hang_times_out(gcc, small_seeds, registry):
    campaign = _campaign(gcc, small_seeds, registry, steps=5)
    outcomes = campaign.run_resilient(
        ("uCFuzz.s",),
        parallelism=1,
        cell_timeout=1.0,
        cell_retries=0,
        faults={"uCFuzz.s": CellFault(kind="hang", attempts=None)},
    )
    assert outcomes[0].failed
    assert outcomes[0].error_type == "timeout"
    assert "wall-clock budget" in outcomes[0].error


def test_checkpoint_resume_reruns_only_unfinished(
    gcc, small_seeds, registry, tmp_path
):
    campaign = _campaign(gcc, small_seeds, registry, steps=15)
    names = ("uCFuzz.s", "uCFuzz.u", "AFL++", "Csmith")
    clean = campaign.run(names, parallelism=1)
    ckpt = tmp_path / "checkpoints"
    # First run: one cell permanently broken — as if the campaign was killed
    # while that cell kept failing.
    first = campaign.run_resilient(
        names,
        parallelism=2,
        cell_retries=0,
        checkpoint_dir=ckpt,
        faults={"AFL++": CellFault(kind="raise", attempts=None)},
    )
    assert sum(o.ok for o in first) == 3
    store = CheckpointStore(ckpt)
    assert len(store) == 4  # the failure is persisted too (ok: false)
    # Resume without the fault: only the failed cell reruns.
    resumed = campaign.run_resilient(
        names, parallelism=2, checkpoint_dir=ckpt
    )
    assert all(o.ok for o in resumed)
    by_name = {o.spec.fuzzer_name: o for o in resumed}
    assert not by_name["AFL++"].from_checkpoint
    for name in ("uCFuzz.s", "uCFuzz.u", "Csmith"):
        assert by_name[name].from_checkpoint
    # The resumed campaign's final results equal the clean serial run.
    for expect, got in zip(clean, resumed):
        assert got.result is not None
        assert _same_result(expect, got.result)


def test_checkpoint_store_roundtrip_and_corruption(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("a/b c", {"ok": True, "n": 1})
    assert store.load("a/b c") == {"ok": True, "n": 1}
    assert "a/b c" in store
    # A truncated/corrupt file is treated as absent, not an error.
    store.path_for("bad").write_text('{"ok": tru')
    assert store.load("bad") is None
    assert store.load("missing") is None


def test_checkpoint_store_sanitization_collision_reads_absent(tmp_path):
    # "a/b" and "a_b" sanitize to the same stem; the second save wins the
    # file, but the first key must read as *absent*, never as the other
    # key's payload.
    store = CheckpointStore(tmp_path)
    store.save("a/b", {"who": "slash"})
    store.save("a_b", {"who": "underscore"})
    assert store.path_for("a/b") == store.path_for("a_b")
    assert store.load("a_b") == {"who": "underscore"}
    assert store.load("a/b") is None  # not {"who": "underscore"}!
    # Saving again flips the file back; now the other key reads absent.
    store.save("a/b", {"who": "slash"})
    assert store.load("a/b") == {"who": "slash"}
    assert store.load("a_b") is None


def test_checkpoint_store_accepts_legacy_payload_without_key(tmp_path):
    store = CheckpointStore(tmp_path)
    # A pre-collision-guard checkpoint has no embedded key: still served.
    store.path_for("old").write_text('{"ok": true}\n')
    assert store.load("old") == {"ok": True}


def test_checkpoint_store_sweeps_orphaned_tmp_files(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("kept", {"ok": True})
    # A kill between write_text and os.replace leaves a .json.tmp orphan.
    orphan = tmp_path / "dead.json.tmp"
    orphan.write_text('{"ok": tru')
    reopened = CheckpointStore(tmp_path)
    assert not orphan.exists()
    assert reopened.load("kept") == {"ok": True}


def test_checkpoint_save_does_not_mutate_caller_payload(tmp_path):
    store = CheckpointStore(tmp_path)
    payload = {"ok": True}
    store.save("k", payload)
    assert payload == {"ok": True}  # no reserved-field leakage


def test_cell_key_ignores_fault_and_attempt(gcc, small_seeds, registry):
    campaign = _campaign(gcc, small_seeds, registry)
    spec = campaign.cell_specs(("uCFuzz.s",))[0]
    import dataclasses

    faulted = dataclasses.replace(
        spec, fault=CellFault(kind="raise"), attempt=2
    )
    assert cell_key(spec) == cell_key(faulted)
    other = campaign.cell_specs(("Csmith",))[0]
    assert cell_key(spec) != cell_key(other)


# ---------------------------------------------------------------------------
# Hung-worker reaping: SIGTERM deserters must not leak past the grid


def _ignore_sigterm_and_sleep():  # pragma: no cover - subprocess body
    import signal
    import time

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(3600)


def test_ensure_dead_escalates_to_sigkill():
    import multiprocessing as mp

    from repro.fuzzing.parallel import ensure_dead

    proc = mp.get_context().Process(
        target=_ignore_sigterm_and_sleep, daemon=True
    )
    proc.start()
    try:
        # Give the child a moment to install its SIG_IGN handler.
        import time

        time.sleep(0.3)
        ensure_dead(proc, grace=0.5)
        assert not proc.is_alive()  # terminate() alone would leak it
    finally:
        if proc.is_alive():
            proc.kill()
            proc.join(5)


def test_ensure_dead_on_finished_process_is_noop():
    import multiprocessing as mp

    from repro.fuzzing.parallel import ensure_dead

    proc = mp.get_context().Process(target=int, daemon=True)
    proc.start()
    proc.join(10)
    ensure_dead(proc)
    assert not proc.is_alive()


# ---------------------------------------------------------------------------
# The strict API: cell errors propagate; serial fallback is narrow


def test_run_cells_propagates_cell_errors(gcc, small_seeds, registry):
    campaign = _campaign(gcc, small_seeds, registry, steps=5)
    specs = campaign.cell_specs(
        ("uCFuzz.s",), faults={"uCFuzz.s": CellFault(kind="raise")}
    )
    with pytest.raises(InjectedCellFault):
        run_cells(specs, parallelism=1)


def test_run_cells_serial_fallback_on_unpicklable_registry(gcc, small_seeds):
    # A registry holding a locally-defined mutator class cannot cross a
    # process boundary; run_cells must fall back to the (identical) serial
    # path instead of crashing — and still actually run the cells.
    local_registry = MutatorRegistry()

    @register_mutator(
        "LocalNoop",
        "This mutator does nothing.",
        category="Statement",
        origin="supervised",
        registry=local_registry,
    )
    class LocalNoop(Mutator):
        def mutate(self) -> bool:
            return False

    campaign = Campaign(
        compilers=[gcc],
        seeds=small_seeds[:4],
        registry=local_registry,
        steps=5,
    )
    results = campaign.run(("uCFuzz.s", "Csmith"), parallelism=2)
    assert len(results) == 2
    assert all(isinstance(r, CampaignResult) for r in results)


# ---------------------------------------------------------------------------
# Checkpoint serialization fidelity


def test_campaign_result_json_roundtrip(gcc, small_seeds, registry):
    campaign = _campaign(gcc, small_seeds, registry, steps=40)
    [result] = campaign.run(("uCFuzz.u",), parallelism=1)
    payload = json.loads(json.dumps(result.to_json()))  # must be pure JSON
    restored = CampaignResult.from_json(payload)
    assert _same_result(result, restored)
    assert restored.stats == result.stats
    assert restored.throughput_total == result.throughput_total
    assert restored.crashes.timeline() == result.crashes.timeline()


def test_cell_outcome_json_shape(gcc, small_seeds, registry):
    campaign = _campaign(gcc, small_seeds, registry, steps=5)
    spec = campaign.cell_specs(("Csmith",))[0]
    outcome = CellOutcome(spec=spec, ok=True, result=run_cell(spec))
    payload = json.loads(json.dumps(outcome.to_json()))
    assert payload["ok"] is True
    assert payload["fuzzer"] == "Csmith"
    assert "result" in payload
