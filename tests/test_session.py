"""Compile session: fused-pass equivalence + cross-step middle-end memoization.

Two contracts are under test here:

* the fused single-walk ``const_fold+forward_store+cse`` round
  (:func:`repro.compiler.passes.fused.fused_local_opt`) is bit-identical —
  IR dump, coverage edges, and stats counters — to the sequential pass
  order it replaces, over seed programs, mutator-produced mutants, and
  randomly generated programs;
* a :class:`repro.compiler.session.CompileSession` replays interned
  per-function middle-end artifacts without changing any observable of
  ``Compiler.compile`` (checked against from-scratch compiles), and a
  campaign routed twice through one warm session is bit-identical.
"""

import copy
import random

import pytest

import repro.mutators  # noqa: F401 - populate the registry
from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.compiler import GCC_SIM, Compiler
from repro.compiler.coverage import CoverageMap
from repro.compiler.incremental import assert_results_equal
from repro.compiler.irgen import IRGen, LoweringError
from repro.compiler.passes import OptContext, local_opt
from repro.compiler.session import CompileSession
from repro.fuzzing.campaign import run_campaign
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.progen import GenPolicy, ProgramGenerator
from repro.muast.mutator import apply_mutator
from repro.muast.registry import global_registry


def _lower(text):
    unit = parse(text)
    sema = Sema()
    if [d for d in sema.analyze(unit) if d.severity == "error"]:
        return None
    try:
        return IRGen(sema, CoverageMap()).lower(unit)
    except (LoweringError, RecursionError):
        return None


def _mutant_corpus(seeds, n=24):
    """Mutator-produced texts (the fuzzing hot path's actual inputs)."""
    rng = random.Random(99)
    muts = global_registry.supervised()
    texts = []
    for i in range(n):
        info = muts[rng.randrange(len(muts))]
        out = apply_mutator(
            info.create(random.Random(rng.randrange(1 << 30))),
            seeds[i % len(seeds)],
        )
        if out.changed and out.mutant_text:
            texts.append(out.mutant_text)
    return texts


def _opt_observables(fn, opt_level=2):
    """(dump, edges, stats) after local optimization of a copy of ``fn``."""
    ctx = OptContext(cov=CoverageMap(), opt_level=opt_level)
    local_opt(fn, ctx)
    return fn.dump(), frozenset(ctx.cov.edges), dict(ctx.stats.counters), ctx


class TestFusedEquivalence:
    """fused_local_opt == the sequential const_fold/.../dce fixpoint."""

    def _check_program(self, text):
        module = _lower(text)
        if module is None:
            return 0
        checked = 0
        for name in module.functions:
            seq_fn = copy.deepcopy(module.functions[name])
            fus_fn = copy.deepcopy(module.functions[name])
            seq_dump, seq_edges, seq_stats, seq_ctx = _opt_observables(seq_fn)
            fus_ctx = OptContext(cov=CoverageMap(), opt_level=2, fuse=True)
            local_opt(fus_fn, fus_ctx)
            assert fus_fn.dump() == seq_dump, f"IR diverged for {name} in:\n{text}"
            assert frozenset(fus_ctx.cov.edges) == seq_edges
            assert dict(fus_ctx.stats.counters) == seq_stats
            assert fus_ctx.fused_runs == 1 and seq_ctx.fused_runs == 0
            checked += 1
        return checked

    def test_seed_corpus(self, small_seeds):
        assert sum(self._check_program(t) for t in small_seeds[:30]) > 30

    def test_mutant_corpus(self, small_seeds):
        mutants = _mutant_corpus(small_seeds[:12])
        assert mutants
        sum(self._check_program(t) for t in mutants)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_programs(self, seed):
        text = ProgramGenerator(
            random.Random(seed), GenPolicy(max_stmts=8)
        ).generate()
        self._check_program(text)

    def test_fused_runs_outside_compared_stats(self):
        # fused_runs lives on the context, never in the stats counters the
        # paranoid feature comparison sees.
        module = _lower("int main(void) { return 2 + 3; }")
        ctx = OptContext(cov=CoverageMap(), opt_level=2, fuse=True)
        local_opt(module.functions["main"], ctx)
        assert ctx.fused_runs == 1
        assert "fused_runs" not in ctx.stats.counters


def _mutate_body(text):
    """A textual single-function mutation (dirty fn, clean siblings)."""
    return text.replace("return", "if (1) return", 1)


class TestCompileSession:
    def test_session_compile_matches_cold(self, small_seeds):
        session = CompileSession()
        warm = Compiler(*GCC_SIM, session=session, fuse_passes=True)
        cold = Compiler(*GCC_SIM)
        for text in small_seeds[:10]:
            assert_results_equal(warm.compile(text), cold.compile(text))
        assert session.misses > 0

    def test_session_result_memo_on_recompile(self, small_seeds):
        session = CompileSession()
        warm = Compiler(*GCC_SIM, session=session)
        cold = Compiler(*GCC_SIM)
        text = small_seeds[0]
        first = warm.compile(text)
        before = session.result_hits
        second = warm.compile(text)
        assert session.result_hits == before + 1
        for result in (first, second):
            assert_results_equal(result, cold.compile(text))

    def test_session_hits_on_shared_clean_functions(self, small_seeds):
        session = CompileSession()
        warm = Compiler(*GCC_SIM, session=session, fuse_passes=True)
        cold = Compiler(*GCC_SIM)
        text = small_seeds[1]
        warm.compile(text)
        mutant = _mutate_body(text)
        assert mutant != text
        before = session.hits
        assert_results_equal(warm.compile(mutant), cold.compile(mutant))
        # The mutant's unchanged sibling functions replayed from the session.
        assert session.hits > before

    def test_paranoid_session_compile(self, small_seeds):
        session = CompileSession()
        warm = Compiler(*GCC_SIM, session=session, fuse_passes=True)
        text = small_seeds[2]
        warm.compile(text)
        before = session.paranoid_checks
        warm.compile(_mutate_body(text), paranoid=True)
        assert session.paranoid_checks == before + 1

    def test_explicit_session_none_disables(self, small_seeds):
        session = CompileSession()
        warm = Compiler(*GCC_SIM, session=session)
        warm.compile(small_seeds[3], session=None)
        assert session.hits == 0 and session.misses == 0

    def test_stats_keys(self):
        stats = CompileSession().stats()
        for key in (
            "middle_session_hits",
            "middle_session_misses",
            "middle_session_evictions",
            "middle_session_hit_rate",
        ):
            assert key in stats

    def test_record_eviction(self, small_seeds):
        session = CompileSession(maxsize=2)
        warm = Compiler(*GCC_SIM, session=session)
        for text in small_seeds[:4]:
            warm.compile(text)
        assert session.evictions > 0
        assert len(session) <= 2


class TestCompileBatch:
    def test_batch_matches_sequential_compiles(self, small_seeds):
        parent = small_seeds[4]
        mutants = [_mutate_body(parent), parent.replace("int", "long", 1)]
        requests = [(m, (parent, ((0, 0, ""),))) for m in mutants]
        session = CompileSession()
        batched = Compiler(*GCC_SIM, session=session).compile_batch(requests)
        cold = Compiler(*GCC_SIM)
        assert len(batched) == len(mutants)
        for result, mutant in zip(batched, mutants):
            assert_results_equal(result, cold.compile(mutant))

    def test_batch_materializes_parent_once(self, small_seeds):
        parent = small_seeds[5]
        requests = [
            (_mutate_body(parent), (parent, ((0, 0, ""),))),
            (parent.replace("int", "long", 1), (parent, ((0, 0, ""),))),
        ]
        session = CompileSession()
        Compiler(*GCC_SIM, session=session).compile_batch(requests)
        assert session.materializations == 1

    def test_batch_until_early_exit_is_lazy(self, small_seeds):
        parent = small_seeds[6]
        consumed = []

        def requests():
            for i, text in enumerate(
                (_mutate_body(parent), parent.replace("int", "long", 1))
            ):
                consumed.append(i)
                yield text, (parent, ((0, 0, ""),))

        session = CompileSession()
        results = Compiler(*GCC_SIM, session=session).compile_batch(
            requests(), until=lambda result: True
        )
        assert len(results) == 1
        assert consumed == [0]  # the second request was never generated


class TestSessionFuzzing:
    def _fuzzer(self, session, seeds, registry, seed=7):
        return MuCFuzz(
            Compiler(*GCC_SIM),
            random.Random(seed),
            seeds,
            registry.supervised(),
            session=session,
            fuse_passes=True,
            batch_compile=True,
        )

    @staticmethod
    def _comparable(result):
        payload = result.to_json()
        # Pipeline-plumbing counters legitimately differ between arms and
        # between warm/cold session runs (batching materializes parents →
        # different cache-hit counts; the session supersedes the journal
        # middle end → zero middle_incremental hits; session/fused counters
        # accumulate across runs sharing one session).  Everything
        # *behavioral* — coverage trend, crashes, pool, attempts, RNG-driven
        # counters — must be bit-identical.
        payload["stats"] = {
            k: v
            for k, v in payload["stats"].items()
            if not k.startswith(("middle_session_", "middle_incremental_", "cache_"))
            and k not in ("fused_pass_runs", "decl_digest_memo_hits")
        }
        return payload

    def test_session_campaign_matches_sessionless(self, registry, small_seeds):
        seeds = small_seeds[:8]
        with_session = run_campaign(
            self._fuzzer(CompileSession(), seeds, registry), steps=25
        )
        without = run_campaign(
            MuCFuzz(
                Compiler(*GCC_SIM), random.Random(7), seeds,
                registry.supervised(),
            ),
            steps=25,
        )
        assert self._comparable(with_session) == self._comparable(without)
        assert with_session.stats["middle_session_hits"] > 0

    def test_same_campaign_twice_through_one_session(self, registry, small_seeds):
        seeds = small_seeds[:8]
        session = CompileSession()
        first = run_campaign(self._fuzzer(session, seeds, registry), steps=25)
        second = run_campaign(self._fuzzer(session, seeds, registry), steps=25)
        assert self._comparable(first) == self._comparable(second)
        # The warm rerun replayed entire results from the session memo.
        assert second.stats["middle_session_result_hits"] > 0

    def test_paranoid_session_fuzzing(self, registry, small_seeds):
        fuzzer = MuCFuzz(
            Compiler(*GCC_SIM),
            random.Random(11),
            small_seeds[:8],
            registry.supervised(),
            session=True,
            fuse_passes=True,
            batch_compile=True,
            paranoid=True,
        )
        for _ in range(15):
            fuzzer.step()  # any divergence raises IncrementalDivergence
        assert fuzzer.session.paranoid_checks > 0

    def test_campaign_cell_specs_carry_session_knobs(self, registry, small_seeds):
        from repro.fuzzing.campaign import Campaign

        campaign = Campaign(
            compilers=[Compiler(*GCC_SIM)],
            seeds=small_seeds[:6],
            registry=registry,
            steps=10,
            session=True,
            fuse_passes=True,
            batch_compile=True,
        )
        spec = campaign.cell_specs(("uCFuzz.s",))[0]
        assert spec.session and spec.fuse_passes and spec.batch_compile

    def test_session_serial_equals_parallel(self, registry, small_seeds):
        from repro.fuzzing.campaign import Campaign

        campaign = Campaign(
            compilers=[Compiler(*GCC_SIM)],
            seeds=small_seeds[:6],
            registry=None or global_registry,
            steps=12,
            session=True,
            fuse_passes=True,
            batch_compile=True,
        )
        serial = campaign.run(("uCFuzz.s", "uCFuzz.u"), parallelism=1)
        parallel = campaign.run(("uCFuzz.s", "uCFuzz.u"), parallelism=2)
        assert [r.to_json() for r in serial] == [r.to_json() for r in parallel]
