"""Analysis package: Venn computations, summary stats, bug reports."""

import pytest

from repro.analysis.reports import BugReport, BugTracker
from repro.analysis.stats import format_table, summarize
from repro.analysis.venn import (
    exclusive_counts, exclusive_to_group, union_size, venn_counts,
)


class TestVenn:
    SETS = {
        "A": {1, 2, 3, 4},
        "B": {3, 4, 5},
        "C": {9},
    }

    def test_region_counts(self):
        regions = venn_counts(self.SETS)
        assert regions[frozenset({"A"})] == 2  # {1, 2}
        assert regions[frozenset({"A", "B"})] == 2  # {3, 4}
        assert regions[frozenset({"C"})] == 1
        assert frozenset({"B", "C"}) not in regions

    def test_exclusive_counts(self):
        assert exclusive_counts(self.SETS) == {"A": 2, "B": 1, "C": 1}

    def test_union(self):
        assert union_size(self.SETS) == 6

    def test_group_exclusivity(self):
        assert exclusive_to_group(self.SETS, ["A", "B"]) == 5

    def test_region_counts_sum_to_union(self):
        regions = venn_counts(self.SETS)
        assert sum(regions.values()) == union_size(self.SETS)


class TestStats:
    def test_summarize(self):
        s = summarize([4, 1, 3, 2])
        assert s == {"min": 1.0, "max": 4.0, "median": 2.5, "mean": 2.5}

    def test_summarize_empty(self):
        assert summarize([])["mean"] == 0.0

    def test_format_table(self):
        text = format_table([("a", 1), ("bb", 22)], ("name", "n"))
        assert "name" in text and "bb" in text


class TestBugTracker:
    def _bug(self, i, compiler="gcc-sim-14", module="optimization", kind="assert"):
        return BugReport(f"bug-{i}", compiler, module, kind, f"desc {i}")

    def test_deduplication(self):
        tracker = BugTracker()
        assert tracker.report(self._bug(1))
        assert not tracker.report(self._bug(1))
        assert len(tracker.reports) == 1

    def test_table6_structure(self):
        tracker = BugTracker()
        for i in range(10):
            tracker.report(self._bug(i))
            tracker.report(self._bug(i, compiler="clang-sim-18", module="front-end"))
        table = tracker.table6()
        assert table["GCC"]["Reported"] == 10
        assert table["Clang"]["Front-End"] == 10
        assert table["Total"]["Reported"] == 20

    def test_triage_proportions_are_plausible(self):
        tracker = BugTracker()
        for i in range(200):
            tracker.report(self._bug(i))
        table = tracker.table6()
        confirmed = table["Total"]["Confirmed"]
        assert confirmed / 200 > 0.9  # paper: 129/131
        assert 0.1 < table["Total"]["Fixed"] / 200 < 0.45
        assert table["Total"]["Duplicate"] / 200 < 0.25

    def test_triage_is_deterministic(self):
        a = self._bug(7)
        b = self._bug(7)
        assert a.confirmed == b.confirmed and a.fixed == b.fixed

    def test_render_contains_rows(self):
        tracker = BugTracker()
        tracker.report(self._bug(1, kind="hang"))
        text = tracker.render()
        assert "Reported" in text and "Hang" in text
