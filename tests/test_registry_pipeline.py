"""Registry semantics, supervised pipeline, and interpreter library edges."""

import random

import pytest

import repro.mutators  # noqa: F401
from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.compiler.coverage import CoverageMap
from repro.compiler.irgen import IRGen
from repro.compiler.interp import execute
from repro.metamut import MetaMut
from repro.muast import Mutator, ASTVisitor
from repro.muast.registry import (
    CATEGORIES, MutatorRegistry, MutatorInfo, global_registry,
)


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MutatorRegistry()

        class Dummy(Mutator, ASTVisitor):
            def mutate(self):
                return False

        info = MutatorInfo("X", "d" * 30, Dummy, "Expression", "supervised")
        registry.register(info)
        with pytest.raises(ValueError):
            registry.register(info)

    def test_unknown_category_rejected(self):
        registry = MutatorRegistry()

        class Dummy(Mutator, ASTVisitor):
            def mutate(self):
                return False

        with pytest.raises(ValueError):
            registry.register(
                MutatorInfo("Y", "d" * 30, Dummy, "Nope", "supervised")
            )

    def test_create_sets_name_and_description(self):
        mutator = global_registry.create("DuplicateBranch", random.Random(0))
        assert mutator.name == "DuplicateBranch"
        assert "IfStmt" in mutator.description

    def test_category_queries_partition_registry(self):
        total = sum(
            len(global_registry.by_category(c)) for c in CATEGORIES
        )
        assert total == len(global_registry) == 118

    def test_origin_queries_partition_registry(self):
        s = {i.name for i in global_registry.supervised()}
        u = {i.name for i in global_registry.unsupervised()}
        assert not (s & u)
        assert len(s | u) == 118


class TestSupervisedPipeline:
    def test_supervised_run_produces_target_count(self):
        campaign = MetaMut().run_supervised(count=8, seed=5)
        produced = [
            r
            for r in campaign.records
            if r.status == "valid"
            and r.invention is not None
            and r.invention.registry_name is not None
        ]
        assert len(produced) >= 8
        # Human supervision leaves no invalid records behind.
        assert all(r.status != "invalid" for r in campaign.records)

    def test_supervised_costs_ledgered(self):
        campaign = MetaMut().run_supervised(count=5, seed=6)
        assert len(campaign.ledger.records) >= 5


def run_c(text, fuel=200_000):
    unit = parse(text)
    sema = Sema()
    assert not [d for d in sema.analyze(unit) if d.severity == "error"]
    return execute(IRGen(sema, CoverageMap()).lower(unit), fuel=fuel)


class TestInterpreterLibrary:
    def test_printf_formats(self):
        result = run_c(
            'int main(void){ printf("%d %u %x %c %s|", -3, 7, 255, 65, "ok");'
            ' printf("%f", 1.5); return 0; }'
        )
        assert result.output.startswith("-3 7 ff A ok|1.5")

    def test_snprintf_truncates(self):
        result = run_c(
            "char b[8]; int main(void){ snprintf(b, 4, \"%s\", \"abcdef\");"
            ' printf("%s", b); return 0; }'
        )
        assert result.output == "abc"

    def test_strcpy_strcmp(self):
        result = run_c(
            "char a[8]; int main(void){ strcpy(a, \"zz\");"
            " return strcmp(a, \"zz\") == 0 ? 4 : 9; }"
        )
        assert result.return_code == 4

    def test_rand_is_seeded_deterministic(self):
        program = (
            "int main(void){ srand(7); int a = rand(); srand(7);"
            " return a == rand(); }"
        )
        assert run_c(program).return_code == 1

    def test_calloc_zeroed(self):
        result = run_c(
            "int main(void){ int *p = calloc(4, 4); return p[3]; }"
        )
        assert result.return_code == 0

    def test_assert_success_and_failure(self):
        assert run_c("int main(void){ assert(1); return 2; }").return_code == 2
        assert run_c("int main(void){ assert(0); return 2; }").status == "abort"

    def test_recursion_overflow_is_a_trap(self):
        result = run_c(
            "int f(int n) { return f(n + 1); } int main(void){ return f(0); }",
            fuel=10_000_000,
        )
        assert result.status in ("trap", "timeout")


class TestSemaEdges:
    def _errors(self, text):
        return [
            d.message
            for d in Sema().analyze(parse(text))
            if d.severity == "error"
        ]

    def test_enum_constant_is_constant_expression(self):
        assert not self._errors(
            "enum e { K = 3 }; void f(int x) { switch (x) { case K: ; } }"
        )

    def test_tentative_global_redefinition_allowed(self):
        assert not self._errors("int g; int g;")

    def test_shadowing_in_nested_blocks(self):
        assert not self._errors(
            "void f(void) { int x = 1; { int x = 2; x++; } x++; }"
        )

    def test_function_and_variable_name_collision(self):
        assert self._errors("int f(void) { return 0; } int f;")

    def test_conflicting_prototypes(self):
        assert self._errors("int f(void); double f(void);")

    def test_duplicate_struct_member(self):
        assert self._errors("struct s { int a; int a; };")

    def test_union_member_access(self):
        assert not self._errors(
            "union u { int i; double d; };"
            "int f(void) { union u v; v.i = 3; return v.i; }"
        )
