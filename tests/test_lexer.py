"""Lexer unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cast.lexer import KEYWORDS, Lexer, LexError, TokenKind, tokenize
from repro.cast.source import SourceFile


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("foo _bar x9") == [TokenKind.IDENT] * 3

    def test_keywords_are_tagged(self):
        assert kinds("int return while") == [TokenKind.KEYWORD] * 3

    def test_all_keywords_lex_as_keywords(self):
        for kw in sorted(KEYWORDS):
            toks = tokenize(kw)
            assert toks[0].kind is TokenKind.KEYWORD, kw

    def test_decimal_integer(self):
        assert kinds("42") == [TokenKind.INT_LITERAL]

    def test_hex_integer(self):
        assert texts("0x1F 0XAB") == ["0x1F", "0XAB"]

    def test_integer_suffixes(self):
        assert texts("1u 2UL 3ll 4ULL") == ["1u", "2UL", "3ll", "4ULL"]

    def test_float_forms(self):
        toks = tokenize("1.5 .5 2e10 3.0f 1E-3")
        assert all(t.kind is TokenKind.FLOAT_LITERAL for t in toks[:-1])

    def test_float_vs_member_access(self):
        # `a.b` must not lex the dot into a float.
        assert texts("a.b") == ["a", ".", "b"]

    def test_char_literal(self):
        assert texts(r"'a' '\n' '\0' '\x41'") == ["'a'", r"'\n'", r"'\0'", r"'\x41'"]

    def test_string_literal(self):
        assert kinds('"hello world"') == [TokenKind.STRING_LITERAL]

    def test_string_with_escapes(self):
        assert texts(r'"a\"b"') == [r'"a\"b"']

    def test_maximal_munch_operators(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a>>b") == ["a", ">>", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a+++b") == ["a", "++", "+", "b"]

    def test_ellipsis(self):
        assert texts("(...)") == ["(", "...", ")"]


class TestTrivia:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_preprocessor_line_skipped(self):
        assert texts("#include <stdio.h>\nint x;") == ["int", "x", ";"]

    def test_preprocessor_continuation(self):
        assert texts("#define A \\\n 1\nint x;") == ["int", "x", ";"]

    def test_hash_mid_line_is_a_token(self):
        # A '#' that is not at line start is an ordinary punct token.
        assert texts("a # b") == ["a", "#", "b"]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_stray_character(self):
        with pytest.raises(LexError):
            tokenize("int $x;")

    def test_best_effort_returns_prefix(self):
        lexer = Lexer(SourceFile('int x; "broken'))
        toks, err = lexer.tokens_best_effort()
        assert err is not None
        assert [t.text for t in toks] == ["int", "x", ";"]

    def test_best_effort_success_has_no_error(self):
        lexer = Lexer(SourceFile("int x;"))
        toks, err = lexer.tokens_best_effort()
        assert err is None
        assert toks[-1].kind is TokenKind.EOF


class TestRanges:
    def test_token_ranges_cover_text(self):
        text = "int foo = 42;"
        for tok in tokenize(text)[:-1]:
            assert text[tok.begin.offset : tok.end.offset] == tok.text


@given(
    st.lists(
        st.sampled_from(
            ["int", "x", "42", "0x1F", "1.5", "+", "-", "*", "(", ")",
             "{", "}", ";", "==", "<<=", '"s"', "'c'", "while", "->"]
        ),
        min_size=0,
        max_size=40,
    )
)
def test_roundtrip_token_texts(parts):
    """Lexing space-joined tokens yields exactly those tokens back."""
    text = " ".join(parts)
    toks = tokenize(text)
    assert [t.text for t in toks[:-1]] == parts


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=120))
def test_lexer_never_crashes_on_printable_garbage(text):
    """Garbage either tokenizes or raises LexError — nothing else."""
    try:
        toks = tokenize(text)
    except LexError:
        return
    assert toks[-1].kind is TokenKind.EOF
