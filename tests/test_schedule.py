"""Evolutionary mutator scheduling: the bandit, retirement, RNG-neutrality,
and the scheduler-off byte-identity contract."""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from repro.fuzzing.campaign import Campaign
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.schedule import (
    MUTATOR_STAT_KEYS,
    MutatorScheduler,
    zero_mutator_stats,
)
from repro.muast.mutator import Mutator, MutatorCrash
from repro.muast.registry import MutatorInfo
from repro.resilience import MutatorQuarantine
from repro.telemetry import merge_stats

# ---------------------------------------------------------------------------
# Scheduler-off byte-identity: the pre-scheduler seed state, pinned.
#
# Captured on the commit before the scheduler landed (uCFuzz.s × GCC sim,
# 40 generated seeds, 200 steps, default Campaign knobs).  The scheduler
# PR must leave this cell untouched: same coverage, same crashes, same
# stats — byte-for-byte on the canonical JSON form.

_GOLDEN_SHA1 = "65586c8b30fcc239c02a2aa133b2d4494e008748"
_GOLDEN_COVERAGE = 1266
_GOLDEN_CRASHES = 3


def _campaign(gcc, small_seeds, registry, **kwargs) -> Campaign:
    return Campaign(
        compilers=[gcc], seeds=small_seeds, registry=registry, **kwargs
    )


def test_scheduler_off_is_byte_identical_to_seed_state(
    gcc, small_seeds, registry
):
    campaign = _campaign(gcc, small_seeds, registry, steps=200)
    result = campaign.run(("uCFuzz.s",))[0]
    blob = json.dumps(result.to_json(), sort_keys=True)
    assert result.final_coverage == _GOLDEN_COVERAGE
    assert len(result.crashes) == _GOLDEN_CRASHES
    assert hashlib.sha1(blob.encode()).hexdigest() == _GOLDEN_SHA1
    # No scheduler, no quarantine: none of the new keys leak into stats.
    assert "mutator_stats" not in result.stats
    assert "retired_mutators" not in result.stats


def test_tracking_stats_never_changes_fuzzing_results(gcc, small_seeds, registry):
    """mutator_stats=True records yields but draws no RNG and keeps results."""

    def run(**kwargs):
        fuzzer = MuCFuzz(
            gcc,
            random.Random(77),
            small_seeds,
            registry.supervised(),
            name="uCFuzz.s",
            **kwargs,
        )
        for _ in range(25):
            fuzzer.step()
        return fuzzer

    plain = run()
    tracked = run(mutator_stats=True)
    assert len(plain.coverage) == len(tracked.coverage)
    assert [e.text for e in plain.pool.entries] == [
        e.text for e in tracked.pool.entries
    ]
    assert "mutator_stats" not in plain.stats
    table = tracked.stats["mutator_stats"]
    assert sum(rec["attempts"] for rec in table.values()) == tracked.stats[
        "attempts"
    ]


# ---------------------------------------------------------------------------
# The bandit itself


def _info(name: str) -> MutatorInfo:
    return MutatorInfo(
        name=name,
        description=f"{name} test arm",
        cls=Mutator,
        category="Statement",
        origin="unsupervised",
    )


def test_same_seed_schedules_identically():
    names = [f"m{i}" for i in range(12)]
    stats = zero_mutator_stats(names)
    stats["m3"].update(attempts=10, changed=9, compiled=8, coverage_gain=30)
    stats["m7"].update(attempts=10, changed=1)
    a = MutatorScheduler(42)
    b = MutatorScheduler(42)
    a.attach(stats, None)
    b.attach(stats, None)
    for _ in range(5):
        assert a.order(list(names)) == b.order(list(names))
    c = MutatorScheduler(43)
    d = MutatorScheduler(42)
    c.attach(stats, None)
    d.attach(stats, None)
    assert any(d.order(list(names)) != c.order(list(names)) for _ in range(5))


def test_fitness_proportional_ordering_prefers_high_yield_arms():
    names = [f"m{i}" for i in range(8)]
    stats = zero_mutator_stats(names)
    for name in names:
        stats[name].update(attempts=50, changed=25)
    stats["m2"].update(coverage_gain=400, compiled=50)  # the star arm
    scheduler = MutatorScheduler(7)
    scheduler.attach(stats, None)
    front = sum(
        scheduler.order(list(names)).index("m2") for _ in range(200)
    ) / 200
    # Uniform ordering would average position ~3.5; the star sits well ahead.
    assert front < 2.0


def test_untried_arms_keep_exploration_weight():
    scheduler = MutatorScheduler(3)
    assert scheduler.fitness(None) is None
    assert scheduler.weight(None) == scheduler.prior
    rec = dict.fromkeys(MUTATOR_STAT_KEYS, 0)
    rec["attempts"] = 100
    assert scheduler.weight(rec) >= scheduler.floor


def test_scheduler_seed_derivation_is_salted():
    # The scheduler's stream must be disjoint from random.Random(cell_seed).
    cell_seed = 2024
    scheduler = MutatorScheduler.from_cell_seed(cell_seed)
    assert scheduler.seed != cell_seed
    assert (
        MutatorScheduler.from_cell_seed(cell_seed).seed == scheduler.seed
    )


# ---------------------------------------------------------------------------
# RNG-neutrality: excluded arms draw no entropy


def test_retired_arms_draw_no_scheduler_entropy():
    names = ["a", "dead", "b", "c", "d"]
    live = [n for n in names if n != "dead"]
    stats = zero_mutator_stats(names)
    with_retired = MutatorScheduler(99, retire_after=None)
    with_retired.attach(stats, None)
    with_retired.retired.add("dead")
    live_only = MutatorScheduler(99, retire_after=None)
    live_only.attach(stats, None)
    for _ in range(10):
        assert with_retired.order(list(names)) == live_only.order(list(live))


def test_quarantined_arms_draw_no_scheduler_entropy():
    names = ["a", "q", "b", "c"]
    stats = zero_mutator_stats(names)
    quarantine = MutatorQuarantine(threshold=1)
    quarantine.record_failure("q", "MutatorCrash")
    assert not quarantine.allows("q")
    gated = MutatorScheduler(5)
    gated.attach(stats, quarantine)
    plain = MutatorScheduler(5)
    plain.attach(stats, None)
    for _ in range(10):
        assert gated.order(list(names)) == plain.order(["a", "b", "c"])


# ---------------------------------------------------------------------------
# Population management: retirement + replacement invention hook


def test_chronic_loser_is_retired_with_replacement_request():
    names = ["winner", "loser"]
    stats = zero_mutator_stats(names)
    stats["winner"].update(attempts=20, changed=18, compiled=15, coverage_gain=40)
    stats["loser"].update(attempts=20)  # never changed anything
    flagged = []
    quarantine = MutatorQuarantine(
        threshold=None, on_retire=lambda name, reason: flagged.append((name, reason))
    )
    scheduler = MutatorScheduler(11, retire_after=10)
    scheduler.attach(stats, quarantine)
    infos = {name: _info(name) for name in names}
    order = scheduler.order([infos["winner"], infos["loser"]])
    assert [i.name for i in order] == ["winner"]
    assert scheduler.retired == {"loser"}
    assert quarantine.retired == {"loser"}
    assert not quarantine.allows("loser")
    assert flagged == [("loser", "low-fitness")]
    (request,) = scheduler.drain_replacement_requests()
    assert request["name"] == "loser"
    assert request["category"] == "Statement"
    assert request["attempts"] == 20
    assert request["fitness"] == 0.0
    assert scheduler.drain_replacement_requests() == []  # drained once
    stats_snapshot = quarantine.stats()
    assert stats_snapshot["retired_mutators"] == ["loser"]
    assert stats_snapshot["retirements"] == 1


def test_retirement_respects_threshold_none_breaker():
    # threshold=None: the crash breaker never trips, retirement still works.
    quarantine = MutatorQuarantine(threshold=None)
    for _ in range(50):
        assert not quarantine.record_failure("m", "MutatorCrash")
    assert quarantine.allows("m")
    assert quarantine.retire("m", reason="low-fitness")
    assert not quarantine.retire("m")  # idempotent
    assert not quarantine.allows("m")
    assert not quarantine.record_failure("m")  # retired arms stay silent


def test_healthy_arms_are_never_retired():
    names = ["a", "b"]
    stats = zero_mutator_stats(names)
    stats["a"].update(attempts=500, changed=400, compiled=350, coverage_gain=100)
    stats["b"].update(attempts=3)  # not yet fully sampled
    scheduler = MutatorScheduler(1, retire_after=10)
    scheduler.attach(stats, None)
    for _ in range(20):
        scheduler.order(list(names))
    assert scheduler.retired == set()


def test_scheduler_requires_mutator_stats(gcc, small_seeds, registry):
    with pytest.raises(ValueError):
        MuCFuzz(
            gcc,
            random.Random(1),
            small_seeds,
            registry.supervised(),
            scheduler=MutatorScheduler(1),
            mutator_stats=False,
        )


# ---------------------------------------------------------------------------
# End-to-end: scheduled cells are deterministic and parity holds


def test_scheduled_runs_are_deterministic(gcc, small_seeds, registry):
    def run():
        fuzzer = MuCFuzz(
            gcc,
            random.Random(7),
            small_seeds,
            registry.supervised(),
            name="uCFuzz.s",
            scheduler=MutatorScheduler.from_cell_seed(7),
        )
        for _ in range(30):
            fuzzer.step()
        return fuzzer

    a, b = run(), run()
    assert len(a.coverage) == len(b.coverage)
    assert a.stats_snapshot() == b.stats_snapshot()
    assert [e.text for e in a.pool.entries] == [e.text for e in b.pool.entries]


def test_scheduled_serial_parallel_parity(gcc, small_seeds, registry):
    campaign = _campaign(
        gcc, small_seeds, registry, steps=10, schedule=True
    )
    serial = campaign.run(("uCFuzz.s", "uCFuzz.u"), parallelism=1)
    fanned = campaign.run(("uCFuzz.s", "uCFuzz.u"), parallelism=2)
    assert [r.to_json() for r in serial] == [r.to_json() for r in fanned]
    for result in serial:
        table = result.stats["mutator_stats"]
        assert all(set(rec) == set(MUTATOR_STAT_KEYS) for rec in table.values())


def test_scheduled_fabric_parity(gcc, small_seeds, registry):
    campaign = _campaign(
        gcc, small_seeds, registry, steps=8, schedule=True
    )
    serial = campaign.run(("uCFuzz.s",), parallelism=1)
    outcomes = campaign.run_fabric(
        ("uCFuzz.s",),
        fleet_size=2,
        heartbeat_interval=0.05,
        heartbeat_timeout=1.5,
    )
    assert [o.ok for o in outcomes] == [True]
    assert serial[0].to_json() == outcomes[0].result.to_json()


def test_cell_key_distinguishes_scheduled_cells(gcc, small_seeds, registry):
    from repro.fuzzing.parallel import cell_key

    uniform = _campaign(gcc, small_seeds, registry, steps=5)
    scheduled = _campaign(gcc, small_seeds, registry, steps=5, schedule=True)
    tracked = _campaign(
        gcc, small_seeds, registry, steps=5, mutator_stats=True
    )
    keys = {
        cell_key(campaign.cell_specs(("uCFuzz.s",))[0])
        for campaign in (uniform, scheduled, tracked)
    }
    assert len(keys) == 3  # checkpoints of different modes never collide


def test_scheduled_campaign_stats_have_uniform_mutator_schema(
    gcc, clang, small_seeds, registry
):
    campaign = Campaign(
        compilers=[gcc, clang],
        seeds=small_seeds,
        registry=registry,
        steps=6,
        schedule=True,
    )
    results = campaign.run(("uCFuzz.s",))
    expected = {m.name for m in registry.supervised()}
    snapshots = []
    for result in results:
        table = result.stats["mutator_stats"]
        assert set(table) == expected
        assert all(set(rec) == set(MUTATOR_STAT_KEYS) for rec in table.values())
        snapshots.append(result.stats)
    merged = merge_stats(snapshots)
    table = merged["mutator_stats"]
    assert set(table) == expected
    # Per-arm counters sum across cells; no derived-rate key leaks into
    # the nested records even though they carry an "attempts" key.
    for rec in table.values():
        assert set(rec) == set(MUTATOR_STAT_KEYS)
    assert sum(r["attempts"] for r in table.values()) == sum(
        sum(r["attempts"] for r in s["mutator_stats"].values())
        for s in snapshots
    )


# ---------------------------------------------------------------------------
# Satellite: quarantine_skips is zero-filled up front


def test_quarantine_skips_zero_filled(gcc, small_seeds, registry):
    fuzzer = MuCFuzz(
        gcc,
        random.Random(5),
        small_seeds,
        registry.supervised(),
        quarantine=MutatorQuarantine(threshold=3),
    )
    assert fuzzer.stats["quarantine_skips"] == 0  # before any step
    fuzzer.step()
    assert "quarantine_skips" in fuzzer.stats_snapshot()


# ---------------------------------------------------------------------------
# Satellite: no-op applications must not reset the breaker streak


class _CrashThenNoop(Mutator):
    """Alternates crash / clean-but-no-op across applications."""

    calls = 0

    def mutate(self) -> bool:
        cls = type(self)
        cls.calls += 1
        if cls.calls % 2 == 1:
            raise MutatorCrash("synthetic crash")
        return False  # applied cleanly, changed nothing


def test_noop_application_does_not_reset_quarantine_streak(gcc, small_seeds):
    _CrashThenNoop.calls = 0
    info = MutatorInfo(
        name="CrashThenNoop",
        description="Crashes on odd draws, no-ops on even draws.",
        cls=_CrashThenNoop,
        category="Statement",
        origin="unsupervised",
    )
    quarantine = MutatorQuarantine(threshold=2)
    fuzzer = MuCFuzz(
        gcc,
        random.Random(11),
        small_seeds,
        [info],
        name="uCFuzz.q",
        quarantine=quarantine,
    )
    # Pre-fix, the no-op application between two crashes reset the
    # consecutive-failure count and the breaker could never trip.
    for _ in range(6):
        fuzzer.step()
        if not quarantine.allows("CrashThenNoop"):
            break
    assert not quarantine.allows("CrashThenNoop")
    assert quarantine.stats()["quarantined_mutators"] == ["CrashThenNoop"]
