"""Optimizer passes: unit behaviour + semantics preservation (differential)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.compiler.coverage import CoverageMap
from repro.compiler.interp import execute
from repro.compiler.irgen import IRGen
from repro.compiler.ir import BinOp, Call, ImmInt, Jmp, Load, Store
from repro.compiler.passes import (
    OptContext, const_fold, cse, dce, forward_store,
    inline_small_functions, run_pipeline, simplify_cfg, strlen_opt,
)
from repro.fuzzing.progen import GenPolicy, ProgramGenerator


def lower(text):
    unit = parse(text)
    sema = Sema()
    assert not [d for d in sema.analyze(unit) if d.severity == "error"]
    return IRGen(sema, CoverageMap()).lower(unit)


def ctx(opt=2):
    return OptContext(cov=CoverageMap(), opt_level=opt)


class TestConstFold:
    def test_folds_arithmetic(self):
        module = lower("int main(void) { return 2 + 3 * 4; }")
        fn = module.functions["main"]
        const_fold(fn, ctx())
        binops = [i for i in fn.instructions() if isinstance(i, BinOp)]
        assert not binops  # everything folded

    def test_folds_branches_on_constants(self):
        module = lower("int main(void) { if (0) return 1; return 2; }")
        fn = module.functions["main"]
        context = ctx()
        const_fold(fn, context)
        assert context.stats.get("branches_folded") >= 1

    def test_identity_simplification(self):
        module = lower("int main(void) { int x = 5; return x + 0; }")
        fn = module.functions["main"]
        context = ctx()
        const_fold(fn, context)
        assert context.stats.get("identities") >= 1

    def test_division_by_zero_left_alone(self):
        module = lower("int main(void) { int z = 0; return 1 / z; }")
        fn = module.functions["main"]
        run_pipeline(module, ctx())
        assert execute(module).status == "trap"


class TestSimplifyCfg:
    def test_unreachable_blocks_removed(self):
        module = lower(
            "int main(void) { if (1) return 1; return 2; }"
        )
        fn = module.functions["main"]
        context = ctx()
        const_fold(fn, context)
        before = len(fn.blocks)
        simplify_cfg(fn, context)
        assert len(fn.blocks) < before

    def test_straightline_blocks_merged(self):
        module = lower("int main(void) { int x = 1; { x++; } return x; }")
        fn = module.functions["main"]
        simplify_cfg(fn, ctx())
        assert execute(module).return_code == 2


class TestDce:
    def test_dead_arithmetic_removed(self):
        # A pure computation whose result is never used (constructed
        # directly: stores pin values, so source-level junk stays live).
        from repro.compiler.ir import IRType, Ret, Temp, UnOp

        module = lower("int main(void) { return 1; }")
        fn = module.functions["main"]
        fn.blocks[0].instrs.insert(
            0, UnOp(Temp(900), "neg", ImmInt(5), IRType.I32)
        )
        context = ctx()
        dce(fn, context)
        assert context.stats.get("dce_removed", 0) >= 1
        assert execute(module).return_code == 1

    def test_calls_never_removed(self):
        module = lower("int main(void) { printf(\"x\"); return 0; }")
        fn = module.functions["main"]
        dce(fn, ctx())
        calls = [i for i in fn.instructions() if isinstance(i, Call)]
        assert calls


class TestCse:
    def test_duplicate_computation_shared(self):
        module = lower(
            "int main(void) { int a = 6; int b = a * 7; int c = a * 7; "
            "return b + c; }"
        )
        fn = module.functions["main"]
        context = ctx()
        forward_store(fn, context)
        cse(fn, context)
        assert context.stats.get("cse_removed", 0) >= 1
        assert execute(module).return_code == 84


class TestForwardStore:
    def test_load_after_store_forwarded(self):
        module = lower("int main(void) { int x = 9; return x; }")
        fn = module.functions["main"]
        context = ctx()
        forward_store(fn, context)
        assert context.stats.get("stores_forwarded", 0) >= 1

    def test_volatile_never_forwarded(self):
        module = lower(
            "int main(void) { volatile int v = 1; return v; }"
        )
        fn = module.functions["main"]
        context = ctx()
        forward_store(fn, context)
        loads = [
            i for i in fn.instructions() if isinstance(i, Load) and i.volatile
        ]
        assert loads  # the volatile load survives

    def test_call_invalidates_known_slots(self):
        module = lower(
            "int g; void touch(void) { g = 1; }\n"
            "int main(void) { int x = 2; touch(); return x; }"
        )
        fn = module.functions["main"]
        forward_store(fn, ctx())
        assert execute(module).return_code == 2


class TestInline:
    def test_small_leaf_inlined(self):
        module = lower(
            "int three(void) { return 3; }\n"
            "int main(void) { return three() + three(); }"
        )
        context = ctx()
        run_pipeline(module, context)
        assert context.stats.get("inlined", 0) >= 1
        assert execute(module).return_code == 6

    def test_noinline_attribute_respected(self):
        module = lower(
            "__attribute__((noinline)) int three(void) { return 3; }\n"
            "int main(void) { return three(); }"
        )
        context = ctx()
        inline_small_functions(module, context)
        assert context.stats.get("inlined", 0) == 0


class TestStrlenOpt:
    def test_sprintf_percent_s_rewritten(self):
        module = lower(
            "static char buf[16];\n"
            "int main(void) { return sprintf(buf, \"%s\", \"abcd\"); }"
        )
        context = ctx()
        changed = strlen_opt(module, context)
        assert changed and context.stats.get("strlen_opts") == 1
        assert execute(module).return_code == 4

    def test_other_formats_untouched(self):
        module = lower(
            "static char buf[16];\n"
            "int main(void) { return sprintf(buf, \"%d\", 12); }"
        )
        assert not strlen_opt(module, ctx())


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000), st.sampled_from([1, 2, 3]))
def test_optimizer_preserves_semantics(seed, opt_level):
    """Differential testing: -O0 and -On behave identically on UB-free
    generated programs (the guarantee real compiler fuzzers check)."""
    program = ProgramGenerator(
        random.Random(seed), GenPolicy(max_stmts=6)
    ).generate()
    baseline = lower(program)
    optimized = lower(program)
    run_pipeline(optimized, ctx(opt_level))
    r0 = execute(baseline, fuel=300_000)
    r1 = execute(optimized, fuel=300_000)
    assert r0.observable == r1.observable


def test_pipeline_is_idempotent_on_semantics():
    program = (
        "int g = 7;\n"
        "int twice(int v) { return v * 2; }\n"
        "int main(void) { int i, s = 0; for (i = 0; i < 9; i++) "
        "s += twice(i) + g; printf(\"%d\\n\", s); return s & 127; }"
    )
    module = lower(program)
    expected = execute(lower(program)).observable
    run_pipeline(module, ctx(3))
    run_pipeline(module, ctx(3))
    assert execute(module).observable == expected
