"""Compiler driver, coverage, backend, and the seeded-bug case studies."""

import pytest

from repro.compiler import CLANG_SIM, GCC_SIM, Compiler, CoverageMap
from repro.compiler.bugs import BugRegistry
from repro.compiler.crash import CrashSignature, HELPER_FRAMES, StackFrame


GOOD = """
int g = 2;
int helper(int v) { return v * g; }
int main(void) { printf("%d\\n", helper(4)); return 0; }
"""


class TestDriver:
    def test_good_program_compiles(self, gcc):
        result = gcc.compile(GOOD)
        assert result.ok and not result.crashed
        assert result.asm and ".text main:" in result.asm

    def test_parse_error_is_diagnostic(self, gcc):
        result = gcc.compile("int x = ;")
        assert not result.ok and result.diagnostics
        assert result.features.get("parse_failed") == 1

    def test_sema_error_is_diagnostic(self, gcc):
        result = gcc.compile("int main(void) { return missing; }")
        assert not result.ok
        assert any("undeclared" in d for d in result.diagnostics)

    def test_lex_garbage_is_diagnostic_not_crash_by_default(self, gcc):
        result = gcc.compile("int $$$;")
        assert not result.ok
        assert result.crash is None or result.crash.module == "front-end"

    def test_coverage_nonempty_even_for_garbage(self, gcc):
        result = gcc.compile("int x = = = ;")
        assert len(result.coverage) > 0

    def test_optimization_level_changes_coverage(self, gcc):
        r0 = gcc.compile(GOOD, opt_level=0)
        r2 = gcc.compile(GOOD, opt_level=2)
        assert r2.coverage.edges != r0.coverage.edges

    def test_deterministic(self, gcc):
        a = gcc.compile(GOOD)
        b = gcc.compile(GOOD)
        assert a.coverage.edges == b.coverage.edges
        assert a.asm == b.asm

    def test_module_carried_on_success(self, gcc):
        result = gcc.compile(GOOD)
        from repro.compiler.interp import execute

        assert execute(result.module).output == "8\n"


class TestCoverageMap:
    def test_merge_counts_new(self):
        a = CoverageMap({("s", 1), ("s", 2)})
        b = CoverageMap({("s", 2), ("s", 3)})
        assert a.merge(b) == 1
        assert len(a) == 3

    def test_new_edges(self):
        a = CoverageMap({("s", 1)})
        b = CoverageMap({("s", 1), ("t", 9)})
        assert a.new_edges(b) == {("t", 9)}

    def test_covers(self):
        a = CoverageMap({("s", 1), ("s", 2)})
        assert a.covers(CoverageMap({("s", 1)}))
        assert not CoverageMap({("s", 1)}).covers(a)


class TestCrashSignatures:
    def test_helper_frames_excluded(self):
        from repro.compiler.crash import CompilerCrash

        crash = CompilerCrash(
            "b1", "optimization", "boom",
            [StackFrame("internal_error", 0), StackFrame("f", 1), StackFrame("g", 2)],
        )
        sig = crash.signature()
        assert all(f.function not in HELPER_FRAMES for f in sig.frames)
        assert sig.frames == (StackFrame("f", 1), StackFrame("g", 2))

    def test_signature_equality(self):
        a = CrashSignature((StackFrame("f", 1),))
        b = CrashSignature((StackFrame("f", 1),))
        assert a == b and hash(a) == hash(b)


class TestBugRegistry:
    def test_population_sizes(self):
        gcc_bugs = BugRegistry.for_compiler("gcc-sim")
        clang_bugs = BugRegistry.for_compiler("clang-sim")
        assert len(gcc_bugs.bugs) > 40
        assert len(clang_bugs.bugs) > 60
        # Table 6's module profile: clang back-end rich, gcc back-end thin.
        assert clang_bugs.by_module()["back-end"] > gcc_bugs.by_module()["back-end"]

    def test_consequence_mix(self):
        bugs = (
            BugRegistry.for_compiler("gcc-sim").bugs
            + BugRegistry.for_compiler("clang-sim").bugs
        )
        asserts = sum(1 for b in bugs if b.kind == "assert")
        assert asserts / len(bugs) > 0.7  # Table 6: 85% assertion failures

    def test_seeds_never_trigger(self, compilers, small_seeds):
        for seed in small_seeds[:12]:
            for compiler in compilers:
                for opt in (0, 2, 3):
                    result = compiler.compile(seed, opt_level=opt)
                    assert result.ok, (result.diagnostics, result.crash)


class TestCaseStudyBugs:
    """The five §2/§5 case studies, reproduced via crafted mutants."""

    def test_clang_63762_ret2v_label_mutant(self, clang, gcc):
        # Figure 5: Ret2V applied to GCC test #20001226-1.
        mutant = """
void foo(int x[64], int y[64]) {
  int i;
  for (i = 0; i < 64; i++) { x[i] += y[i] & 3; }
  if (x[0] > y[1]) goto gt;
  if (x[1] < y[0]) goto lt;
  ;
gt:
  ;
lt:
  ;
}
int arrs[64];
int main(void) { foo(arrs, arrs); return 0; }
"""
        result = clang.compile(mutant)
        assert result.crash is not None
        assert result.crash.bug_id == "clang-63762"
        assert result.crash.module == "back-end"
        # GCC's back end does not share the bug.
        assert gcc.compile(mutant).crash is None

    def test_gcc_strlen_verify_range(self, gcc, clang):
        # §5.2: ChangeVarDeclQualifier + CopyExpr on the sprintf test.
        mutant = """
const volatile static char buffer[32];
int test4(void) { return sprintf(buffer, "%s", buffer); }
void main_test(void) {
  memset(buffer, 'A', 32);
  if (test4() != 3) abort();
}
int main(void) { main_test(); return 0; }
"""
        result = gcc.compile(mutant, opt_level=2)
        assert result.crash is not None
        assert result.crash.bug_id == "gcc-strlen-verify-range"
        assert result.crash.module == "optimization"
        # Not at -O0, and not in clang-sim.
        assert gcc.compile(mutant, opt_level=0).crash is None
        assert clang.compile(mutant).crash is None

    def test_gcc_111820_vectorizer_hang(self, gcc):
        # The §5.3 mutant: ChangeParamScope + AggregateMemberToScalar +
        # ReduceArrayDimension; hangs only at -O3 -fno-tree-vrp.
        mutant = """
int r;
int r_0;
void f(void) {
  int n = 0;
  while (--n) {
    r_0 += r;
    r += r; r += r; r += r; r += r; r += r;
  }
}
int main(void) { f(); return 0; }
"""
        hang = gcc.compile(mutant, opt_level=3, flags=("-fno-tree-vrp",))
        assert hang.hang is not None and hang.hang.bug_id == "gcc-111820"
        assert gcc.compile(mutant, opt_level=3).hang is None
        assert gcc.compile(mutant, opt_level=2, flags=("-fno-tree-vrp",)).hang is None

    def test_gcc_111819_imag_fold(self, gcc):
        mutant = """
long long combinedVar_1[4];
int *bar(void) {
  return (int *)&__imag (*(_Complex double *)((char *)combinedVar_1 + 16));
}
int main(void) { return 0; }
"""
        result = gcc.compile(mutant, opt_level=0)
        assert result.crash is not None
        assert result.crash.bug_id == "gcc-111819"
        assert result.crash.module == "ir-gen"

    def test_clang_69213_struct_to_int(self, clang):
        # StructToInt mutant: the program is *invalid*, but the front end
        # crashes before diagnosing it.
        mutant = """
struct s2 { int a; int b; };
void foo(int *ptr) {
  *ptr = (int) { {}, 0 };
}
int main(void) { return 0; }
"""
        result = clang.compile(mutant)
        assert result.crash is not None
        assert result.crash.bug_id == "clang-69213"
        assert result.crash.module == "front-end"
        assert result.crash.kind == "segfault"
