"""Type-system rules and the unparser's fixpoint property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cast import types as ct
from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.cast.unparse import declare, unparse
from repro.fuzzing.progen import GenPolicy, ProgramGenerator
import random


class TestTypePredicates:
    def test_int_is_arithmetic_scalar(self):
        assert ct.INT.is_integer() and ct.INT.is_arithmetic() and ct.INT.is_scalar()

    def test_pointer_is_scalar_not_arithmetic(self):
        assert ct.INT_PTR.is_scalar() and not ct.INT_PTR.is_arithmetic()

    def test_array_decay(self):
        arr = ct.array_of(ct.CHAR, 8)
        assert arr.decayed().is_pointer()
        assert arr.decayed().pointee() == ct.CHAR

    def test_complex_is_arithmetic_scalar(self):
        # _Complex double is an arithmetic (hence scalar) type in C.
        assert ct.COMPLEX_DOUBLE.is_arithmetic()
        assert ct.COMPLEX_DOUBLE.is_complex()
        assert not ct.COMPLEX_DOUBLE.is_integer()

    def test_qualifier_stripping(self):
        qt = ct.QualType(ct.BuiltinType(ct.BuiltinKind.INT), const=True)
        assert qt.const and not qt.unqualified().const


class TestConversions:
    def test_integer_promotion_of_char(self):
        assert ct.integer_promote(ct.CHAR) == ct.INT

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (ct.INT, ct.INT, ct.INT),
            (ct.INT, ct.UINT, ct.UINT),
            (ct.INT, ct.LONG, ct.LONG),
            (ct.INT, ct.DOUBLE, ct.DOUBLE),
            (ct.FLOAT, ct.INT, ct.FLOAT),
            (ct.CHAR, ct.CHAR, ct.INT),
            (ct.COMPLEX_DOUBLE, ct.DOUBLE, ct.COMPLEX_DOUBLE),
        ],
    )
    def test_usual_arithmetic_conversions(self, a, b, expected):
        assert ct.usual_arithmetic_conversions(a, b) == expected

    def test_no_conversion_for_pointers(self):
        assert ct.usual_arithmetic_conversions(ct.INT_PTR, ct.INT) is None


class TestAssignability:
    @pytest.mark.parametrize(
        "lhs,rhs,ok",
        [
            (ct.INT, ct.DOUBLE, True),
            (ct.DOUBLE, ct.INT, True),
            (ct.INT_PTR, ct.INT_PTR, True),
            (ct.VOID_PTR, ct.INT_PTR, True),
            (ct.INT_PTR, ct.VOID_PTR, True),
            (ct.INT_PTR, ct.CHAR_PTR, False),
            (ct.INT_PTR, ct.INT, True),  # int->ptr: warning-level in C
            (ct.INT, ct.array_of(ct.INT, 4), False),
        ],
    )
    def test_assignable(self, lhs, rhs, ok):
        assert ct.assignable(lhs, rhs) is ok

    def test_const_pointee_ignored_like_warning(self):
        src = ct.pointer_to(ct.CHAR.with_const())
        assert ct.assignable(ct.CHAR_PTR, src)


class TestDeclare:
    @pytest.mark.parametrize(
        "qt,name,expected",
        [
            (ct.INT, "x", "int x"),
            (ct.pointer_to(ct.CHAR), "s", "char *s"),
            (ct.array_of(ct.INT, 8), "a", "int a[8]"),
            (ct.array_of(ct.pointer_to(ct.INT), 4), "p", "int *p[4]"),
            (ct.QualType(ct.BuiltinType(ct.BuiltinKind.INT), const=True), "c", "const int c"),
        ],
    )
    def test_declaration_spelling(self, qt, name, expected):
        assert declare(qt, name) == expected

    def test_declared_text_reparses_to_same_type(self):
        for qt in (ct.INT, ct.pointer_to(ct.DOUBLE), ct.array_of(ct.LONG, 3)):
            text = declare(qt, "v") + ";"
            decl = parse(text).decls[0]
            assert decl.type == qt


def _compiles(text):
    return not [d for d in Sema().analyze(parse(text)) if d.severity == "error"]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_unparse_fixpoint_on_generated_programs(seed):
    """unparse ∘ parse stabilizes after one normalization round, and the
    normalized program still compiles."""
    gen = ProgramGenerator(random.Random(seed), GenPolicy(max_stmts=6))
    program = gen.generate()
    once = unparse(parse(program))
    twice = unparse(parse(once))
    assert unparse(parse(twice)) == twice
    assert _compiles(twice)


def test_unparse_fixpoint_on_testgen_snippets():
    from repro.metamut.testgen import all_snippets

    for snippet in all_snippets():
        once = unparse(parse(snippet))
        twice = unparse(parse(once))
        assert unparse(parse(twice)) == twice
        assert _compiles(twice)
