"""The §6 mutation-testing extension."""

import random

import pytest

import repro.mutators  # noqa: F401
from repro.analysis.mutation_testing import MutationScore, MutantResult, mutation_score
from repro.muast.registry import global_registry

PROGRAM = """\
int twice(int v) { return v * 2; }
int main(void) {
  int i, total = 0;
  for (i = 0; i < 6; i++) total += twice(i) + 1;
  printf("%d\\n", total);
  return total & 63;
}
"""


class TestScoreArithmetic:
    def test_score_over_killable_only(self):
        score = MutationScore(
            [
                MutantResult("a", "killed"),
                MutantResult("b", "survived"),
                MutantResult("c", "invalid"),
            ]
        )
        assert score.killed == 1 and score.survived == 1 and score.invalid == 1
        assert score.score == pytest.approx(0.5)

    def test_empty_score_is_zero(self):
        assert MutationScore().score == 0.0


class TestCampaign:
    @pytest.fixture(scope="class")
    def score(self):
        return mutation_score(
            PROGRAM, mutants_per_mutator=1, rng=random.Random(4)
        )

    def test_produces_mutants(self, score):
        assert len(score.results) > 60

    def test_semantic_changers_are_killed(self, score):
        killed = {r.mutator for r in score.results if r.status == "killed"}
        # Literal/operator perturbations must be detectable by the oracle.
        assert killed & {
            "ModifyIntegerLiteral", "ChangeBinaryOperator",
            "ReplaceLiteralWithRandomValue", "ChangeComparisonOperator",
            "DeleteStatement", "ReplaceConditionWithConstant",
        }

    def test_identity_mutators_survive(self, score):
        survived = {r.mutator for r in score.results if r.status == "survived"}
        assert survived & {
            "WrapWithParens", "AddIdentityOperation", "InsertNullStmt",
            "XorWithZero",
        }

    def test_score_is_partial(self, score):
        # The compiler-fuzzing mutator set is full of equivalent mutants,
        # so the score sits well below 100% (the paper's §6 point).
        assert 0.1 < score.score < 0.9

    def test_restricted_mutator_set(self):
        infos = [global_registry.get("ModifyIntegerLiteral")]
        score = mutation_score(
            PROGRAM, mutants_per_mutator=3, mutators=infos,
            rng=random.Random(5),
        )
        assert score.results
        assert all(r.mutator == "ModifyIntegerLiteral" for r in score.results)

    def test_noncompiling_program_rejected(self):
        with pytest.raises(ValueError):
            mutation_score("int main(void) { return x; }")
