"""Program generator and seed corpus tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.fuzzing.progen import GenPolicy, ProgramGenerator
from repro.fuzzing.seedgen import TEMPLATES, generate_seeds, template_seeds


def _errors(text):
    return [d for d in Sema().analyze(parse(text)) if d.severity == "error"]


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 1 << 32))
def test_generated_programs_always_compile(seed):
    program = ProgramGenerator(random.Random(seed)).generate()
    assert not _errors(program), program


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1 << 32))
def test_loop_focus_policy_compiles(seed):
    policy = GenPolicy(loop_focus=True, max_depth=6, use_switch=False)
    program = ProgramGenerator(random.Random(seed), policy).generate()
    assert not _errors(program), program


def test_generation_is_deterministic():
    a = ProgramGenerator(random.Random(7)).generate()
    b = ProgramGenerator(random.Random(7)).generate()
    assert a == b


def test_generated_programs_have_main():
    program = ProgramGenerator(random.Random(3)).generate()
    assert "int main(void)" in program


class TestSeedCorpus:
    def test_default_size_matches_paper(self):
        assert len(generate_seeds(1839)) == 1839

    def test_templates_all_instantiate_and_compile(self):
        for seed in template_seeds():
            assert not _errors(seed), seed

    def test_template_count(self):
        assert len(template_seeds(3)) == 3 * len(TEMPLATES)

    def test_corpus_is_deterministic(self):
        assert generate_seeds(50) == generate_seeds(50)

    def test_corpus_entries_distinct(self):
        seeds = generate_seeds(60)
        assert len(set(seeds)) == 60

    def test_case_study_precursors_present(self):
        seeds = template_seeds()
        joined = "\n".join(seeds)
        assert "sprintf(buffer" in joined  # strlen-opt seed
        assert "while (--n)" in joined  # GCC #111820 seed
        assert "__imag" in joined  # GCC #111819 seed
        assert "goto gt" in joined  # Clang #63762 seed

    def test_sample_compiles(self):
        for seed in generate_seeds(30):
            assert not _errors(seed)
