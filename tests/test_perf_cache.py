"""Perf subsystem correctness: front-end cache, stats, parallel campaigns.

The cache and the process pool are pure performance features — every test
here pins down that they change *nothing* observable: cached compiles are
byte-identical to uncached ones, cached mutation produces the same mutants,
and a parallel campaign equals the serial one result-for-result.
"""

import random
import zlib

import pytest

from repro.cast.cache import (
    CacheInvariantError,
    FrontendCache,
    analyze_front_end,
    source_digest,
)
from repro.fuzzing.campaign import Campaign, run_campaign
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.parallel import stable_cell_seed
from repro.fuzzing.throughput import measure_throughput
from repro.muast.mutator import apply_mutator
from repro.muast.registry import MutatorInfo, MutatorRegistry, Mutator


BROKEN = "int main( { return 0; }"
SEMA_BROKEN = "int main(void) { return x + 1; }"


class TestCompileParity:
    """A cached compile must be byte-identical to an uncached one."""

    def _assert_same_result(self, gcc, text):
        cache = FrontendCache()
        plain = gcc.compile(text)
        cold = gcc.compile(text, cache=cache)
        warm = gcc.compile(text, cache=cache)  # replay from the cache entry
        assert cache.hits >= 1
        for got in (cold, warm):
            assert got.ok == plain.ok
            assert got.diagnostics == plain.diagnostics
            assert got.coverage.edges == plain.coverage.edges
            assert got.asm == plain.asm
            assert got.features == plain.features
            assert (got.crash is None) == (plain.crash is None)
            if plain.crash is not None:
                assert got.crash.signature() == plain.crash.signature()

    def test_valid_program(self, gcc, small_seeds):
        self._assert_same_result(gcc, small_seeds[0])

    def test_parse_error(self, gcc):
        self._assert_same_result(gcc, BROKEN)

    def test_sema_error(self, gcc):
        self._assert_same_result(gcc, SEMA_BROKEN)

    def test_mutant_compile_parity(self, gcc, registry, small_seeds):
        """The actual hot path: mutants of a pool parent, cached vs. not."""
        cached = MuCFuzz(
            gcc, random.Random(7), small_seeds[:6], registry.supervised()
        )
        plain = MuCFuzz(
            gcc,
            random.Random(7),
            small_seeds[:6],
            registry.supervised(),
            use_cache=False,
        )
        assert cached.cache is not None and plain.cache is None
        for _ in range(15):
            a, b = cached.step(), plain.step()
            assert a.program == b.program
            assert a.mutator == b.mutator
            assert a.kept == b.kept
            assert a.result.coverage.edges == b.result.coverage.edges
            assert a.result.diagnostics == b.result.diagnostics
        assert cached.coverage.edges == plain.coverage.edges
        assert cached.cache.hits > 0


class TestApplyMutatorCache:
    def test_cached_mutation_matches_uncached(self, registry, small_seeds):
        text = small_seeds[1]
        cache = FrontendCache()
        for info in registry.supervised()[:20]:
            plain = apply_mutator(info.create(random.Random(11)), text)
            cached = apply_mutator(
                info.create(random.Random(11)), text, cache=cache
            )
            assert cached.changed == plain.changed
            assert cached.mutant_text == plain.mutant_text
            assert cached.error == plain.error

    def test_attempts_share_one_parse(self, registry, small_seeds):
        text = small_seeds[2]
        cache = FrontendCache()
        for info in registry.supervised()[:8]:
            apply_mutator(info.create(random.Random(3)), text, cache=cache)
        assert cache.misses == 1  # one parse, shared by every attempt
        assert cache.hits == 7

    def test_non_parsing_input(self, registry):
        info = registry.supervised()[0]
        cache = FrontendCache()
        outcome = apply_mutator(info.create(), BROKEN, cache=cache)
        assert not outcome.changed
        assert outcome.error == "input does not parse"


class TestFrontendCacheLRU:
    TEXTS = ["int a;", "int b;", "int c;"]

    def test_bounded_with_lru_eviction(self):
        cache = FrontendCache(maxsize=2)
        for text in self.TEXTS:
            cache.front_end(text)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert self.TEXTS[0] not in cache  # oldest entry went first
        assert self.TEXTS[1] in cache and self.TEXTS[2] in cache

    def test_hit_refreshes_recency(self):
        cache = FrontendCache(maxsize=2)
        cache.front_end(self.TEXTS[0])
        cache.front_end(self.TEXTS[1])
        cache.front_end(self.TEXTS[0])  # refresh: [1] is now least recent
        cache.front_end(self.TEXTS[2])
        assert self.TEXTS[0] in cache
        assert self.TEXTS[1] not in cache

    def test_counters_and_stats(self):
        cache = FrontendCache()
        cache.front_end("int a;")
        cache.front_end("int a;")
        cache.front_end("int b;")
        assert (cache.hits, cache.misses) == (1, 2)
        stats = cache.stats()
        assert stats["cache_hit_rate"] == pytest.approx(1 / 3)
        assert stats["cache_size"] == 2
        cache.clear()
        assert len(cache) == 0

    def test_entry_matches_direct_analysis(self, small_seeds):
        text = small_seeds[3]
        entry = FrontendCache().front_end(text)
        direct = analyze_front_end(text)
        assert entry.source_hash == source_digest(text)
        assert entry.compilable == direct.compilable
        assert [t.text for t in entry.token_prefix] == [
            t.text for t in direct.token_prefix
        ]

    def test_invariant_check_detects_mutation(self):
        cache = FrontendCache(maxsize=4)
        entry = cache.front_end("int a;")
        entry.source.text = "int b;"  # simulate in-place AST/source abuse
        with pytest.raises(CacheInvariantError):
            cache.front_end("int a;")


class TestRegistryQueryCache:
    def _info(self, name):
        class Nop(Mutator):
            def mutate(self) -> bool:
                return False

        return MutatorInfo(
            name=name,
            description="no-op",
            cls=Nop,
            category="Expression",
            origin="supervised",
        )

    def test_register_invalidates_queries(self):
        reg = MutatorRegistry()
        reg.register(self._info("AAA"))
        assert reg.names() == ["AAA"]
        assert [m.name for m in reg.supervised()] == ["AAA"]
        reg.register(self._info("BBB"))
        assert reg.names() == ["AAA", "BBB"]
        assert [m.name for m in reg.supervised()] == ["AAA", "BBB"]

    def test_query_results_are_copies(self, registry):
        names = registry.names()
        names.clear()
        assert registry.names()  # the cached list was not clobbered


class TestStats:
    def test_step_result_carries_stats(self, gcc, registry, small_seeds):
        fuzzer = MuCFuzz(
            gcc, random.Random(5), small_seeds[:6], registry.supervised()
        )
        step = fuzzer.step()
        assert step.stats is not None
        assert step.stats["attempts"] >= 1
        assert "cache_hits" in step.stats and "cache_misses" in step.stats
        snap = fuzzer.stats_snapshot()
        assert snap["steps"] == 1
        assert snap["attempts_per_step"] == step.stats["attempts"]
        assert 0.0 <= snap["cache_hit_rate"] <= 1.0

    def test_campaign_result_reports_stats(self, gcc, registry, small_seeds):
        fuzzer = MuCFuzz(
            gcc, random.Random(6), small_seeds[:6], registry.supervised()
        )
        result = run_campaign(fuzzer, steps=8)
        assert result.stats["steps"] == 8
        assert result.stats["cache_hits"] > 0


class TestParallelCampaign:
    def test_stable_cell_seed_is_hash_free(self):
        digest = zlib.crc32(b"uCFuzz.s\x00gcc-sim-14")
        assert stable_cell_seed("uCFuzz.s", "gcc-sim-14", 2024) == (
            (digest ^ 2024) & 0xFFFFFFFF
        )
        assert stable_cell_seed("uCFuzz.s", "gcc-sim-14", 2024) != stable_cell_seed(
            "uCFuzz.u", "gcc-sim-14", 2024
        )

    def test_parallel_equals_serial(self, gcc, registry, small_seeds):
        campaign = Campaign(
            compilers=[gcc],
            seeds=small_seeds[:6],
            registry=registry,
            steps=20,
            base_seed=2024,
        )
        names = ("uCFuzz.s", "AFL++")
        serial = campaign.run(fuzzer_names=names, parallelism=1)
        parallel = campaign.run(fuzzer_names=names, parallelism=2)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert (a.fuzzer, a.compiler, a.steps) == (b.fuzzer, b.compiler, b.steps)
            assert a.coverage_trend == b.coverage_trend
            assert (a.compiled, a.total) == (b.compiled, b.total)
            assert a.crashes.signatures() == b.crashes.signatures()
            assert a.crashes.first_seen == b.crashes.first_seen
            assert a.throughput_total == b.throughput_total
            assert a.stats == b.stats


class TestThroughputBench:
    def test_measure_throughput_smoke(self):
        report = measure_throughput(steps=6, n_seeds=6)
        assert report["cache_hit_rate"] > 0
        assert (
            report["cached"]["final_coverage"]
            == report["uncached"]["final_coverage"]
        )
        assert report["cached"]["steps"] == report["uncached"]["steps"] == 6
