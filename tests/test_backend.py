"""Back-end tests: ISel output, register allocation, feature reporting."""

from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.compiler.coverage import CoverageMap
from repro.compiler.backend import NUM_REGS, lower_to_asm, _allocate
from repro.compiler.irgen import IRGen
from repro.compiler.passes import OptContext


def compile_to_asm(text, opt=0):
    unit = parse(text)
    sema = Sema()
    assert not [d for d in sema.analyze(unit) if d.severity == "error"]
    module = IRGen(sema, CoverageMap()).lower(unit)
    ctx = OptContext(cov=CoverageMap(), opt_level=opt)
    return lower_to_asm(module, ctx)


class TestEmission:
    def test_globals_get_data_directives(self):
        result = compile_to_asm("int g; char buf[16]; int main(void){return 0;}")
        assert ".data g: .space 4" in result.asm
        assert ".data buf: .space 16" in result.asm

    def test_functions_get_text_labels(self):
        result = compile_to_asm("int f(void){return 1;} int main(void){return f();}")
        assert ".text f:" in result.asm and ".text main:" in result.asm

    def test_calls_rendered(self):
        result = compile_to_asm("int main(void){ printf(\"x\"); return 0; }")
        assert "call printf(" in result.asm

    def test_branches_reference_blocks(self):
        result = compile_to_asm(
            "int main(void){ int x = 1; if (x) x = 2; return x; }"
        )
        assert "cbnz" in result.asm

    def test_stats_counted(self):
        result = compile_to_asm(
            "int main(void){ int i, s = 0; for (i = 0; i < 9; i++) s += i; "
            "return s; }"
        )
        assert result.stats["be_blocks"] >= 4
        assert result.stats["be_instrs"] > 10


class TestRegisterAllocation:
    def test_few_temps_fit_in_registers(self):
        intervals = {i: (i, i + 1) for i in range(4)}
        assignment, spills, pressure = _allocate(intervals)
        assert spills == 0
        assert pressure <= NUM_REGS
        assert all(reg.startswith("r") for reg in assignment.values())

    def test_overlapping_temps_spill(self):
        # NUM_REGS + 4 temps all live at once.
        intervals = {i: (0, 100) for i in range(NUM_REGS + 4)}
        assignment, spills, pressure = _allocate(intervals)
        assert spills == 4
        assert pressure > NUM_REGS
        assert sum(1 for r in assignment.values() if r.startswith("[sp")) == 4

    def test_expired_intervals_free_registers(self):
        # Sequential non-overlapping intervals reuse the same register.
        intervals = {i: (i * 10, i * 10 + 5) for i in range(NUM_REGS * 2)}
        _assignment, spills, _pressure = _allocate(intervals)
        assert spills == 0


class TestRet2VShapeReporting:
    def test_void_fn_with_empty_labels_flagged(self):
        text = (
            "void f(int x) {\n"
            "  if (x) goto a;\n"
            "  if (x > 1) goto b;\n"
            "  ;\n"
            "a: ;\n"
            "b: ;\n"
            "}\n"
            "int main(void){ f(2); return 0; }"
        )
        unit = parse(text)
        sema = Sema()
        sema.analyze(unit)
        irgen = IRGen(sema, CoverageMap())
        irgen.lower(unit)
        assert irgen.stats.get("ret2v_shape") == 1

    def test_nonvoid_fn_not_flagged(self):
        text = (
            "int f(int x) {\n"
            "  if (x) goto a;\n"
            "a: ;\n"
            "  return x;\n"
            "}\n"
            "int main(void){ return f(2); }"
        )
        unit = parse(text)
        sema = Sema()
        sema.analyze(unit)
        irgen = IRGen(sema, CoverageMap())
        irgen.lower(unit)
        assert irgen.stats.get("ret2v_shape") == 0
