"""End-to-end integration tests across the whole system."""

import random

import pytest

from repro.compiler import Compiler, CLANG_SIM, GCC_SIM
from repro.compiler.interp import execute
from repro.fuzzing.campaign import make_fuzzer, run_campaign
from repro.fuzzing.crash import CrashLog
from repro.fuzzing.macro import MacroFuzzer
from repro.fuzzing.seedgen import generate_seeds, template_seeds
from repro.metamut import MetaMut
from repro.muast import apply_mutator
from repro.muast.registry import global_registry


class TestMutateCompileExecute:
    """Seed → mutate → compile → run: the full life of a test program."""

    def test_mutants_of_seeds_compile_and_run(self, gcc, small_seeds):
        rng = random.Random(77)
        executed = 0
        for seed_text in small_seeds[:6]:
            info = global_registry.get(
                global_registry.names()[rng.randrange(118)]
            )
            outcome = apply_mutator(info.create(rng), seed_text)
            text = outcome.mutant_text if outcome.changed else seed_text
            result = gcc.compile(text)
            if result.ok:
                run = execute(result.module, fuel=150_000)
                assert run.status in ("ok", "abort", "trap", "timeout")
                executed += 1
        assert executed >= 4

    def test_stacked_mutations_stay_parseable(self, gcc):
        rng = random.Random(5)
        text = template_seeds()[0]
        names = global_registry.names()
        for _round in range(8):
            info = global_registry.get(names[rng.randrange(len(names))])
            try:
                outcome = apply_mutator(info.create(rng), text)
            except Exception:
                continue
            if outcome.changed and outcome.mutant_text:
                text = outcome.mutant_text
        result = gcc.compile(text)
        assert result.ok or result.diagnostics or result.crashed


class TestMetaMutToFuzzer:
    """The paper's full story: generate mutators, then fuzz with them."""

    def test_generated_valid_set_drives_fuzzing(self, gcc, small_seeds):
        campaign = MetaMut().run_unsupervised(30, seed=40)
        valid_infos = [
            global_registry.get(r.invention.registry_name)
            for r in campaign.valid
        ]
        assert valid_infos
        from repro.fuzzing.mucfuzz import MuCFuzz

        fuzzer = MuCFuzz(gcc, random.Random(1), small_seeds[:5], valid_infos)
        for _ in range(8):
            fuzzer.step()
        assert len(fuzzer.coverage) > 150


class TestMacroCampaignFindsSeededBugs:
    def test_macro_fuzzer_discovers_bugs_with_flags(self):
        gcc = Compiler(*GCC_SIM)
        seeds = template_seeds(2)
        fuzzer = MacroFuzzer(
            gcc, random.Random(13), seeds, list(global_registry)
        )
        log = CrashLog()
        for i in range(120):
            step = fuzzer.step()
            log.add(step.result, float(i), step.program)
        assert len(log) >= 1  # the campaign surfaces at least one latent bug


class TestEmergentCaseStudyDiscovery:
    """§5.2's exclusive crash, *discovered* (not crafted): μCFuzz applies
    ChangeVarDeclQualifier and CopyExpr to the sprintf seed until the
    verify_range ICE fires — the paper's exact mutation chain."""

    SEED = """
static char buffer[32];
int test4(void) { return sprintf(buffer, "%s", "bar"); }
void main_test(void) {
  memset(buffer, 'A', 32);
  if (test4() != 3) abort();
}
int main(void) { main_test(); return 0; }
"""

    def test_mucfuzz_discovers_strlen_bug(self):
        from repro.fuzzing.mucfuzz import MuCFuzz

        gcc = Compiler(*GCC_SIM)
        chain = [
            global_registry.get("ChangeVarDeclQualifier"),
            global_registry.get("CopyExpr"),
        ]
        fuzzer = MuCFuzz(gcc, random.Random(3), [self.SEED], chain)
        found = set()
        for _ in range(400):
            step = fuzzer.step()
            if step.result.crashed:
                found.add((step.result.crash or step.result.hang).bug_id)
                if "gcc-strlen-verify-range" in found:
                    break
        assert "gcc-strlen-verify-range" in found


class TestCampaignDeterminism:
    def test_same_seed_same_results(self, registry):
        gcc = Compiler(*GCC_SIM)
        seeds = generate_seeds(25)

        def run_once():
            fuzzer = make_fuzzer(
                "uCFuzz.u", gcc, seeds, registry, random.Random(99)
            )
            return run_campaign(fuzzer, steps=12)

        a, b = run_once(), run_once()
        assert a.coverage_trend == b.coverage_trend
        assert len(a.crashes) == len(b.crashes)


class TestCompilerAgreement:
    """The two personalities agree on semantics (no miscompilation bugs are
    seeded — all seeded bugs are crashes/hangs, like the paper's Table 6)."""

    def test_gcc_and_clang_sim_agree_on_seed_output(self, small_seeds):
        gcc = Compiler(*GCC_SIM)
        clang = Compiler(*CLANG_SIM)
        for seed_text in small_seeds[:5]:
            rg = gcc.compile(seed_text)
            rc = clang.compile(seed_text)
            assert rg.ok and rc.ok
            assert (
                execute(rg.module, fuel=200_000).observable
                == execute(rc.module, fuel=200_000).observable
            )
