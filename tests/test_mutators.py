"""The mutator library: per-mutator compilability plus flagship behaviours."""

import random

import pytest

import repro.mutators  # noqa: F401
from repro.cast.parser import ParseError, parse
from repro.cast.sema import Sema
from repro.metamut.testgen import tests_for as programs_for
from repro.muast import apply_mutator
from repro.muast.registry import global_registry
from repro.mutators.catalog import catalog_summary, verify_catalog

ALL_NAMES = global_registry.names()

#: Mutators documented to sometimes produce non-compiling mutants (the paper
#: kept StructToInt in M_u precisely because its invalid mutants crash
#: compiler front ends, e.g. Clang #69213).
MAY_BREAK_COMPILATION = {"StructToInt"}


def _compiles(text):
    try:
        unit = parse(text)
    except (ParseError, RecursionError):
        return False
    return not [d for d in Sema().analyze(unit) if d.severity == "error"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_mutator_applies_and_preserves_compilability(name):
    """Every library mutator applies to its tests and emits compilable
    mutants (the paper's validity definition)."""
    info = global_registry.get(name)
    tests = programs_for(info.structure, info.description)
    applied = 0
    for program in tests:
        for trial in range(4):
            mutator = info.create(random.Random(trial * 97 + 5))
            outcome = apply_mutator(mutator, program)
            if not outcome.changed or outcome.mutant_text == program:
                continue
            applied += 1
            if name not in MAY_BREAK_COMPILATION:
                assert _compiles(outcome.mutant_text), (
                    f"{name} produced a non-compiling mutant:\n"
                    f"{outcome.mutant_text}"
                )
    assert applied > 0, f"{name} never applied to its own test programs"


class TestCatalogShape:
    def test_census_matches_section_4_1(self):
        verify_catalog()

    def test_category_split(self):
        s = catalog_summary()
        assert s.by_category == {
            "Variable": 16, "Expression": 50, "Statement": 27,
            "Function": 19, "Type": 6,
        }

    def test_creative_count(self):
        assert catalog_summary().creative == 33

    def test_overlap_pairs(self):
        pairs = catalog_summary().overlap_pairs
        assert len(pairs) == 6
        assert ("ModifyIntegerLiteral", "ReplaceLiteralWithRandomValue") in pairs

    def test_every_mutator_has_description(self):
        for info in global_registry:
            assert len(info.description) > 20
            assert info.action and info.structure


class TestFlagshipBehaviours:
    """Spot-check the mutators behind the paper's case studies."""

    def _apply(self, name, program, seed=3, tries=30):
        info = global_registry.get(name)
        for trial in range(tries):
            outcome = apply_mutator(
                info.create(random.Random(seed + trial)), program
            )
            if outcome.changed and outcome.mutant_text != program:
                return outcome.mutant_text
        return None

    def test_ret2v_removes_returns_and_calls(self):
        program = (
            "unsigned foo(void) { if (foo()) return 2u; return 7u; }\n"
            "int main(void) { return 0; }\n"
        )
        mutant = self._apply("ModifyFunctionReturnTypeToVoid", program)
        assert mutant is not None
        assert "void foo" in mutant
        assert "return 2u" not in mutant and "return 7u" not in mutant
        assert _compiles(mutant)

    def test_duplicate_branch_copies_one_side(self):
        program = (
            "int f(int x) { if (x) { x = 1; } else { x = 2; } return x; }"
        )
        mutant = self._apply("DuplicateBranch", program)
        assert mutant is not None
        assert mutant.count("x = 1") == 2 or mutant.count("x = 2") == 2

    def test_switch_init_expr_swaps(self):
        program = (
            "int g = 9;\n"
            "int main(void) { int a = 3; int b = g; return a + b; }\n"
        )
        mutant = self._apply("SwitchInitExpr", program)
        assert mutant is not None
        assert "int a = g" in mutant and "int b = 3" in mutant

    def test_inverse_unary_operator_doubles(self):
        program = "int f(int a) { return -a; }"
        mutant = self._apply("InverseUnaryOperator", program)
        assert mutant is not None and "-(-a)" in mutant

    def test_transform_switch_to_if_else(self):
        program = (
            "int f(int x) {\n"
            "  switch (x) { case 1: x = 10; break; case 2: x = 20; break;\n"
            "    default: x = 30; }\n"
            "  return x;\n"
            "}"
        )
        mutant = self._apply("TransformSwitchToIfElse", program)
        assert mutant is not None
        assert "switch" not in mutant
        assert "else" in mutant
        assert _compiles(mutant)

    def test_reduce_array_dimension(self):
        program = (
            "int r[6];\n"
            "void f(void) { r[0] += r[5]; r[1] += r[0]; }\n"
            "int main(void) { f(); return 0; }\n"
        )
        mutant = self._apply("ReduceArrayDimension", program)
        assert mutant is not None
        assert "int r;" in mutant or "int r ;" in mutant
        assert "r[0]" not in mutant
        assert _compiles(mutant)

    def test_change_param_scope(self):
        program = (
            "int r;\n"
            "void f(int n) { while (n > 0) { r += n; n--; } }\n"
            "int main(void) { f(5); return r; }\n"
        )
        mutant = self._apply("ChangeParamScope", program)
        assert mutant is not None
        assert "f(5)" not in mutant  # the argument was removed
        assert "n = 0" in mutant  # ...and n became a zero-initialized local
        assert _compiles(mutant)

    def test_combine_variable_rewrites_refs(self):
        program = (
            "_Complex double x;\n"
            "int *bar(void) { return (int *)&__imag x; }\n"
            "int main(void) { return 0; }\n"
        )
        mutant = self._apply("CombineVariable", program)
        assert mutant is not None
        assert "combinedVar" in mutant
        assert "(char *)" in mutant
        assert _compiles(mutant)

    def test_simple_uninliner_extracts_block(self):
        program = (
            "int g1; int g2;\n"
            "int main(void) { { g1 += 2; g2 ^= g1; } return g1; }\n"
        )
        mutant = self._apply("SimpleUninliner", program)
        assert mutant is not None
        assert "uninlined" in mutant
        assert _compiles(mutant)

    def test_change_qualifier_can_make_const_volatile(self):
        program = (
            "static char buffer[32];\n"
            "int test4(void) { return sprintf(buffer, \"%s\", \"bar\"); }\n"
            "int main(void) { return test4(); }\n"
        )
        info = global_registry.get("ChangeVarDeclQualifier")
        saw_const_volatile = False
        for trial in range(40):
            outcome = apply_mutator(info.create(random.Random(trial)), program)
            if outcome.changed and "const volatile" in (outcome.mutant_text or ""):
                saw_const_volatile = True
                assert _compiles(outcome.mutant_text)
                break
        assert saw_const_volatile

    def test_copy_expr_type_compatibility(self):
        program = (
            "static char buffer[32];\n"
            "int main(void) { int n = sprintf(buffer, \"%s\", \"bar\"); "
            "printf(\"%d\", n); return 0; }\n"
        )
        info = global_registry.get("CopyExpr")
        for trial in range(60):
            outcome = apply_mutator(info.create(random.Random(trial)), program)
            if outcome.changed and outcome.mutant_text != program:
                assert _compiles(outcome.mutant_text)

    def test_mutators_are_deterministic_given_rng(self):
        program = "int f(int a) { return a + 1 * 2; }"
        info = global_registry.get("ModifyIntegerLiteral")
        first = apply_mutator(info.create(random.Random(9)), program)
        second = apply_mutator(info.create(random.Random(9)), program)
        assert first.mutant_text == second.mutant_text
