"""Semantic analysis tests: what compiles and what does not."""

import pytest

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.cast.parser import parse
from repro.cast.sema import Sema, check


def errors(text):
    return [d.message for d in check(parse(text)) if d.severity == "error"]


def compiles(text):
    return not errors(text)


VALID_PROGRAMS = [
    "int x = 5;",
    "int f(int a) { return a; }",
    "int f(void) { int a = a; return a; }",  # decl visible in its own init
    "int g; int f(void) { return g++; }",
    "void f(int *p) { *p = 1; }",
    "void f(void) { char buf[4] = \"abc\"; buf[0] = 'x'; }",
    "struct s { int a; }; void f(void) { struct s v; v.a = 1; }",
    "struct s { int a; }; void f(struct s *p) { p->a = 2; }",
    "enum e { A, B }; int f(void) { return A + B; }",
    "void f(void) { int i; for (i = 0; i < 3; i++) continue; }",
    "void f(int x) { switch (x) { case 1: break; default: ; } }",
    "void f(void) { goto l; l: ; }",
    "int f(void); int f(void) { return 0; }",  # prototype + definition
    "void f(void) { int x = 1 ? 2 : 3; }",
    "unsigned f(unsigned a) { return a >> 3; }",
    "int f(void) { return sprintf((char*)0, \"%d\", 1); }",
    "double f(double d) { return d * 2.5; }",
    "void f(void) { void *p = malloc(8); free(p); }",
    "int f(void) { undeclared_fn(1); return 0; }",  # implicit decl = warning
    "void f(void) { int a[3] = { 1, 2, 3 }; a[1] = a[2]; }",
    "_Complex double z; double f(void) { return __real z + __imag z; }",
    "void f(void) { int x; x = (1, 2); }",
    "int f(void) { int i = 0; do { i++; } while (i < 3); return i; }",
    "long f(int *a, int *b) { return a - b; }",  # pointer difference
    "void f(void) { static int cache = 3; cache++; }",
]

INVALID_PROGRAMS = [
    ("int f(void) { return x; }", "undeclared"),
    ("void f(void) { int a; int a; }", "redefinition"),
    ("void f(void) { break; }", "break"),
    ("void f(void) { continue; }", "continue"),
    ("void f(void) { case 1: ; }", "case"),
    ("void f(void) { goto missing; }", "undeclared label"),
    ("void f(void) { return 1; }", "void function"),
    ("int f(void) { return; }", "should return a value"),
    ("void f(void) { const int c = 1; c = 2; }", "const"),
    ("void f(void) { int a[3]; a = 0; }", "not assignable"),
    ("void f(void) { 5 = 1; }", "not assignable"),
    ("struct s { int a; }; void f(void) { struct s v; v.missing = 1; }", "no member"),
    ("void f(void) { int x; x.field = 1; }", "not a structure"),
    ("void f(void) { int x; x(); }", "not a function"),
    ("int g(int a); void f(void) { g(); }", "argument"),
    ("int g(int a); void f(void) { g(1, 2); }", "argument"),
    ("void f(void) { double d; int x = d % 2; }", "invalid operands"),
    ("void f(int *p, int *q) { int x = p * q; }", "invalid operands"),
    ("struct s { int a; }; void f(void) { struct s v; int x = v + 1; }", "invalid operands"),
    ("void f(void) { int v = \"text\"; }", "incompatible"),
    ("struct nope; void f(void) { struct nope v; }", "incomplete"),
    ("void v; ", "void"),
    ("void f(void) { switch (1.5) { default: ; } }", "not an integer"),
    ("void f(int x) { switch (x) { case x: ; } }", "constant"),
    ("int g = g0();", "constant"),  # global init must be constant
    ("void f(void) { static int s = f(); }", "constant"),
    ("void f(void) { int a[2] = { 1, 2, 3 }; }", "excess"),
    ("void f(void) { double d; int *p = (int *)d; }", "cast"),
]


@pytest.mark.parametrize("text", VALID_PROGRAMS)
def test_valid_program_compiles(text):
    assert compiles(text), errors(text)


@pytest.mark.parametrize("text,needle", INVALID_PROGRAMS)
def test_invalid_program_rejected(text, needle):
    msgs = errors(text)
    assert msgs, f"expected an error matching {needle!r}"
    assert any(needle in m for m in msgs), msgs


class TestTypeAnnotations:
    def test_declref_resolution(self):
        unit = parse("int g; int f(void) { return g; }")
        Sema().analyze(unit)
        ref = [n for n in unit.walk() if isinstance(n, ast.DeclRefExpr)][0]
        assert isinstance(ref.decl, ast.VarDecl)
        assert ref.type == ct.INT

    def test_usual_arithmetic_conversion_types(self):
        unit = parse("void f(void) { int i; double d; d = i + d; }")
        Sema().analyze(unit)
        add = [
            n
            for n in unit.walk()
            if isinstance(n, ast.BinaryOperator) and n.op == "+"
        ][0]
        assert add.type == ct.DOUBLE

    def test_comparison_yields_int(self):
        unit = parse("void f(double a) { int x = a < 1.0; }")
        Sema().analyze(unit)
        cmp_ = [n for n in unit.walk() if isinstance(n, ast.BinaryOperator) and n.op == "<"][0]
        assert cmp_.type == ct.INT

    def test_array_decays_in_call(self):
        assert compiles("void g(int *p); int a[4]; void f(void) { g(a); }")

    def test_subscript_element_type(self):
        unit = parse("char buf[4]; char f(void) { return buf[1]; }")
        Sema().analyze(unit)
        sub = [n for n in unit.walk() if isinstance(n, ast.ArraySubscriptExpr)][0]
        assert sub.type == ct.CHAR

    def test_swapped_subscript_accepted(self):
        assert compiles("int a[4]; int f(int i) { return i[a]; }")

    def test_warning_is_not_error(self):
        diags = check(parse("void f(void) { mystery(); }"))
        assert any(d.severity == "warning" for d in diags)
        assert not any(d.severity == "error" for d in diags)


class TestQualifiers:
    def test_const_pointee_passes_to_plain_pointer(self):
        # Accepted (real compilers warn): the strlen-opt case depends on it.
        assert compiles(
            "const volatile char buf[8];"
            "int f(void) { return sprintf((char*)0, \"%s\", buf); }"
        )

    def test_volatile_reads_ok(self):
        assert compiles("volatile int v; int f(void) { return v + v; }")
