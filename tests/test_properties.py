"""System-wide property-based tests (hypothesis)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.mutators  # noqa: F401
from repro.cast.parser import ParseError, parse
from repro.cast.sema import Sema
from repro.compiler import Compiler, GCC_SIM
from repro.compiler.coverage import CoverageMap
from repro.compiler.interp import execute
from repro.compiler.irgen import IRGen
from repro.fuzzing.progen import GenPolicy, ProgramGenerator
from repro.muast import apply_mutator
from repro.muast.mutator import MutatorCrash, MutatorHang
from repro.muast.registry import global_registry

_GCC = Compiler(*GCC_SIM)
_NAMES = global_registry.names()


def _gen(seed, **kw):
    return ProgramGenerator(random.Random(seed), GenPolicy(**kw)).generate()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1 << 30), st.integers(0, 117))
def test_mutators_raise_only_mutator_errors(seed, index):
    """On compilable input, a library mutator either mutates, declines, or
    raises a documented mutator error — never an arbitrary exception."""
    program = _gen(seed, max_stmts=5)
    info = global_registry.get(_NAMES[index])
    try:
        outcome = apply_mutator(info.create(random.Random(seed)), program)
    except (MutatorCrash, MutatorHang):
        return
    if outcome.changed:
        assert outcome.mutant_text is not None


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1 << 30))
def test_compile_is_deterministic(seed):
    program = _gen(seed, max_stmts=5)
    a = _GCC.compile(program)
    b = _GCC.compile(program)
    assert a.ok == b.ok
    assert a.coverage.edges == b.coverage.edges
    assert a.asm == b.asm


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1 << 30))
def test_coverage_merge_is_monotone(seed):
    cov = CoverageMap()
    sizes = []
    for i in range(3):
        result = _GCC.compile(_gen(seed + i, max_stmts=4))
        cov.merge(result.coverage)
        sizes.append(len(cov))
    assert sizes == sorted(sizes)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1 << 30))
def test_optimized_execution_matches_interpreted_source(seed):
    """The whole truth: generated program → -O3 compile → interp equals
    the unoptimized lowering's behaviour."""
    program = _gen(seed, max_stmts=5)
    unit = parse(program)
    sema = Sema()
    assert not [d for d in sema.analyze(unit) if d.severity == "error"]
    baseline = execute(IRGen(sema, CoverageMap()).lower(unit), fuel=250_000)
    optimized = _GCC.compile(program, opt_level=3)
    assert optimized.ok
    assert execute(optimized.module, fuel=250_000).observable == baseline.observable


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 1 << 30), st.integers(0, 117))
def test_mutant_of_mutant_remains_analyzable(seed, index):
    """Second-order mutants still go through the front end without
    non-diagnostic failures (parse errors are fine; crashes are not)."""
    rng = random.Random(seed)
    text = _gen(seed, max_stmts=4)
    for step in range(2):
        info = global_registry.get(_NAMES[(index + step * 31) % 118])
        try:
            outcome = apply_mutator(info.create(rng), text)
        except (MutatorCrash, MutatorHang):
            continue
        if outcome.changed and outcome.mutant_text:
            text = outcome.mutant_text
    result = _GCC.compile(text)
    assert result.ok or result.diagnostics or result.crashed


@settings(max_examples=25, deadline=None)
@given(
    st.text(
        alphabet=st.sampled_from(list("intvoidmare(){};=+-*/<>!&|^%#\"'0123456789 \n")),
        max_size=200,
    )
)
def test_compiler_never_raises_on_garbage(text):
    """The driver's contract: any input yields ok/diagnostics/crash —
    Python-level exceptions never escape."""
    result = _GCC.compile(text)
    # The real assertion is that .compile() returned at all; sanity-check
    # the result invariants (an empty translation unit compiles to empty asm):
    if result.ok:
        assert result.module is not None
    if result.crash is not None:
        assert result.crash.module in (
            "front-end", "ir-gen", "optimization", "back-end"
        )
