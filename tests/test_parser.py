"""Parser unit tests: grammar coverage and source-range fidelity."""

import pytest

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.cast.parser import ParseError, parse


def first_fn(text) -> ast.FunctionDecl:
    unit = parse(text)
    fns = [d for d in unit.decls if isinstance(d, ast.FunctionDecl)]
    assert fns
    return fns[0]


def only_expr(text) -> ast.Expr:
    fn = first_fn(f"void f(void) {{ {text}; }}")
    assert fn.body is not None
    stmt = fn.body.stmts[0]
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestDeclarations:
    def test_global_int(self):
        unit = parse("int x;")
        decl = unit.decls[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.type == ct.INT

    def test_initializer(self):
        unit = parse("int x = 5;")
        decl = unit.decls[0]
        assert isinstance(decl.init, ast.IntegerLiteral)
        assert decl.init.value == 5

    def test_multi_declarator(self):
        unit = parse("int a = 1, b, *c;")
        names = [d.name for d in unit.decls]
        assert names == ["a", "b", "c"]
        assert unit.decls[2].type.is_pointer()

    def test_storage_classes(self):
        unit = parse("static int a; extern long b;")
        assert unit.decls[0].storage == "static"
        assert unit.decls[1].storage == "extern"

    def test_qualifiers(self):
        decl = parse("const volatile int x;").decls[0]
        assert decl.type.const and decl.type.volatile

    def test_array_dimensions(self):
        decl = parse("int grid[4][8];").decls[0]
        outer = decl.type.type
        assert isinstance(outer, ct.ArrayType) and outer.size == 4
        inner = outer.element.type
        assert isinstance(inner, ct.ArrayType) and inner.size == 8

    def test_constant_folded_array_size(self):
        decl = parse("int buf[4 * 8];").decls[0]
        assert decl.type.type.size == 32

    def test_struct_definition(self):
        unit = parse("struct s { int a; char b[4]; };")
        rec = unit.decls[0]
        assert isinstance(rec, ast.RecordDecl)
        assert [f.name for f in rec.fields] == ["a", "b"]

    def test_union(self):
        rec = parse("union u { int i; double d; };").decls[0]
        assert rec.tag_kind == "union"

    def test_enum(self):
        unit = parse("enum e { A, B = 5, C };")
        enum = unit.decls[0]
        assert isinstance(enum, ast.EnumDecl)
        assert [c.name for c in enum.constants] == ["A", "B", "C"]

    def test_typedef_usable_as_type(self):
        unit = parse("typedef unsigned long size_type; size_type n;")
        assert unit.decls[1].type == ct.ULONG

    def test_function_prototype(self):
        fn = parse("int add(int a, int b);").decls[0]
        assert isinstance(fn, ast.FunctionDecl)
        assert fn.body is None and len(fn.params) == 2

    def test_variadic_prototype(self):
        fn = parse("int printf(char *fmt, ...);").decls[0]
        assert fn.variadic

    def test_void_parameter_list(self):
        fn = first_fn("int f(void) { return 0; }")
        assert fn.params == []

    def test_array_parameter_decays(self):
        fn = first_fn("void f(int a[64]) { }")
        assert fn.params[0].type.is_pointer()

    def test_attribute_skipped(self):
        fn = first_fn("__attribute__((noinline)) void f(void) { }")
        assert fn.attributes and "noinline" in fn.attributes[0]

    def test_complex_double(self):
        decl = parse("_Complex double z;").decls[0]
        assert decl.type.is_complex()


class TestStatements:
    def test_if_else(self):
        fn = first_fn("void f(int x) { if (x) x = 1; else x = 2; }")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, ast.IfStmt) and stmt.else_branch is not None

    def test_dangling_else_binds_inner(self):
        fn = first_fn("void f(int x) { if (x) if (x > 1) x = 1; else x = 2; }")
        outer = fn.body.stmts[0]
        assert isinstance(outer, ast.IfStmt)
        assert outer.else_branch is None
        assert isinstance(outer.then_branch, ast.IfStmt)
        assert outer.then_branch.else_branch is not None

    def test_loops(self):
        fn = first_fn(
            "void f(void) { int i; for (i = 0; i < 4; i++) ; "
            "while (i) i--; do i++; while (i < 3); }"
        )
        kinds = [s.kind for s in fn.body.stmts]
        assert kinds == ["DeclStmt", "ForStmt", "WhileStmt", "DoStmt"]

    def test_for_with_declaration(self):
        fn = first_fn("void f(void) { for (int i = 0; i < 3; i++) ; }")
        loop = fn.body.stmts[0]
        assert isinstance(loop.init, ast.DeclStmt)

    def test_switch_cases(self):
        fn = first_fn(
            "void f(int x) { switch (x) { case 1: x = 2; break; default: ; } }"
        )
        sw = fn.body.stmts[0]
        assert isinstance(sw, ast.SwitchStmt)
        assert len(sw.cases()) == 2

    def test_chained_case_labels(self):
        # `case 1: case 2:` parses as a label-only CaseStmt (stmt=None,
        # fall-through) followed by the labelled statement.
        fn = first_fn("void f(int x) { switch (x) { case 1: case 2: x = 3; } }")
        sw = fn.body.stmts[0]
        first, second = sw.body.stmts[0], sw.body.stmts[1]
        assert isinstance(first, ast.CaseStmt) and first.stmt is None
        assert isinstance(second, ast.CaseStmt) and second.stmt is not None

    def test_goto_and_label(self):
        fn = first_fn("void f(void) { goto end; end: ; }")
        assert isinstance(fn.body.stmts[0], ast.GotoStmt)
        assert isinstance(fn.body.stmts[1], ast.LabelStmt)

    def test_return_forms(self):
        fn = first_fn("int f(int x) { if (x) return x; return 0; }")
        rets = [n for n in fn.walk() if isinstance(n, ast.ReturnStmt)]
        assert len(rets) == 2


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = only_expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOperator) and expr.op == "+"
        assert isinstance(expr.rhs, ast.BinaryOperator) and expr.rhs.op == "*"

    def test_left_associativity(self):
        expr = only_expr("1 - 2 - 3")
        assert expr.op == "-"
        assert isinstance(expr.lhs, ast.BinaryOperator)

    def test_assignment_right_associative(self):
        fn = first_fn("void f(void) { int a; int b; a = b = 1; }")
        stmt = fn.body.stmts[2]
        expr = stmt.expr
        assert expr.op == "=" and isinstance(expr.rhs, ast.BinaryOperator)

    def test_ternary(self):
        expr = only_expr("1 ? 2 : 3")
        assert isinstance(expr, ast.ConditionalOperator)

    def test_comma_operator(self):
        expr = only_expr("1, 2")
        assert isinstance(expr, ast.BinaryOperator) and expr.op == ","

    def test_cast_vs_paren(self):
        cast = only_expr("(int)1.5")
        assert isinstance(cast, ast.CastExpr)
        paren = only_expr("(1) + 2")
        assert isinstance(paren, ast.BinaryOperator)

    def test_sizeof_type_and_expr(self):
        ty = only_expr("sizeof(int)")
        assert isinstance(ty, ast.SizeofExpr) and ty.type_operand is not None
        ex = only_expr("sizeof 1")
        assert isinstance(ex, ast.SizeofExpr) and ex.operand is not None

    def test_compound_literal(self):
        fn = first_fn(
            "struct p { int x; int y; };"
            "void f(void) { struct p v; v = (struct p){ 1, 2 }; }"
        )
        lits = [n for n in fn.walk() if isinstance(n, ast.CompoundLiteralExpr)]
        assert len(lits) == 1

    def test_call_with_args(self):
        expr = only_expr("foo(1, 2, 3)")
        assert isinstance(expr, ast.CallExpr) and len(expr.args) == 3

    def test_member_chain(self):
        expr = only_expr("a.b.c")
        assert isinstance(expr, ast.MemberExpr)
        assert isinstance(expr.base, ast.MemberExpr)

    def test_arrow(self):
        expr = only_expr("p->x")
        assert isinstance(expr, ast.MemberExpr) and expr.is_arrow

    def test_postfix_and_prefix_incdec(self):
        post = only_expr("x++")
        assert isinstance(post, ast.UnaryOperator) and not post.prefix
        pre = only_expr("++x")
        assert pre.prefix

    def test_imag_real_operators(self):
        expr = only_expr("__imag z")
        assert isinstance(expr, ast.UnaryOperator) and expr.op == "__imag"

    def test_string_concatenation(self):
        expr = only_expr('"ab" "cd"')
        assert isinstance(expr, ast.StringLiteral) and expr.value == "abcd"

    def test_char_escape_values(self):
        assert only_expr(r"'\n'").value == 10
        assert only_expr(r"'\0'").value == 0
        assert only_expr(r"'\x41'").value == 0x41


class TestSourceRanges:
    def test_node_text_matches_range(self):
        text = "int f(int a) { return a + 41; }"
        unit = parse(text)
        ret = [n for n in unit.walk() if isinstance(n, ast.ReturnStmt)][0]
        assert text[ret.range.begin.offset : ret.range.end.offset] == "return a + 41;"

    def test_binop_op_range(self):
        text = "int x = 1 + 2;"
        unit = parse(text)
        binop = [n for n in unit.walk() if isinstance(n, ast.BinaryOperator)][0]
        assert text[binop.op_range.begin.offset : binop.op_range.end.offset] == "+"

    def test_function_return_type_range(self):
        text = "static unsigned long f(void) { return 0; }"
        fn = parse(text).decls[0]
        spelled = text[
            fn.return_type_range.begin.offset : fn.return_type_range.end.offset
        ]
        assert spelled == "static unsigned long"


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "int f( {",
            "int x = ;",
            "void f(void) { if }",
            "struct { int; };",
            "int 5x;",
            "void f(void) { case 1: ; }",  # parses? no: case needs switch context — parser allows; sema rejects
        ],
    )
    def test_broken_inputs(self, text):
        try:
            parse(text)
        except ParseError:
            return  # expected for most inputs
        # Inputs that parse must at least produce a translation unit.

    def test_error_has_location(self):
        with pytest.raises(ParseError) as info:
            parse("int x = ;")
        assert info.value.loc is not None
