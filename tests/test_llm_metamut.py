"""The simulated LLM and the MetaMut pipeline."""

import random
from collections import Counter

import pytest

from repro.llm import APIError, LLMClient, SimulatedLLM
from repro.llm.costs import (
    CostLedger, MutatorCost, sample_implementation_tokens,
    sample_invention_tokens, sample_wait_seconds,
)
from repro.llm.faults import Fault, FaultKind, sample_faults
from repro.llm.model import Implementation, Invention, _DECOYS
from repro.metamut import MetaMut, validate_implementation
from repro.metamut.prompts import bugfix_prompt, invention_prompt, synthesis_prompt
from repro.metamut.refinement import refine
from repro.metamut.testgen import all_snippets
from repro.metamut.testgen import tests_for as programs_for
from repro.muast.registry import global_registry


def make_impl(name="SwapBinaryOperands", faults=(), **kw):
    info = global_registry.get(name)
    inv = Invention(
        info.name, info.description, info.action, info.structure,
        "valid", registry_name=info.name,
    )
    return Implementation(inv, info, list(faults), **kw)


class TestCostModels:
    def test_invention_tokens_within_paper_bounds(self):
        rng = random.Random(0)
        values = [sample_invention_tokens(rng) for _ in range(300)]
        assert min(values) >= 359 and max(values) <= 2240
        assert 900 < sum(values) / len(values) < 1400

    def test_implementation_tokens_within_bounds(self):
        rng = random.Random(0)
        values = [sample_implementation_tokens(rng) for _ in range(300)]
        assert min(values) >= 372 and max(values) <= 3870

    def test_wait_seconds_bounds(self):
        rng = random.Random(0)
        values = [sample_wait_seconds(rng) for _ in range(300)]
        assert min(values) >= 11 and max(values) <= 123

    def test_ledger_summaries(self):
        ledger = CostLedger()
        for i in range(3):
            cost = MutatorCost(name=f"m{i}")
            cost.invention.add(1000 + i, 10.0)
            cost.implementation.add(2000, 20.0)
            ledger.add(cost)
        table = ledger.table2()
        assert table["Tokens"]["Invention"]["median"] == 1001
        assert table["Tokens"]["Total"]["mean"] == pytest.approx(3001)


class TestFaults:
    def test_half_of_drafts_are_clean(self):
        rng = random.Random(1)
        clean = sum(1 for _ in range(500) if not sample_faults(rng))
        assert 0.35 < clean / 500 < 0.55

    def test_hang_excluded_by_default(self):
        rng = random.Random(2)
        for _ in range(200):
            assert all(
                f.kind is not FaultKind.HANG for f in sample_faults(rng)
            )

    def test_fault_markers_render_in_source(self):
        impl = make_impl(faults=[Fault(FaultKind.BAD_MUTANT)])
        assert "BUG:" in impl.source
        assert "class SwapBinaryOperands" in impl.source


class TestValidationGoals:
    def _report(self, impl):
        return validate_implementation(
            impl, programs_for("BinaryOperator"), random.Random(3)
        )

    def test_goal1_not_compile(self):
        report = self._report(make_impl(faults=[Fault(FaultKind.NOT_COMPILE)]))
        assert report.goal == 1

    def test_goal2_hang(self):
        report = self._report(make_impl(faults=[Fault(FaultKind.HANG)]))
        assert report.goal == 2

    def test_goal3_crash(self):
        report = self._report(make_impl(faults=[Fault(FaultKind.CRASH)]))
        assert report.goal == 3

    def test_goal4_no_output(self):
        report = self._report(make_impl(faults=[Fault(FaultKind.NO_OUTPUT)]))
        assert report.goal == 4

    def test_goal5_no_rewrite(self):
        report = self._report(make_impl(faults=[Fault(FaultKind.NO_REWRITE)]))
        assert report.goal == 5

    def test_goal6_bad_mutant(self):
        report = self._report(make_impl(faults=[Fault(FaultKind.BAD_MUTANT)]))
        assert report.goal == 6

    def test_clean_draft_passes(self):
        assert self._report(make_impl()).passed

    def test_goal_order_simplest_first(self):
        impl = make_impl(
            faults=[Fault(FaultKind.BAD_MUTANT), Fault(FaultKind.NOT_COMPILE)]
        )
        assert self._report(impl).goal == 1


class TestRefinement:
    def test_loop_fixes_all_faults(self):
        client = LLMClient(failure_rate=0.0)
        impl = make_impl(
            faults=[Fault(FaultKind.NOT_COMPILE), Fault(FaultKind.BAD_MUTANT)]
        )
        cost = MutatorCost(name="x")
        outcome = refine(
            client, impl, programs_for("BinaryOperator"), random.Random(4), cost
        )
        assert outcome.passed
        assert sum(outcome.fixed.values()) == 2
        assert cost.bugfix.qa_rounds >= 3

    def test_unfixable_draft_dies(self):
        client = LLMClient(failure_rate=0.0)
        impl = make_impl(faults=[Fault(FaultKind.HANG)], unfixable=True)
        cost = MutatorCost(name="x")
        outcome = refine(
            client, impl, programs_for("BinaryOperator"), random.Random(5), cost,
            max_attempts=6,
        )
        assert not outcome.passed
        assert outcome.last_report is not None and outcome.last_report.goal == 2


class TestModel:
    def test_invention_avoids_previous(self):
        model = SimulatedLLM()
        rng = random.Random(6)
        seen = set()
        for _ in range(40):
            inv = model.invent(rng, seen)
            assert inv.name not in seen
            seen.add(inv.name)

    def test_decoy_census_shape(self):
        fates = Counter(fate for *_rest, fate in _DECOYS)
        assert fates == {
            "refine-death": 6, "mismatched": 7, "unthorough": 10, "duplicate": 3,
        }

    def test_api_errors_raised(self):
        client = LLMClient(failure_rate=1.0)
        with pytest.raises(APIError):
            client.invent(random.Random(7), set(), "unsupervised")


class TestPrompts:
    def test_invention_prompt_lists_actions(self):
        prompt = invention_prompt(["Foo"])
        assert "[Action]" in prompt and "Swap" in prompt and "Foo" in prompt

    def test_synthesis_prompt_embeds_template(self):
        prompt = synthesis_prompt("X", "does X")
        assert "{{MutatorName}}" in prompt and "randElement" in prompt.replace(
            "rand_element", "randElement"
        ) or "rand_element" in prompt

    def test_bugfix_prompt_per_goal(self):
        for goal in range(1, 7):
            assert "fix" in bugfix_prompt(goal, 0, "detail").lower()


class TestTestgen:
    def test_all_snippets_compile_and_run(self):
        from repro.cast.parser import parse
        from repro.cast.sema import Sema
        from repro.compiler.coverage import CoverageMap
        from repro.compiler.irgen import IRGen
        from repro.compiler.interp import execute

        for snippet in all_snippets():
            unit = parse(snippet)
            sema = Sema()
            assert not [
                d for d in sema.analyze(unit) if d.severity == "error"
            ], snippet
            result = execute(IRGen(sema, CoverageMap()).lower(unit))
            assert result.status == "ok", (snippet, result)


class TestPipeline:
    @pytest.fixture(scope="class")
    def campaign(self):
        return MetaMut().run_unsupervised(100, seed=118)

    def test_invocation_count(self, campaign):
        assert len(campaign.records) == 100

    def test_api_failures_near_paper(self, campaign):
        assert 10 <= campaign.api_errors <= 40  # paper: 24/100

    def test_validity_rate_near_paper(self, campaign):
        rate = len(campaign.valid) / campaign.completed
        assert 0.5 <= rate <= 0.85  # paper: 65.8%

    def test_invalid_census_categories(self, campaign):
        census = campaign.invalid_census()
        assert set(census) <= {
            "refine-death", "mismatched", "unthorough", "duplicate",
        }

    def test_table1_shape(self, campaign):
        table = campaign.table1()
        assert table[2] == 0  # hangs are never auto-fixed
        assert table[1] >= table[3]  # not-compiling dominates crashes
        assert table[6] >= table[5]

    def test_valid_mutators_are_registry_members(self, campaign):
        for record in campaign.valid:
            assert record.invention.registry_name in global_registry

    def test_deterministic(self):
        a = MetaMut().run_unsupervised(20, seed=9)
        b = MetaMut().run_unsupervised(20, seed=9)
        assert [r.status for r in a.records] == [r.status for r in b.records]

    def test_mean_cost_near_half_dollar(self, campaign):
        assert 0.2 < campaign.ledger.mean_usd() < 0.9
