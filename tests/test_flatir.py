"""Flat slotted IR: round-trips, flat==object differentials, snapshots.

The flat IR (:mod:`repro.compiler.flatir` + :mod:`repro.compiler.passes.flat`)
is a pure representation change: every test here is an equivalence property
against the object-IR pipeline — same IR dumps, same coverage edges, same
stats, same asm, same interpreter observables — over the seed corpus, the
mutator corpus (the fuzzing hot path's actual inputs), and random programs.
"""

import copy
import random
import time

import pytest

from repro.cast.cache import FrontendCache, analyze_front_end, decl_digests
from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.compiler.coverage import CoverageMap
from repro.compiler.driver import Compiler, GCC_SIM
from repro.compiler.flatir import FunctionSnapshot, IRBuffer, from_nodes, to_nodes
from repro.compiler.incremental import assert_results_equal
from repro.compiler.interp import execute
from repro.compiler.irgen import IRGen
from repro.compiler.passes import OptContext, local_opt, cleanup_opt
from repro.compiler.session import CompileSession
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.parallel import CellSpec, cell_key
from repro.fuzzing.progen import GenPolicy, ProgramGenerator
from repro.muast.registry import global_registry
from repro.muast.mutator import apply_mutator
from repro.telemetry.spans import Span, Tracer, _NOOP, span


def _lower(text):
    try:
        unit = parse(text)
    except Exception:
        return None
    sema = Sema()
    if [d for d in sema.analyze(unit) if d.severity == "error"]:
        return None
    try:
        return IRGen(sema, CoverageMap()).lower(unit)
    except Exception:
        return None


def _mutant_corpus(seeds, n=24):
    rng = random.Random(99)
    muts = global_registry.supervised()
    texts = []
    for i in range(n):
        info = muts[rng.randrange(len(muts))]
        out = apply_mutator(
            info.create(random.Random(rng.randrange(1 << 30))),
            seeds[i % len(seeds)],
        )
        if out.changed and out.mutant_text:
            texts.append(out.mutant_text)
    return texts


def _random_texts(n=12, max_stmts=8):
    return [
        ProgramGenerator(random.Random(seed), GenPolicy(max_stmts=max_stmts)).generate()
        for seed in range(n)
    ]


class TestRoundTrip:
    """from_nodes/to_nodes is lossless, in both directions."""

    def _check_program(self, text):
        module = _lower(text)
        if module is None:
            return 0
        checked = 0
        for fn in module.functions.values():
            before = fn.dump()
            buf = from_nodes(fn)
            back = to_nodes(buf)
            assert back.dump() == before
            assert back.name == fn.name
            assert back.params == fn.params
            assert back.slots == fn.slots
            assert back.attributes == fn.attributes
            # Buffer-level round trip: re-encoding the decoded function
            # reproduces the buffer bit-for-bit (pools, blocks, and all).
            assert from_nodes(back) == buf
            checked += 1
        return checked

    def test_seed_corpus(self, small_seeds):
        assert sum(self._check_program(t) for t in small_seeds[:30]) > 30

    def test_mutant_corpus(self, small_seeds):
        mutants = _mutant_corpus(small_seeds[:12])
        assert mutants
        sum(self._check_program(t) for t in mutants)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs(self, seed):
        text = ProgramGenerator(
            random.Random(seed), GenPolicy(max_stmts=8)
        ).generate()
        self._check_program(text)

    def test_original_function_is_untouched(self):
        module = _lower("int main(void) { int x = 3; return x + 4; }")
        fn = module.functions["main"]
        before = fn.dump()
        from_nodes(fn)
        assert fn.dump() == before


class TestFlatOptEquivalence:
    """flat_local_opt == the object-IR round, observables and all."""

    def _check_program(self, text, opt_level=2):
        module = _lower(text)
        if module is None:
            return 0
        checked = 0
        for name in module.functions:
            obj_fn = copy.deepcopy(module.functions[name])
            flat_fn = copy.deepcopy(module.functions[name])
            obj_ctx = OptContext(cov=CoverageMap(), opt_level=opt_level)
            local_opt(obj_fn, obj_ctx)
            flat_ctx = OptContext(cov=CoverageMap(), opt_level=opt_level, flat=True)
            local_opt(flat_fn, flat_ctx)
            assert flat_fn.dump() == obj_fn.dump(), f"IR diverged for {name} in:\n{text}"
            assert frozenset(flat_ctx.cov.edges) == frozenset(obj_ctx.cov.edges)
            assert dict(flat_ctx.stats.counters) == dict(obj_ctx.stats.counters)
            checked += 1
        return checked

    def test_seed_corpus(self, small_seeds):
        assert sum(self._check_program(t) for t in small_seeds[:30]) > 30

    def test_mutant_corpus(self, small_seeds):
        mutants = _mutant_corpus(small_seeds[:12])
        assert mutants
        sum(self._check_program(t) for t in mutants)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs(self, seed):
        text = ProgramGenerator(
            random.Random(seed), GenPolicy(max_stmts=8)
        ).generate()
        self._check_program(text)

    def test_cleanup_opt_matches(self, small_seeds):
        for text in small_seeds[:10]:
            module = _lower(text)
            if module is None:
                continue
            for name in module.functions:
                obj_fn = copy.deepcopy(module.functions[name])
                flat_fn = copy.deepcopy(module.functions[name])
                obj_ctx = OptContext(cov=CoverageMap(), opt_level=2)
                flat_ctx = OptContext(cov=CoverageMap(), opt_level=2, flat=True)
                cleanup_opt(obj_fn, obj_ctx)
                cleanup_opt(flat_fn, flat_ctx)
                assert flat_fn.dump() == obj_fn.dump()
                assert frozenset(flat_ctx.cov.edges) == frozenset(obj_ctx.cov.edges)
                assert dict(flat_ctx.stats.counters) == dict(obj_ctx.stats.counters)

    def test_fused_runs_counted_only_with_fuse(self):
        module = _lower("int main(void) { return 2 + 3; }")
        flat_only = OptContext(cov=CoverageMap(), opt_level=2, flat=True)
        local_opt(copy.deepcopy(module.functions["main"]), flat_only)
        assert flat_only.fused_runs == 0
        flat_fused = OptContext(cov=CoverageMap(), opt_level=2, flat=True, fuse=True)
        local_opt(copy.deepcopy(module.functions["main"]), flat_fused)
        assert flat_fused.fused_runs == 1


class TestFlatCompileEquivalence:
    """Whole flat-ir compiles == whole object-IR compiles, field for field."""

    def _compilers(self):
        flat = Compiler(
            *GCC_SIM, cache=FrontendCache(), session=CompileSession(),
            fuse_passes=True, flat_ir=True,
        )
        return flat, Compiler(*GCC_SIM)

    def test_seed_corpus(self, small_seeds):
        flat, plain = self._compilers()
        for text in small_seeds[:20]:
            for opt in (0, 2):
                a = flat.compile(text, opt_level=opt, paranoid=True)
                b = plain.compile(text, opt_level=opt)
                assert a.crashed == b.crashed
                if not a.crashed:
                    assert_results_equal(a, b)

    def test_mutant_corpus(self, small_seeds):
        flat, plain = self._compilers()
        for text in _mutant_corpus(small_seeds[:12]):
            a = flat.compile(text, opt_level=2, paranoid=True)
            b = plain.compile(text, opt_level=2)
            assert a.crashed == b.crashed
            if not a.crashed:
                assert_results_equal(a, b)

    def test_random_programs(self):
        flat, plain = self._compilers()
        for text in _random_texts(10):
            a = flat.compile(text, opt_level=2, paranoid=True)
            b = plain.compile(text, opt_level=2)
            assert a.crashed == b.crashed
            if not a.crashed:
                assert_results_equal(a, b)


class TestFlatInterpreter:
    """The table-driven flat dispatch loop == the object-IR interpreter."""

    def _check(self, text, opt_level):
        module = _lower(text)
        if module is None:
            return 0
        if opt_level:
            from repro.compiler.passes import run_pipeline

            run_pipeline(module, OptContext(cov=CoverageMap(), opt_level=opt_level))
        obj = execute(module, fuel=100_000)
        flat = execute(module, fuel=100_000, flat=True)
        assert flat.observable == obj.observable, text
        assert flat.reason == obj.reason, text
        assert flat.status == obj.status, text
        return 1

    def test_seed_corpus(self, small_seeds):
        assert sum(self._check(t, 0) + self._check(t, 2) for t in small_seeds[:20]) > 20

    def test_random_programs(self):
        for text in _random_texts(10, max_stmts=10):
            self._check(text, 0)
            self._check(text, 2)


class TestFunctionSnapshot:
    def test_materialize_equals_deepcopy(self, small_seeds):
        for text in small_seeds[:10]:
            module = _lower(text)
            if module is None:
                continue
            for fn in module.functions.values():
                snap = FunctionSnapshot.of(fn)
                assert snap.materialize().dump() == copy.deepcopy(fn).dump()

    def test_materialize_is_memoized(self):
        module = _lower("int main(void) { return 7; }")
        snap = FunctionSnapshot.of(module.functions["main"])
        assert snap.materialize() is snap.materialize()

    def test_snapshot_is_isolated_from_source_mutation(self):
        module = _lower("int main(void) { int x = 1; return x + 2; }")
        fn = module.functions["main"]
        before = fn.dump()
        snap = FunctionSnapshot.of(fn)
        local_opt(fn, OptContext(cov=CoverageMap(), opt_level=2))
        assert fn.dump() != before  # the local round actually changed it
        assert snap.materialize().dump() == before


class TestDeclDigestMemo:
    def test_node_memo_serves_rehash(self):
        text = "int f(int a) { return a + 1; }\nint main(void) { return f(41); }"
        entry = analyze_front_end(text)
        first = decl_digests(entry)
        # Drop the entry-level memo: the per-node attribute must now serve
        # every decl without re-hashing, and must count its hits.
        entry.memo.pop("decl_digests")
        stats = {"decl_digest_memo_hits": 0}
        second = decl_digests(entry, memo_stats=stats)
        assert second == first
        assert stats["decl_digest_memo_hits"] == len(entry.unit.decls)

    def test_session_surfaces_counter(self):
        session = CompileSession()
        assert session.stats()["decl_digest_memo_hits"] == 0
        comp = Compiler(*GCC_SIM, cache=FrontendCache(), session=session)
        comp.compile("int main(void) { return 3; }")
        assert "decl_digest_memo_hits" in session.stats()


class TestSpanBinding:
    def test_tracerless_span_is_shared_noop(self):
        assert span(None, "lex") is _NOOP
        assert span(None, "opt") is _NOOP

    def test_fieldless_spans_are_prebound(self):
        tracer = Tracer(timings={})
        assert tracer.span("opt") is tracer.span("opt")
        assert span(tracer, "opt") is tracer.span("opt")
        # Spans with fields stay per-call (fields differ per use).
        assert tracer.span("mutate", mutator="m") is not tracer.span(
            "mutate", mutator="m"
        )

    def test_prebound_span_survives_reentry(self):
        tracer = Tracer(timings={})
        with tracer.span("opt"):
            with tracer.span("opt"):
                pass
        assert tracer.timings["opt"] >= 0.0
        assert not tracer.span("opt")._starts

    def test_span_overhead_micro_bench(self):
        # Telemetry-on per-stage cost must stay in perf_counter territory:
        # no allocation per span.  The bound is deliberately loose (CI
        # machines jitter); it catches an accidental return to per-call
        # object construction (~an order of magnitude more work), not noise.
        tracer = Tracer(timings={})
        n = 20_000
        bound = tracer.span("opt")
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("opt"):
                pass
        elapsed = time.perf_counter() - t0
        assert tracer.span("opt") is bound
        assert elapsed / n < 50e-6, f"span overhead {elapsed / n:.2e}s/span"


class TestFlatKnobPlumbing:
    def test_mucfuzz_knob_sets_compiler(self, registry, small_seeds):
        comp = Compiler(*GCC_SIM)
        fuzzer = MuCFuzz(
            comp, random.Random(1), small_seeds[:4], registry.supervised(),
            flat_ir=True,
        )
        assert comp.flat_ir is True
        fuzzer.step()

    def test_cell_key_includes_flat_ir(self, small_seeds):
        base = dict(
            fuzzer_name="uCFuzz.s", personality="gcc-sim", version="14",
            bug_seed=20240427, seeds=tuple(small_seeds[:2]), steps=3,
            cell_seed=7,
        )
        assert cell_key(CellSpec(**base, flat_ir=True)) != cell_key(
            CellSpec(**base)
        )

    def test_flat_campaign_matches_object_campaign(self, registry, small_seeds):
        from repro.fuzzing.campaign import run_campaign

        def run(flat):
            comp = Compiler(*GCC_SIM)
            fuzzer = MuCFuzz(
                comp, random.Random(5), list(small_seeds[:6]),
                registry.supervised(), session=True, fuse_passes=True,
                flat_ir=flat, batch_compile=True,
            )
            return run_campaign(fuzzer, steps=12)

        a, b = run(True), run(False)
        assert a.coverage_trend == b.coverage_trend
        assert a.crashes.to_json() == b.crashes.to_json()
        assert a.compiled == b.compiled
        assert a.total == b.total
