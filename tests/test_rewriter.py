"""Rewriter tests: edit application, conflicts, insertions."""

from hypothesis import given, strategies as st

from repro.cast.rewriter import Rewriter
from repro.cast.source import SourceFile, SourceLocation, SourceRange


def make(text="0123456789"):
    return Rewriter(SourceFile(text))


class TestReplace:
    def test_single_replacement(self):
        rw = make()
        assert rw.replace_text(SourceRange.of(2, 4), "XY")
        assert rw.rewritten_text() == "01XY456789"

    def test_replacement_with_different_length(self):
        rw = make()
        assert rw.replace_text(SourceRange.of(0, 5), "*")
        assert rw.rewritten_text() == "*56789"

    def test_two_disjoint_edits(self):
        rw = make()
        assert rw.replace_text(SourceRange.of(0, 2), "A")
        assert rw.replace_text(SourceRange.of(8, 10), "B")
        assert rw.rewritten_text() == "A234567B"

    def test_edits_applied_in_position_order(self):
        rw = make()
        # Register in reverse order; output must still be positional.
        assert rw.replace_text(SourceRange.of(6, 8), "b")
        assert rw.replace_text(SourceRange.of(2, 4), "a")
        assert rw.rewritten_text() == "01a45b89"

    def test_overlapping_replacements_rejected(self):
        rw = make()
        assert rw.replace_text(SourceRange.of(2, 6), "A")
        assert not rw.replace_text(SourceRange.of(4, 8), "B")
        assert rw.rewritten_text() == "01A6789"

    def test_adjacent_replacements_allowed(self):
        rw = make()
        assert rw.replace_text(SourceRange.of(2, 4), "A")
        assert rw.replace_text(SourceRange.of(4, 6), "B")
        assert rw.rewritten_text() == "01AB6789"

    def test_remove_text(self):
        rw = make()
        assert rw.remove_text(SourceRange.of(3, 7))
        assert rw.rewritten_text() == "012789"

    def test_out_of_bounds_rejected(self):
        rw = make()
        assert not rw.replace_text(SourceRange.of(5, 99), "X")
        assert not rw.replace_text(SourceRange.of(-1, 2), "X")


class TestInsertions:
    def test_insert_before(self):
        rw = make()
        assert rw.insert_text_before(SourceLocation(5), "^")
        assert rw.rewritten_text() == "01234^56789"

    def test_insert_at_ends(self):
        rw = make()
        assert rw.insert_text_before(SourceLocation(0), "<")
        assert rw.insert_text_after(SourceLocation(10), ">")
        assert rw.rewritten_text() == "<0123456789>"

    def test_insertion_inside_replacement_rejected(self):
        rw = make()
        assert rw.replace_text(SourceRange.of(2, 8), "X")
        assert not rw.insert_text_before(SourceLocation(5), "^")

    def test_insertion_at_replacement_boundary_allowed(self):
        rw = make()
        assert rw.replace_text(SourceRange.of(2, 5), "X")
        assert rw.insert_text_before(SourceLocation(2), "^")
        assert rw.rewritten_text() == "01^X56789"

    def test_replacement_over_prior_insertion_rejected(self):
        rw = make()
        assert rw.insert_text_before(SourceLocation(5), "^")
        assert not rw.replace_text(SourceRange.of(2, 8), "X")

    def test_same_point_insertions_keep_order(self):
        rw = make()
        assert rw.insert_text_before(SourceLocation(5), "a")
        assert rw.insert_text_before(SourceLocation(5), "b")
        assert rw.rewritten_text() == "01234ab56789"

    def test_has_edits(self):
        rw = make()
        assert not rw.has_edits
        rw.insert_text_before(SourceLocation(0), "x")
        assert rw.has_edits and rw.edit_count() == 1


@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9), st.text("abc", max_size=3)),
        max_size=8,
    )
)
def test_rewritten_text_preserves_untouched_regions(edits):
    """Characters outside accepted edit ranges always survive in order."""
    text = "0123456789"
    rw = Rewriter(SourceFile(text))
    accepted = []
    for lo, hi, replacement in edits:
        lo, hi = min(lo, hi), max(lo, hi)
        if rw.replace_text(SourceRange.of(lo, hi), replacement):
            accepted.append((lo, hi, replacement))
    out = rw.rewritten_text()
    covered = set()
    for lo, hi, _r in accepted:
        covered.update(range(lo, hi))
    untouched = [c for i, c in enumerate(text) if i not in covered]
    # The untouched characters appear in `out` in their original order.
    it = iter(out)
    assert all(ch in it for ch in untouched)
