"""Data layout and IR structure tests."""

import pytest

from repro.cast import types as ct
from repro.compiler import layout
from repro.compiler.ir import (
    BinOp, Block, Br, ImmInt, IRFunction, IRType, Jmp, Ret, Temp,
)


class TestSizes:
    @pytest.mark.parametrize(
        "qt,size",
        [
            (ct.CHAR, 1), (ct.INT, 4), (ct.LONG, 8), (ct.LONGLONG, 8),
            (ct.FLOAT, 4), (ct.DOUBLE, 8), (ct.INT_PTR, 8),
            (ct.COMPLEX_DOUBLE, 16),
            (ct.array_of(ct.INT, 10), 40),
            (ct.array_of(ct.array_of(ct.CHAR, 3), 2), 6),
        ],
    )
    def test_size_of(self, qt, size):
        assert layout.size_of(qt) == size

    def test_struct_layout_with_padding(self):
        rec = ct.RecordType(
            "struct", "s", (("c", ct.CHAR), ("x", ct.LONG), ("y", ct.INT))
        )
        offsets, size = layout.record_layout(rec)
        assert offsets == {"c": 0, "x": 8, "y": 16}
        assert size == 24  # padded to 8-byte alignment

    def test_union_layout(self):
        rec = ct.RecordType("union", "u", (("i", ct.INT), ("d", ct.DOUBLE)))
        offsets, size = layout.record_layout(rec)
        assert offsets == {"i": 0, "d": 0}
        assert size == 8

    def test_ir_type_mapping(self):
        assert layout.ir_type_of(ct.INT) is IRType.I32
        assert layout.ir_type_of(ct.CHAR) is IRType.I8
        assert layout.ir_type_of(ct.DOUBLE) is IRType.F64
        assert layout.ir_type_of(ct.INT_PTR) is IRType.PTR


class TestIRStructure:
    def _fn(self):
        fn = IRFunction("f", [], IRType.I32)
        entry = Block("entry")
        exit_ = Block("exit")
        entry.instrs = [
            BinOp(Temp(1), "+", ImmInt(1), ImmInt(2), IRType.I32),
            Br(Temp(1), "exit", "exit"),
        ]
        exit_.instrs = [Ret(Temp(1), IRType.I32)]
        fn.blocks = [entry, exit_]
        return fn

    def test_successors(self):
        fn = self._fn()
        assert fn.blocks[0].successors() == ["exit", "exit"]
        assert fn.blocks[1].successors() == []

    def test_predecessors(self):
        fn = self._fn()
        preds = fn.predecessors()
        assert preds["exit"] == ["entry", "entry"]

    def test_terminator_detection(self):
        fn = self._fn()
        assert isinstance(fn.blocks[0].terminator, Br)
        block = Block("open", [BinOp(Temp(2), "+", ImmInt(0), ImmInt(0), IRType.I32)])
        assert block.terminator is None

    def test_replace_operands(self):
        instr = BinOp(Temp(1), "+", Temp(2), ImmInt(3), IRType.I32)
        instr.replace_operands({Temp(2): ImmInt(9)})
        assert instr.lhs == ImmInt(9)

    def test_dump_is_textual(self):
        text = self._fn().dump()
        assert "entry:" in text and "ret" in text
