"""μAST API tests: visitor dispatch, Mutator base APIs, apply_mutator."""

import random

import pytest

from repro.cast import ast_nodes as ast
from repro.cast.parser import parse
from repro.muast import ASTVisitor, Mutator, apply_mutator
from repro.muast.mutator import MutatorCrash

PROGRAM = """
int total = 3;
int scale(int v, int unused_arg) {
  if (v > 2) { v = v * total; }
  return v + 1;
}
int main(void) {
  int x = scale(4, 9);
  printf("%d\\n", x);
  return 0;
}
"""


class CollectingVisitor(ASTVisitor):
    def __init__(self):
        self.if_stmts = []
        self.calls = []
        self.all_nodes = 0

    def visit_IfStmt(self, node):
        self.if_stmts.append(node)

    def visit_CallExpr(self, node):
        self.calls.append(node)

    def visit_node(self, node):
        self.all_nodes += 1


class TestVisitor:
    def test_kind_dispatch(self):
        visitor = CollectingVisitor()
        visitor.traverse(parse(PROGRAM))
        assert len(visitor.if_stmts) == 1
        assert len(visitor.calls) == 2  # scale(...) and printf(...)
        assert visitor.all_nodes > 20

    def test_returning_false_stops_descent(self):
        class PruningVisitor(ASTVisitor):
            def __init__(self):
                self.seen_calls = 0

            def visit_FunctionDecl(self, node):
                return node.name == "main"  # only descend into main

            def visit_CallExpr(self, node):
                self.seen_calls += 1

        visitor = PruningVisitor()
        visitor.traverse(parse(PROGRAM))
        assert visitor.seen_calls == 2  # scale(4, 9) and printf(...)


class _NoopMutator(Mutator, ASTVisitor):
    def mutate(self):
        return False


class _DeleteFirstIf(Mutator, ASTVisitor):
    def mutate(self):
        ifs = self.collect(ast.IfStmt)
        if not ifs:
            return False
        return self.replace_text(ifs[0].range, ";")


class TestApplyMutator:
    def test_unchanged_outcome(self):
        outcome = apply_mutator(_NoopMutator(), PROGRAM)
        assert not outcome.changed and outcome.mutant_text is None

    def test_changed_outcome_rewrites(self):
        outcome = apply_mutator(_DeleteFirstIf(), PROGRAM)
        assert outcome.changed
        assert "v = v * total" not in outcome.mutant_text

    def test_invalid_input_not_mutated(self):
        outcome = apply_mutator(_DeleteFirstIf(), "int x = ;")
        assert not outcome.changed and outcome.error is not None

    def test_noncompiling_input_not_mutated(self):
        outcome = apply_mutator(_DeleteFirstIf(), "int f(void) { return y; }")
        assert outcome.error == "input does not compile"


class TestMutatorAPIs:
    def _bound(self, mutator_cls=_NoopMutator, text=PROGRAM):
        m = mutator_cls(random.Random(1))
        apply_mutator(m, text)
        return m

    def test_get_source_text(self):
        m = self._bound()
        fn = m.get_ast_context().unit.functions()[0]
        assert m.get_source_text(fn).startswith("int scale")

    def test_find_str_loc_from(self):
        m = self._bound()
        loc = m.find_str_loc_from(m.get_ast_context().unit.range.begin, "printf")
        assert loc is not None
        assert PROGRAM[loc.offset : loc.offset + 6] == "printf"

    def test_find_braces_range(self):
        m = self._bound()
        fn = m.get_ast_context().unit.functions()[0]
        rng = m.find_braces_range(fn.range.begin)
        assert rng is not None
        text = m.get_ast_context().source.slice(rng)
        assert text.startswith("{") and text.endswith("}")

    def test_rand_element_empty_raises_crash(self):
        m = self._bound()
        with pytest.raises(MutatorCrash):
            m.rand_element([])

    def test_generate_unique_name_is_fresh(self):
        m = self._bound()
        name = m.generate_unique_name("total")
        assert name not in PROGRAM

    def test_enclosing_function(self):
        m = self._bound()
        ifs = m.collect(ast.IfStmt)
        fn = m.enclosing_function(ifs[0])
        assert fn is not None and fn.name == "scale"

    def test_check_binop(self):
        m = self._bound()
        binops = [
            b for b in m.collect(ast.BinaryOperator)
            if isinstance(b, ast.BinaryOperator) and b.op == "*"
        ]
        b = binops[0]
        assert m.check_binop("+", b.lhs, b.rhs)
        assert m.check_binop("%", b.lhs, b.rhs)

    def test_remove_parm_from_func_decl(self):
        class DropParam(Mutator, ASTVisitor):
            def mutate(self):
                fn = self.get_ast_context().unit.functions()[0]
                ok = self.remove_parm_from_func_decl(fn, fn.params[1])
                from repro.mutators.common import call_sites_of

                for call in call_sites_of(self, fn.name):
                    ok = self.remove_arg_from_expr(call, 1) and ok
                return ok

        outcome = apply_mutator(DropParam(), PROGRAM)
        assert outcome.changed
        assert "unused_arg" not in outcome.mutant_text
        assert "scale(4)" in outcome.mutant_text
        # And the result still compiles.
        from repro.cast.sema import Sema

        errs = [
            d
            for d in Sema().analyze(parse(outcome.mutant_text))
            if d.severity == "error"
        ]
        assert not errs

    def test_default_values(self):
        from repro.cast import types as ct

        m = self._bound()
        assert m.default_value_for(ct.INT) == "0"
        assert m.default_value_for(ct.DOUBLE) == "0.0"
        assert m.default_value_for(ct.INT_PTR) == "0"
