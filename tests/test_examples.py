"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "MetaMut generated a mutator" in result.stdout
    assert "Compile result" in result.stdout


def test_fuzzing_campaign_small():
    result = run_example("fuzzing_campaign.py", "15")
    assert result.returncode == 0, result.stderr
    for name in ("uCFuzz.s", "uCFuzz.u", "AFL++", "GrayC", "Csmith", "YARPGen"):
        assert name in result.stdout


def test_bug_hunting_small():
    result = run_example("bug_hunting.py", "25")
    assert result.returncode == 0, result.stderr
    assert "Table 6-style report" in result.stdout
    assert "Reported" in result.stdout


def test_mutator_gallery_filtered():
    result = run_example("mutator_gallery.py", "DuplicateBranch")
    assert result.returncode == 0, result.stderr
    assert "DuplicateBranch" in result.stdout
    assert "1/1 mutators demonstrated" in result.stdout


def test_differential_testing_small():
    result = run_example("differential_testing.py", "5")
    assert result.returncode == 0, result.stderr
    assert "0 behavioural disagreements" in result.stdout
