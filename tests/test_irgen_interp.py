"""IR generation + interpreter: programs must compute correct results."""

import pytest

from repro.cast.parser import parse
from repro.cast.sema import Sema
from repro.compiler.coverage import CoverageMap
from repro.compiler.irgen import IRGen
from repro.compiler.interp import execute


def run(text, fuel=400_000):
    unit = parse(text)
    sema = Sema()
    diags = sema.analyze(unit)
    assert not [d for d in diags if d.severity == "error"], diags
    module = IRGen(sema, CoverageMap()).lower(unit)
    return execute(module, fuel=fuel)


CASES = [
    ("int main(void) { return 7; }", 7, ""),
    ("int main(void) { int a = 3; int b = 4; return a * b; }", 12, ""),
    ("int main(void) { int x = 10; if (x > 5) return 1; return 2; }", 1, ""),
    ("int main(void) { int i, s = 0; for (i = 0; i < 5; i++) s += i; return s; }", 10, ""),
    ("int main(void) { int n = 3, s = 0; while (n) { s += n; n--; } return s; }", 6, ""),
    ("int main(void) { int n = 0, c = 0; do { c++; n++; } while (n < 4); return c; }", 4, ""),
    ("int f(int a, int b) { return a - b; } int main(void) { return f(9, 4); }", 5, ""),
    ("int main(void) { int a[4] = {1, 2, 3, 4}; return a[0] + a[3]; }", 5, ""),
    ("int g = 40; int main(void) { g += 2; return g; }", 42, ""),
    ("int main(void) { printf(\"hi %d\\n\", 5); return 0; }", 0, "hi 5\n"),
    ("int main(void) { int x = 6; switch (x & 3) { case 2: return 20; default: return 9; } }", 20, ""),
    ("int main(void) { int x = 1; switch (x) { case 1: x = 5; case 2: x += 2; break; default: x = 0; } return x; }", 7, ""),
    ("int main(void) { int i = 0; goto skip; i = 99; skip: return i; }", 0, ""),
    ("int main(void) { return 1 ? 11 : 22; }", 11, ""),
    ("int main(void) { int a = 0; int b = (a = 3, a + 1); return b; }", 4, ""),
    ("int main(void) { int x = 5; int *p = &x; *p = 9; return x; }", 9, ""),
    ("struct s { int a; int b; }; int main(void) { struct s v = {3, 4}; return v.a + v.b; }", 7, ""),
    ("struct s { int a; }; int main(void) { struct s v; struct s *p = &v; p->a = 8; return v.a; }", 8, ""),
    ("int main(void) { char c = 'A'; return c + 1; }", 66, ""),
    ("int main(void) { double d = 2.5; return (int)(d * 4.0); }", 10, ""),
    ("int main(void) { unsigned u = 3; return (int)(u << 2); }", 12, ""),
    ("int main(void) { int a = -7; return a % 3 == -1; }", 1, ""),  # C truncation
    ("int main(void) { return (int)sizeof(long) + (int)sizeof(char); }", 9, ""),
    ("int main(void) { int x = 0; x = 5 && 0; int y = 5 || 0; return x + y; }", 1, ""),
    ("int main(void) { enum e { A = 4, B }; return B; }", 5, ""),
    ("static char b[8]; int main(void) { int n = sprintf(b, \"%s\", \"abc\"); return n; }", 3, ""),
    ("int main(void) { char s[6] = \"hello\"; return (int)strlen(s); }", 5, ""),
    ("int main(void) { int a[3] = {1, 2, 3}; int i = 1; return i[a]; }", 2, ""),
    ("_Complex double z; int main(void) { __real z = 2.0; __imag z = 3.0; return (int)(__real z + __imag z); }", 5, ""),
    ("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void) { return fib(10); }", 55, ""),
    ("int main(void) { int x = 100; { int x = 5; x++; } return x; }", 100, ""),
    ("void bump(int *p) { *p += 4; } int main(void) { int v = 1; bump(&v); return v; }", 5, ""),
    ("int main(void) { long big = 1; int i; for (i = 0; i < 40; i++) big *= 2; return big > 0; }", 1, ""),
    ("int main(void) { int v = 0x7FFFFFFF; v = v + 1; return v < 0; }", 1, ""),  # wraparound
]


@pytest.mark.parametrize("text,code,out", CASES)
def test_program_semantics(text, code, out):
    result = run(text)
    assert result.status == "ok", result
    assert result.return_code == code & 0xFF
    assert result.output == out


class TestRuntimeBehaviour:
    def test_abort_is_reported(self):
        result = run("int main(void) { abort(); return 0; }")
        assert result.status == "abort"

    def test_exit_sets_code(self):
        result = run("int main(void) { exit(3); return 9; }")
        assert result.status == "ok" and result.return_code == 3

    def test_division_by_zero_traps(self):
        result = run("int main(void) { int z = 0; return 4 / z; }")
        assert result.status == "trap"

    def test_out_of_bounds_traps(self):
        result = run("int main(void) { int a[2]; return a[7]; }")
        assert result.status == "trap"

    def test_infinite_loop_times_out(self):
        result = run("int main(void) { while (1) { } return 0; }", fuel=5_000)
        assert result.status == "timeout"

    def test_malloc_and_free(self):
        result = run(
            "int main(void) { int *p = malloc(8); *p = 6; int v = *p; "
            "free(p); return v; }"
        )
        assert result.return_code == 6

    def test_memset_and_memcpy(self):
        result = run(
            "char a[4]; char b[4];\n"
            "int main(void) { memset(a, 65, 3); memcpy(b, a, 4); "
            "printf(\"%s\", b); return 0; }"
        )
        assert result.output == "AAA"

    def test_wild_pointer_traps(self):
        result = run("int main(void) { int *p = 0; return *p; }")
        assert result.status == "trap"
