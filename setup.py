"""Setup script.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments without the ``wheel`` package (legacy editable install path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of MetaMut (ASPLOS'24): fuzzing compilers with "
        "LLM-generated mutation operators"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
