"""Helpers shared by the mutator library."""

from __future__ import annotations

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.muast.mutator import Mutator

#: Integer literals that exercise boundary behaviour in optimizers.
BOUNDARY_INTS = (
    0, 1, -1, 2, 127, 128, 255, 256, 32767, 32768, 65535, 65536,
    0x7FFFFFFF, -0x80000000, 0xFFFFFFFF, 0x7FFFFFFFFFFFFFFF,
)


def paren(text: str) -> str:
    return f"({text})"


def is_plain_binop(b: ast.BinaryOperator) -> bool:
    """A non-assignment, non-comma binary operator."""
    return b.op not in ast.ASSIGN_OPS and b.op != ","


def int_typed(expr: ast.Expr) -> bool:
    return expr.type is not None and expr.type.is_integer()


def arith_typed(expr: ast.Expr) -> bool:
    return expr.type is not None and expr.type.is_arithmetic()


def scalar_typed(expr: ast.Expr) -> bool:
    return expr.type is not None and expr.type.decayed().is_scalar()


def condition_exprs(m: Mutator) -> list[ast.Expr]:
    """Conditions of if/while/do/for statements (never case labels)."""
    ctx = m.get_ast_context()
    conds: list[ast.Expr] | None = ctx.memo.get("condition_exprs")
    if conds is None:
        conds = []
        for node in ctx.all_nodes():
            if isinstance(node, (ast.IfStmt, ast.WhileStmt, ast.DoStmt)):
                conds.append(node.cond)
            elif isinstance(node, ast.ForStmt) and node.cond is not None:
                conds.append(node.cond)
        ctx.memo["condition_exprs"] = conds
    return list(conds)


def mutable_scalar_refs(m: Mutator) -> list[ast.DeclRefExpr]:
    """References to non-const scalar variables (assignable lvalues)."""
    refs = []
    for ref in m.collect(ast.DeclRefExpr):
        assert isinstance(ref, ast.DeclRefExpr)
        if (
            ref.type is not None
            and ref.type.is_scalar()
            and not ref.type.const
            and isinstance(ref.decl, (ast.VarDecl, ast.ParmVarDecl))
        ):
            refs.append(ref)
    return refs


def local_var_decls(m: Mutator, fn: ast.FunctionDecl) -> list[ast.VarDecl]:
    """VarDecls declared inside ``fn``'s body."""
    assert fn.body is not None
    return [n for n in fn.body.walk() if isinstance(n, ast.VarDecl)]


def body_statements(fn: ast.FunctionDecl) -> list[ast.Stmt]:
    """All statements inside a function body (excluding the body itself)."""
    assert fn.body is not None
    return [
        n
        for n in fn.body.walk()
        if isinstance(n, ast.Stmt) and n is not fn.body
    ]


def is_removable_stmt(stmt: ast.Stmt) -> bool:
    """Statements that can be deleted without dangling references/labels."""
    if isinstance(stmt, (ast.DeclStmt, ast.CaseStmt, ast.DefaultStmt)):
        return False
    for n in stmt.walk():
        if isinstance(n, (ast.DeclStmt, ast.LabelStmt, ast.CaseStmt, ast.DefaultStmt)):
            return False
    return True


def stmts_directly_in(block: ast.CompoundStmt) -> list[ast.Stmt]:
    return list(block.stmts)


def spelled_scalar_type(ty: ct.QualType) -> str | None:
    """The plain spelling of a builtin scalar type, or None."""
    if isinstance(ty.type, ct.BuiltinType) and ty.is_arithmetic():
        return ty.type.spelling()
    return None


def references_only_globals(m: Mutator, node: ast.Node) -> bool:
    """Whether every DeclRef under ``node`` resolves to file scope.

    Global variables, functions (including implicitly-declared library
    functions, whose ``decl`` is None but whose type is a function type), and
    enum constants qualify; parameters and locals do not.
    """
    for ref in node.walk():
        if not isinstance(ref, ast.DeclRefExpr):
            continue
        decl = ref.decl
        if isinstance(decl, (ast.FunctionDecl, ast.EnumConstantDecl)):
            continue
        if isinstance(decl, ast.VarDecl) and decl.is_global:
            continue
        if decl is None and ref.type is not None and ref.type.is_function():
            continue
        return False
    return True


def parent_map(unit: ast.TranslationUnit) -> dict[int, ast.Node]:
    """Map ``id(node)`` → parent node for the whole unit."""
    parents: dict[int, ast.Node] = {}
    stack: list[ast.Node] = [unit]
    while stack:
        node = stack.pop()
        for child in node.children():
            parents[id(child)] = node
            stack.append(child)
    return parents


def shared_parent_map(m: Mutator) -> dict[int, ast.Node]:
    """The unit's parent map, memoized on the shared AST context.

    Consumers only look nodes up; the cached dict is handed out directly so
    repeat calls within (and across) mutation attempts cost nothing.
    """
    ctx = m.get_ast_context()
    parents: dict[int, ast.Node] | None = ctx.memo.get("parent_map")
    if parents is None:
        parents = parent_map(ctx.unit)
        ctx.memo["parent_map"] = parents
    return parents


def _constant_context_roots(unit: ast.TranslationUnit) -> list[ast.Node]:
    """Expressions that must remain integer constant expressions."""
    roots: list[ast.Node] = []
    for node in unit.walk():
        if isinstance(node, ast.CaseStmt):
            roots.append(node.expr)
        elif isinstance(node, ast.EnumConstantDecl) and node.value is not None:
            roots.append(node.value)
        elif isinstance(node, ast.VarDecl) and node.is_global and node.init is not None:
            # File-scope initializers must stay constant expressions.
            roots.append(node.init)
    return roots


def replaceable_rvalue_exprs(m: Mutator) -> list[ast.Expr]:
    """Expressions whose text may be replaced by an arbitrary rvalue.

    Excludes lvalue positions (assignment targets, ``&``/``++``/``--``
    operands, member/subscript/call bases) and integer-constant contexts
    (case labels, enumerator values), where substituting a general expression
    would not compile.
    """
    ctx = m.get_ast_context()
    cached: list[ast.Expr] | None = ctx.memo.get("replaceable_rvalue_exprs")
    if cached is not None:
        return list(cached)
    unit = ctx.unit
    parents = shared_parent_map(m)
    protected: set[int] = set()
    for root in _constant_context_roots(unit):
        for n in root.walk():
            protected.add(id(n))
    for node in ctx.all_nodes():
        if isinstance(node, ast.BinaryOperator) and node.is_assignment:
            protected.add(id(node.lhs))
        elif isinstance(node, ast.UnaryOperator) and node.op in ("&", "++", "--"):
            protected.add(id(node.operand))
        elif isinstance(node, ast.CallExpr):
            protected.add(id(node.callee))
        elif isinstance(node, ast.MemberExpr):
            protected.add(id(node.base))
        elif isinstance(node, ast.ArraySubscriptExpr):
            protected.add(id(node.base))
        elif isinstance(node, ast.InitListExpr):
            # Positional aggregate initializers are type-directed; keep them.
            for child in node.inits:
                protected.add(id(child))
    # Protection is transitive through ParenExpr (``(&(x))``-style operands).
    out: list[ast.Expr] = []
    for node in ctx.all_nodes():
        if not isinstance(node, ast.Expr) or node.type is None:
            continue
        if isinstance(node, (ast.InitListExpr, ast.StringLiteral)):
            continue
        blocked = False
        probe: ast.Node | None = node
        while probe is not None:
            if id(probe) in protected:
                blocked = True
                break
            parent = parents.get(id(probe))
            if not isinstance(parent, ast.ParenExpr):
                break
            probe = parent
        if not blocked:
            out.append(node)
    ctx.memo["replaceable_rvalue_exprs"] = out
    return list(out)


def statement_level_incdec(m: Mutator) -> list[ast.UnaryOperator]:
    """``++``/``--`` expressions whose value is discarded (stmt or for-inc)."""
    unit = m.get_ast_context().unit
    out: list[ast.UnaryOperator] = []
    for node in unit.walk():
        expr: ast.Expr | None = None
        if isinstance(node, ast.ExprStmt):
            expr = node.expr
        elif isinstance(node, ast.ForStmt):
            expr = node.inc
        if isinstance(expr, ast.UnaryOperator) and expr.op in ("++", "--"):
            out.append(expr)
    return out


def loose_breaks(root: ast.Node, *, continues: bool = True) -> list[ast.Stmt]:
    """Break/continue statements under ``root`` that bind *outside* it.

    A ``break`` bound to a loop or switch nested inside ``root`` is fine to
    move/copy along with ``root``; one that binds to an enclosing construct is
    not.  ``continues=False`` restricts the search to ``break``.
    """
    out: list[ast.Stmt] = []

    def walk(node: ast.Node, loop_depth: int, breakable_depth: int) -> None:
        if isinstance(node, (ast.WhileStmt, ast.DoStmt, ast.ForStmt)):
            for child in node.children():
                walk(child, loop_depth + 1, breakable_depth + 1)
            return
        if isinstance(node, ast.SwitchStmt):
            walk(node.cond, loop_depth, breakable_depth)
            walk(node.body, loop_depth, breakable_depth + 1)
            return
        if isinstance(node, ast.BreakStmt) and breakable_depth == 0:
            out.append(node)
        elif isinstance(node, ast.ContinueStmt) and continues and loop_depth == 0:
            out.append(node)
        for child in node.children():
            walk(child, loop_depth, breakable_depth)

    walk(root, 0, 0)
    return out


def contains_label_or_case(root: ast.Node) -> bool:
    """Whether ``root`` contains label/case/default statements (unsafe to copy)."""
    return any(
        isinstance(n, (ast.LabelStmt, ast.CaseStmt, ast.DefaultStmt))
        for n in root.walk()
    )


def safe_to_copy(root: ast.Stmt) -> bool:
    """Whether duplicating this statement's text elsewhere stays compilable.

    Copied label/case/default statements collide with their originals;
    declarations are fine because every copy target introduces a new scope.
    """
    return not contains_label_or_case(root)


def call_sites_of(m: Mutator, fn_name: str) -> list[ast.CallExpr]:
    return [
        c
        for c in m.collect(ast.CallExpr)
        if isinstance(c, ast.CallExpr) and c.callee_name() == fn_name
    ]


def address_taken(m: Mutator, fn_name: str) -> bool:
    """Whether the function name is referenced outside a call position."""
    calls = set()
    for c in call_sites_of(m, fn_name):
        node = c.callee
        while isinstance(node, ast.ParenExpr):
            node = node.inner
        calls.add(id(node))
    for ref in m.collect(ast.DeclRefExpr):
        if isinstance(ref, ast.DeclRefExpr) and ref.name == fn_name:
            if id(ref) not in calls and isinstance(ref.decl, ast.FunctionDecl):
                return True
    return False
