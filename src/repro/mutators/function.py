"""Function mutators (19).

Includes the paper's walkthrough mutator ``ModifyFunctionReturnTypeToVoid``
(Ret2V, Figures 3-5 and the Clang #63762 bug) and the "creative" examples
``SimpleUninliner`` and ``InlineSimpleFunction``.
"""

from __future__ import annotations

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.cast.source import SourceRange
from repro.muast import ASTVisitor, Mutator, register_mutator
from repro.mutators.common import (
    address_taken,
    call_sites_of,
    contains_label_or_case,
    loose_breaks,
    shared_parent_map,
    references_only_globals,
)


def _definitions(m: Mutator) -> list[ast.FunctionDecl]:
    return m.get_ast_context().function_definitions()


def _decls_named(m: Mutator, name: str) -> list[ast.FunctionDecl]:
    return [
        d
        for d in m.get_ast_context().unit.decls
        if isinstance(d, ast.FunctionDecl) and d.name == name
    ]


def _has_separate_prototype(m: Mutator, fn: ast.FunctionDecl) -> bool:
    return len(_decls_named(m, fn.name)) > 1


def _rewritable_function(m: Mutator, fn: ast.FunctionDecl) -> bool:
    """A definition whose signature we may change without desync."""
    if fn.name == "main" or fn.body is None:
        return False
    if _has_separate_prototype(m, fn) or address_taken(m, fn.name):
        return False
    return all(
        len(c.args) == len(fn.params) for c in call_sites_of(m, fn.name)
    )


def _storage_prefix(fn: ast.FunctionDecl) -> str:
    return f"{fn.storage} " if fn.storage else ""


@register_mutator(
    "ModifyFunctionReturnTypeToVoid",
    "Change a function's return type to void, remove all return statements, "
    "and replace all uses of the function's result with a default value.",
    category="Function", origin="supervised", creative=True,
    action="Modify", structure="FunctionReturnType",
)
class ModifyFunctionReturnTypeToVoid(Mutator, ASTVisitor):
    """The paper's Ret2V mutator (Figure 4's fixed version)."""

    def __init__(self, rng=None) -> None:
        super().__init__(rng)
        self.func_returns: dict[int, list[ast.ReturnStmt]] = {}
        self.func_calls: dict[str, list[ast.CallExpr]] = {}
        self.the_functions: list[ast.FunctionDecl] = []

    def mutate(self) -> bool:
        ctx = self.get_ast_context()
        for fn in _definitions(self):
            if fn.return_type.is_void() or fn.name == "main":
                continue
            if not fn.return_type.is_scalar():
                continue
            if address_taken(self, fn.name) or _has_separate_prototype(self, fn):
                continue
            self.the_functions.append(fn)
            assert fn.body is not None
            self.func_returns[id(fn)] = [
                n for n in fn.body.walk() if isinstance(n, ast.ReturnStmt)
            ]
            self.func_calls[fn.name] = call_sites_of(self, fn.name)
        if not self.the_functions:
            return False
        func = self.rand_element(self.the_functions)

        # Change the return type to void.
        void_decl = f"{_storage_prefix(func)}void"
        self.replace_text(func.return_type_range, void_decl)

        # Remove all return statements (of this function only — the bug GPT-4
        # fixed in the paper's refinement round).
        for ret in self.func_returns[id(func)]:
            self.replace_text(ret.range, ";")

        # Replace all calls with a default value of the old result type.
        replace_text = self.default_value_for(func.return_type)
        for call in self.func_calls[func.name]:
            self.replace_text(call.range, replace_text)
        return True


@register_mutator(
    "SimpleUninliner",
    "Turn a block of code into a function call.",
    category="Function", origin="supervised", creative=True,
    action="Lift", structure="CompoundStmt",
)
class SimpleUninliner(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        parents = shared_parent_map(self)
        candidates = []
        for block in self.collect(ast.CompoundStmt):
            assert isinstance(block, ast.CompoundStmt)
            if isinstance(parents.get(id(block)), ast.FunctionDecl):
                continue
            if not block.stmts or contains_label_or_case(block):
                continue
            if loose_breaks(block):
                continue
            if any(isinstance(n, ast.ReturnStmt) for n in block.walk()):
                continue
            if not references_only_globals(self, block):
                continue
            fn = self.enclosing_function(block)
            if fn is None:
                continue
            candidates.append((block, fn))
        if not candidates:
            return False
        block, fn = self.rand_element(candidates)
        name = self.generate_unique_name("uninlined")
        body = self.get_source_text(block)
        ok = self.insert_text_before(
            fn.range.begin, f"static void {name}(void) {body}\n"
        )
        return self.replace_text(block.range, f"{{ {name}(); }}") and ok


@register_mutator(
    "InlineSimpleFunction",
    "This mutator inlines a call to a zero-argument function whose body is "
    "a single return of a global-only expression.",
    category="Function", origin="supervised", creative=True,
    action="Inline", structure="CallExpr",
)
class InlineSimpleFunction(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for fn in _definitions(self):
            assert fn.body is not None
            if fn.params or fn.return_type.is_void():
                continue
            if len(fn.body.stmts) != 1:
                continue
            only = fn.body.stmts[0]
            if not isinstance(only, ast.ReturnStmt) or only.expr is None:
                continue
            if not references_only_globals(self, only.expr):
                continue
            for call in call_sites_of(self, fn.name):
                if not call.args:
                    instances.append((call, only.expr))
        if not instances:
            return False
        call, expr = self.rand_element(instances)
        return self.replace_text(call.range, f"({self.get_source_text(expr)})")


@register_mutator(
    "AddUnusedParameter",
    "This mutator adds an unused parameter to a function and passes a "
    "default argument at every call site.",
    category="Function", origin="supervised",
    action="Add", structure="ParmVarDecl",
)
class AddUnusedParameter(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [f for f in _definitions(self) if _rewritable_function(self, f)]
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        assert fn.lparen_loc is not None and fn.rparen_loc is not None
        fresh = self.generate_unique_name("extra")
        if fn.params:
            ok = self.insert_text_before(fn.rparen_loc, f", int {fresh}")
        else:
            inner = SourceRange(fn.lparen_loc.advanced(1), fn.rparen_loc)
            ok = self.replace_text(inner, f"int {fresh}")
        for call in call_sites_of(self, fn.name):
            assert call.rparen_loc is not None
            arg = ", 0" if call.args else "0"
            ok = self.insert_text_before(call.rparen_loc, arg) and ok
        return ok


@register_mutator(
    "RemoveUnusedParameter",
    "This mutator removes a parameter that the function body never uses, "
    "dropping the matching argument at every call site.",
    category="Function", origin="supervised",
    action="Destruct", structure="ParmVarDecl",
)
class RemoveUnusedParameter(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for fn in _definitions(self):
            if not _rewritable_function(self, fn):
                continue
            assert fn.body is not None
            used = {
                id(r.decl)
                for r in fn.body.walk()
                if isinstance(r, ast.DeclRefExpr)
            }
            for i, p in enumerate(fn.params):
                if id(p) not in used and p.name:
                    instances.append((fn, i))
        if not instances:
            return False
        fn, index = self.rand_element(instances)
        ok = self.remove_parm_from_func_decl(fn, fn.params[index])
        for call in call_sites_of(self, fn.name):
            ok = self.remove_arg_from_expr(call, index) and ok
        return ok


@register_mutator(
    "ReorderFunctionParams",
    "This mutator swaps two type-identical parameters of a function and "
    "swaps the matching arguments at every call site.",
    category="Function", origin="supervised",
    action="Swap", structure="ParmVarDecl",
)
class ReorderFunctionParams(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for fn in _definitions(self):
            if not _rewritable_function(self, fn):
                continue
            for i in range(len(fn.params)):
                for j in range(i + 1, len(fn.params)):
                    if fn.params[i].type == fn.params[j].type:
                        instances.append((fn, i, j))
        if not instances:
            return False
        fn, i, j = self.rand_element(instances)
        pi, pj = fn.params[i], fn.params[j]
        pi_txt, pj_txt = self.get_source_text(pi), self.get_source_text(pj)
        ok = self.replace_text(pi.range, pj_txt)
        ok = self.replace_text(pj.range, pi_txt) and ok
        for call in call_sites_of(self, fn.name):
            ai, aj = call.args[i], call.args[j]
            ai_txt, aj_txt = self.get_source_text(ai), self.get_source_text(aj)
            ok = self.replace_text(ai.range, aj_txt) and ok
            ok = self.replace_text(aj.range, ai_txt) and ok
        return ok


@register_mutator(
    "MakeFunctionStatic",
    "This mutator gives internal linkage to a function by adding the static "
    "storage class.",
    category="Function", origin="supervised",
    action="Add", structure="FunctionDecl",
)
class MakeFunctionStatic(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            f
            for f in _definitions(self)
            if f.storage is None and f.name != "main"
            and not _has_separate_prototype(self, f)
        ]
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        return self.insert_text_before(fn.return_type_range.begin, "static ")


@register_mutator(
    "ExtractReturnValueVariable",
    "This mutator extracts a return expression into a fresh local variable "
    "that is returned instead.",
    category="Function", origin="supervised", creative=True,
    action="Lift", structure="ReturnStmt",
)
class ExtractReturnValueVariable(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for fn in _definitions(self):
            if fn.return_type.is_void() or not (
                fn.return_type.is_scalar() or fn.return_type.is_record()
            ):
                continue
            assert fn.body is not None
            for node in fn.body.walk():
                if isinstance(node, ast.ReturnStmt) and node.expr is not None:
                    instances.append((fn, node))
        if not instances:
            return False
        fn, ret = self.rand_element(instances)
        assert ret.expr is not None
        fresh = self.generate_unique_name("retval")
        decl = self.format_as_decl(fn.return_type.unqualified(), fresh)
        expr = self.get_source_text(ret.expr)
        return self.replace_text(
            ret.range, f"{{ {decl} = ({expr}); return {fresh}; }}"
        )


@register_mutator(
    "ReturnEarly",
    "This mutator inserts an early return with a default value after a "
    "statement in the function body.",
    category="Function", origin="supervised",
    action="Add", structure="ReturnStmt",
)
class ReturnEarly(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for fn in _definitions(self):
            if not (fn.return_type.is_void() or fn.return_type.is_scalar()):
                continue
            assert fn.body is not None
            for stmt in fn.body.stmts:
                instances.append((fn, stmt))
        if not instances:
            return False
        fn, stmt = self.rand_element(instances)
        if fn.return_type.is_void():
            text = "return;"
        else:
            text = f"return {self.default_value_for(fn.return_type)};"
        return self.insert_after_stmt(stmt, text)


@register_mutator(
    "WrapFunctionBodyInDoWhile",
    "This mutator wraps the entire body of a function in a do-while(0) "
    "loop, changing the meaning of any top-level break.",
    category="Function", origin="supervised", creative=True,
    action="Add", structure="FunctionDecl",
)
class WrapFunctionBodyInDoWhile(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            f
            for f in _definitions(self)
            if f.body is not None and f.body.stmts
            and not any(
                isinstance(s, (ast.CaseStmt, ast.DefaultStmt))
                for s in f.body.stmts
            )
        ]
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        body = fn.body
        assert body is not None
        assert body.lbrace_loc is not None and body.rbrace_loc is not None
        ok = self.insert_text_after(body.lbrace_loc.advanced(1), " do { ")
        return self.insert_text_before(body.rbrace_loc, " } while (0); ") and ok


@register_mutator(
    "AddFunctionPrototype",
    "This mutator inserts a matching prototype for a function definition at "
    "the top of the file.",
    category="Function", origin="supervised",
    action="Add", structure="FunctionDecl",
)
class AddFunctionPrototype(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = []
        for fn in _definitions(self):
            if _has_separate_prototype(self, fn) or fn.variadic:
                continue
            builtin_only = all(
                isinstance(p.type.decayed().type, (ct.BuiltinType, ct.PointerType))
                for p in fn.params
            ) and isinstance(fn.return_type.type, (ct.BuiltinType, ct.PointerType))
            if builtin_only:
                candidates.append(fn)
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        params = ", ".join(
            self.format_as_decl(p.type, p.name or "") for p in fn.params
        ) or "void"
        proto = (
            f"{_storage_prefix(fn)}"
            f"{self.format_as_decl(fn.return_type, fn.name)}({params});\n"
        )
        unit = self.get_ast_context().unit
        first = unit.decls[0] if unit.decls else fn
        return self.insert_text_before(first.range.begin, proto)


# ---------------------------------------------------------------------------
# Unsupervised (M_u) function mutators
# ---------------------------------------------------------------------------


@register_mutator(
    "DuplicateFunction",
    "This mutator duplicates an entire function definition under a fresh "
    "name.",
    category="Function", origin="unsupervised",
    action="Copy", structure="FunctionDecl",
)
class DuplicateFunction(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [f for f in _definitions(self) if f.name != "main"]
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        fresh = self.generate_unique_name(fn.name)
        text = self.get_source_text(fn)
        name_off = fn.name_range.begin.offset - fn.range.begin.offset
        copied = text[:name_off] + fresh + text[name_off + len(fn.name):]
        prefix = "" if fn.storage == "static" else "static "
        return self.insert_text_before(fn.range.begin, f"{prefix}{copied}\n")


@register_mutator(
    "RenameFunction",
    "This mutator renames a function and every reference to it with a fresh "
    "unique identifier.",
    category="Function", origin="unsupervised",
    action="Modify", structure="FunctionName",
)
class RenameFunction(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        shadowed = {
            d.name
            for d in self.get_ast_context().unit.walk()
            if isinstance(d, (ast.VarDecl, ast.ParmVarDecl))
        }
        candidates = [
            f
            for f in _definitions(self)
            if f.name != "main" and f.name not in shadowed
        ]
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        fresh = self.generate_unique_name(fn.name)
        ok = True
        for decl in _decls_named(self, fn.name):
            ok = self.replace_text(decl.name_range, fresh) and ok
        for ref in self.collect(ast.DeclRefExpr):
            assert isinstance(ref, ast.DeclRefExpr)
            if ref.name == fn.name:
                ok = self.replace_text(ref.range, fresh) and ok
        return ok


@register_mutator(
    "WidenFunctionReturnType",
    "This mutator widens an int-returning function to return long long.",
    category="Function", origin="unsupervised",
    action="Modify", structure="ReturnTypeWidth",
)
class WidenFunctionReturnType(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            f
            for f in _definitions(self)
            if f.name != "main"
            and f.return_type.unqualified() == ct.INT
            and not _has_separate_prototype(self, f)
            and not address_taken(self, f.name)
        ]
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        return self.replace_text(
            fn.return_type_range, f"{_storage_prefix(fn)}long long"
        )


@register_mutator(
    "AddInlineSpecifier",
    "This mutator marks a function definition as static inline.",
    category="Function", origin="unsupervised",
    action="Add", structure="InlineSpecifier",
)
class AddInlineSpecifier(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            f
            for f in _definitions(self)
            if f.name != "main" and f.storage is None
            and not _has_separate_prototype(self, f)
        ]
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        return self.insert_text_before(
            fn.return_type_range.begin, "static inline "
        )


@register_mutator(
    "CallFunctionTwice",
    "This mutator duplicates a call statement so the callee runs twice.",
    category="Function", origin="unsupervised",
    action="Copy", structure="CallStmt",
)
class CallFunctionTwice(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            s
            for s in self.collect(ast.ExprStmt)
            if isinstance(s, ast.ExprStmt) and isinstance(s.expr, ast.CallExpr)
        ]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        return self.insert_after_stmt(stmt, self.get_source_text(stmt))


@register_mutator(
    "AddFunctionAttribute",
    "This mutator attaches a GNU attribute such as noinline to a function "
    "definition.",
    category="Function", origin="unsupervised",
    action="Add", structure="Attribute",
)
class AddFunctionAttribute(Mutator, ASTVisitor):
    _ATTRS = ("noinline", "noclone", "cold", "hot", "unused")

    def mutate(self) -> bool:
        candidates = _definitions(self)
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        attr = self.rand_element(list(self._ATTRS))
        return self.insert_text_before(
            fn.return_type_range.begin, f"__attribute__(({attr})) "
        )


@register_mutator(
    "GhostFunction",
    "This mutator adds a new unused static helper function to the file.",
    category="Function", origin="unsupervised",
    action="Create", structure="FunctionDecl",
)
class GhostFunction(Mutator, ASTVisitor):
    _BODIES = (
        "return x + 1;",
        "return x * x;",
        "return x ? x - 1 : 0;",
        "int y = x << 1; return y ^ x;",
    )

    def mutate(self) -> bool:
        unit = self.get_ast_context().unit
        if not unit.decls:
            return False
        fresh = self.generate_unique_name("ghost")
        body = self.rand_element(list(self._BODIES))
        text = f"static int {fresh}(int x) {{ {body} }}\n"
        return self.insert_text_before(unit.decls[0].range.begin, text)


@register_mutator(
    "VoidToIntFunction",
    "This mutator changes a void function to return int, rewriting bare "
    "returns to return 0.",
    category="Function", origin="unsupervised", creative=True,
    action="Modify", structure="ReturnType",
)
class VoidToIntFunction(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            f
            for f in _definitions(self)
            if f.return_type.is_void()
            and f.name != "main"
            and not _has_separate_prototype(self, f)
            and not address_taken(self, f.name)
        ]
        if not candidates:
            return False
        fn = self.rand_element(candidates)
        ok = self.replace_text(
            fn.return_type_range, f"{_storage_prefix(fn)}int"
        )
        assert fn.body is not None
        for node in fn.body.walk():
            if isinstance(node, ast.ReturnStmt) and node.expr is None:
                ok = self.replace_text(node.range, "return 0;") and ok
        return ok
