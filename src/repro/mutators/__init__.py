"""The library of 118 MetaMut-generated mutators.

These are the *validated outputs* of the MetaMut pipeline — the analog of the
paper's public mutator repository.  68 are tagged ``supervised`` (M_s) and 50
``unsupervised`` (M_u); each carries the natural-language description the
invention stage produced and the action/program-structure pair it was sampled
from.  Importing this package populates
:data:`repro.muast.registry.global_registry`.
"""

from repro.muast.registry import global_registry

# Importing the category modules registers every mutator.
from repro.mutators import variable  # noqa: F401
from repro.mutators import expression  # noqa: F401
from repro.mutators import statement  # noqa: F401
from repro.mutators import function  # noqa: F401
from repro.mutators import type_  # noqa: F401
from repro.mutators.catalog import catalog_summary, verify_catalog

__all__ = ["global_registry", "catalog_summary", "verify_catalog"]
