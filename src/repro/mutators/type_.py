"""Type mutators (6) — the smallest category of §4.1 (5%).

Includes the paper's ``ReduceArrayDimension`` and ``DecaySmallStruct``
(both part of the GCC #111820 / #111819 case studies) and ``StructToInt``
(Clang #69213).
"""

from __future__ import annotations

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.muast import ASTVisitor, Mutator, register_mutator
from repro.mutators.common import shared_parent_map
from repro.mutators.variable import (
    _global_var_decls,
    _is_address_taken,
    _refs_to,
    _single_decl_stmts,
)


@register_mutator(
    "ChangeIntSignedness",
    "This mutator flips the signedness of an integer variable declaration, "
    "turning int into unsigned and vice versa.",
    category="Type", origin="supervised",
    action="Switch", structure="BuiltinType",
)
class ChangeIntSignedness(Mutator, ASTVisitor):
    _FLIP = {
        "int": "unsigned int",
        "unsigned int": "int",
        "long": "unsigned long",
        "unsigned long": "long",
        "char": "unsigned char",
    }

    def mutate(self) -> bool:
        instances = []
        for _stmt, var in _single_decl_stmts(self):
            spelling = var.type.unqualified().spelling()
            if spelling in self._FLIP and not _is_address_taken(self, var):
                if var.storage is None and not var.type.const:
                    instances.append((var, self._FLIP[spelling]))
        if not instances:
            return False
        var, new_spelling = self.rand_element(instances)
        return self.replace_text(var.specifier_range, new_spelling)


@register_mutator(
    "ReduceArrayDimension",
    "This mutator simplifies an array variable into a zero-dimension scalar "
    "and updates all of its references.",
    category="Type", origin="supervised", creative=True,
    action="Destruct", structure="ArrayDimension",
)
class ReduceArrayDimension(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        source = self.get_ast_context().source
        parents = shared_parent_map(self)
        instances = []
        for d in _global_var_decls(self):
            if not d.type.is_array() or d.init is not None or d.type.const:
                continue
            elem = d.type.element()
            if elem is None or not elem.is_arithmetic():
                continue
            if d.range.begin != d.specifier_range.begin:
                continue
            if source.text[d.range.end.offset : d.range.end.offset + 1] != ";":
                continue
            refs = _refs_to(self, d)
            subs = []
            usable = bool(refs)
            for ref in refs:
                parent = parents.get(id(ref))
                if isinstance(parent, ast.ArraySubscriptExpr) and parent.base is ref:
                    subs.append(parent)
                else:
                    usable = False
                    break
            if usable:
                instances.append((d, elem, subs))
        if not instances:
            return False
        d, elem, subs = self.rand_element(instances)
        storage = f"{d.storage} " if d.storage else ""
        ok = self.replace_text(
            d.range, storage + self.format_as_decl(elem.unqualified(), d.name)
        )
        for sub in subs:
            ok = self.replace_text(sub.range, d.name) and ok
        return ok


@register_mutator(
    "DecaySmallStruct",
    "This mutator casts a small aggregate into a long long backing store "
    "and changes all references into pointer arithmetic between the long "
    "long variable and some offsets.",
    category="Type", origin="supervised", creative=True,
    action="Destruct", structure="RecordType",
)
class DecaySmallStruct(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        source = self.get_ast_context().source
        instances = []
        for d in _global_var_decls(self):
            ty = d.type
            if d.init is not None or ty.const:
                continue
            if not (ty.is_record() or ty.is_complex()):
                continue
            if d.range.begin != d.specifier_range.begin:
                continue
            if source.text[d.range.end.offset : d.range.end.offset + 1] != ";":
                continue
            instances.append(d)
        if not instances:
            return False
        d = self.rand_element(instances)
        store = self.generate_unique_name("combinedVar")
        spelling = d.type.unqualified().spelling()
        offset = self.rand_element([0, 8, 16])
        ok = self.replace_text(d.range, f"long long {store}[4]")
        for ref in _refs_to(self, d):
            ok = (
                self.replace_text(
                    ref.range,
                    f"(*({spelling} *)((char *){store} + {offset}))",
                )
                and ok
            )
        return ok


# ---------------------------------------------------------------------------
# Unsupervised (M_u) type mutators
# ---------------------------------------------------------------------------


@register_mutator(
    "StructToInt",
    "This mutator changes a struct type in a declaration to int, collapsing "
    "the aggregate into a scalar.",
    category="Type", origin="unsupervised", creative=True,
    action="Modify", structure="RecordType",
)
class StructToInt(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        source = self.get_ast_context().source
        instances = []
        decls = [
            d
            for d in self.get_ast_context().unit.walk()
            if isinstance(d, (ast.VarDecl, ast.ParmVarDecl))
        ]
        for d in decls:
            core = d.type
            while core.is_pointer():
                pointee = core.pointee()
                assert pointee is not None
                core = pointee
            if not core.is_record():
                continue
            spec_rng = getattr(d, "specifier_range", d.range)
            spec_text = source.slice(spec_rng)
            tag = core.type.spelling()  # e.g. "struct s2"
            idx = spec_text.find(tag)
            if idx < 0:
                continue
            begin = spec_rng.begin.advanced(idx)
            instances.append((begin, len(tag)))
        if not instances:
            return False
        begin, length = self.rand_element(instances)
        from repro.cast.source import SourceRange

        return self.replace_text(SourceRange(begin, begin.advanced(length)), "int")


@register_mutator(
    "NarrowIntegerType",
    "This mutator narrows an integer variable declaration, for example from "
    "long long to int or from int to short.",
    category="Type", origin="unsupervised",
    action="Modify", structure="BuiltinType",
)
class NarrowIntegerType(Mutator, ASTVisitor):
    _NARROW = {
        "long long": "int",
        "long": "int",
        "int": "short",
        "short": "char",
        "double": "float",
    }

    def mutate(self) -> bool:
        instances = []
        for _stmt, var in _single_decl_stmts(self):
            spelling = var.type.unqualified().spelling()
            if spelling not in self._NARROW:
                continue
            if _is_address_taken(self, var):
                continue
            if var.storage is not None or var.type.const or var.type.volatile:
                continue
            instances.append((var, self._NARROW[spelling]))
        if not instances:
            return False
        var, new_spelling = self.rand_element(instances)
        return self.replace_text(var.specifier_range, new_spelling)


@register_mutator(
    "IntroduceTypedef",
    "This mutator introduces a typedef for a builtin type and rewrites one "
    "declaration to use it.",
    category="Type", origin="unsupervised",
    action="Add", structure="TypedefDecl",
)
class IntroduceTypedef(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for _stmt, var in _single_decl_stmts(self):
            spelling = var.type.unqualified().spelling()
            if spelling in ("int", "unsigned int", "long", "char", "double"):
                if var.storage is None and not var.type.const and not var.type.volatile:
                    instances.append((var, spelling))
        if not instances:
            return False
        var, spelling = self.rand_element(instances)
        alias = self.generate_unique_name("td")
        unit = self.get_ast_context().unit
        if not unit.decls:
            return False
        ok = self.insert_text_before(
            unit.decls[0].range.begin, f"typedef {spelling} {alias};\n"
        )
        return self.replace_text(var.specifier_range, alias) and ok
