"""Statement mutators (27).

Includes the paper's examples ``DuplicateBranch`` (M_s) and
``TransformSwitchToIfElse`` (M_u, one of the "creative" mutators).
"""

from __future__ import annotations

from repro.cast import ast_nodes as ast
from repro.cast.sema import fold_int
from repro.cast.source import SourceRange
from repro.muast import ASTVisitor, Mutator, register_mutator
from repro.mutators.common import (
    contains_label_or_case,
    is_removable_stmt,
    loose_breaks,
    shared_parent_map,
    safe_to_copy,
)


def _compound_stmts(m: Mutator) -> list[ast.CompoundStmt]:
    return [
        c
        for c in m.collect(ast.CompoundStmt)
        if isinstance(c, ast.CompoundStmt)
    ]


def _loops(m: Mutator) -> list[ast.Stmt]:
    return [
        n
        for n in m.get_ast_context().unit.walk()
        if isinstance(n, (ast.WhileStmt, ast.DoStmt, ast.ForStmt))
    ]


def _stmts_in_blocks(m: Mutator) -> list[tuple[ast.CompoundStmt, int, ast.Stmt]]:
    out = []
    for block in _compound_stmts(m):
        for i, stmt in enumerate(block.stmts):
            out.append((block, i, stmt))
    return out


@register_mutator(
    "DuplicateBranch",
    "This mutator finds an IfStmt, duplicates one of its branches (then or "
    "else), and replaces the other branch with the duplicated one.",
    category="Statement", origin="supervised",
    action="Copy", structure="IfStmt",
)
class DuplicateBranch(Mutator, ASTVisitor):
    def __init__(self, rng=None) -> None:
        super().__init__(rng)
        self.the_ifs: list[ast.IfStmt] = []

    def visit_IfStmt(self, node: ast.IfStmt) -> None:
        if node.else_branch is not None and safe_to_copy(node.then_branch) and (
            safe_to_copy(node.else_branch)
        ):
            self.the_ifs.append(node)

    def mutate(self) -> bool:
        self.traverse_ast()
        if not self.the_ifs:
            return False
        node = self.rand_element(self.the_ifs)
        assert node.else_branch is not None
        if self.rand_bool():
            src, dst = node.then_branch, node.else_branch
        else:
            src, dst = node.else_branch, node.then_branch
        return self.replace_text(dst.range, self.get_source_text(src))


@register_mutator(
    "DeleteStatement",
    "This mutator deletes a randomly selected statement that declares "
    "nothing and defines no labels.",
    category="Statement", origin="supervised",
    action="Destruct", structure="Stmt",
)
class DeleteStatement(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            (block, stmt)
            for block, _i, stmt in _stmts_in_blocks(self)
            if is_removable_stmt(stmt)
        ]
        if not candidates:
            return False
        _block, stmt = self.rand_element(candidates)
        return self.remove_text(stmt.range)


@register_mutator(
    "SwapAdjacentStatements",
    "This mutator swaps two adjacent statements inside a compound "
    "statement.",
    category="Statement", origin="supervised",
    action="Swap", structure="CompoundStmt",
)
class SwapAdjacentStatements(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for block in _compound_stmts(self):
            for i in range(len(block.stmts) - 1):
                a, b = block.stmts[i], block.stmts[i + 1]
                if is_removable_stmt(a) and is_removable_stmt(b):
                    instances.append((a, b))
        if not instances:
            return False
        a, b = self.rand_element(instances)
        a_txt, b_txt = self.get_source_text(a), self.get_source_text(b)
        return self.replace_text(a.range, b_txt) and self.replace_text(
            b.range, a_txt
        )


@register_mutator(
    "WrapStmtInIf",
    "This mutator wraps a statement in an always-true if statement.",
    category="Statement", origin="supervised",
    action="Add", structure="IfStmt",
)
class WrapStmtInIf(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            stmt
            for _b, _i, stmt in _stmts_in_blocks(self)
            if is_removable_stmt(stmt)
        ]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        text = self.get_source_text(stmt)
        return self.replace_text(stmt.range, f"if (1) {{ {text} }}")


@register_mutator(
    "UnrollLoopOnce",
    "This mutator peels one iteration off a while loop by inserting a "
    "guarded copy of its body before the loop.",
    category="Statement", origin="supervised", creative=True,
    action="Copy", structure="WhileStmt",
)
class UnrollLoopOnce(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            w
            for w in self.collect(ast.WhileStmt)
            if isinstance(w, ast.WhileStmt)
            and safe_to_copy(w.body)
            and not loose_breaks(w.body)
        ]
        if not candidates:
            return False
        w = self.rand_element(candidates)
        cond = self.get_source_text(w.cond)
        body = self.get_source_text(w.body)
        return self.insert_text_before(
            w.range.begin, f"if ({cond}) {{ {body} }}\n"
        )


@register_mutator(
    "ForToWhile",
    "This mutator converts a for loop into an equivalent while loop inside "
    "a new block.",
    category="Statement", origin="supervised", creative=True,
    action="Switch", structure="ForStmt",
)
class ForToWhile(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            f
            for f in self.collect(ast.ForStmt)
            if isinstance(f, ast.ForStmt) and not contains_label_or_case(f.body)
        ]
        if not candidates:
            return False
        f = self.rand_element(candidates)
        init = self.get_source_text(f.init) if f.init is not None else ""
        cond = self.get_source_text(f.cond) if f.cond is not None else "1"
        inc = self.get_source_text(f.inc) + ";" if f.inc is not None else ""
        body = self.get_source_text(f.body)
        if not isinstance(f.body, ast.CompoundStmt):
            body = f"{{ {body} }}"
        new_body = body[:-1].rstrip() + f"\n{inc} }}" if inc else body
        return self.replace_text(
            f.range, f"{{ {init} while ({cond}) {new_body} }}"
        )


@register_mutator(
    "WhileToDoWhile",
    "This mutator converts a while loop into a do-while loop guarded by the "
    "original condition.",
    category="Statement", origin="supervised", creative=True,
    action="Switch", structure="WhileStmt",
)
class WhileToDoWhile(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = self.collect(ast.WhileStmt)
        if not candidates:
            return False
        w = self.rand_element(candidates)
        assert isinstance(w, ast.WhileStmt)
        cond = self.get_source_text(w.cond)
        body = self.get_source_text(w.body)
        return self.replace_text(
            w.range, f"if ({cond}) {{ do {{ {body} }} while ({cond}); }}"
        )


@register_mutator(
    "RemoveElseBranch",
    "This mutator removes the else branch of an IfStmt.",
    category="Statement", origin="supervised",
    action="Destruct", structure="IfStmt",
)
class RemoveElseBranch(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            s
            for s in self.collect(ast.IfStmt)
            if isinstance(s, ast.IfStmt)
            and s.else_branch is not None
            and not contains_label_or_case(s.else_branch)
        ]
        if not candidates:
            return False
        s = self.rand_element(candidates)
        assert s.else_branch is not None
        else_kw = self.find_str_loc_from(s.then_branch.range.end, "else")
        if else_kw is None:
            return False
        return self.remove_text(SourceRange(else_kw, s.else_branch.range.end))


@register_mutator(
    "AddElseBranch",
    "This mutator adds an empty else branch to an IfStmt that lacks one.",
    category="Statement", origin="supervised",
    action="Add", structure="ElseBranch",
)
class AddElseBranch(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            s
            for s in self.collect(ast.IfStmt)
            if isinstance(s, ast.IfStmt) and s.else_branch is None
        ]
        if not candidates:
            return False
        s = self.rand_element(candidates)
        return self.insert_text_after(s.then_branch.range.end, " else { ; }")


@register_mutator(
    "InsertContinueIntoLoop",
    "This mutator inserts a never-taken continue statement at the top of a "
    "loop body.",
    category="Statement", origin="supervised",
    action="Add", structure="ContinueStmt",
)
class InsertContinueIntoLoop(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            loop
            for loop in _loops(self)
            if isinstance(getattr(loop, "body"), ast.CompoundStmt)
        ]
        if not candidates:
            return False
        loop = self.rand_element(candidates)
        body = loop.body  # type: ignore[attr-defined]
        assert body.lbrace_loc is not None
        return self.insert_text_after(
            body.lbrace_loc.advanced(1), " if (0) continue; "
        )


@register_mutator(
    "LoopConditionOffByOne",
    "This mutator perturbs a loop bound comparison by one, e.g. turning "
    "i < n into i <= n.",
    category="Statement", origin="supervised",
    action="Modify", structure="ComparisonExpr",
)
class LoopConditionOffByOne(Mutator, ASTVisitor):
    _FLIP = {"<": "<=", "<=": "<", ">": ">=", ">=": ">"}

    def mutate(self) -> bool:
        instances = []
        for loop in _loops(self):
            cond = getattr(loop, "cond", None)
            if isinstance(cond, ast.BinaryOperator) and cond.op in self._FLIP:
                instances.append(cond)
        if not instances:
            return False
        cond = self.rand_element(instances)
        assert cond.op_range is not None
        return self.replace_text(cond.op_range, self._FLIP[cond.op])


@register_mutator(
    "InsertGotoSkip",
    "This mutator inserts a goto that jumps over a statement to a fresh "
    "label placed right after it.",
    category="Statement", origin="supervised", creative=True,
    action="Add", structure="GotoStmt",
)
class InsertGotoSkip(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            stmt
            for _b, _i, stmt in _stmts_in_blocks(self)
            if not isinstance(stmt, (ast.CaseStmt, ast.DefaultStmt, ast.LabelStmt))
        ]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        label = self.generate_unique_name("skip")
        ok = self.insert_text_before(stmt.range.begin, f"goto {label};\n")
        return self.insert_text_after(stmt.range.end, f"\n{label}: ;") and ok


@register_mutator(
    "InsertDeadIf",
    "This mutator inserts a never-executed copy of an existing statement "
    "guarded by if (0).",
    category="Statement", origin="supervised",
    action="Copy", structure="IfStmt",
)
class InsertDeadIf(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            stmt
            for _b, _i, stmt in _stmts_in_blocks(self)
            if is_removable_stmt(stmt)
        ]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        text = self.get_source_text(stmt)
        return self.insert_after_stmt(stmt, f"if (0) {{ {text} }}")


@register_mutator(
    "RemoveBreakFromSwitch",
    "This mutator deletes a break statement directly inside a switch body, "
    "creating a fall-through.",
    category="Statement", origin="supervised",
    action="Destruct", structure="SwitchStmt",
)
class RemoveBreakFromSwitch(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for sw in self.collect(ast.SwitchStmt):
            assert isinstance(sw, ast.SwitchStmt)
            if isinstance(sw.body, ast.CompoundStmt):
                for stmt in sw.body.stmts:
                    if isinstance(stmt, ast.BreakStmt):
                        instances.append(stmt)
        if not instances:
            return False
        stmt = self.rand_element(instances)
        return self.remove_text(stmt.range)


@register_mutator(
    "SwapThenElse",
    "This mutator negates an if condition and swaps the then and else "
    "branches, preserving behaviour.",
    category="Statement", origin="supervised",
    action="Swap", structure="IfStmt",
)
class SwapThenElse(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            s
            for s in self.collect(ast.IfStmt)
            if isinstance(s, ast.IfStmt)
            and s.else_branch is not None
            # An else-if chain shares text with the outer if; keep it simple.
            and not isinstance(s.else_branch, ast.IfStmt)
            and not contains_label_or_case(s.then_branch)
            and not contains_label_or_case(s.else_branch)
        ]
        if not candidates:
            return False
        s = self.rand_element(candidates)
        assert s.else_branch is not None
        cond = self.get_source_text(s.cond)
        then_txt = self.get_source_text(s.then_branch)
        else_txt = self.get_source_text(s.else_branch)
        ok = self.replace_text(s.cond.range, f"!({cond})")
        ok = self.replace_text(s.then_branch.range, else_txt) and ok
        return self.replace_text(s.else_branch.range, then_txt) and ok


@register_mutator(
    "GroupStatements",
    "This mutator groups a contiguous run of statements into a nested "
    "compound statement.",
    category="Statement", origin="supervised",
    action="Group", structure="CompoundStmt",
)
class GroupStatements(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for block in _compound_stmts(self):
            n = len(block.stmts)
            for i in range(n):
                for j in range(i + 1, min(n, i + 4)):
                    run = block.stmts[i : j + 1]
                    if any(isinstance(s, ast.DeclStmt) for s in run):
                        continue
                    if any(
                        isinstance(s, (ast.CaseStmt, ast.DefaultStmt)) for s in run
                    ):
                        continue
                    instances.append((run[0], run[-1]))
        if not instances:
            return False
        first, last = self.rand_element(instances)
        ok = self.insert_text_before(first.range.begin, "{ ")
        return self.insert_text_after(last.range.end, " }") and ok


# ---------------------------------------------------------------------------
# Unsupervised (M_u) statement mutators
# ---------------------------------------------------------------------------


@register_mutator(
    "DuplicateStatement",
    "This mutator duplicates a statement, inserting the copy immediately "
    "after the original.",
    category="Statement", origin="unsupervised",
    action="Copy", structure="Stmt",
)
class DuplicateStatement(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            stmt
            for _b, _i, stmt in _stmts_in_blocks(self)
            if is_removable_stmt(stmt)
        ]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        return self.insert_after_stmt(stmt, self.get_source_text(stmt))


@register_mutator(
    "WrapStmtInDoWhile",
    "This mutator wraps a statement in a do { ... } while (0) loop.",
    category="Statement", origin="unsupervised",
    action="Add", structure="DoStmt",
)
class WrapStmtInDoWhile(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            stmt
            for _b, _i, stmt in _stmts_in_blocks(self)
            if is_removable_stmt(stmt)
        ]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        text = self.get_source_text(stmt)
        return self.replace_text(stmt.range, f"do {{ {text} }} while (0);")


@register_mutator(
    "WhileToFor",
    "This mutator converts a while loop into an equivalent for loop with "
    "empty init and increment clauses.",
    category="Statement", origin="unsupervised", creative=True,
    action="Switch", structure="WhileStmt",
)
class WhileToFor(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = self.collect(ast.WhileStmt)
        if not candidates:
            return False
        w = self.rand_element(candidates)
        assert isinstance(w, ast.WhileStmt)
        cond = self.get_source_text(w.cond)
        body = self.get_source_text(w.body)
        return self.replace_text(w.range, f"for (; {cond}; ) {body}")


@register_mutator(
    "TransformSwitchToIfElse",
    "This mutator identifies a 'switch' statement in the code and "
    "transforms it into an equivalent series of 'if-else' statements, "
    "effectively altering the control flow structure.",
    category="Statement", origin="unsupervised", creative=True,
    action="Switch", structure="SwitchStmt",
)
class TransformSwitchToIfElse(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = []
        for sw in self.collect(ast.SwitchStmt):
            assert isinstance(sw, ast.SwitchStmt)
            segments = self._segments(sw)
            if segments is not None:
                candidates.append((sw, segments))
        if not candidates:
            return False
        sw, segments = self.rand_element(candidates)
        cond = self.get_source_text(sw.cond)
        chain: list[str] = []
        default_body: str | None = None
        for labels, body in segments:
            if labels is None:
                default_body = body
                continue
            test = " || ".join(f"({cond}) == ({v})" for v in labels)
            keyword = "if" if not chain else "else if"
            chain.append(f"{keyword} ({test}) {{ {body} }}")
        text = " ".join(chain)
        if default_body is not None:
            text += f" else {{ {default_body} }}" if chain else f"{{ {default_body} }}"
        if not text:
            text = ";"
        return self.replace_text(sw.range, text)

    def _segments(
        self, sw: ast.SwitchStmt
    ) -> list[tuple[list[str] | None, str]] | None:
        """Split the switch body into (case labels, body text) segments."""
        if not isinstance(sw.body, ast.CompoundStmt):
            return None
        segments: list[tuple[list[str] | None, str]] = []
        labels: list[str] | None = None
        is_default = False
        parts: list[str] = []

        def flush() -> None:
            nonlocal labels, is_default, parts
            if labels is not None or is_default:
                segments.append((None if is_default else labels, " ".join(parts)))
            labels, is_default, parts = None, False, []

        for stmt in sw.body.stmts:
            inner: ast.Stmt | None = stmt
            new_labels: list[str] = []
            new_default = False
            while isinstance(inner, (ast.CaseStmt, ast.DefaultStmt)):
                if isinstance(inner, ast.CaseStmt):
                    if fold_int(inner.expr) is None:
                        return None
                    new_labels.append(self.get_source_text(inner.expr))
                else:
                    new_default = True
                inner = inner.stmt
            if new_labels or new_default:
                flush()
                labels = new_labels if not new_default else None
                is_default = new_default
                if is_default and new_labels:
                    return None  # mixed case/default chains are rare; skip
            elif labels is None and not is_default:
                return None  # statement before the first case label
            if inner is None:
                continue
            if isinstance(inner, ast.BreakStmt):
                continue  # segment terminator
            if contains_label_or_case(inner):
                return None
            if loose_breaks(inner, continues=False):
                return None  # a nested break bound to this switch
            parts.append(self.get_source_text(inner))
        flush()
        return segments


@register_mutator(
    "InsertNullStmt",
    "This mutator inserts a null statement (a lone semicolon) after an "
    "existing statement.",
    category="Statement", origin="unsupervised",
    action="Add", structure="NullStmt",
)
class InsertNullStmt(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [stmt for _b, _i, stmt in _stmts_in_blocks(self)]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        return self.insert_after_stmt(stmt, ";")


@register_mutator(
    "GuardWithTautology",
    "This mutator guards a statement with a tautological if condition such "
    "as (1 == 1).",
    category="Statement", origin="unsupervised",
    action="Add", structure="IfStmt",
)
class GuardWithTautology(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            stmt
            for _b, _i, stmt in _stmts_in_blocks(self)
            if is_removable_stmt(stmt)
        ]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        text = self.get_source_text(stmt)
        cond = self.rand_element(["1 == 1", "0 == 0", "1 <= 1"])
        return self.replace_text(stmt.range, f"if ({cond}) {{ {text} }}")


@register_mutator(
    "InsertBreakIntoLoop",
    "This mutator inserts a never-taken break statement at the top of a "
    "loop body.",
    category="Statement", origin="unsupervised",
    action="Add", structure="BreakStmt",
)
class InsertBreakIntoLoop(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            loop
            for loop in _loops(self)
            if isinstance(getattr(loop, "body"), ast.CompoundStmt)
        ]
        if not candidates:
            return False
        loop = self.rand_element(candidates)
        body = loop.body  # type: ignore[attr-defined]
        assert body.lbrace_loc is not None
        return self.insert_text_after(
            body.lbrace_loc.advanced(1), " if (0) break; "
        )


@register_mutator(
    "ReverseLoopDirection",
    "This mutator reverses the direction of a canonical counting for loop, "
    "turning an upward count into a downward one.",
    category="Statement", origin="unsupervised", creative=True,
    action="Inverse", structure="ForStmt",
)
class ReverseLoopDirection(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for f in self.collect(ast.ForStmt):
            assert isinstance(f, ast.ForStmt)
            match = self._match_canonical(f)
            if match is not None:
                instances.append((f, match))
        if not instances:
            return False
        f, (zero_expr, cond, inc, bound_txt) = self.rand_element(instances)
        ok = self.replace_text(zero_expr.range, f"({bound_txt}) - 1")
        assert cond.op_range is not None
        ok = self.replace_text(cond.op_range, ">=") and ok
        ok = self.replace_text(cond.rhs.range, "0") and ok
        op_rng = SourceRange(
            inc.range.begin.advanced(len(self.get_source_text(inc.operand))),
            inc.range.end,
        )
        return self.replace_text(op_rng, "--") and ok

    def _match_canonical(self, f: ast.ForStmt):
        # init: i = 0 (expression or single declaration)
        zero_expr: ast.Expr | None = None
        var_name: str | None = None
        if isinstance(f.init, ast.ExprStmt):
            e = f.init.expr
            if (
                isinstance(e, ast.BinaryOperator)
                and e.op == "="
                and isinstance(e.lhs, ast.DeclRefExpr)
                and isinstance(e.rhs, ast.IntegerLiteral)
                and e.rhs.value == 0
                and e.lhs.type is not None
                and e.lhs.type.is_signed()
            ):
                zero_expr, var_name = e.rhs, e.lhs.name
        elif isinstance(f.init, ast.DeclStmt) and len(f.init.decls) == 1:
            d = f.init.decls[0]
            if (
                isinstance(d, ast.VarDecl)
                and isinstance(d.init, ast.IntegerLiteral)
                and d.init.value == 0
                and d.type.is_signed()
            ):
                zero_expr, var_name = d.init, d.name
        if zero_expr is None or var_name is None:
            return None
        cond = f.cond
        if not (
            isinstance(cond, ast.BinaryOperator)
            and cond.op in ("<", "<=")
            and isinstance(cond.lhs, ast.DeclRefExpr)
            and cond.lhs.name == var_name
        ):
            return None
        inc = f.inc
        if not (
            isinstance(inc, ast.UnaryOperator)
            and inc.op == "++"
            and not inc.prefix
            and isinstance(inc.operand, ast.DeclRefExpr)
            and inc.operand.name == var_name
        ):
            return None
        bound_txt = self.get_source_text(cond.rhs)
        return zero_expr, cond, inc, bound_txt


@register_mutator(
    "InsertLabelNoop",
    "This mutator inserts a fresh, unused label bound to a null statement.",
    category="Statement", origin="unsupervised",
    action="Add", structure="LabelStmt",
)
class InsertLabelNoop(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [stmt for _b, _i, stmt in _stmts_in_blocks(self)]
        if not candidates:
            return False
        stmt = self.rand_element(candidates)
        label = self.generate_unique_name("lbl")
        return self.insert_after_stmt(stmt, f"{label}: ;")


@register_mutator(
    "CompoundToSingleStmt",
    "This mutator unwraps a compound statement containing exactly one "
    "simple statement.",
    category="Statement", origin="unsupervised",
    action="Destruct", structure="CompoundStmt",
)
class CompoundToSingleStmt(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        parents = shared_parent_map(self)
        candidates = []
        for block in _compound_stmts(self):
            if len(block.stmts) != 1:
                continue
            inner = block.stmts[0]
            if isinstance(
                inner, (ast.DeclStmt, ast.LabelStmt, ast.CaseStmt, ast.DefaultStmt)
            ):
                continue
            parent = parents.get(id(block))
            if isinstance(parent, ast.FunctionDecl):
                continue
            candidates.append((block, inner))
        if not candidates:
            return False
        block, inner = self.rand_element(candidates)
        return self.replace_text(block.range, self.get_source_text(inner))


@register_mutator(
    "NestCompound",
    "This mutator nests the contents of a compound statement inside an "
    "additional pair of braces.",
    category="Statement", origin="unsupervised",
    action="Add", structure="CompoundStmt",
)
class NestCompound(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            b
            for b in _compound_stmts(self)
            if b.stmts and b.lbrace_loc is not None and b.rbrace_loc is not None
            and not any(
                isinstance(s, (ast.CaseStmt, ast.DefaultStmt)) for s in b.stmts
            )
        ]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        assert b.lbrace_loc is not None and b.rbrace_loc is not None
        ok = self.insert_text_after(b.lbrace_loc.advanced(1), " { ")
        return self.insert_text_before(b.rbrace_loc, " } ") and ok
