"""Expression mutators (50) — the largest category of §4.1.

Descriptions are written in the style the paper's invention stage produces
("This mutator ... [Action] on [Program Structure]").
"""

from __future__ import annotations

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.muast import ASTVisitor, Mutator, register_mutator
from repro.mutators.common import (
    BOUNDARY_INTS,
    arith_typed,
    condition_exprs,
    int_typed,
    is_plain_binop,
    parent_map,
    replaceable_rvalue_exprs,
    statement_level_incdec,
)


def _plain_binops(m: Mutator) -> list[ast.BinaryOperator]:
    return [
        b
        for b in m.collect(ast.BinaryOperator)
        if isinstance(b, ast.BinaryOperator) and is_plain_binop(b)
    ]


@register_mutator(
    "SwapBinaryOperands",
    "This mutator selects a BinaryOperator and swaps its left and right "
    "operands, preserving type validity.",
    category="Expression", origin="supervised",
    action="Swap", structure="BinaryOperator",
)
class SwapBinaryOperands(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            b for b in _plain_binops(self) if self.check_binop(b.op, b.rhs, b.lhs)
        ]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        lhs, rhs = self.get_source_text(b.lhs), self.get_source_text(b.rhs)
        return self.replace_text(b.lhs.range, rhs) and self.replace_text(
            b.rhs.range, lhs
        )


_OP_FAMILIES = (
    ("+", "-", "*", "/", "%"),
    ("<", ">", "<=", ">=", "==", "!="),
    ("&", "|", "^"),
    ("<<", ">>"),
    ("&&", "||"),
)


def _family_of(op: str) -> tuple[str, ...] | None:
    for family in _OP_FAMILIES:
        if op in family:
            return family
    return None


@register_mutator(
    "ChangeBinaryOperator",
    "This mutator replaces a BinaryOperator with a different operator from "
    "the same family, checking operand-type validity with checkBinop.",
    category="Expression", origin="supervised",
    action="Modify", structure="BinaryOperator",
)
class ChangeBinaryOperator(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances: list[tuple[ast.BinaryOperator, str]] = []
        for b in _plain_binops(self):
            family = _family_of(b.op)
            if family is None:
                continue
            for op in family:
                if op != b.op and self.check_binop(op, b.lhs, b.rhs):
                    instances.append((b, op))
        if not instances:
            return False
        b, op = self.rand_element(instances)
        assert b.op_range is not None
        return self.replace_text(b.op_range, op)


@register_mutator(
    "NegateCondition",
    "This mutator selects the condition of an IfStmt or loop and negates it "
    "by wrapping it with the logical-not operator.",
    category="Expression", origin="supervised",
    action="Inverse", structure="LogicalExpr",
)
class NegateCondition(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        conds = condition_exprs(self)
        if not conds:
            return False
        cond = self.rand_element(conds)
        return self.replace_text(cond.range, f"!({self.get_source_text(cond)})")


@register_mutator(
    "InverseUnaryOperator",
    "This mutator selects a unary operation (like unary minus or logical "
    "not) and inverses it. For instance, -a would become -(-a) and !a would "
    "become !!a.",
    category="Expression", origin="supervised",
    action="Inverse", structure="UnaryOperator",
)
class InverseUnaryOperator(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            u
            for u in self.collect(ast.UnaryOperator)
            if isinstance(u, ast.UnaryOperator) and u.prefix and u.op in ("-", "!", "~")
        ]
        if not candidates:
            return False
        u = self.rand_element(candidates)
        return self.replace_text(
            u.range, f"{u.op}({self.get_source_text(u)})"
        )


@register_mutator(
    "CopyExpr",
    "This mutator copies an expression from one location of the program to "
    "replace another type-compatible expression elsewhere.",
    category="Expression", origin="supervised", creative=True,
    action="Copy", structure="Expr",
)
class CopyExpr(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = self._instances()
        if not instances:
            return False
        tgt, src = self.rand_element(instances)
        return self.replace_text(tgt.range, self.get_source_text(src))

    def _instances(self) -> list[tuple[ast.Expr, ast.Expr]]:
        """All (target, source) pairs, memoized on the shared context.

        The pair set is a pure function of the unit; the pair loop memoizes
        type-compatibility verdicts per ``(target type, source type)`` object
        pair, which collapses the O(targets × sources) ``assignable`` cost to
        one check per distinct type pair.
        """
        ctx = self.get_ast_context()
        cached = ctx.memo.get("CopyExpr.instances")
        if cached is not None:
            return cached
        targets = [e for e in replaceable_rvalue_exprs(self) if e.type is not None]
        sources = [
            (e, e.type.decayed())
            for e in ctx.nodes_of_class(ast.Expr)
            if e.type is not None and self._source_is_portable(e)
        ]
        index_ids = {
            id(n.index) for n in ctx.nodes_of_class(ast.ArraySubscriptExpr)
        }
        # Initializers of array-typed variables must stay string literals /
        # braces — a copied pointer expression would not compile there.
        array_init_ids = {
            id(n.init)
            for n in ctx.nodes_of_class(ast.VarDecl)
            if n.init is not None and n.type.is_array()
        }
        # Canonicalize decayed types structurally (they are frozen, hashable
        # dataclasses): distinct node objects with equal types share one
        # compat verdict, instead of one per object-identity pair.
        canon: dict = {}
        reps: list = []

        def _canon(qt) -> int:
            i = canon.get(qt)
            if i is None:
                i = len(canon)
                canon[qt] = i
                reps.append(qt)
            return i

        sources = [
            (
                e,
                (e.range.begin.offset, e.range.end.offset),
                dec.is_integer(),
                _canon(dec),
            )
            for e, dec in sources
        ]
        # Per distinct target type: the compatible sources, in source order
        # (and the integer-valued subset, for array-subscript targets).
        # Compare decayed types: copying an array-typed global over a
        # string-literal argument is the paper's sprintf/strlen case.
        ok_cache: dict[int, tuple[list, list]] = {}

        def _ok_sources(tgt_key: int, tgt_decayed) -> tuple[list, list]:
            pair = ok_cache.get(tgt_key)
            if pair is None:
                verdicts = [ct.assignable(tgt_decayed, rep) for rep in reps]
                all_ok = [
                    (span, src)
                    for src, span, _, src_key in sources
                    if verdicts[src_key]
                ]
                int_ok = [
                    (span, src)
                    for src, span, src_integer, src_key in sources
                    if verdicts[src_key] and src_integer
                ]
                pair = (all_ok, int_ok)
                ok_cache[tgt_key] = pair
            return pair

        instances: list[tuple[ast.Expr, ast.Expr]] = []
        for tgt in targets:
            if id(tgt) in array_init_ids:
                continue
            tgt_decayed = tgt.type.decayed()
            tgt_key = _canon(tgt_decayed)
            all_ok, int_ok = _ok_sources(tgt_key, tgt_decayed)
            # Array subscripts must stay integers.
            candidates = int_ok if id(tgt) in index_ids else all_ok
            tgt_span = (tgt.range.begin.offset, tgt.range.end.offset)
            for span, src in candidates:
                if span != tgt_span:
                    instances.append((tgt, src))
        ctx.memo["CopyExpr.instances"] = instances
        return instances

    def _source_is_portable(self, expr: ast.Expr) -> bool:
        """A source expression that stays valid at any program point."""
        if isinstance(expr, ast.InitListExpr):
            return False
        for n in expr.walk():
            if isinstance(n, ast.DeclRefExpr):
                decl = n.decl
                if not (isinstance(decl, ast.VarDecl) and decl.is_global):
                    return False
        return True


@register_mutator(
    "ExpandCompoundAssign",
    "This mutator rewrites a compound assignment like a += b into the "
    "equivalent expanded form a = a + (b).",
    category="Expression", origin="supervised", creative=True,
    action="Destruct", structure="CompoundAssignOperator",
)
class ExpandCompoundAssign(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            b
            for b in self.collect(ast.BinaryOperator)
            if isinstance(b, ast.BinaryOperator)
            and b.op in ast.ASSIGN_OPS
            and b.op != "="
        ]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        lhs = self.get_source_text(b.lhs)
        rhs = self.get_source_text(b.rhs)
        return self.replace_text(b.range, f"{lhs} = {lhs} {b.op[:-1]} ({rhs})")


@register_mutator(
    "AddIdentityOperation",
    "This mutator adds an arithmetic identity operation (+ 0 or * 1) around "
    "an arithmetic expression, preserving its value.",
    category="Expression", origin="supervised",
    action="Add", structure="ArithmeticExpr",
)
class AddIdentityOperation(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        exprs = [e for e in replaceable_rvalue_exprs(self) if arith_typed(e)]
        if not exprs:
            return False
        e = self.rand_element(exprs)
        text = self.get_source_text(e)
        assert e.type is not None
        if e.type.is_integer():
            suffix = self.rand_element([" + 0", " * 1", " - 0"])
        else:
            suffix = self.rand_element([" + 0.0", " * 1.0"])
        return self.replace_text(e.range, f"(({text}){suffix})")


@register_mutator(
    "InsertLogicalNotNot",
    "This mutator applies a double logical negation !! to a branch "
    "condition, normalizing it to 0 or 1 without changing control flow.",
    category="Expression", origin="supervised",
    action="Add", structure="LogicalExpr",
)
class InsertLogicalNotNot(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        conds = condition_exprs(self)
        if not conds:
            return False
        cond = self.rand_element(conds)
        return self.replace_text(cond.range, f"!!({self.get_source_text(cond)})")


@register_mutator(
    "ReplaceExprWithDefaultValue",
    "This mutator replaces a scalar expression with the default value of its "
    "type (0 for integers and pointers, 0.0 for floating types).",
    category="Expression", origin="supervised",
    action="Modify", structure="Expr",
)
class ReplaceExprWithDefaultValue(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        exprs = [
            e
            for e in replaceable_rvalue_exprs(self)
            if e.type is not None and e.type.decayed().is_scalar()
        ]
        if not exprs:
            return False
        e = self.rand_element(exprs)
        assert e.type is not None
        return self.replace_text(e.range, self.default_value_for(e.type))


@register_mutator(
    "ReplaceConditionWithConstant",
    "This mutator replaces a branch or loop condition with the constant 1 or "
    "0, forcing one side of the control flow.",
    category="Expression", origin="supervised",
    action="Modify", structure="IfStmt",
)
class ReplaceConditionWithConstant(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        # Loop conditions forced to 1 would hang the mutant at runtime, so
        # only if-conditions may receive a 1.
        instances: list[tuple[ast.Expr, str]] = []
        for node in self.get_ast_context().unit.walk():
            if isinstance(node, ast.IfStmt):
                instances.append((node.cond, self.rand_element(["0", "1"])))
            elif isinstance(node, (ast.WhileStmt, ast.DoStmt)):
                instances.append((node.cond, "0"))
            elif isinstance(node, ast.ForStmt) and node.cond is not None:
                instances.append((node.cond, "0"))
        if not instances:
            return False
        cond, value = self.rand_element(instances)
        return self.replace_text(cond.range, value)


@register_mutator(
    "RotateBinaryExpr",
    "This mutator re-associates a chain of the same associative binary "
    "operator, turning (a op b) op c into a op (b op c).",
    category="Expression", origin="supervised",
    action="Group", structure="BinaryOperator",
)
class RotateBinaryExpr(Mutator, ASTVisitor):
    _ASSOC = ("+", "*", "&", "|", "^", "&&", "||")

    def mutate(self) -> bool:
        instances = []
        for b in _plain_binops(self):
            if b.op not in self._ASSOC:
                continue
            lhs = b.lhs
            while isinstance(lhs, ast.ParenExpr):
                lhs = lhs.inner
            if isinstance(lhs, ast.BinaryOperator) and lhs.op == b.op:
                instances.append((b, lhs))
        if not instances:
            return False
        b, lhs = self.rand_element(instances)
        a_txt = self.get_source_text(lhs.lhs)
        b_txt = self.get_source_text(lhs.rhs)
        c_txt = self.get_source_text(b.rhs)
        return self.replace_text(
            b.range, f"{a_txt} {b.op} ({b_txt} {b.op} {c_txt})"
        )


@register_mutator(
    "FactorCommonTerm",
    "This mutator finds a sum of two products sharing a common factor and "
    "factors it out, turning a*b + a*c into a*(b + c).",
    category="Expression", origin="supervised", creative=True,
    action="Combine", structure="BinaryOperator",
)
class FactorCommonTerm(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for b in _plain_binops(self):
            if b.op != "+":
                continue
            lhs, rhs = b.lhs, b.rhs
            if (
                isinstance(lhs, ast.BinaryOperator)
                and isinstance(rhs, ast.BinaryOperator)
                and lhs.op == "*"
                and rhs.op == "*"
                and self.get_source_text(lhs.lhs) == self.get_source_text(rhs.lhs)
            ):
                instances.append((b, lhs, rhs))
        if not instances:
            return False
        b, lhs, rhs = self.rand_element(instances)
        a_txt = self.get_source_text(lhs.lhs)
        b_txt = self.get_source_text(lhs.rhs)
        c_txt = self.get_source_text(rhs.rhs)
        return self.replace_text(b.range, f"{a_txt} * (({b_txt}) + ({c_txt}))")


@register_mutator(
    "SwapTernaryBranches",
    "This mutator swaps the true and false branches of a conditional "
    "operator when their types are compatible.",
    category="Expression", origin="supervised",
    action="Swap", structure="ConditionalOperator",
)
class SwapTernaryBranches(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            c
            for c in self.collect(ast.ConditionalOperator)
            if isinstance(c, ast.ConditionalOperator)
            and c.true_expr.type is not None
            and c.false_expr.type is not None
            and self.types_compatible(c.true_expr.type, c.false_expr.type)
        ]
        if not candidates:
            return False
        c = self.rand_element(candidates)
        t = self.get_source_text(c.true_expr)
        f = self.get_source_text(c.false_expr)
        return self.replace_text(c.true_expr.range, f) and self.replace_text(
            c.false_expr.range, t
        )


@register_mutator(
    "AddCastToSameType",
    "This mutator wraps an arithmetic expression in an explicit cast to its "
    "own type, which is a no-op at runtime but exercises cast folding.",
    category="Expression", origin="supervised",
    action="Add", structure="CastExpr",
)
class AddCastToSameType(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        exprs = [
            e
            for e in replaceable_rvalue_exprs(self)
            if arith_typed(e) and not e.type.is_complex()  # type: ignore[union-attr]
        ]
        if not exprs:
            return False
        e = self.rand_element(exprs)
        assert e.type is not None
        spelling = e.type.unqualified().spelling()
        return self.replace_text(
            e.range, f"(({spelling})({self.get_source_text(e)}))"
        )


@register_mutator(
    "RemoveCast",
    "This mutator removes an explicit cast between arithmetic types, letting "
    "the implicit conversions take over.",
    category="Expression", origin="supervised",
    action="Destruct", structure="CastExpr",
)
class RemoveCast(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            c
            for c in self.collect(ast.CastExpr)
            if isinstance(c, ast.CastExpr)
            and c.target_type.is_arithmetic()
            and c.operand.type is not None
            and c.operand.type.decayed().is_arithmetic()
        ]
        if not candidates:
            return False
        c = self.rand_element(candidates)
        return self.replace_text(c.range, f"({self.get_source_text(c.operand)})")


@register_mutator(
    "ArraySubscriptToPointer",
    "This mutator rewrites an array subscript a[i] into the equivalent "
    "pointer form *(a + (i)).",
    category="Expression", origin="supervised", creative=True,
    action="Modify", structure="ArraySubscriptExpr",
)
class ArraySubscriptToPointer(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            s
            for s in self.collect(ast.ArraySubscriptExpr)
            if isinstance(s, ast.ArraySubscriptExpr)
            and s.base.type is not None
            and s.base.type.decayed().is_pointer()
        ]
        if not candidates:
            return False
        s = self.rand_element(candidates)
        base = self.get_source_text(s.base)
        index = self.get_source_text(s.index)
        return self.replace_text(s.range, f"(*({base} + ({index})))")


@register_mutator(
    "IncrementToAddAssign",
    "This mutator rewrites a statement-level increment or decrement like i++ "
    "into the compound assignment i += 1.",
    category="Expression", origin="supervised", creative=True,
    action="Modify", structure="UnaryOperator",
)
class IncrementToAddAssign(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = statement_level_incdec(self)
        if not candidates:
            return False
        u = self.rand_element(candidates)
        op = "+=" if u.op == "++" else "-="
        operand = self.get_source_text(u.operand)
        return self.replace_text(u.range, f"{operand} {op} 1")


@register_mutator(
    "SwapFunctionArgs",
    "This mutator selects a CallExpr with two type-identical arguments and "
    "swaps them.",
    category="Expression", origin="supervised",
    action="Swap", structure="CallExpr",
)
class SwapFunctionArgs(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for call in self.collect(ast.CallExpr):
            assert isinstance(call, ast.CallExpr)
            for i in range(len(call.args)):
                for j in range(i + 1, len(call.args)):
                    a, b = call.args[i], call.args[j]
                    if (
                        a.type is not None
                        and b.type is not None
                        and a.type.decayed() == b.type.decayed()
                    ):
                        instances.append((call, i, j))
        if not instances:
            return False
        call, i, j = self.rand_element(instances)
        a_txt = self.get_source_text(call.args[i])
        b_txt = self.get_source_text(call.args[j])
        return self.replace_text(call.args[i].range, b_txt) and self.replace_text(
            call.args[j].range, a_txt
        )


@register_mutator(
    "ReplaceCallWithConstant",
    "This mutator replaces a function call expression with a default "
    "constant of the call's result type.",
    category="Expression", origin="supervised",
    action="Modify", structure="CallExpr",
)
class ReplaceCallWithConstant(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        replaceable = {id(e) for e in replaceable_rvalue_exprs(self)}
        candidates = [
            c
            for c in self.collect(ast.CallExpr)
            if isinstance(c, ast.CallExpr) and c.type is not None and id(c) in replaceable
        ]
        if not candidates:
            return False
        c = self.rand_element(candidates)
        assert c.type is not None
        if c.type.is_void():
            return self.replace_text(c.range, "(void)0")
        return self.replace_text(c.range, self.default_value_for(c.type))


@register_mutator(
    "ReplaceSizeofWithConstant",
    "This mutator replaces a sizeof expression with an integer constant, "
    "decoupling the program from type sizes.",
    category="Expression", origin="supervised",
    action="Modify", structure="SizeofExpr",
)
class ReplaceSizeofWithConstant(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = self.collect(ast.SizeofExpr)
        if not candidates:
            return False
        e = self.rand_element(candidates)
        value = self.rand_element([1, 2, 4, 8, 16])
        return self.replace_text(e.range, str(value))


@register_mutator(
    "ChangeCharLiteral",
    "This mutator modifies a CharLiteral to a different character value.",
    category="Expression", origin="supervised",
    action="Modify", structure="CharLiteral",
)
class ChangeCharLiteral(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = self.collect(ast.CharacterLiteral)
        if not candidates:
            return False
        e = self.rand_element(candidates)
        ch = self.rand_element(list("AZaz09 !@\\n\\0"))
        if len(ch) == 1 and ch != "\\":
            return self.replace_text(e.range, f"'{ch}'")
        return self.replace_text(e.range, "'\\0'")


@register_mutator(
    "ConditionAlwaysTrue",
    "This mutator weakens a branch condition by OR-ing it with 1 or "
    "AND-ing it with 1, biasing or preserving the control flow.",
    category="Expression", origin="supervised",
    action="Combine", structure="LogicalExpr",
)
class ConditionAlwaysTrue(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        # Only if-conditions: OR-ing a loop condition with 1 would hang.
        conds = [
            n.cond
            for n in self.get_ast_context().unit.walk()
            if isinstance(n, ast.IfStmt)
        ]
        if not conds:
            return False
        cond = self.rand_element(conds)
        text = self.get_source_text(cond)
        suffix = self.rand_element([" || 1", " && 1"])
        return self.replace_text(cond.range, f"(({text}){suffix})")


@register_mutator(
    "ModifyIntegerLiteral",
    "This mutator modifies an IntegerLiteral by a small delta or replaces it "
    "with a nearby interesting value.",
    category="Expression", origin="supervised",
    action="Modify", structure="IntegerLiteral",
)
class ModifyIntegerLiteral(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = self.collect(ast.IntegerLiteral)
        if not candidates:
            return False
        e = self.rand_element(candidates)
        assert isinstance(e, ast.IntegerLiteral)
        delta = self.rand_element([-2, -1, 1, 2, 7, 16])
        value = e.value + delta
        text = str(value) if value >= 0 else f"(-{-value})"
        return self.replace_text(e.range, text)


@register_mutator(
    "LiteralToBoundaryValue",
    "This mutator replaces an IntegerLiteral with a type-boundary value such "
    "as INT_MAX, exposing overflow-sensitive optimizer paths.",
    category="Expression", origin="supervised",
    action="Switch", structure="IntegerLiteral",
)
class LiteralToBoundaryValue(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = self.collect(ast.IntegerLiteral)
        if not candidates:
            return False
        e = self.rand_element(candidates)
        value = self.rand_element(list(BOUNDARY_INTS))
        text = str(value) if value >= 0 else f"(-{-value})"
        if value > 0x7FFFFFFF:
            text += "LL" if value <= 0x7FFFFFFFFFFFFFFF else "ULL"
        return self.replace_text(e.range, text)


@register_mutator(
    "ReplaceArgWithOtherArg",
    "This mutator replaces one argument of a CallExpr with a copy of "
    "another type-compatible argument of the same call.",
    category="Expression", origin="supervised",
    action="Copy", structure="CallExpr",
)
class ReplaceArgWithOtherArg(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for call in self.collect(ast.CallExpr):
            assert isinstance(call, ast.CallExpr)
            for i, dst in enumerate(call.args):
                for j, src in enumerate(call.args):
                    if i == j:
                        continue
                    if (
                        dst.type is not None
                        and src.type is not None
                        and dst.type.decayed() == src.type.decayed()
                    ):
                        instances.append((call, i, j))
        if not instances:
            return False
        call, i, j = self.rand_element(instances)
        return self.replace_text(
            call.args[i].range, self.get_source_text(call.args[j])
        )


@register_mutator(
    "ComparisonToDifference",
    "This mutator rewrites an integer comparison a < b into the equivalent "
    "difference form (a) - (b) < 0.",
    category="Expression", origin="supervised", creative=True,
    action="Destruct", structure="ComparisonExpr",
)
class ComparisonToDifference(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            b
            for b in _plain_binops(self)
            if b.is_comparison and int_typed(b.lhs) and int_typed(b.rhs)
        ]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        lhs = self.get_source_text(b.lhs)
        rhs = self.get_source_text(b.rhs)
        return self.replace_text(b.range, f"(({lhs}) - ({rhs}) {b.op} 0)")


@register_mutator(
    "StrengthReduceMultiply",
    "This mutator replaces a multiplication by a power-of-two constant with "
    "the equivalent left-shift.",
    category="Expression", origin="supervised", creative=True,
    action="Modify", structure="BinaryOperator",
)
class StrengthReduceMultiply(Mutator, ASTVisitor):
    _POWERS = {2: 1, 4: 2, 8: 3, 16: 4, 32: 5, 64: 6}

    def mutate(self) -> bool:
        instances = []
        for b in _plain_binops(self):
            if b.op != "*" or not int_typed(b.lhs):
                continue
            rhs = b.rhs
            if isinstance(rhs, ast.IntegerLiteral) and rhs.value in self._POWERS:
                instances.append((b, self._POWERS[rhs.value]))
        if not instances:
            return False
        b, shift = self.rand_element(instances)
        lhs = self.get_source_text(b.lhs)
        return self.replace_text(b.range, f"(({lhs}) << {shift})")


@register_mutator(
    "WrapAssignmentRhsInComma",
    "This mutator wraps the right-hand side of an assignment in a comma "
    "expression whose first operand is a no-op.",
    category="Expression", origin="supervised",
    action="Add", structure="BinaryOperator",
)
class WrapAssignmentRhsInComma(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        protected = {id(e) for e in replaceable_rvalue_exprs(self)}
        candidates = [
            b
            for b in self.collect(ast.BinaryOperator)
            if isinstance(b, ast.BinaryOperator)
            and b.op == "="
            and id(b.rhs) in protected
        ]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        rhs = self.get_source_text(b.rhs)
        return self.replace_text(b.rhs.range, f"(0, {rhs})")


# ---------------------------------------------------------------------------
# Unsupervised (M_u) expression mutators
# ---------------------------------------------------------------------------


@register_mutator(
    "ReplaceLiteralWithRandomValue",
    "This mutator randomly selects an IntegerLiteral or FloatLiteral and "
    "replaces it with a random value of the same kind.",
    category="Expression", origin="unsupervised",
    action="Modify", structure="IntegerLiteral",
)
class ReplaceLiteralWithRandomValue(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        ints = self.collect(ast.IntegerLiteral)
        floats = self.collect(ast.FloatingLiteral)
        if not ints and not floats:
            return False
        if ints and (not floats or self.rand_bool()):
            e = self.rand_element(ints)
            value = self.rng.randrange(0, 1 << 16)
            return self.replace_text(e.range, str(value))
        e = self.rand_element(floats)
        return self.replace_text(e.range, f"{self.rng.random() * 100:.6f}")


@register_mutator(
    "NegateIntegerLiteral",
    "This mutator negates the value of an IntegerLiteral.",
    category="Expression", origin="unsupervised",
    action="Inverse", structure="IntegerLiteral",
)
class NegateIntegerLiteral(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = self.collect(ast.IntegerLiteral)
        if not candidates:
            return False
        e = self.rand_element(candidates)
        return self.replace_text(e.range, f"(-{self.get_source_text(e)})")


@register_mutator(
    "ModifyFloatLiteral",
    "This mutator perturbs a FloatLiteral by scaling it or adding a small "
    "epsilon.",
    category="Expression", origin="unsupervised",
    action="Modify", structure="FloatLiteral",
)
class ModifyFloatLiteral(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = self.collect(ast.FloatingLiteral)
        if not candidates:
            return False
        e = self.rand_element(candidates)
        assert isinstance(e, ast.FloatingLiteral)
        factor = self.rand_element([0.5, 2.0, -1.0, 1e-6, 1e6])
        return self.replace_text(e.range, f"{e.value * factor!r}")


@register_mutator(
    "ChangeComparisonOperator",
    "This mutator replaces a comparison operator with a different one, e.g. "
    "turning < into <= or ==.",
    category="Expression", origin="unsupervised",
    action="Modify", structure="ComparisonExpr",
)
class ChangeComparisonOperator(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [b for b in _plain_binops(self) if b.is_comparison]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        new_op = self.rand_element([o for o in ast.COMPARISON_OPS if o != b.op])
        assert b.op_range is not None
        return self.replace_text(b.op_range, new_op)


@register_mutator(
    "ChangeLogicalOperator",
    "This mutator swaps a logical AND with a logical OR and vice versa.",
    category="Expression", origin="unsupervised",
    action="Switch", structure="LogicalExpr",
)
class ChangeLogicalOperator(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [b for b in _plain_binops(self) if b.is_logical]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        assert b.op_range is not None
        return self.replace_text(b.op_range, "||" if b.op == "&&" else "&&")


@register_mutator(
    "ChangeBitwiseOperator",
    "This mutator replaces a bitwise operator (&, |, ^) with another one.",
    category="Expression", origin="unsupervised",
    action="Modify", structure="BitwiseExpr",
)
class ChangeBitwiseOperator(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [b for b in _plain_binops(self) if b.op in ("&", "|", "^")]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        new_op = self.rand_element([o for o in ("&", "|", "^") if o != b.op])
        assert b.op_range is not None
        return self.replace_text(b.op_range, new_op)


@register_mutator(
    "ChangeShiftOperator",
    "This mutator switches a left shift to a right shift and vice versa.",
    category="Expression", origin="unsupervised",
    action="Switch", structure="ShiftExpr",
)
class ChangeShiftOperator(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [b for b in _plain_binops(self) if b.op in ("<<", ">>")]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        assert b.op_range is not None
        return self.replace_text(b.op_range, ">>" if b.op == "<<" else "<<")


@register_mutator(
    "WrapWithParens",
    "This mutator wraps an arbitrary expression in redundant parentheses.",
    category="Expression", origin="unsupervised",
    action="Add", structure="ParenExpr",
)
class WrapWithParens(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            e
            for e in self.get_ast_context().unit.walk()
            if isinstance(e, ast.Expr)
            and not isinstance(e, (ast.InitListExpr, ast.StringLiteral))
            and e.type is not None
        ]
        if not candidates:
            return False
        e = self.rand_element(candidates)
        return self.replace_text(e.range, f"({self.get_source_text(e)})")


@register_mutator(
    "DuplicateExprAsComma",
    "This mutator duplicates an expression into a comma expression that "
    "evaluates it twice: e becomes ((e), (e)).",
    category="Expression", origin="unsupervised",
    action="Group", structure="CommaExpr",
)
class DuplicateExprAsComma(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        exprs = [
            e
            for e in replaceable_rvalue_exprs(self)
            if e.type is not None and e.type.decayed().is_scalar()
        ]
        if not exprs:
            return False
        e = self.rand_element(exprs)
        text = self.get_source_text(e)
        return self.replace_text(e.range, f"(({text}), ({text}))")


@register_mutator(
    "ContractToCompoundAssign",
    "This mutator rewrites an expanded assignment a = a + b into its "
    "compound form a += b.",
    category="Expression", origin="unsupervised", creative=True,
    action="Combine", structure="AssignmentExpr",
)
class ContractToCompoundAssign(Mutator, ASTVisitor):
    _OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")

    def mutate(self) -> bool:
        instances = []
        for b in self.collect(ast.BinaryOperator):
            assert isinstance(b, ast.BinaryOperator)
            if b.op != "=":
                continue
            rhs = b.rhs
            while isinstance(rhs, ast.ParenExpr):
                rhs = rhs.inner
            if (
                isinstance(rhs, ast.BinaryOperator)
                and rhs.op in self._OPS
                and self.get_source_text(rhs.lhs) == self.get_source_text(b.lhs)
            ):
                instances.append((b, rhs))
        if not instances:
            return False
        b, rhs = self.rand_element(instances)
        lhs_txt = self.get_source_text(b.lhs)
        rhs_txt = self.get_source_text(rhs.rhs)
        return self.replace_text(b.range, f"{lhs_txt} {rhs.op}= ({rhs_txt})")


@register_mutator(
    "MultiplyByMinusOne",
    "This mutator multiplies an arithmetic expression by -1 twice removed: "
    "e becomes (-(-(e))).",
    category="Expression", origin="unsupervised",
    action="Inverse", structure="ArithmeticExpr",
)
class MultiplyByMinusOne(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        exprs = [
            e
            for e in replaceable_rvalue_exprs(self)
            if arith_typed(e) and not e.type.is_complex()  # type: ignore[union-attr]
        ]
        if not exprs:
            return False
        e = self.rand_element(exprs)
        return self.replace_text(e.range, f"(-(-({self.get_source_text(e)})))")


@register_mutator(
    "InsertBitwiseNotNot",
    "This mutator applies a double bitwise complement ~~ to an integer "
    "expression, an identity that stresses the instruction combiner.",
    category="Expression", origin="unsupervised",
    action="Add", structure="BitwiseExpr",
)
class InsertBitwiseNotNot(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        exprs = [e for e in replaceable_rvalue_exprs(self) if int_typed(e)]
        if not exprs:
            return False
        e = self.rand_element(exprs)
        return self.replace_text(e.range, f"(~~({self.get_source_text(e)}))")


@register_mutator(
    "SimplifyExprToOperand",
    "This mutator simplifies a binary expression to one of its operands, "
    "dropping the other.",
    category="Expression", origin="unsupervised",
    action="Destruct", structure="BinaryOperator",
)
class SimplifyExprToOperand(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        replaceable = {id(e) for e in replaceable_rvalue_exprs(self)}
        instances = []
        for b in _plain_binops(self):
            if id(b) not in replaceable or b.type is None:
                continue
            for side in (b.lhs, b.rhs):
                if side.type is not None and self.types_compatible(
                    side.type.decayed(), b.type
                ):
                    instances.append((b, side))
        if not instances:
            return False
        b, side = self.rand_element(instances)
        return self.replace_text(b.range, f"({self.get_source_text(side)})")


@register_mutator(
    "DistributeMultiplication",
    "This mutator distributes a multiplication over an addition, turning "
    "a * (b + c) into a*b + a*c.",
    category="Expression", origin="unsupervised", creative=True,
    action="Destruct", structure="BinaryOperator",
)
class DistributeMultiplication(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for b in _plain_binops(self):
            if b.op != "*":
                continue
            rhs = b.rhs
            while isinstance(rhs, ast.ParenExpr):
                rhs = rhs.inner
            if isinstance(rhs, ast.BinaryOperator) and rhs.op in ("+", "-"):
                if int_typed(b.lhs) and int_typed(rhs.lhs) and int_typed(rhs.rhs):
                    instances.append((b, rhs))
        if not instances:
            return False
        b, rhs = self.rand_element(instances)
        a = self.get_source_text(b.lhs)
        x = self.get_source_text(rhs.lhs)
        y = self.get_source_text(rhs.rhs)
        return self.replace_text(
            b.range, f"(({a}) * ({x}) {rhs.op} ({a}) * ({y}))"
        )


@register_mutator(
    "InsertRedundantCast",
    "This mutator inserts a cast of an expression to its own type, leaving "
    "the value unchanged.",
    category="Expression", origin="unsupervised",
    action="Add", structure="CastExpr",
)
class InsertRedundantCast(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        exprs = [
            e
            for e in replaceable_rvalue_exprs(self)
            if int_typed(e)
        ]
        if not exprs:
            return False
        e = self.rand_element(exprs)
        assert e.type is not None
        spelling = e.type.unqualified().spelling()
        return self.replace_text(
            e.range, f"(({spelling})({self.get_source_text(e)}))"
        )


@register_mutator(
    "PointerDerefToSubscript",
    "This mutator rewrites a pointer dereference *p into the subscript form "
    "p[0].",
    category="Expression", origin="unsupervised", creative=True,
    action="Modify", structure="PointerExpr",
)
class PointerDerefToSubscript(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            u
            for u in self.collect(ast.UnaryOperator)
            if isinstance(u, ast.UnaryOperator)
            and u.op == "*"
            and u.prefix
            and u.operand.type is not None
            and u.operand.type.decayed().is_pointer()
        ]
        if not candidates:
            return False
        u = self.rand_element(candidates)
        return self.replace_text(
            u.range, f"({self.get_source_text(u.operand)})[0]"
        )


@register_mutator(
    "SwapSubscriptOperands",
    "This mutator exploits the commutativity of C array subscripts, turning "
    "a[i] into i[a].",
    category="Expression", origin="unsupervised", creative=True,
    action="Swap", structure="ArraySubscriptExpr",
)
class SwapSubscriptOperands(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            s
            for s in self.collect(ast.ArraySubscriptExpr)
            if isinstance(s, ast.ArraySubscriptExpr)
            and s.base.type is not None
            and s.base.type.decayed().is_pointer()
            and s.index.type is not None
            and s.index.type.is_integer()
        ]
        if not candidates:
            return False
        s = self.rand_element(candidates)
        base = self.get_source_text(s.base)
        index = self.get_source_text(s.index)
        return self.replace_text(s.range, f"({index})[{base}]")


@register_mutator(
    "AddAssignToIncrement",
    "This mutator rewrites a compound assignment by one, x += 1, into the "
    "increment x++.",
    category="Expression", origin="unsupervised", creative=True,
    action="Modify", structure="CompoundAssignOperator",
)
class AddAssignToIncrement(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for b in self.collect(ast.BinaryOperator):
            assert isinstance(b, ast.BinaryOperator)
            if b.op not in ("+=", "-="):
                continue
            rhs = b.rhs
            while isinstance(rhs, ast.ParenExpr):
                rhs = rhs.inner
            if isinstance(rhs, ast.IntegerLiteral) and rhs.value == 1:
                instances.append(b)
        if not instances:
            return False
        b = self.rand_element(instances)
        op = "++" if b.op == "+=" else "--"
        return self.replace_text(b.range, f"{self.get_source_text(b.lhs)}{op}")


@register_mutator(
    "PrefixToPostfix",
    "This mutator converts a statement-level prefix increment/decrement to "
    "its postfix form.",
    category="Expression", origin="unsupervised",
    action="Switch", structure="UnaryOperator",
)
class PrefixToPostfix(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [u for u in statement_level_incdec(self) if u.prefix]
        if not candidates:
            return False
        u = self.rand_element(candidates)
        return self.replace_text(
            u.range, f"{self.get_source_text(u.operand)}{u.op}"
        )


@register_mutator(
    "ReplaceArgWithDefault",
    "This mutator replaces a scalar argument of a CallExpr with the default "
    "value of its type.",
    category="Expression", origin="unsupervised",
    action="Modify", structure="CallArgument",
)
class ReplaceArgWithDefault(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for call in self.collect(ast.CallExpr):
            assert isinstance(call, ast.CallExpr)
            for arg in call.args:
                if arg.type is not None and arg.type.decayed().is_scalar():
                    instances.append(arg)
        if not instances:
            return False
        arg = self.rand_element(instances)
        assert arg.type is not None
        return self.replace_text(arg.range, self.default_value_for(arg.type.decayed()))


@register_mutator(
    "ShrinkStringLiteral",
    "This mutator shortens a StringLiteral to its first half.",
    category="Expression", origin="unsupervised",
    action="Destruct", structure="StringLiteral",
)
class ShrinkStringLiteral(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            s
            for s in self.collect(ast.StringLiteral)
            if isinstance(s, ast.StringLiteral) and len(s.value) > 1 and "\\" not in s.text
        ]
        if not candidates:
            return False
        s = self.rand_element(candidates)
        assert isinstance(s, ast.StringLiteral)
        half = s.value[: max(1, len(s.value) // 2)]
        return self.replace_text(s.range, f'"{half}"')


@register_mutator(
    "XorWithZero",
    "This mutator XORs an integer expression with zero, an identity that "
    "exercises bitwise simplification passes.",
    category="Expression", origin="unsupervised",
    action="Add", structure="BitwiseExpr",
)
class XorWithZero(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        exprs = [e for e in replaceable_rvalue_exprs(self) if int_typed(e)]
        if not exprs:
            return False
        e = self.rand_element(exprs)
        return self.replace_text(e.range, f"(({self.get_source_text(e)}) ^ 0)")
