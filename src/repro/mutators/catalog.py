"""Catalog queries over the generated-mutator library (§4.1 statistics)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.muast.registry import CATEGORIES, MutatorRegistry, global_registry


@dataclass
class CatalogSummary:
    total: int
    supervised: int
    unsupervised: int
    by_category: dict[str, int]
    creative: int
    overlap_pairs: list[tuple[str, str]]


def overlap_pairs(registry: MutatorRegistry | None = None) -> list[tuple[str, str]]:
    """Cross-origin mutator pairs performing similar actions on similar
    program structures (the paper found ~6 such pairs, ~10%)."""
    registry = registry or global_registry
    supervised = {}
    for info in registry.supervised():
        supervised.setdefault((info.action, info.structure), []).append(info.name)
    pairs = []
    for info in registry.unsupervised():
        for s_name in supervised.get((info.action, info.structure), []):
            pairs.append((s_name, info.name))
    return sorted(pairs)


def catalog_summary(registry: MutatorRegistry | None = None) -> CatalogSummary:
    registry = registry or global_registry
    by_category = Counter(info.category for info in registry)
    return CatalogSummary(
        total=len(registry),
        supervised=len(registry.supervised()),
        unsupervised=len(registry.unsupervised()),
        by_category={c: by_category.get(c, 0) for c in CATEGORIES},
        creative=sum(1 for info in registry if info.creative),
        overlap_pairs=overlap_pairs(registry),
    )


def verify_catalog(registry: MutatorRegistry | None = None) -> None:
    """Assert the §4.1 shape of the library: 118 = 68 M_s + 50 M_u, split
    16/50/27/19/6 across Variable/Expression/Statement/Function/Type."""
    s = catalog_summary(registry)
    expected = {
        "Variable": 16,
        "Expression": 50,
        "Statement": 27,
        "Function": 19,
        "Type": 6,
    }
    if s.total != 118 or s.supervised != 68 or s.unsupervised != 50:
        raise AssertionError(
            f"catalog size mismatch: total={s.total} "
            f"supervised={s.supervised} unsupervised={s.unsupervised}"
        )
    if s.by_category != expected:
        raise AssertionError(f"category mismatch: {s.by_category}")
