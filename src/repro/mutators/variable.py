"""Variable mutators (16).

Includes the paper's flagship bug-finders ``CombineVariable`` (GCC #111819),
``AggregateMemberToScalarVariable`` (GCC #111820), and
``ChangeVarDeclQualifier`` (the strlen-opt case of §5.2).
"""

from __future__ import annotations

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.cast.sema import fold_int
from repro.cast.source import SourceRange
from repro.muast import ASTVisitor, Mutator, register_mutator
from repro.mutators.common import replaceable_rvalue_exprs, shared_parent_map


def _refs_to(m: Mutator, decl: ast.Decl) -> list[ast.DeclRefExpr]:
    return [
        r
        for r in m.collect(ast.DeclRefExpr)
        if isinstance(r, ast.DeclRefExpr) and r.decl is decl
    ]


def _local_var_decls(m: Mutator) -> list[ast.VarDecl]:
    return [
        d
        for d in m.collect(ast.VarDecl)
        if isinstance(d, ast.VarDecl) and not d.is_global
    ]


def _global_var_decls(m: Mutator) -> list[ast.VarDecl]:
    return [d for d in m.get_ast_context().unit.decls if isinstance(d, ast.VarDecl)]


def _single_decl_stmts(m: Mutator) -> list[tuple[ast.DeclStmt, ast.VarDecl]]:
    """DeclStmts holding exactly one VarDecl, directly inside a block."""
    parents = shared_parent_map(m)
    out = []
    for stmt in m.collect(ast.DeclStmt):
        assert isinstance(stmt, ast.DeclStmt)
        if not isinstance(parents.get(id(stmt)), ast.CompoundStmt):
            continue
        vars_ = [d for d in stmt.decls if isinstance(d, ast.VarDecl)]
        if len(vars_) == 1 and len(stmt.decls) == 1:
            out.append((stmt, vars_[0]))
    return out


def _is_address_taken(m: Mutator, decl: ast.VarDecl) -> bool:
    for u in m.collect(ast.UnaryOperator):
        assert isinstance(u, ast.UnaryOperator)
        if u.op != "&":
            continue
        operand = u.operand
        while isinstance(operand, ast.ParenExpr):
            operand = operand.inner
        if isinstance(operand, ast.DeclRefExpr) and operand.decl is decl:
            return True
    return False


def _is_assigned(m: Mutator, decl: ast.VarDecl) -> bool:
    """Whether the variable (or one of its elements/members) is modified."""
    targets = set()
    for node in m.get_ast_context().unit.walk():
        if isinstance(node, ast.BinaryOperator) and node.is_assignment:
            t = node.lhs
        elif isinstance(node, ast.UnaryOperator) and node.op in ("++", "--", "&"):
            t = node.operand
        else:
            continue
        # Unwrap to the underlying declaration reference: (*p), a[i], s.x ...
        while True:
            if isinstance(t, ast.ParenExpr):
                t = t.inner
            elif isinstance(t, ast.ArraySubscriptExpr):
                t = t.base
            elif isinstance(t, ast.MemberExpr):
                t = t.base
            elif isinstance(t, ast.UnaryOperator) and t.op == "*":
                t = t.operand
            else:
                break
        if isinstance(t, ast.DeclRefExpr):
            targets.add(id(t.decl))
    return id(decl) in targets


@register_mutator(
    "RenameVariable",
    "This mutator renames a local variable and every reference to it with a "
    "fresh unique identifier.",
    category="Variable", origin="supervised",
    action="Modify", structure="VarDecl",
)
class RenameVariable(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = _local_var_decls(self)
        if not candidates:
            return False
        decl = self.rand_element(candidates)
        fresh = self.generate_unique_name(decl.name)
        ok = self.replace_text(decl.name_range, fresh)
        for ref in _refs_to(self, decl):
            ok = self.replace_text(ref.range, fresh) and ok
        return ok


@register_mutator(
    "SwitchInitExpr",
    "This mutator randomly selects a VarDecl and swaps its init expression "
    "with the init expression of another randomly selected VarDecl in the "
    "same scope, while ensuring the types of the variables are compatible.",
    category="Variable", origin="supervised",
    action="Swap", structure="VarDecl",
)
class SwitchInitExpr(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        decls = [
            d
            for d in _local_var_decls(self)
            if d.init is not None
            and not isinstance(d.init, ast.InitListExpr)
            and self._init_is_portable(d.init)
        ]
        instances = []
        for i, a in enumerate(decls):
            for b in decls[i + 1 :]:
                if (
                    a.init is not None
                    and b.init is not None
                    and a.init.type is not None
                    and b.init.type is not None
                    and ct.assignable(a.type, b.init.type)
                    and ct.assignable(b.type, a.init.type)
                ):
                    instances.append((a, b))
        if not instances:
            return False
        a, b = self.rand_element(instances)
        assert a.init is not None and b.init is not None
        a_txt = self.get_source_text(a.init)
        b_txt = self.get_source_text(b.init)
        return self.replace_text(a.init.range, b_txt) and self.replace_text(
            b.init.range, a_txt
        )

    def _init_is_portable(self, init: ast.Expr) -> bool:
        for n in init.walk():
            if isinstance(n, ast.DeclRefExpr) and not (
                isinstance(n.decl, ast.VarDecl) and n.decl.is_global
            ):
                return False
        return True


@register_mutator(
    "RemoveVarInitializer",
    "This mutator removes the initializer from a variable declaration, "
    "leaving the variable uninitialized.",
    category="Variable", origin="supervised",
    action="Destruct", structure="VarDecl",
)
class RemoveVarInitializer(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            d
            for d in self.collect(ast.VarDecl)
            if isinstance(d, ast.VarDecl)
            and d.init is not None
            and d.init_eq_loc is not None
            and not d.type.is_array()  # unsized arrays need their initializer
        ]
        if not candidates:
            return False
        d = self.rand_element(candidates)
        assert d.init is not None and d.init_eq_loc is not None
        return self.remove_text(SourceRange(d.init_eq_loc, d.init.range.end))


@register_mutator(
    "AddVarInitializer",
    "This mutator adds a default initializer to an uninitialized scalar "
    "variable declaration.",
    category="Variable", origin="supervised",
    action="Add", structure="VarDecl",
)
class AddVarInitializer(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            d
            for d in self.collect(ast.VarDecl)
            if isinstance(d, ast.VarDecl)
            and d.init is None
            and d.type.is_scalar()
            and not d.type.const
        ]
        if not candidates:
            return False
        d = self.rand_element(candidates)
        value = "0.0" if d.type.is_floating() else "0"
        return self.insert_text_after(d.name_range.end, f" = {value}")


@register_mutator(
    "ChangeVarDeclQualifier",
    "This mutator changes the qualifiers of a VarDecl, for example marking "
    "a plain variable const volatile.",
    category="Variable", origin="supervised",
    action="Modify", structure="Attribute",
)
class ChangeVarDeclQualifier(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances: list[tuple[ast.VarDecl, str]] = []
        for d in self.collect(ast.VarDecl):
            assert isinstance(d, ast.VarDecl)
            if not d.type.volatile:
                instances.append((d, "volatile "))
            if not d.type.const and not _is_assigned(self, d):
                instances.append((d, "const "))
                instances.append((d, "const volatile "))
        if not instances:
            return False
        d, quals = self.rand_element(instances)
        return self.insert_text_before(d.specifier_range.begin, quals)


@register_mutator(
    "PromoteLocalToGlobal",
    "This mutator moves a local variable declaration to file scope, turning "
    "it into a global variable.",
    category="Variable", origin="supervised", creative=True,
    action="Lift", structure="VarDecl",
)
class PromoteLocalToGlobal(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = []
        for stmt, var in _single_decl_stmts(self):
            if var.storage is not None:
                continue
            if var.init is not None and fold_int(var.init) is None:
                continue
            if self._name_count(var.name) > 1:
                continue
            fn = self.enclosing_function(stmt)
            if fn is None:
                continue
            instances.append((stmt, var, fn))
        if not instances:
            return False
        stmt, var, fn = self.rand_element(instances)
        decl_text = self.get_source_text(stmt)
        return self.remove_text(stmt.range) and self.insert_text_before(
            fn.range.begin, decl_text + "\n"
        )

    def _name_count(self, name: str) -> int:
        return sum(
            1
            for d in self.get_ast_context().unit.walk()
            if isinstance(d, (ast.VarDecl, ast.ParmVarDecl, ast.FunctionDecl))
            and d.name == name
        )


@register_mutator(
    "ChangeVarType",
    "This mutator widens the type of an integer variable declaration, for "
    "example from int to long long.",
    category="Variable", origin="supervised",
    action="Modify", structure="TypeSpecifier",
)
class ChangeVarType(Mutator, ASTVisitor):
    _WIDEN = {
        "char": "int",
        "short": "int",
        "int": "long long",
        "unsigned int": "unsigned long long",
        "long": "long long",
        "float": "double",
    }

    def mutate(self) -> bool:
        instances = []
        for stmt, var in _single_decl_stmts(self):
            spelling = var.type.unqualified().spelling()
            if spelling not in self._WIDEN:
                continue
            if _is_address_taken(self, var):
                continue
            if var.storage is not None or var.type.const or var.type.volatile:
                continue
            instances.append((var, self._WIDEN[spelling]))
        if not instances:
            return False
        var, new_spelling = self.rand_element(instances)
        return self.replace_text(var.specifier_range, new_spelling)


@register_mutator(
    "CombineVariable",
    "This mutator combines a global variable into an opaque long long "
    "backing store and rewrites every reference as pointer arithmetic over "
    "that store.",
    category="Variable", origin="supervised", creative=True,
    action="Combine", structure="VarDecl",
)
class CombineVariable(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        source = self.get_ast_context().source
        instances = []
        for d in _global_var_decls(self):
            if d.init is not None or d.type.const:
                continue
            if not (d.type.is_arithmetic() or d.type.is_complex()):
                continue
            if d.range.begin != d.specifier_range.begin:
                continue  # shares its specifier with a previous declarator
            after = source.text[d.range.end.offset : d.range.end.offset + 1]
            if after != ";":
                continue
            instances.append(d)
        if not instances:
            return False
        d = self.rand_element(instances)
        store = self.generate_unique_name("combinedVar")
        spelling = d.type.unqualified().spelling()
        offset = self.rand_element([0, 8, 16])
        if not self.replace_text(d.range, f"long long {store}[4]"):
            return False
        ok = True
        for ref in _refs_to(self, d):
            ok = (
                self.replace_text(
                    ref.range,
                    f"(*({spelling} *)((char *){store} + {offset}))",
                )
                and ok
            )
        return ok


@register_mutator(
    "AggregateMemberToScalarVariable",
    "This mutator transforms a constant-index array subscript like r[0] "
    "into a dedicated scalar variable r_0, adding a declaration for it.",
    category="Variable", origin="supervised", creative=True,
    action="Destruct", structure="ArrayDimension",
)
class AggregateMemberToScalarVariable(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances: dict[tuple[int, int], list[ast.ArraySubscriptExpr]] = {}
        decls: dict[int, ast.VarDecl] = {}
        for sub in self.collect(ast.ArraySubscriptExpr):
            assert isinstance(sub, ast.ArraySubscriptExpr)
            base = sub.base
            while isinstance(base, ast.ParenExpr):
                base = base.inner
            if not isinstance(base, ast.DeclRefExpr):
                continue
            decl = base.decl
            if not (isinstance(decl, ast.VarDecl) and decl.is_global):
                continue
            if not decl.type.is_array() or decl.init is not None:
                continue
            elem = decl.type.element()
            if elem is None or not elem.is_arithmetic():
                continue
            index = fold_int(sub.index)
            if index is None:
                continue
            key = (id(decl), index)
            instances.setdefault(key, []).append(sub)
            decls[id(decl)] = decl
        if not instances:
            return False
        key = self.rand_element(sorted(instances, key=lambda k: (k[1], len(instances[k]))))
        decl_id, index = key
        decl = decls[decl_id]
        elem = decl.type.element()
        assert elem is not None
        scalar = f"{decl.name}_{index}"
        if scalar in self.get_ast_context().source.text:
            scalar = self.generate_unique_name(scalar)
        ok = self.insert_text_before(
            decl.specifier_range.begin,
            self.format_as_decl(elem.unqualified(), scalar) + ";\n",
        )
        for sub in instances[key]:
            ok = self.replace_text(sub.range, scalar) and ok
        return ok


@register_mutator(
    "ChangeParamScope",
    "This mutator moves a function parameter into the function's local "
    "scope, initializing it with a default value and removing the argument "
    "from every call site.",
    category="Variable", origin="supervised", creative=True,
    action="Lift", structure="ParmVarDecl",
)
class ChangeParamScope(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        from repro.mutators.common import address_taken, call_sites_of

        instances = []
        for fn in self.get_ast_context().function_definitions():
            if fn.name == "main" or address_taken(self, fn.name):
                continue
            prototypes = [
                d
                for d in self.get_ast_context().unit.decls
                if isinstance(d, ast.FunctionDecl) and d.name == fn.name and d is not fn
            ]
            if prototypes:
                continue  # would desynchronize the prototype
            calls = call_sites_of(self, fn.name)
            if any(len(c.args) != len(fn.params) for c in calls):
                continue
            for i, p in enumerate(fn.params):
                if p.name and p.type.is_scalar() and not p.type.is_pointer():
                    instances.append((fn, i, calls))
        if not instances:
            return False
        fn, index, calls = self.rand_element(instances)
        p = fn.params[index]
        ok = self.remove_parm_from_func_decl(fn, p)
        assert fn.body is not None and fn.body.lbrace_loc is not None
        decl_text = self.format_as_decl(p.type.unqualified(), p.name)
        value = "0.0" if p.type.is_floating() else "0"
        ok = (
            self.insert_text_after(
                fn.body.lbrace_loc.advanced(1), f"\n{decl_text} = {value};"
            )
            and ok
        )
        for call in calls:
            ok = self.remove_arg_from_expr(call, index) and ok
        return ok


# ---------------------------------------------------------------------------
# Unsupervised (M_u) variable mutators
# ---------------------------------------------------------------------------


@register_mutator(
    "DuplicateVarDecl",
    "This mutator duplicates a variable declaration under a fresh name, "
    "initializing the copy from the original variable.",
    category="Variable", origin="unsupervised",
    action="Copy", structure="VarDecl",
)
class DuplicateVarDecl(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = [
            (stmt, var)
            for stmt, var in _single_decl_stmts(self)
            if var.type.is_scalar() and var.storage is None
        ]
        if not instances:
            return False
        stmt, var = self.rand_element(instances)
        fresh = self.generate_unique_name(var.name)
        decl_text = self.format_as_decl(var.type.unqualified(), fresh)
        return self.insert_after_stmt(stmt, f"{decl_text} = {var.name};")


@register_mutator(
    "SplitVarDeclInit",
    "This mutator splits a declaration with an initializer into a plain "
    "declaration followed by an assignment.",
    category="Variable", origin="unsupervised",
    action="Destruct", structure="InitExpr",
)
class SplitVarDeclInit(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = [
            (stmt, var)
            for stmt, var in _single_decl_stmts(self)
            if var.init is not None
            and var.init_eq_loc is not None
            and var.type.is_scalar()
            and not var.type.const
            and var.storage is None
            and not isinstance(var.init, ast.InitListExpr)
        ]
        if not instances:
            return False
        stmt, var = self.rand_element(instances)
        assert var.init is not None and var.init_eq_loc is not None
        init_text = self.get_source_text(var.init)
        ok = self.remove_text(SourceRange(var.init_eq_loc, var.init.range.end))
        return self.insert_after_stmt(stmt, f"{var.name} = {init_text};") and ok


@register_mutator(
    "MakeLocalStatic",
    "This mutator adds static storage duration to a local variable whose "
    "initializer is a constant expression.",
    category="Variable", origin="unsupervised",
    action="Add", structure="StorageClass",
)
class MakeLocalStatic(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        instances = [
            var
            for _stmt, var in _single_decl_stmts(self)
            if var.storage is None
            and (var.init is None or fold_int(var.init) is not None)
        ]
        if not instances:
            return False
        var = self.rand_element(instances)
        return self.insert_text_before(var.specifier_range.begin, "static ")


@register_mutator(
    "ReplaceVarWithInitValue",
    "This mutator replaces a use of a variable with the literal value of "
    "its initializer.",
    category="Variable", origin="unsupervised", creative=True,
    action="Modify", structure="DeclRefExpr",
)
class ReplaceVarWithInitValue(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        replaceable = {id(e) for e in replaceable_rvalue_exprs(self)}
        instances = []
        for d in _local_var_decls(self):
            if not isinstance(d.init, (ast.IntegerLiteral, ast.FloatingLiteral)):
                continue
            for ref in _refs_to(self, d):
                if id(ref) in replaceable:
                    instances.append((ref, d.init.text))
        if not instances:
            return False
        ref, text = self.rand_element(instances)
        return self.replace_text(ref.range, f"({text})")


@register_mutator(
    "RenameGlobalVariable",
    "This mutator renames a global variable and all of its references with "
    "a fresh unique identifier.",
    category="Variable", origin="unsupervised",
    action="Modify", structure="VarDecl",
)
class RenameGlobalVariable(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = _global_var_decls(self)
        if not candidates:
            return False
        decl = self.rand_element(candidates)
        fresh = self.generate_unique_name(decl.name)
        ok = self.replace_text(decl.name_range, fresh)
        for ref in _refs_to(self, decl):
            ok = self.replace_text(ref.range, fresh) and ok
        return ok


@register_mutator(
    "RemoveQualifier",
    "This mutator removes a const or volatile qualifier from a variable "
    "declaration.",
    category="Variable", origin="unsupervised",
    action="Destruct", structure="Attribute",
)
class RemoveQualifier(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        source = self.get_ast_context().source
        instances = []
        for d in self.collect(ast.VarDecl):
            assert isinstance(d, ast.VarDecl)
            spec_text = source.slice(d.specifier_range)
            for word in ("const", "volatile"):
                idx = spec_text.find(word)
                if idx < 0:
                    continue
                begin = d.specifier_range.begin.advanced(idx)
                length = len(word)
                if spec_text[idx + length : idx + length + 1] == " ":
                    length += 1
                instances.append(SourceRange(begin, begin.advanced(length)))
        if not instances:
            return False
        rng = self.rand_element(instances)
        return self.remove_text(rng)
