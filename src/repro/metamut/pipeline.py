"""The end-to-end MetaMut pipeline (Figure 1) and the §4 campaigns.

``MetaMut.generate_one`` runs invention → synthesis → validation/refinement
for a single mutator; ``run_unsupervised`` reproduces the paper's 100 fully
automated invocations (24 system failures, 76 completions, 50 valid), and
``run_supervised`` the human-in-the-loop production of the 68 M_s mutators.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.llm.client import APIError, LLMClient
from repro.llm.costs import CostLedger, MutatorCost
from repro.resilience.retry import RetryPolicy
from repro.llm.model import Implementation, Invention, SimulatedLLM
from repro.metamut.invention import invent_mutator
from repro.metamut.refinement import RefinementOutcome, refine
from repro.metamut.synthesis import generate_unit_tests, synthesize_implementation
from repro.muast.registry import MutatorRegistry, global_registry
from repro.telemetry import TelemetrySession

# Importing the library populates the global registry with all 118 mutators.
import repro.mutators  # noqa: F401  (registration side effect)


@dataclass
class GenerationRecord:
    """Outcome of one MetaMut invocation."""

    status: str  # "valid" | "api_error" | "invalid"
    reason: str = ""  # for invalid: refine-death | mismatched | unthorough | duplicate
    invention: Invention | None = None
    implementation: Implementation | None = None
    cost: MutatorCost | None = None
    fixed: Counter = field(default_factory=Counter)
    rounds: int = 0

    @property
    def name(self) -> str:
        return self.invention.name if self.invention else "<none>"


@dataclass
class UnsupervisedCampaign:
    """Aggregate results of the 100-invocation unsupervised run (§4.1)."""

    records: list[GenerationRecord] = field(default_factory=list)
    ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def api_errors(self) -> int:
        return sum(1 for r in self.records if r.status == "api_error")

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.status != "api_error")

    @property
    def completion_rate(self) -> float:
        return self.completed / len(self.records) if self.records else 0.0

    @property
    def total_retries(self) -> int:
        """Throttles absorbed by the retry policy, across all invocations."""
        return sum(r.cost.retries for r in self.records if r.cost is not None)

    @property
    def total_backoff_seconds(self) -> float:
        return sum(
            r.cost.total_backoff_seconds
            for r in self.records
            if r.cost is not None
        )

    @property
    def valid(self) -> list[GenerationRecord]:
        return [r for r in self.records if r.status == "valid"]

    def invalid_census(self) -> Counter:
        """§4.1's failure-cause census for invalid mutators."""
        return Counter(
            r.reason for r in self.records if r.status == "invalid"
        )

    def table1(self) -> dict[int, int]:
        """Bugs fixed by the refinement loop, by goal category (Table 1).

        The paper's census covers the mutators that survived into M_u.
        """
        fixed: Counter = Counter()
        for r in self.valid:
            fixed.update(r.fixed)
        return {goal: fixed.get(goal, 0) for goal in range(1, 7)}

    def faulty_drafts(self) -> int:
        """How many valid mutators needed at least one fix (§4.1: 27/50)."""
        return sum(1 for r in self.valid if sum(r.fixed.values()) > 0)


class MetaMut:
    """The framework: prompts + processes around an LLM (Figure 1)."""

    def __init__(
        self,
        client: LLMClient | None = None,
        registry: MutatorRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        telemetry: TelemetrySession | None = None,
    ) -> None:
        self.registry = registry or global_registry
        if client is None:
            client = LLMClient(
                SimulatedLLM(self.registry), retry_policy=retry_policy,
                telemetry=telemetry,
            )
        self.client = client
        self.telemetry = (
            telemetry if telemetry is not None else self.client.telemetry
        )

    # ------------------------------------------------------------------

    def generate_one(
        self,
        rng: random.Random,
        previously_generated: set[str],
        origin: str = "unsupervised",
    ) -> GenerationRecord:
        """One full invocation: invention → synthesis → refinement."""
        cost = MutatorCost(name="<pending>")
        telem = self.telemetry
        try:
            with telem.span("invention", origin=origin):
                invention = invent_mutator(
                    self.client, rng, previously_generated, cost, origin
                )
            cost.name = invention.name
            with telem.span("implementation", mutator=invention.name):
                impl = synthesize_implementation(
                    self.client, rng, invention, cost
                )
                tests = generate_unit_tests(self.client, rng, invention, cost)
            with telem.span("refinement", mutator=invention.name):
                outcome = refine(self.client, impl, tests, rng, cost)
        except APIError:
            telem.emit("llm", "invocation", status="api_error", origin=origin)
            return GenerationRecord("api_error", cost=cost)
        record = GenerationRecord(
            status="valid",
            invention=invention,
            implementation=outcome.implementation,
            cost=cost,
            fixed=outcome.fixed,
            rounds=outcome.rounds,
        )
        if not outcome.passed:
            record.status = "invalid"
            record.reason = "refine-death"
        else:
            # Manual review (§4): two authors independently check that the
            # implementation performs as described on all (including their
            # own, more complex) test cases, and that it is not a duplicate.
            verdict = self.manual_review(invention, outcome)
            if verdict is not None:
                record.status = "invalid"
                record.reason = verdict
        telem.emit(
            "llm", "invocation",
            status=record.status, reason=record.reason or None,
            mutator=record.name, rounds=record.rounds, origin=origin,
        )
        return record

    def manual_review(
        self, invention: Invention, outcome: RefinementOutcome
    ) -> str | None:
        """None = accepted into the mutator set; else the rejection cause."""
        if invention.fate == "mismatched":
            return "mismatched"
        if invention.fate == "unthorough":
            return "unthorough"
        if invention.fate == "duplicate":
            return "duplicate"
        if outcome.implementation.latent_defect is not None:
            return outcome.implementation.latent_defect
        return None

    # ------------------------------------------------------------------

    def run_unsupervised(
        self, invocations: int = 100, seed: int = 118
    ) -> UnsupervisedCampaign:
        """The fully automated campaign of §4 (100 invocations)."""
        campaign = UnsupervisedCampaign()
        rng = random.Random(seed)
        generated: set[str] = set()
        for _ in range(invocations):
            record = self.generate_one(
                random.Random(rng.randrange(1 << 62)), generated
            )
            campaign.records.append(record)
            if record.invention is not None:
                generated.add(record.invention.name)
            if record.status == "valid" and record.cost is not None:
                campaign.ledger.add(record.cost)
        campaign.ledger.export(self.telemetry.metrics)
        return campaign

    def run_supervised(
        self, count: int = 68, seed: int = 68
    ) -> UnsupervisedCampaign:
        """The human-in-the-loop production of M_s.

        An author interactively repaired anything the loop could not, so
        every invocation converges on a valid supervised mutator; costs are
        tracked the same way.
        """
        campaign = UnsupervisedCampaign()
        rng = random.Random(seed)
        generated: set[str] = set()
        supervised = self.registry.supervised()
        target = min(count, len(supervised))
        produced = 0
        while produced < target:
            record = self.generate_one(
                random.Random(rng.randrange(1 << 62)), generated, origin="supervised"
            )
            campaign.records.append(record)
            if record.invention is not None:
                generated.add(record.invention.name)
            if record.status == "invalid":
                # The supervising author diagnoses and fixes it by hand.
                record.status = "valid"
                record.reason = "human-fixed"
            if record.status == "valid" and record.cost is not None:
                campaign.ledger.add(record.cost)
            if (
                record.status == "valid"
                and record.invention is not None
                and record.invention.registry_name is not None
            ):
                produced += 1
        campaign.ledger.export(self.telemetry.metrics)
        return campaign
