"""Validation of synthesized mutators: goals #1-#6 of §3.3.

Given a tentative implementation and the LLM-generated test programs P, the
validator checks, from the simplest goal to the most complex:

  #1 the mutator compiles;          #4 it outputs something;
  #2 it terminates (no hang);       #5 it actually rewrites;
  #3 it returns (no crash);         #6 its mutants P' compile.

The first unmet goal becomes the feedback sent back to the LLM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cast.parser import ParseError, parse
from repro.cast.sema import Sema
from repro.llm.model import Implementation
from repro.muast.mutator import MutatorHang, apply_mutator

#: RNG retries per test program — mutators select instances randomly, so one
#: unlucky draw must not count as "outputs nothing".
ATTEMPTS_PER_TEST = 4


@dataclass
class ValidationReport:
    """Outcome of one validation pass."""

    goal: int | None  # None = all goals met
    case: int = 0
    detail: str = ""
    #: For goals #2/#3: the exception type the mutator raised, feeding the
    #: refinement loop's fault-category census.
    fault_type: str = ""

    @property
    def passed(self) -> bool:
        return self.goal is None


def _mutant_compiles(text: str) -> str | None:
    """None if the mutant compiles, else the first diagnostic."""
    try:
        unit = parse(text)
    except (ParseError, RecursionError) as exc:
        return f"error: {exc}"
    errors = [d for d in Sema().analyze(unit) if d.severity == "error"]
    return errors[0].message if errors else None


def validate_implementation(
    impl: Implementation,
    tests: list[str],
    rng: random.Random,
) -> ValidationReport:
    """Run the goal ladder; return the first violation (or success)."""
    # Goal #1: the implementation itself must compile.
    if impl.has_compile_fault():
        return ValidationReport(1, 0, "syntax error in the mutator source")

    produced_any = False
    rewrote_any = False
    identical_case: int | None = None
    for case, program in enumerate(tests):
        for _attempt in range(ATTEMPTS_PER_TEST):
            mutator = impl.instantiate(
                random.Random(rng.randrange(1 << 62))
            )
            try:
                outcome = apply_mutator(mutator, program)
            except MutatorHang as exc:  # goal #2
                return ValidationReport(
                    2, case, str(exc), fault_type=type(exc).__name__
                )
            except Exception as exc:  # goal #3: any unhandled exception,
                # MutatorCrash or otherwise, is observed as a crash
                return ValidationReport(
                    3,
                    case,
                    f"{type(exc).__name__}: {exc}",
                    fault_type=type(exc).__name__,
                )
            if not outcome.changed:
                continue
            produced_any = True
            assert outcome.mutant_text is not None
            if outcome.mutant_text == program:
                # Claimed a change but produced identical output.  Only a
                # mutator that *never* rewrites violates goal #5 — a random
                # draw that happens to be a no-op (0 → 0) is not a bug.
                identical_case = case
                continue
            rewrote_any = True
            diagnostic = _mutant_compiles(outcome.mutant_text)
            if diagnostic is not None:  # goal #6
                return ValidationReport(6, case, diagnostic)
    if not produced_any:  # goal #4
        return ValidationReport(4, 0, "no mutant produced on any test case")
    if not rewrote_any:  # goal #5
        return ValidationReport(
            5, identical_case or 0, "output identical to input"
        )
    return ValidationReport(None)
