"""The mutator code template of Figure 2, rendered for the Python μAST.

The LLM fills the ``{{...}}`` placeholders and the numbered steps.  The
rendered source of a synthesized implementation is what the generation logs
store; behaviourally the implementation is executed through the fault model
(:mod:`repro.llm.faults`).
"""

from __future__ import annotations

import inspect
import textwrap

TEMPLATE = '''\
from repro.muast import ASTVisitor, Mutator, register_mutator
{{Includes}}


@register_mutator(
    "{{MutatorName}}",
    "{{MutatorDescription}}",
    category="{{Category}}", origin="unsupervised",
    action="{{Action}}", structure="{{Structure}}",
)
class {{MutatorName}}(Mutator, ASTVisitor):
    def visit_{{NodeType}}(self, node):
        # Step 2, Collect mutation instances
        ...

    def mutate(self) -> bool:
        # Step 1, Traverse the AST
        # Step 3, Select a mutation instance
        # Step 4, Check mutation validity
        # Step 5, Perform mutation
        # Step 6, Return true if changed
        ...
'''


def render_template() -> str:
    """The unfilled template included in the synthesis prompt."""
    return TEMPLATE


def render_implementation(cls: type, markers: list[str]) -> str:
    """The "LLM output": the implementation source plus fault markers.

    The final, validated implementation of every mutator ships in
    :mod:`repro.mutators` — its source *is* the synthesized artifact.  A
    tentative draft is rendered as that source annotated with the bug markers
    of its injected faults, mirroring how the paper's logs show buggy drafts
    before the refinement loop repairs them.
    """
    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):  # pragma: no cover - sources always exist
        source = f"class {cls.__name__}(Mutator, ASTVisitor): ..."
    if not markers:
        return source
    return "\n".join(markers) + "\n" + source
