"""LLM-generated unit tests for mutator validation (§3.3).

The paper prompts the LLM for compilable, executable C programs that contain
the program structure a mutator targets, and finds that "LLMs are capable of
generating compilable code snippets that include the specified program
structure".  The simulated model draws from the snippet library below; every
program parses, passes sema, and runs to completion on the IR interpreter.
"""

from __future__ import annotations

_BASE = """
int acc = 5;
int helper(int a, int b) {
  if (a > b && b != 0) { return a - b; } else { a = b - a; }
  return a + acc;
}
int main(void) {
  int i, total = 0;
  for (i = 0; i < 8; i++) total += helper(i, acc);
  while (total > 40) { total -= 9; }
  printf("%d\\n", total);
  return 0;
}
"""

#: A deliberately feature-dense program: ternaries, unary chains, sizeof,
#: float literals, bitwise/shift operators, canonical compound-assignment
#: patterns, pointer dereferences, qualified locals, associative chains.
_RICH = """
int knob = 12;
int main(void) {
  int a = 3;
  int b = 7;
  int c = 10;
  const int limit = 64;
  volatile int probe = 2;
  double scale = 2.5;
  int *p = &a;
  a = a + 1;
  b += 1;
  ++c;
  c = (a + b) + knob;
  c = a + b + knob;
  a = b * 8;
  b = a * b + a * c;
  a = a * (b + c);
  c = b & 5;
  a = b | 9;
  b = c ^ 3;
  a = b << 2;
  c = b >> 1;
  b = -a;
  c = !b;
  a = ~c;
  b = a > c ? a - c : c - a;
  c = (int)sizeof(long) + (int)sizeof a;
  *p = *p + (int)scale;
  if (a < limit) { a += probe; } else { a -= probe; }
  printf("%d %d %d\\n", a, b, c);
  return 0;
}
"""

#: Function-shape coverage: a void function, an unused parameter, a
#: zero-argument accessor over globals, a global-only block.
_FUNCS = """
int counter = 3;
int floor_value = 2;
int get_floor(void) {
  return floor_value + 1;
}
void bump(int step, int unused_extra) {
  counter += step;
  return;
}
int clamp(int v) {
  {
    counter ^= 5;
    floor_value += 2;
  }
  if (v < get_floor()) return get_floor();
  return v;
}
int main(void) {
  bump(2, 9);
  bump(3, 8);
  printf("%d\\n", clamp(counter));
  return 0;
}
"""

#: Global-shape coverage: bare scalar globals, a constant-indexed array, a
#: complex variable, and one *unused* struct object (no member accesses), so
#: that aggregate-rewriting mutators always find a safe instance.
_GLOBALS = """
int free_scalar;
unsigned long wide_scalar;
double ratio_scalar;
_Complex double cval;
int grid[6];
struct opaque_rec { int a; int b; };
struct opaque_rec opaque_box;
int main(void) {
  free_scalar = 4;
  wide_scalar = 10;
  ratio_scalar = 1.5;
  __real cval = ratio_scalar;
  grid[0] = free_scalar;
  grid[1] = grid[0] + 2;
  grid[2] = grid[1] * 3;
  printf("%d %d\\n", grid[2], free_scalar);
  return 0;
}
"""

_SWITCH = """
int pick(int v) {
  switch (v & 3) {
    case 0: return 7;
    case 1: v += 2; break;
    case 2: return v * 3;
    default: return -v;
  }
  return v;
}
int main(void) {
  int i, out = 0;
  for (i = 0; i < 6; i++) out += pick(i);
  printf("%d\\n", out);
  return 0;
}
"""

_ARRAYS = """
int grid[8];
long fold(int *p, int n) {
  long s = 0;
  int i;
  for (i = 0; i < n; i++) s += p[i] * 2;
  return s;
}
int main(void) {
  int i;
  for (i = 0; i < 8; i++) grid[i] = i * i;
  grid[3] = grid[2] + grid[1];
  printf("%ld\\n", fold(grid, 8));
  return 0;
}
"""

_STRINGS = """
static char buf[24];
int main(void) {
  int n = sprintf(buf, "%s", "hello");
  memset(buf + n, 'x', 3);
  printf("%s %d\\n", buf, n);
  return 0;
}
"""

_ENUMS = """
typedef long word;
enum mode { SLOW, FAST = 4 };
word mix(word w) {
  double d = 1.5;
  return w * (word)d + FAST;
}
int main(void) {
  printf("%d\\n", (int)mix(6));
  return 0;
}
"""

_GOTO = """
int walk(int n) {
  int steps = 0;
top:
  if (n <= 1) goto done;
  n = (n & 1) ? n * 3 + 1 : n / 2;
  steps++;
  if (steps < 40) goto top;
done:
  return steps;
}
int main(void) {
  printf("%d\\n", walk(27));
  return 0;
}
"""

#: The always-included core set — rich enough that every library mutator
#: finds at least one applicable instance.
_CORE = (_BASE, _RICH, _FUNCS, _GLOBALS)

#: Keyword → extra snippet routing over structure/description text.
_LIBRARY = [
    ("switch", _SWITCH),
    ("case", _SWITCH),
    ("break", _SWITCH),
    ("continue", _SWITCH),
    ("array", _ARRAYS),
    ("subscript", _ARRAYS),
    ("string", _STRINGS),
    ("char", _STRINGS),
    ("enum", _ENUMS),
    ("typedef", _ENUMS),
    ("goto", _GOTO),
    ("label", _GOTO),
]


def tests_for(structure: str, description: str = "") -> list[str]:
    """Return the LLM's unit-test programs for a mutator."""
    needle = (structure + " " + description).lower()
    programs = [s.strip() + "\n" for s in _CORE]
    for key, snippet in _LIBRARY:
        if key in needle:
            text = snippet.strip() + "\n"
            if text not in programs:
                programs.append(text)
            break
    return programs


def all_snippets() -> list[str]:
    """Every distinct test program (for the test suite's own validation)."""
    out = [_BASE, _RICH, _FUNCS, _GLOBALS, _SWITCH, _ARRAYS, _STRINGS, _ENUMS, _GOTO]
    return [s.strip() + "\n" for s in out]
