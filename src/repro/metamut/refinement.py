"""The validation-and-refinement loop (§3.3).

Repeatedly validates the tentative implementation and feeds the unmet,
simplest goal back to the LLM for a fix.  The automatic procedure terminates
after 27 repair attempts (§5.1's configuration); what it fixed is recorded
per goal category (Table 1).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.llm.client import LLMClient
from repro.llm.costs import MutatorCost, sample_prepare_seconds
from repro.llm.model import Implementation
from repro.metamut.prompts import bugfix_prompt
from repro.metamut.validation import ValidationReport, validate_implementation

MAX_REPAIR_ATTEMPTS = 27


@dataclass
class RefinementOutcome:
    implementation: Implementation
    passed: bool
    rounds: int
    #: Goal-category → count of bugs the loop fixed (Table 1 rows).
    fixed: Counter = field(default_factory=Counter)
    last_report: ValidationReport | None = None
    #: Exception-type → occurrences observed while validating (the
    #: fault-category census behind goals #2/#3 failures).
    fault_census: Counter = field(default_factory=Counter)


def refine(
    client: LLMClient,
    impl: Implementation,
    tests: list[str],
    rng: random.Random,
    cost: MutatorCost,
    max_attempts: int = MAX_REPAIR_ATTEMPTS,
) -> RefinementOutcome:
    """Drive the loop until the mutator validates or the budget runs out."""
    outcome = RefinementOutcome(impl, False, 0)
    for _attempt in range(max_attempts):
        # Preparing a request = compiling the mutator, running it on the
        # tests, and collecting feedback (Table 3's "Prepare" time).
        prepare = sample_prepare_seconds(rng)
        report = validate_implementation(outcome.implementation, tests, rng)
        outcome.last_report = report
        outcome.rounds += 1
        if report.fault_type:
            outcome.fault_census[report.fault_type] += 1
        cost.prepare_seconds.append(prepare)
        if report.passed:
            # One confirmation round is still an LLM round (the validated
            # implementation is acknowledged) — matching Table 2's minimum
            # of one bug-fixing QA round.
            cost.bugfix.add(0, prepare, rounds=1)
            outcome.passed = True
            return outcome
        assert report.goal is not None
        prompt = bugfix_prompt(report.goal, report.case, report.detail)
        assert prompt  # rendered for fidelity; consumed structurally
        before = list(outcome.implementation.faults)
        fixed_impl, usage = client.fix(rng, outcome.implementation, report.goal)
        cost.bugfix.add(usage.tokens, usage.total_seconds + prepare, rounds=1)
        cost.record_transport(usage)
        if len(fixed_impl.faults) < len(before):
            outcome.fixed[report.goal] += 1
        outcome.implementation = fixed_impl
    return outcome
