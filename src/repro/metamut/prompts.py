"""Prompt builders for every MetaMut stage (§3.1-§3.3).

The prompts are faithful to the paper's structure: task description with the
action/program-structure lists, creativity hints, sampling hints (previously
generated mutators), the μAST header + template + in-context example for
synthesis, test generation, and goal-specific bug-fix feedback.
"""

from __future__ import annotations

from repro.metamut.actions import ACTIONS, PROGRAM_STRUCTURES
from repro.metamut.template import render_template

MUAST_HEADER_SUMMARY = """\
class Mutator:
    # ---- Query APIs ----
    def get_source_text(self, node): ...        # extract a node's source
    def find_str_loc_from(self, loc, target): ...
    def find_braces_range(self, from_loc): ...
    def rand_element(self, elements): ...       # choose a random element
    # ---- Rewriting APIs ----
    def replace_text(self, range, text): ...
    def remove_parm_from_func_decl(self, fn, parm): ...
    def remove_arg_from_expr(self, call, index): ...
    # ---- Semantic checking APIs ----
    def check_binop(self, op, lhs, rhs): ...
    def check_assignment(self, lhs_ty, rhs_ty): ...
    # ---- Helpers ----
    def generate_unique_name(self, base_name): ...
    def format_as_decl(self, ty, placeholder): ...
"""

IN_CONTEXT_EXAMPLE = '''\
# Example: a complete mutator following the template.
@register_mutator(
    "SwapBinaryOperands",
    "This mutator selects a BinaryOperator and swaps its left and right "
    "operands, preserving type validity.",
    category="Expression", origin="supervised",
    action="Swap", structure="BinaryOperator",
)
class SwapBinaryOperands(Mutator, ASTVisitor):
    def mutate(self) -> bool:
        candidates = [
            b for b in self.collect(ast.BinaryOperator)
            if self.check_binop(b.op, b.rhs, b.lhs)
        ]
        if not candidates:
            return False
        b = self.rand_element(candidates)
        lhs, rhs = self.get_source_text(b.lhs), self.get_source_text(b.rhs)
        return self.replace_text(b.lhs.range, rhs) and \\
            self.replace_text(b.rhs.range, lhs)
'''


def invention_prompt(previous: list[str]) -> str:
    """Stage 1: invent a new mutator name + description."""
    avoid = "\n".join(f"  - {name}" for name in sorted(previous)) or "  (none)"
    return (
        "Give me the name and a brief description of a semantic-aware "
        "mutation operator that performs [Action] on [Program Structure], "
        "where both the action and the program structure are selected from "
        "the lists below.\n\n"
        f"Actions: {', '.join(ACTIONS)}\n"
        f"Program Structures: {', '.join(PROGRAM_STRUCTURES)}\n\n"
        "You may also explore actions and program structures that are "
        "related to, but not limited to, those listed.\n\n"  # creativity hint
        "Avoid duplicating any of the previously generated mutators:\n"
        f"{avoid}\n"  # sampling hint
    )


def synthesis_prompt(name: str, description: str) -> str:
    """Stage 2: one-shot template-based implementation synthesis."""
    return (
        f"Implement the mutator {name!r}: {description}\n\n"
        "Complete the following template step by step. The Mutator base "
        "class provides these APIs:\n\n"
        f"{MUAST_HEADER_SUMMARY}\n"
        f"Template:\n{render_template()}\n"
        f"{IN_CONTEXT_EXAMPLE}"
    )


def testgen_prompt(name: str, description: str) -> str:
    """Stage 3 setup: LLM-generated unit tests for the mutator."""
    return (
        f"Generate test cases for which the mutator {name!r} "
        f"({description}) can be applied. Each test case must be a "
        "compilable and executable C program that contains the program "
        "structure the mutator targets."
    )


#: Feedback templates, one per validation goal of §3.3.
FEEDBACK_TEMPLATES = {
    1: "The mutator does not compile:\n{detail}",
    2: "The mutator hangs when applied to test case #{case}:\n{detail}",
    3: "The mutator crashes when applied to test case #{case}:\n{detail}",
    4: "The mutator outputs nothing for test case #{case} although the "
       "targeted program structure is present.",
    5: "The mutator reports success but does not rewrite test case #{case}.",
    6: "The mutant produced from test case #{case} does not compile:\n"
       "{detail}",
}


def bugfix_prompt(goal: int, case: int, detail: str) -> str:
    feedback = FEEDBACK_TEMPLATES[goal].format(case=case, detail=detail)
    return (
        f"{feedback}\n\nPlease fix the mutator implementation and reply "
        "with the complete corrected code."
    )
