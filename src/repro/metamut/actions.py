"""The [Action] and [Program Structure] lists of §3.1.

The action list is derived from the member functions of the Clang AST/IR
APIs; the program-structure list covers the Clang AST node kinds.  Both are
embedded verbatim in the invention prompt.
"""

ACTIONS = (
    "Add", "Modify", "Copy", "Swap", "Inline", "Destruct", "Group",
    "Combine", "Lift", "Switch", "Inverse", "Create",
)

PROGRAM_STRUCTURES = (
    "BinaryOperator", "UnaryOperator", "LogicalExpr", "ComparisonExpr",
    "BitwiseExpr", "ShiftExpr", "ArithmeticExpr", "AssignmentExpr",
    "CompoundAssignOperator", "ConditionalOperator", "CommaExpr",
    "IntegerLiteral", "FloatLiteral", "CharLiteral", "StringLiteral",
    "CastExpr", "PointerExpr", "ArraySubscriptExpr", "CallExpr",
    "CallArgument", "CallStmt", "SizeofExpr", "DeclRefExpr", "InitExpr",
    "Expr", "IfStmt", "ElseBranch", "WhileStmt", "DoStmt", "ForStmt",
    "SwitchStmt", "CaseStmt", "BreakStmt", "ContinueStmt", "ReturnStmt",
    "GotoStmt", "LabelStmt", "NullStmt", "CompoundStmt", "Stmt",
    "VarDecl", "ParmVarDecl", "FieldDecl", "FunctionDecl", "FunctionName",
    "FunctionReturnType", "ReturnType", "ReturnTypeWidth", "RecordType",
    "EnumDecl", "TypedefDecl", "BuiltinType", "TypeSpecifier",
    "ArrayDimension", "Attribute", "Builtins", "StorageClass",
    "InlineSpecifier",
)
