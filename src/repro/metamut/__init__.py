"""MetaMut: the paper's core contribution.

Three stages (Figure 1): mutator invention, implementation synthesis, and
validation & refinement — plus the prompts, the mutator template (Figure 2),
and the LLM-generated unit tests they rely on.
"""

from repro.metamut.actions import ACTIONS, PROGRAM_STRUCTURES
from repro.metamut.pipeline import (
    GenerationRecord,
    MetaMut,
    UnsupervisedCampaign,
)
from repro.metamut.validation import ValidationReport, validate_implementation

__all__ = [
    "ACTIONS",
    "PROGRAM_STRUCTURES",
    "GenerationRecord",
    "MetaMut",
    "UnsupervisedCampaign",
    "ValidationReport",
    "validate_implementation",
]
