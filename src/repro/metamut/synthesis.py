"""Stage 2: template-based implementation synthesis (§3.2)."""

from __future__ import annotations

import random

from repro.llm.client import LLMClient
from repro.llm.costs import MutatorCost
from repro.llm.model import Implementation, Invention
from repro.metamut.prompts import synthesis_prompt, testgen_prompt


def synthesize_implementation(
    client: LLMClient,
    rng: random.Random,
    invention: Invention,
    cost: MutatorCost,
) -> Implementation:
    """One-shot chain-of-thought completion of the Figure 2 template."""
    prompt = synthesis_prompt(invention.name, invention.description)
    assert prompt  # rendered for fidelity; consumed structurally
    impl, usage = client.synthesize(rng, invention)
    cost.implementation.add(usage.tokens, usage.total_seconds, rounds=1)
    cost.record_transport(usage)
    return impl


def generate_unit_tests(
    client: LLMClient,
    rng: random.Random,
    invention: Invention,
    cost: MutatorCost,
) -> list[str]:
    """LLM-generated test programs that contain the targeted structure."""
    prompt = testgen_prompt(invention.name, invention.description)
    assert prompt  # rendered for fidelity; consumed structurally
    tests, usage = client.generate_tests(rng, invention)
    cost.bugfix.add(usage.tokens, usage.total_seconds, rounds=0)
    cost.record_transport(usage)
    return tests
