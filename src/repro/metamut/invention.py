"""Stage 1: mutator invention (§3.1)."""

from __future__ import annotations

import random

from repro.llm.client import LLMClient
from repro.llm.costs import MutatorCost
from repro.llm.model import Invention
from repro.metamut.prompts import invention_prompt


def invent_mutator(
    client: LLMClient,
    rng: random.Random,
    previously_generated: set[str],
    cost: MutatorCost,
    origin: str = "unsupervised",
) -> Invention:
    """One invention round: prompt → (name, description)."""
    prompt = invention_prompt(sorted(previously_generated))
    assert prompt  # rendered for logs; the simulated model reads the
    # hints structurally rather than re-parsing natural language
    invention, usage = client.invent(rng, previously_generated, origin)
    cost.invention.add(usage.tokens, usage.total_seconds, rounds=1)
    cost.record_transport(usage)
    return invention
