"""Content-addressed front-end result cache.

The fuzzing hot path front-ends the *same* program text over and over: every
mutation attempt in a μCFuzz step re-lexes, re-parses, and re-runs Sema on
the parent program, and ``Compiler.compile`` repeats the same work for any
text it has already seen (the parent on no-op rounds, repeated mutants, pool
members).  :class:`FrontendCache` keys the complete front-end result — token
stream, :class:`~repro.cast.ast_nodes.TranslationUnit`, and analyzed
:class:`~repro.cast.sema.Sema` — on a content hash of the source text, so
each distinct text pays for lex/parse/sema exactly once.

Safety contract: cached units are *never mutated in place*.  Mutators rewrite
via the :class:`~repro.cast.rewriter.Rewriter` on source text, and the
compiler only reads the AST.  As a guard, every cache hit re-hashes the
stored source and raises :class:`CacheInvariantError` if it no longer
matches the key it was stored under.

Consumers attach derived, per-entry artifacts (memoized coverage edge sets,
feature vectors, mutation contexts) to ``FrontendEntry.memo`` so higher
layers can cache without this module importing them.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.spans import Tracer, span

from repro.cast import ast_nodes as ast
from repro.cast.incremental import (
    IncrementalPlan,
    assert_entries_equal,
    incremental_front_end,
)
from repro.cast.lexer import Lexer, LexError, Token
from repro.cast.parser import ParseError, Parser
from repro.cast.sema import Diagnostic, Sema
from repro.cast.source import SourceFile

#: Default bound on cached translation units.  The μCFuzz pool stays small
#: (tens of programs) while mutants churn; 256 evicted heavily (1749
#: evictions over a 600-step benchmark run), so the default keeps the whole
#: mutant working set of a campaign cell warm.  Tunable per fuzzer/Campaign
#: via the ``cache_maxsize`` knob.
DEFAULT_CACHE_SIZE = 2048


class CacheInvariantError(AssertionError):
    """A cached translation unit's source no longer matches its hash key."""


def source_digest(text: str) -> str:
    """The content hash used as the cache key."""
    return hashlib.sha1(text.encode("utf-8", "replace")).hexdigest()


@dataclass
class FrontendEntry:
    """Everything the front end computed for one source text."""

    source_hash: str
    source: SourceFile
    #: Tokens up to the first lex error (the whole stream when none).
    token_prefix: list[Token]
    lex_error: LexError | None
    unit: ast.TranslationUnit | None
    parse_error: str | None
    parse_recursion: bool
    sema: Sema | None
    sema_diags: list[Diagnostic]
    #: Scratch space for derived per-text artifacts owned by higher layers
    #: (driver coverage/feature summaries, μAST contexts).
    memo: dict[str, Any] = field(default_factory=dict)

    @property
    def tokens(self) -> list[Token] | None:
        """The full token stream, or None when lexing failed."""
        return None if self.lex_error is not None else self.token_prefix

    @property
    def error_diagnostics(self) -> list[Diagnostic]:
        return [d for d in self.sema_diags if d.severity == "error"]

    @property
    def compilable(self) -> bool:
        """Parses and passes semantic analysis without errors."""
        return self.unit is not None and not self.error_diagnostics


def analyze_front_end(
    text: str,
    source_hash: str | None = None,
    tracer: "Tracer | None" = None,
) -> FrontendEntry:
    """Run the full front end (lex, parse, sema) on ``text``.

    Mirrors the uncached pipeline exactly: best-effort lexing keeps the token
    prefix for coverage attribution, a lex failure makes the parser re-lex so
    its diagnostic matches the from-scratch path, and semantic analysis runs
    only on parsed units.  ``tracer`` (usually the compiler's) records one
    span per stage — ``lex``/``parse``/``sema`` — accumulating wall-clock
    seconds into its timings mapping; ``tracer=None`` skips even the clock
    reads.
    """
    with span(tracer, "lex"):
        source = SourceFile(text)
        prefix, lex_error = Lexer(source).tokens_best_effort()
    tokens = None if lex_error is not None else prefix
    unit: ast.TranslationUnit | None = None
    parse_error: str | None = None
    parse_recursion = False
    with span(tracer, "parse"):
        try:
            unit = Parser(source, tokens=tokens).parse()
        except (ParseError, RecursionError) as exc:
            parse_error = str(exc)
            parse_recursion = isinstance(exc, RecursionError)
    sema: Sema | None = None
    sema_diags: list[Diagnostic] = []
    if unit is not None:
        with span(tracer, "sema"):
            sema = Sema()
            sema_diags = sema.analyze(unit)
    return FrontendEntry(
        source_hash=source_hash if source_hash is not None else source_digest(text),
        source=source,
        token_prefix=prefix,
        lex_error=lex_error,
        unit=unit,
        parse_error=parse_error,
        parse_recursion=parse_recursion,
        sema=sema,
        sema_diags=sema_diags,
    )


def decl_digests(
    entry: FrontendEntry,
    plan: "IncrementalPlan | None" = None,
    memo_stats: dict | None = None,
) -> tuple:
    """Per-declaration content digests for cross-compile artifact interning.

    Returns ``(full_digests, header_digests)``, one entry per top-level decl:
    ``full_digests[i]`` hashes the decl's complete source text;
    ``header_digests[i]`` hashes only the text *before* the body for function
    definitions (the part other decls can observe — signature, name, types)
    and the full text otherwise.  The compile session keys middle-end records
    on these.  Memoized on ``entry.memo``; with an incremental ``plan``,
    unchanged decls copy their parent's digests instead of re-hashing
    (decl text is offset-shift invariant under the dirty-region front end).

    Each decl node additionally carries its digest pair as ``_digest_memo``:
    a node grafted into a child entry keeps the attribute even when the
    parent's entry-level memo is gone (evicted, or the parent was never
    digested), so re-hashing is content-keyed at node granularity too.  The
    attribute is sound because grafting only reuses a node when its source
    text is unchanged up to an offset shift.  ``memo_stats``, when given,
    has its ``"decl_digest_memo_hits"`` entry bumped per node-memo hit.
    """
    cached = entry.memo.get("decl_digests")
    if cached is not None:
        return cached
    parent = (
        plan.parent.memo.get("decl_digests") if plan is not None else None
    )
    text = entry.source.text
    full: list[str] = []
    header: list[str] = []
    for i, decl in enumerate(entry.unit.decls):
        parent_index = plan.decl_map[i] if parent is not None else None
        if parent_index is not None:
            full.append(parent[0][parent_index])
            header.append(parent[1][parent_index])
            decl._digest_memo = (full[-1], header[-1])
            continue
        memo = decl.__dict__.get("_digest_memo")
        if memo is not None:
            if memo_stats is not None:
                memo_stats["decl_digest_memo_hits"] = (
                    memo_stats.get("decl_digest_memo_hits", 0) + 1
                )
            full.append(memo[0])
            header.append(memo[1])
            continue
        lo, hi = decl.range.begin.offset, decl.range.end.offset
        digest = source_digest(text[lo:hi])
        if isinstance(decl, ast.FunctionDecl) and decl.body is not None:
            header.append(source_digest(text[lo : decl.body.range.begin.offset]))
        else:
            header.append(digest)
        full.append(digest)
        decl._digest_memo = (digest, header[-1])
    cached = (tuple(full), tuple(header))
    entry.memo["decl_digests"] = cached
    return cached


class FrontendCache:
    """A bounded, content-hash-keyed LRU over :class:`FrontendEntry`."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE, verify_on_hit: bool = True) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.verify_on_hit = verify_on_hit
        self._entries: OrderedDict[str, FrontendEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Misses served by the dirty-region incremental front end rather
        #: than a full re-front-ending, and misses where the incremental
        #: path declared itself ineligible (fell back to the full path).
        self.incremental_hits = 0
        self.incremental_fallbacks = 0
        #: Paranoid incremental-vs-full comparisons performed (all of which
        #: matched; a mismatch raises :class:`IncrementalDivergence`).
        self.paranoid_checks = 0

    def _lookup(self, key: str) -> FrontendEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self.verify_on_hit and source_digest(entry.source.text) != entry.source_hash:
            raise CacheInvariantError(
                f"cached unit for {entry.source_hash[:12]} was mutated in place"
            )
        self._entries.move_to_end(key)
        return entry

    def _store(self, key: str, entry: FrontendEntry) -> None:
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def front_end(
        self, text: str, tracer: "Tracer | None" = None
    ) -> FrontendEntry:
        """The cached front-end result for ``text``, computing on miss."""
        key = source_digest(text)
        entry = self._lookup(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        entry = analyze_front_end(text, source_hash=key, tracer=tracer)
        self._store(key, entry)
        return entry

    def peek(self, text: str) -> FrontendEntry | None:
        """The cached entry for ``text`` without hit/miss accounting."""
        return self._entries.get(source_digest(text))

    def front_end_incremental(
        self,
        text: str,
        parent: FrontendEntry | None,
        edits,
        *,
        paranoid: bool = False,
        tracer: "Tracer | None" = None,
    ) -> "tuple[FrontendEntry, IncrementalPlan | None]":
        """Front-end a mutant, reusing ``parent``'s entry where possible.

        ``edits`` is the mutant's :meth:`Rewriter.edit_script` in parent
        coordinates.  Returns the entry plus the :class:`IncrementalPlan`
        describing which decls were reused (``None`` on a plain cache hit or
        when the full front end ran).  With ``paranoid=True`` every
        incremental result is cross-checked against a full re-front-ending
        and :class:`IncrementalDivergence` raised on any mismatch.
        """
        key = source_digest(text)
        entry = self._lookup(key)
        if entry is not None:
            self.hits += 1
            return entry, None
        self.misses += 1
        built = None
        if parent is not None and edits:
            with span(tracer, "frontend_incremental"):
                try:
                    built = incremental_front_end(text, parent, edits)
                except RecursionError:
                    built = None
        if built is None:
            self.incremental_fallbacks += 1
            entry = analyze_front_end(text, source_hash=key, tracer=tracer)
            self._store(key, entry)
            return entry, None
        fields, plan = built
        entry = FrontendEntry(source_hash=key, **fields)
        self.incremental_hits += 1
        if paranoid:
            self.paranoid_checks += 1
            assert_entries_equal(entry, analyze_front_end(text, source_hash=key))
        self._store(key, entry)
        return entry, plan

    # -- introspection -----------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_hit_rate": self.hit_rate,
            "cache_eviction_rate": (
                self.evictions / self.misses if self.misses else 0.0
            ),
            "cache_size": len(self._entries),
            "cache_maxsize": self.maxsize,
            "cache_incremental_hits": self.incremental_hits,
            "cache_incremental_fallbacks": self.incremental_fallbacks,
            "cache_paranoid_checks": self.paranoid_checks,
        }

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, text: str) -> bool:
        return source_digest(text) in self._entries
