"""Scoped symbol tables for semantic analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.cast import ast_nodes as ast
from repro.cast.types import QualType


@dataclass
class Symbol:
    name: str
    type: QualType
    decl: ast.Decl
    kind: str  # "var" | "param" | "func" | "enum_const" | "typedef"


@dataclass
class Scope:
    """A lexical scope; ordinary identifiers only (tags are tracked by Sema)."""

    parent: Optional["Scope"] = None
    symbols: dict[str, Symbol] = field(default_factory=dict)
    #: What introduced this scope: "file", "function", "block", "loop", "switch".
    kind: str = "block"

    def define(self, sym: Symbol) -> bool:
        """Define a symbol; return False if it collides in this scope."""
        if sym.name in self.symbols:
            existing = self.symbols[sym.name]
            # Function redeclaration (prototype then definition) is allowed.
            if existing.kind == "func" and sym.kind == "func":
                self.symbols[sym.name] = sym
                return True
            # Tentative definitions of file-scope variables are allowed.
            if (
                self.kind == "file"
                and existing.kind == "var"
                and sym.kind == "var"
                and existing.type == sym.type
            ):
                self.symbols[sym.name] = sym
                return True
            return False
        self.symbols[sym.name] = sym
        return True

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            sym = scope.symbols.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Symbol | None:
        return self.symbols.get(name)

    def ancestors(self) -> Iterator["Scope"]:
        scope: Scope | None = self
        while scope is not None:
            yield scope
            scope = scope.parent

    def in_loop(self) -> bool:
        return any(s.kind == "loop" for s in self.ancestors())

    def in_loop_or_switch(self) -> bool:
        return any(s.kind in ("loop", "switch") for s in self.ancestors())

    def in_switch(self) -> bool:
        return any(s.kind == "switch" for s in self.ancestors())
