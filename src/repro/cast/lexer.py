"""A C lexer producing tokens with exact source ranges.

The lexer covers the full C operator set, all literal forms used by the seed
corpus (decimal/octal/hex integers with suffixes, floats, chars, strings), and
treats comments and preprocessor lines as skipped trivia. It never raises on
merely *unusual* input; :class:`LexError` is reserved for input that cannot be
tokenized at all (unterminated literals, stray bytes), which the simulated
compiler front-end reports as an ordinary diagnostic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cast.source import SourceFile, SourceLocation, SourceRange


class LexError(Exception):
    """Raised when the input cannot be tokenized."""

    def __init__(self, message: str, offset: int) -> None:
        super().__init__(message)
        self.message = message
        self.offset = offset


class TokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "integer literal"
    FLOAT_LITERAL = "float literal"
    CHAR_LITERAL = "char literal"
    STRING_LITERAL = "string literal"
    PUNCT = "punctuation"
    EOF = "end of file"


#: All keywords recognized by the front end.  This includes the C11 keywords
#: we support plus the GNU/complex extensions the paper's bug cases rely on
#: (``_Complex``, ``__imag``, ``__real``, ``__attribute__``).
KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "inline", "int", "long", "register", "restrict", "return",
        "short", "signed", "sizeof", "static", "struct", "switch",
        "typedef", "union", "unsigned", "void", "volatile", "while",
        "_Bool", "_Complex", "__imag", "__real", "__attribute__",
        "__restrict", "__inline",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = sorted(
    [
        "<<=", ">>=", "...",
        "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
        "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
        "[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
        "/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",", "#",
    ],
    key=len,
    reverse=True,
)

#: Punctuators grouped by first character (maximal munch within each group).
_PUNCT_BY_CHAR: dict[str, list[str]] = {}
for _p in _PUNCTUATORS:
    _PUNCT_BY_CHAR.setdefault(_p[0], []).append(_p)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    range: SourceRange

    @property
    def begin(self) -> SourceLocation:
        return self.range.begin

    @property
    def end(self) -> SourceLocation:
        return self.range.end

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Tokenizes C source text."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.text = source.text
        self.pos = 0
        self.preprocessor_lines: list[SourceRange] = []

    def tokens(self) -> list[Token]:
        """Tokenize the whole file, appending a final EOF token."""
        out: list[Token] = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    def tokens_best_effort(self) -> tuple[list[Token], LexError | None]:
        """Tokenize as far as possible; on error return the prefix.

        Used by the compiler driver to attribute coverage/features to
        malformed inputs (a fuzzer's byte-mutants still exercise the lexer up
        to the first broken token).
        """
        out: list[Token] = []
        while True:
            try:
                tok = self._next_token()
            except LexError as exc:
                return out, exc
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out, None

    # ------------------------------------------------------------------

    def _next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.text):
            loc = SourceLocation(self.pos)
            return Token(TokenKind.EOF, "", SourceRange(loc, loc))

        start = self.pos
        ch = self.text[start]

        if _is_ident_start(ch):
            return self._lex_ident(start)
        if ch.isdigit() or (ch == "." and self._peek_is_digit(start + 1)):
            return self._lex_number(start)
        if ch == "'":
            return self._lex_char(start)
        if ch == '"':
            return self._lex_string(start)
        if ch == "L" and self._peek(start + 1) in ("'", '"'):  # pragma: no cover
            return self._lex_ident(start)
        return self._lex_punct(start)

    def _peek(self, i: int) -> str:
        return self.text[i] if i < len(self.text) else ""

    def _peek_is_digit(self, i: int) -> bool:
        return i < len(self.text) and self.text[i].isdigit()

    def _skip_trivia(self) -> None:
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch in " \t\r\n\f\v":
                self.pos += 1
            elif ch == "/" and self._peek(self.pos + 1) == "/":
                while self.pos < n and text[self.pos] != "\n":
                    self.pos += 1
            elif ch == "/" and self._peek(self.pos + 1) == "*":
                end = text.find("*/", self.pos + 2)
                if end < 0:
                    raise LexError("unterminated block comment", self.pos)
                self.pos = end + 2
            elif ch == "#" and self._at_line_start():
                start = self.pos
                # A preprocessor line, possibly with backslash continuations.
                while self.pos < n:
                    if text[self.pos] == "\n":
                        if text[self.pos - 1] == "\\":
                            self.pos += 1
                            continue
                        break
                    self.pos += 1
                self.preprocessor_lines.append(SourceRange.of(start, self.pos))
            else:
                return

    def _at_line_start(self) -> bool:
        i = self.pos - 1
        while i >= 0 and self.text[i] in " \t":
            i -= 1
        return i < 0 or self.text[i] == "\n"

    def _lex_ident(self, start: int) -> Token:
        i = start
        while i < len(self.text) and _is_ident_char(self.text[i]):
            i += 1
        self.pos = i
        text = self.text[start:i]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, SourceRange.of(start, i))

    def _lex_number(self, start: int) -> Token:
        text = self.text
        i = start
        is_float = False
        if text[i] == "0" and self._peek(i + 1) in "xX":
            i += 2
            while i < len(text) and (text[i] in "0123456789abcdefABCDEF"):
                i += 1
            # Hex floats are not supported; hex ints may carry suffixes.
        else:
            while i < len(text) and text[i].isdigit():
                i += 1
            if self._peek(i) == "." and not self._peek(i + 1) == ".":
                is_float = True
                i += 1
                while i < len(text) and text[i].isdigit():
                    i += 1
            if self._peek(i) in "eE" and (
                self._peek(i + 1).isdigit()
                or (self._peek(i + 1) in "+-" and self._peek(i + 2).isdigit())
            ):
                is_float = True
                i += 1
                if text[i] in "+-":
                    i += 1
                while i < len(text) and text[i].isdigit():
                    i += 1
        # Suffixes: integer (u/U/l/L combos) or float (f/F/l/L).
        while i < len(text) and text[i] in "uUlLfF":
            if text[i] in "fF":
                is_float = True
            i += 1
        self.pos = i
        kind = TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL
        return Token(kind, text[start:i], SourceRange.of(start, i))

    def _lex_char(self, start: int) -> Token:
        i = start + 1
        text = self.text
        while i < len(text):
            if text[i] == "\\":
                i += 2
                continue
            if text[i] == "'":
                self.pos = i + 1
                return Token(
                    TokenKind.CHAR_LITERAL,
                    text[start : i + 1],
                    SourceRange.of(start, i + 1),
                )
            if text[i] == "\n":
                break
            i += 1
        raise LexError("unterminated character literal", start)

    def _lex_string(self, start: int) -> Token:
        i = start + 1
        text = self.text
        while i < len(text):
            if text[i] == "\\":
                i += 2
                continue
            if text[i] == '"':
                self.pos = i + 1
                return Token(
                    TokenKind.STRING_LITERAL,
                    text[start : i + 1],
                    SourceRange.of(start, i + 1),
                )
            if text[i] == "\n":
                break
            i += 1
        raise LexError("unterminated string literal", start)

    def _lex_punct(self, start: int) -> Token:
        for p in _PUNCT_BY_CHAR.get(self.text[start], ()):
            if len(p) == 1 or self.text.startswith(p, start):
                self.pos = start + len(p)
                return Token(TokenKind.PUNCT, p, SourceRange.of(start, self.pos))
        raise LexError(f"stray character {self.text[start]!r}", start)


def tokenize(text: str, name: str = "<input>") -> list[Token]:
    """Tokenize ``text`` and return the token list (including EOF)."""
    return Lexer(SourceFile(text, name)).tokens()
