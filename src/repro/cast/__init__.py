"""C front-end substrate: lexer, parser, AST, types, sema, and rewriter.

This package plays the role that the Clang AST APIs play in the paper: it
parses a rich subset of C into a typed AST with exact source ranges, checks
whether a translation unit is "compilable" (parses + passes semantic
analysis), and supports textual rewriting keyed on source ranges.
"""

from repro.cast.source import SourceFile, SourceLocation, SourceRange
from repro.cast.lexer import Lexer, LexError, Token, TokenKind, tokenize
from repro.cast.parser import ParseError, Parser, parse
from repro.cast.sema import Sema, SemaError, check
from repro.cast.rewriter import Rewriter
from repro.cast.unparse import unparse
from repro.cast.cache import (
    CacheInvariantError,
    FrontendCache,
    FrontendEntry,
    analyze_front_end,
    source_digest,
)

__all__ = [
    "CacheInvariantError",
    "FrontendCache",
    "FrontendEntry",
    "analyze_front_end",
    "source_digest",
    "SourceFile",
    "SourceLocation",
    "SourceRange",
    "Lexer",
    "LexError",
    "Token",
    "TokenKind",
    "tokenize",
    "ParseError",
    "Parser",
    "parse",
    "Sema",
    "SemaError",
    "check",
    "Rewriter",
    "unparse",
]
