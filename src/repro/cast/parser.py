"""A recursive-descent parser for the C subset.

The grammar covers what the seed corpus, the generated mutants, and the
paper's bug cases need: full expression syntax with C precedence, all
statement forms (including ``goto``/labels and ``switch``), declarations with
storage classes and qualifiers, pointers, arrays, structs/unions/enums,
typedefs, casts, compound literals, ``sizeof``, variadic prototypes, and the
GNU ``__imag``/``__real``/``__attribute__``/``_Complex`` extensions used by
the paper's GCC #111819 case.

Every node carries its exact source range so the rewriter can splice text.
"""

from __future__ import annotations

from repro.cast import ast_nodes as ast
from repro.cast.lexer import Lexer, LexError, Token, TokenKind
from repro.cast.source import SourceFile, SourceLocation, SourceRange
from repro.cast import types as ct


class ParseError(Exception):
    """Raised when the input is not a valid program in our C subset."""

    def __init__(self, message: str, loc: SourceLocation | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.loc = loc


#: Tokens that may begin a declaration specifier.
_SPECIFIER_KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "float", "double", "signed",
        "unsigned", "_Bool", "_Complex", "struct", "union", "enum", "const",
        "volatile", "restrict", "__restrict", "static", "extern", "typedef",
        "register", "auto", "inline", "__inline", "__attribute__",
    }
)

_STORAGE_KEYWORDS = frozenset({"static", "extern", "typedef", "register", "auto"})

#: Binary operator precedence (higher binds tighter).  Assignment and the
#: conditional operator are handled separately (right-associative).
_BINOP_PRECEDENCE = {
    "*": 10, "/": 10, "%": 10,
    "+": 9, "-": 9,
    "<<": 8, ">>": 8,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "==": 6, "!=": 6,
    "&": 5, "^": 4, "|": 3,
    "&&": 2, "||": 1,
}


class Parser:
    """Parses a :class:`SourceFile` into a :class:`TranslationUnit`."""

    def __init__(self, source: SourceFile, tokens: list[Token] | None = None) -> None:
        self.source = source
        if tokens is not None:
            self.tokens = tokens
        else:
            try:
                self.tokens = Lexer(source).tokens()
            except LexError as exc:
                raise ParseError(exc.message, SourceLocation(exc.offset)) from exc
        self.pos = 0
        self.typedef_names: set[str] = set()
        self.record_names: dict[str, ct.RecordType] = {}
        self.typedefs: dict[str, ct.QualType] = {}
        self._anon_counter = 0
        #: Ordered log of cross-declaration parser-state *definitions*
        #: (record definitions and typedefs).  Replaying a prefix of this
        #: journal reconstructs the parser state an incremental re-parse
        #: needs to resume mid-file (see :mod:`repro.cast.incremental`).
        #: Reference-created incomplete record entries are deliberately not
        #: journaled: re-creating them yields value-equal types.
        self._journal: list[tuple] = []

    # -- token primitives ------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, n: int = 1) -> Token:
        i = min(self.pos + n, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def accept(self, text: str) -> Token | None:
        if self.tok.text == text and self.tok.kind in (
            TokenKind.PUNCT,
            TokenKind.KEYWORD,
        ):
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        tok = self.accept(text)
        if tok is None:
            raise ParseError(
                f"expected {text!r} but found {self.tok.text!r}", self.tok.begin
            )
        return tok

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.tok.begin)

    # -- entry point -------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        decls: list[ast.Decl] = []
        #: Per external-declaration *group* marks: (number of decls the
        #: group produced, token position just past the group, journal
        #: length, anonymous-tag counter).  A group is one iteration of the
        #: top-level loop — possibly zero decls (a stray ``;``) or several
        #: (``int a, b;``) — and is the granularity at which the incremental
        #: front end decides what is dirty.
        groups: list[tuple[int, int, int, int]] = []
        while self.tok.kind is not TokenKind.EOF:
            group = self.parse_external_declaration()
            decls.extend(group)
            groups.append(
                (len(group), self.pos, len(self._journal), self._anon_counter)
            )
        end = self.tokens[-1].end
        unit = ast.TranslationUnit(decls, SourceRange(SourceLocation(0), end))
        unit._inc_groups = tuple(groups)
        unit._inc_journal = tuple(self._journal)
        return unit

    # -- declarations -------------------------------------------------------

    def parse_external_declaration(self) -> list[ast.Decl]:
        if self.accept(";"):
            return []
        start = self.tok.begin
        spec = self._parse_declaration_specifiers()
        # Tag-only declaration: ``struct S { ... };`` or ``enum E {...};``
        if self.accept(";"):
            return [d for d in spec.tag_decls]
        decls: list[ast.Decl] = list(spec.tag_decls)
        first = True
        while True:
            declarator = self._parse_declarator(spec.base_type)
            if first and isinstance(declarator.type.type, ct.FunctionType):
                if self.tok.is_punct("{"):
                    decls.append(self._parse_function_definition(spec, declarator, start))
                    return decls
            first = False
            decls.append(self._finish_declaration(spec, declarator, start))
            if self.accept(","):
                continue
            self.expect(";")
            return decls

    class _Spec:
        """Parsed declaration specifiers."""

        def __init__(self) -> None:
            self.base_type: ct.QualType = ct.INT
            self.storage: str | None = None
            self.is_inline = False
            self.tag_decls: list[ast.Decl] = []
            self.range: SourceRange | None = None
            self.attributes: list[str] = []

    def _starts_type(self, tok: Token | None = None) -> bool:
        tok = tok or self.tok
        if tok.kind is TokenKind.KEYWORD and tok.text in _SPECIFIER_KEYWORDS:
            return True
        return tok.kind is TokenKind.IDENT and tok.text in self.typedef_names

    def _parse_declaration_specifiers(self) -> "Parser._Spec":
        spec = Parser._Spec()
        start = self.tok.begin
        parts: list[str] = []
        const = volatile = False
        seen_type = False
        while True:
            tok = self.tok
            text = tok.text
            if tok.kind is TokenKind.KEYWORD and text in _STORAGE_KEYWORDS:
                spec.storage = text
                self.advance()
            elif tok.is_keyword("inline") or tok.is_keyword("__inline"):
                spec.is_inline = True
                self.advance()
            elif tok.is_keyword("const"):
                const = True
                self.advance()
            elif tok.is_keyword("volatile"):
                volatile = True
                self.advance()
            elif tok.is_keyword("restrict") or tok.is_keyword("__restrict"):
                self.advance()
            elif tok.is_keyword("__attribute__"):
                spec.attributes.append(self._parse_attribute())
            elif tok.is_keyword("struct") or tok.is_keyword("union"):
                seen_type = True
                base = self._parse_record_specifier(spec)
                parts = ["<record>"]
                spec.base_type = base
            elif tok.is_keyword("enum"):
                seen_type = True
                base = self._parse_enum_specifier(spec)
                parts = ["<enum>"]
                spec.base_type = base
            elif tok.kind is TokenKind.KEYWORD and text in {
                "void", "char", "short", "int", "long", "float", "double",
                "signed", "unsigned", "_Bool", "_Complex",
            }:
                seen_type = True
                parts.append(text)
                self.advance()
            elif (
                tok.kind is TokenKind.IDENT
                and text in self.typedef_names
                and not seen_type
            ):
                seen_type = True
                parts = ["<typedef>"]
                spec.base_type = self.typedefs[text]
                self.advance()
            else:
                break
        if parts and parts[0] not in ("<record>", "<enum>", "<typedef>"):
            spec.base_type = self._builtin_from_parts(parts)
        if const or volatile:
            spec.base_type = ct.QualType(
                spec.base_type.type,
                const=const or spec.base_type.const,
                volatile=volatile or spec.base_type.volatile,
            )
        spec.range = SourceRange(start, self.tokens[self.pos - 1].end)
        return spec

    def _builtin_from_parts(self, parts: list[str]) -> ct.QualType:
        key = " ".join(sorted(parts))
        table = {
            "void": ct.BuiltinKind.VOID,
            "_Bool": ct.BuiltinKind.BOOL,
            "char": ct.BuiltinKind.CHAR,
            "char signed": ct.BuiltinKind.SCHAR,
            "char unsigned": ct.BuiltinKind.UCHAR,
            "short": ct.BuiltinKind.SHORT,
            "int short": ct.BuiltinKind.SHORT,
            "short signed": ct.BuiltinKind.SHORT,
            "int short signed": ct.BuiltinKind.SHORT,
            "short unsigned": ct.BuiltinKind.USHORT,
            "int short unsigned": ct.BuiltinKind.USHORT,
            "int": ct.BuiltinKind.INT,
            "signed": ct.BuiltinKind.INT,
            "int signed": ct.BuiltinKind.INT,
            "unsigned": ct.BuiltinKind.UINT,
            "int unsigned": ct.BuiltinKind.UINT,
            "long": ct.BuiltinKind.LONG,
            "int long": ct.BuiltinKind.LONG,
            "long signed": ct.BuiltinKind.LONG,
            "int long signed": ct.BuiltinKind.LONG,
            "long unsigned": ct.BuiltinKind.ULONG,
            "int long unsigned": ct.BuiltinKind.ULONG,
            "long long": ct.BuiltinKind.LONGLONG,
            "int long long": ct.BuiltinKind.LONGLONG,
            "long long signed": ct.BuiltinKind.LONGLONG,
            "int long long signed": ct.BuiltinKind.LONGLONG,
            "long long unsigned": ct.BuiltinKind.ULONGLONG,
            "int long long unsigned": ct.BuiltinKind.ULONGLONG,
            "float": ct.BuiltinKind.FLOAT,
            "double": ct.BuiltinKind.DOUBLE,
            "double long": ct.BuiltinKind.LONGDOUBLE,
            "_Complex double": ct.BuiltinKind.COMPLEX_DOUBLE,
            "_Complex float": ct.BuiltinKind.COMPLEX_FLOAT,
            "_Complex": ct.BuiltinKind.COMPLEX_DOUBLE,
        }
        kind = table.get(key)
        if kind is None:
            raise self._error(f"unsupported type specifier combination {key!r}")
        return ct.QualType(ct.BuiltinType(kind))

    def _parse_attribute(self) -> str:
        start = self.tok.begin
        self.expect("__attribute__")
        self.expect("(")
        self.expect("(")
        depth = 2
        while depth > 0:
            tok = self.advance()
            if tok.kind is TokenKind.EOF:
                raise self._error("unterminated __attribute__")
            if tok.is_punct("("):
                depth += 1
            elif tok.is_punct(")"):
                depth -= 1
        end = self.tokens[self.pos - 1].end
        return self.source.slice(SourceRange(start, end))

    def _parse_record_specifier(self, spec: "Parser._Spec") -> ct.QualType:
        start = self.tok.begin
        tag_kind = self.advance().text  # struct | union
        name = None
        if self.tok.kind is TokenKind.IDENT:
            name = self.advance().text
        if name is None and not self.tok.is_punct("{"):
            raise self._error("anonymous record requires a definition")
        if name is None:
            self._anon_counter += 1
            name = f"__anon{self._anon_counter}"
        if not self.tok.is_punct("{"):
            rec = self.record_names.get(name) or ct.RecordType(tag_kind, name)
            self.record_names.setdefault(name, rec)
            return ct.QualType(rec)
        self.expect("{")
        fields: list[ast.FieldDecl] = []
        while not self.tok.is_punct("}"):
            fspec = self._parse_declaration_specifiers()
            while True:
                fstart = self.tok.begin
                declarator = self._parse_declarator(fspec.base_type)
                if declarator.name is None:
                    raise self._error("unnamed struct field")
                fields.append(
                    ast.FieldDecl(
                        declarator.name,
                        declarator.type,
                        SourceRange(fstart, self.tokens[self.pos - 1].end),
                    )
                )
                if not self.accept(","):
                    break
            self.expect(";")
        rbrace = self.expect("}")
        rec = ct.RecordType(
            tag_kind, name, tuple((f.name, f.type) for f in fields)
        )
        self.record_names[name] = rec
        self._journal.append(("record", name, rec))
        spec.tag_decls.append(
            ast.RecordDecl(tag_kind, name, fields, SourceRange(start, rbrace.end))
        )
        return ct.QualType(rec)

    def _parse_enum_specifier(self, spec: "Parser._Spec") -> ct.QualType:
        start = self.tok.begin
        self.expect("enum")
        name = None
        if self.tok.kind is TokenKind.IDENT:
            name = self.advance().text
        if name is None:
            self._anon_counter += 1
            name = f"__anon{self._anon_counter}"
        if not self.tok.is_punct("{"):
            return ct.QualType(ct.EnumType(name))
        self.expect("{")
        constants: list[ast.EnumConstantDecl] = []
        while not self.tok.is_punct("}"):
            cstart = self.tok.begin
            if self.tok.kind is not TokenKind.IDENT:
                raise self._error("expected enumerator name")
            cname = self.advance().text
            value = None
            if self.accept("="):
                value = self.parse_assignment_expr()
            constants.append(
                ast.EnumConstantDecl(
                    cname, value, SourceRange(cstart, self.tokens[self.pos - 1].end)
                )
            )
            if not self.accept(","):
                break
        rbrace = self.expect("}")
        spec.tag_decls.append(
            ast.EnumDecl(name, constants, SourceRange(start, rbrace.end))
        )
        return ct.QualType(ct.EnumType(name))

    class _Declarator:
        def __init__(self) -> None:
            self.name: str | None = None
            self.name_range: SourceRange | None = None
            self.type: ct.QualType = ct.INT
            self.params: list[ast.ParmVarDecl] = []
            self.variadic = False
            self.is_function = False
            self.prototyped = False
            self.lparen_loc: SourceLocation | None = None
            self.rparen_loc: SourceLocation | None = None

    def _parse_declarator(self, base: ct.QualType) -> "Parser._Declarator":
        d = Parser._Declarator()
        ty = base
        while self.accept("*"):
            const = volatile = False
            while True:
                if self.accept("const"):
                    const = True
                elif self.accept("volatile"):
                    volatile = True
                elif self.accept("restrict") or self.accept("__restrict"):
                    pass
                else:
                    break
            ty = ct.QualType(ct.PointerType(ty), const=const, volatile=volatile)
        if self.tok.kind is TokenKind.IDENT:
            tok = self.advance()
            d.name = tok.text
            d.name_range = tok.range
        # Suffixes: array dimensions then possibly a parameter list, or a
        # parameter list directly (functions returning arrays are invalid C).
        if self.tok.is_punct("("):
            d.lparen_loc = self.tok.begin
            self.advance()
            d.is_function = True
            self._parse_parameter_list(d)
            d.rparen_loc = self.tokens[self.pos - 1].begin
            ty = ct.QualType(
                ct.FunctionType(
                    ty,
                    tuple(p.type for p in d.params),
                    variadic=d.variadic,
                    no_prototype=not d.prototyped,
                )
            )
        else:
            dims: list[int | None] = []
            while self.accept("["):
                if self.tok.is_punct("]"):
                    dims.append(None)
                else:
                    size_expr = self.parse_conditional_expr()
                    dims.append(self._const_int(size_expr))
                self.expect("]")
            for size in reversed(dims):
                ty = ct.array_of(ty, size)
        while self.tok.is_keyword("__attribute__"):
            self._parse_attribute()
        d.type = ty
        return d

    def _const_int(self, expr: ast.Expr) -> int | None:
        """Best-effort constant folding for array sizes."""
        if isinstance(expr, ast.IntegerLiteral):
            return expr.value
        if isinstance(expr, ast.ParenExpr):
            return self._const_int(expr.inner)
        if isinstance(expr, ast.BinaryOperator):
            lhs = self._const_int(expr.lhs)
            rhs = self._const_int(expr.rhs)
            if lhs is None or rhs is None:
                return None
            try:
                return {
                    "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                    "/": lhs // rhs if rhs else None,
                    "%": lhs % rhs if rhs else None,
                    "<<": lhs << (rhs & 63), ">>": lhs >> (rhs & 63),
                }.get(expr.op)
            except (ValueError, OverflowError):
                return None
        return None

    def _parse_parameter_list(self, d: "Parser._Declarator") -> None:
        if self.accept(")"):
            return  # K&R-style: no prototype information
        d.prototyped = True
        if self.tok.is_keyword("void") and self.peek().is_punct(")"):
            self.advance()
            self.expect(")")
            return
        while True:
            if self.accept("..."):
                d.variadic = True
                self.expect(")")
                return
            pstart = self.tok.begin
            spec = self._parse_declaration_specifiers()
            decl = self._parse_declarator(spec.base_type)
            ptype = decl.type.decayed()
            d.params.append(
                ast.ParmVarDecl(
                    decl.name or "",
                    ptype,
                    SourceRange(pstart, self.tokens[self.pos - 1].end),
                    decl.name_range or SourceRange(pstart, pstart),
                )
            )
            if self.accept(","):
                continue
            self.expect(")")
            return

    def _finish_declaration(
        self,
        spec: "Parser._Spec",
        declarator: "Parser._Declarator",
        start: SourceLocation,
    ) -> ast.Decl:
        if declarator.name is None:
            raise self._error("declaration without a name")
        if spec.storage == "typedef":
            self.typedef_names.add(declarator.name)
            self.typedefs[declarator.name] = declarator.type
            self._journal.append(("typedef", declarator.name, declarator.type))
            return ast.TypedefDecl(
                declarator.name,
                declarator.type,
                SourceRange(start, self.tokens[self.pos - 1].end),
            )
        if declarator.is_function:
            # A function prototype declaration.
            ftype = declarator.type.type
            assert isinstance(ftype, ct.FunctionType)
            return ast.FunctionDecl(
                declarator.name,
                ftype.result,
                declarator.params,
                None,
                SourceRange(start, self.tokens[self.pos - 1].end),
                declarator.name_range or SourceRange(start, start),
                spec.range or SourceRange(start, start),
                lparen_loc=declarator.lparen_loc,
                rparen_loc=declarator.rparen_loc,
                storage=spec.storage,
                variadic=ftype.variadic,
                no_prototype=ftype.no_prototype,
                attributes=list(spec.attributes),
            )
        init = None
        eq_loc = None
        if self.tok.is_punct("="):
            eq_loc = self.tok.begin
            self.advance()
            init = self.parse_initializer()
        return ast.VarDecl(
            declarator.name,
            declarator.type,
            init,
            SourceRange(start, self.tokens[self.pos - 1].end),
            declarator.name_range or SourceRange(start, start),
            spec.range or SourceRange(start, start),
            storage=spec.storage,
            init_eq_loc=eq_loc,
        )

    def _parse_function_definition(
        self,
        spec: "Parser._Spec",
        declarator: "Parser._Declarator",
        start: SourceLocation,
    ) -> ast.FunctionDecl:
        ftype = declarator.type.type
        assert isinstance(ftype, ct.FunctionType)
        body = self.parse_compound_stmt()
        return ast.FunctionDecl(
            declarator.name or "",
            ftype.result,
            declarator.params,
            body,
            SourceRange(start, body.range.end),
            declarator.name_range or SourceRange(start, start),
            spec.range or SourceRange(start, start),
            lparen_loc=declarator.lparen_loc,
            rparen_loc=declarator.rparen_loc,
            storage=spec.storage,
            variadic=ftype.variadic,
            no_prototype=ftype.no_prototype,
            attributes=list(spec.attributes),
        )

    # -- statements ----------------------------------------------------------

    def parse_compound_stmt(self) -> ast.CompoundStmt:
        lbrace = self.expect("{")
        stmts: list[ast.Stmt] = []
        while not self.tok.is_punct("}"):
            if self.tok.kind is TokenKind.EOF:
                raise self._error("unterminated compound statement")
            stmts.append(self.parse_stmt())
        rbrace = self.expect("}")
        return ast.CompoundStmt(
            stmts,
            SourceRange(lbrace.begin, rbrace.end),
            lbrace_loc=lbrace.begin,
            rbrace_loc=rbrace.begin,
        )

    def parse_stmt(self) -> ast.Stmt:
        tok = self.tok
        start = tok.begin
        if tok.is_punct("{"):
            return self.parse_compound_stmt()
        if tok.is_punct(";"):
            self.advance()
            return ast.NullStmt(SourceRange(start, self.tokens[self.pos - 1].end))
        if tok.is_keyword("if"):
            return self._parse_if(start)
        if tok.is_keyword("while"):
            self.advance()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            body = self.parse_stmt()
            return ast.WhileStmt(cond, body, SourceRange(start, body.range.end))
        if tok.is_keyword("do"):
            self.advance()
            body = self.parse_stmt()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            semi = self.expect(";")
            return ast.DoStmt(body, cond, SourceRange(start, semi.end))
        if tok.is_keyword("for"):
            return self._parse_for(start)
        if tok.is_keyword("switch"):
            self.advance()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            body = self.parse_stmt()
            return ast.SwitchStmt(cond, body, SourceRange(start, body.range.end))
        if tok.is_keyword("case"):
            self.advance()
            expr = self.parse_conditional_expr()
            self.expect(":")
            stmt = None if self._case_boundary() else self.parse_stmt()
            end = stmt.range.end if stmt else self.tokens[self.pos - 1].end
            return ast.CaseStmt(expr, stmt, SourceRange(start, end))
        if tok.is_keyword("default"):
            self.advance()
            self.expect(":")
            stmt = None if self._case_boundary() else self.parse_stmt()
            end = stmt.range.end if stmt else self.tokens[self.pos - 1].end
            return ast.DefaultStmt(stmt, SourceRange(start, end))
        if tok.is_keyword("break"):
            self.advance()
            semi = self.expect(";")
            return ast.BreakStmt(SourceRange(start, semi.end))
        if tok.is_keyword("continue"):
            self.advance()
            semi = self.expect(";")
            return ast.ContinueStmt(SourceRange(start, semi.end))
        if tok.is_keyword("return"):
            self.advance()
            expr = None
            if not self.tok.is_punct(";"):
                expr = self.parse_expr()
            semi = self.expect(";")
            return ast.ReturnStmt(expr, SourceRange(start, semi.end))
        if tok.is_keyword("goto"):
            self.advance()
            if self.tok.kind is not TokenKind.IDENT:
                raise self._error("expected label after goto")
            label = self.advance().text
            semi = self.expect(";")
            return ast.GotoStmt(label, SourceRange(start, semi.end))
        if tok.kind is TokenKind.IDENT and self.peek().is_punct(":"):
            name = self.advance().text
            self.expect(":")
            stmt = self.parse_stmt()
            return ast.LabelStmt(name, stmt, SourceRange(start, stmt.range.end))
        if self._starts_type():
            decls = self._parse_local_declaration()
            return ast.DeclStmt(
                decls, SourceRange(start, self.tokens[self.pos - 1].end)
            )
        expr = self.parse_expr()
        semi = self.expect(";")
        return ast.ExprStmt(expr, SourceRange(start, semi.end))

    def _case_boundary(self) -> bool:
        return (
            self.tok.is_punct("}")
            or self.tok.is_keyword("case")
            or self.tok.is_keyword("default")
        )

    def _parse_if(self, start: SourceLocation) -> ast.IfStmt:
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_branch = self.parse_stmt()
        else_branch = None
        if self.accept("else"):
            else_branch = self.parse_stmt()
        end = (else_branch or then_branch).range.end
        return ast.IfStmt(cond, then_branch, else_branch, SourceRange(start, end))

    def _parse_for(self, start: SourceLocation) -> ast.ForStmt:
        self.expect("for")
        self.expect("(")
        init: ast.Node | None = None
        if not self.tok.is_punct(";"):
            istart = self.tok.begin
            if self._starts_type():
                decls = self._parse_local_declaration()
                init = ast.DeclStmt(
                    decls, SourceRange(istart, self.tokens[self.pos - 1].end)
                )
            else:
                expr = self.parse_expr()
                semi = self.expect(";")
                init = ast.ExprStmt(expr, SourceRange(istart, semi.end))
        else:
            self.expect(";")
        cond = None
        if not self.tok.is_punct(";"):
            cond = self.parse_expr()
        self.expect(";")
        inc = None
        if not self.tok.is_punct(")"):
            inc = self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        return ast.ForStmt(init, cond, inc, body, SourceRange(start, body.range.end))

    def _parse_local_declaration(self) -> list[ast.Decl]:
        start = self.tok.begin
        spec = self._parse_declaration_specifiers()
        if self.accept(";"):
            return list(spec.tag_decls)
        decls: list[ast.Decl] = list(spec.tag_decls)
        while True:
            dstart = start if not decls or not spec.tag_decls else self.tok.begin
            declarator = self._parse_declarator(spec.base_type)
            decls.append(self._finish_declaration(spec, declarator, dstart))
            if self.accept(","):
                start = self.tok.begin  # subsequent declarators start later
                continue
            self.expect(";")
            return decls

    # -- initializers ----------------------------------------------------------

    def parse_initializer(self) -> ast.Expr:
        if self.tok.is_punct("{"):
            return self._parse_init_list()
        return self.parse_assignment_expr()

    def _parse_init_list(self) -> ast.InitListExpr:
        lbrace = self.expect("{")
        inits: list[ast.Expr] = []
        while not self.tok.is_punct("}"):
            inits.append(self.parse_initializer())
            if not self.accept(","):
                break
        rbrace = self.expect("}")
        return ast.InitListExpr(inits, SourceRange(lbrace.begin, rbrace.end))

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        """Parse a full expression including the comma operator."""
        expr = self.parse_assignment_expr()
        while self.tok.is_punct(","):
            op_tok = self.advance()
            rhs = self.parse_assignment_expr()
            expr = ast.BinaryOperator(
                ",", expr, rhs,
                SourceRange(expr.range.begin, rhs.range.end),
                op_range=op_tok.range,
            )
        return expr

    def parse_assignment_expr(self) -> ast.Expr:
        lhs = self.parse_conditional_expr()
        if self.tok.kind is TokenKind.PUNCT and self.tok.text in ast.ASSIGN_OPS:
            op_tok = self.advance()
            rhs = self.parse_assignment_expr()
            return ast.BinaryOperator(
                op_tok.text, lhs, rhs,
                SourceRange(lhs.range.begin, rhs.range.end),
                op_range=op_tok.range,
            )
        return lhs

    def parse_conditional_expr(self) -> ast.Expr:
        cond = self._parse_binop_rhs(self.parse_cast_expr(), 0)
        if self.accept("?"):
            true_expr = self.parse_expr()
            self.expect(":")
            false_expr = self.parse_conditional_expr()
            return ast.ConditionalOperator(
                cond, true_expr, false_expr,
                SourceRange(cond.range.begin, false_expr.range.end),
            )
        return cond

    def _parse_binop_rhs(self, lhs: ast.Expr, min_prec: int) -> ast.Expr:
        while True:
            tok = self.tok
            prec = (
                _BINOP_PRECEDENCE.get(tok.text, -1)
                if tok.kind is TokenKind.PUNCT
                else -1
            )
            if prec < min_prec or prec < 0:
                return lhs
            op_tok = self.advance()
            rhs = self.parse_cast_expr()
            while True:
                next_prec = (
                    _BINOP_PRECEDENCE.get(self.tok.text, -1)
                    if self.tok.kind is TokenKind.PUNCT
                    else -1
                )
                if next_prec <= prec:
                    break
                rhs = self._parse_binop_rhs(rhs, prec + 1)
            lhs = ast.BinaryOperator(
                op_tok.text, lhs, rhs,
                SourceRange(lhs.range.begin, rhs.range.end),
                op_range=op_tok.range,
            )

    def parse_cast_expr(self) -> ast.Expr:
        if self.tok.is_punct("(") and self._starts_type(self.peek()):
            start = self.tok.begin
            self.advance()
            tstart = self.tok.begin
            qtype = self._parse_type_name()
            type_text = self.source.slice(
                SourceRange(tstart, self.tokens[self.pos - 1].end)
            )
            self.expect(")")
            if self.tok.is_punct("{"):
                init = self._parse_init_list()
                return ast.CompoundLiteralExpr(
                    qtype, type_text, init, SourceRange(start, init.range.end)
                )
            operand = self.parse_cast_expr()
            return ast.CastExpr(
                qtype, type_text, operand, SourceRange(start, operand.range.end)
            )
        return self.parse_unary_expr()

    def _parse_type_name(self) -> ct.QualType:
        spec = self._parse_declaration_specifiers()
        ty = spec.base_type
        while self.accept("*"):
            while self.accept("const") or self.accept("volatile"):
                pass
            ty = ct.pointer_to(ty)
        dims: list[int | None] = []
        while self.accept("["):
            if self.tok.is_punct("]"):
                dims.append(None)
            else:
                dims.append(self._const_int(self.parse_conditional_expr()))
            self.expect("]")
        for size in reversed(dims):
            ty = ct.array_of(ty, size)
        return ty

    def parse_unary_expr(self) -> ast.Expr:
        tok = self.tok
        start = tok.begin
        if tok.kind is TokenKind.PUNCT and tok.text in (
            "+", "-", "!", "~", "*", "&", "++", "--",
        ):
            self.advance()
            operand = self.parse_cast_expr()
            return ast.UnaryOperator(
                tok.text, operand, True, SourceRange(start, operand.range.end)
            )
        if tok.is_keyword("__imag") or tok.is_keyword("__real"):
            self.advance()
            operand = self.parse_cast_expr()
            return ast.UnaryOperator(
                tok.text, operand, True, SourceRange(start, operand.range.end)
            )
        if tok.is_keyword("sizeof"):
            self.advance()
            if self.tok.is_punct("(") and self._starts_type(self.peek()):
                self.advance()
                qtype = self._parse_type_name()
                rparen = self.expect(")")
                return ast.SizeofExpr(
                    None, qtype, SourceRange(start, rparen.end)
                )
            operand = self.parse_unary_expr()
            return ast.SizeofExpr(
                operand, None, SourceRange(start, operand.range.end)
            )
        return self.parse_postfix_expr()

    def parse_postfix_expr(self) -> ast.Expr:
        expr = self.parse_primary_expr()
        while True:
            tok = self.tok
            if tok.is_punct("("):
                lparen = self.advance()
                args: list[ast.Expr] = []
                if not self.tok.is_punct(")"):
                    args.append(self.parse_assignment_expr())
                    while self.accept(","):
                        args.append(self.parse_assignment_expr())
                rparen = self.expect(")")
                expr = ast.CallExpr(
                    expr, args,
                    SourceRange(expr.range.begin, rparen.end),
                    lparen_loc=lparen.begin,
                    rparen_loc=rparen.begin,
                )
            elif tok.is_punct("["):
                self.advance()
                index = self.parse_expr()
                rbracket = self.expect("]")
                expr = ast.ArraySubscriptExpr(
                    expr, index, SourceRange(expr.range.begin, rbracket.end)
                )
            elif tok.is_punct(".") or tok.is_punct("->"):
                is_arrow = tok.text == "->"
                self.advance()
                if self.tok.kind is not TokenKind.IDENT:
                    raise self._error("expected member name")
                member = self.advance()
                expr = ast.MemberExpr(
                    expr, member.text, is_arrow,
                    SourceRange(expr.range.begin, member.end),
                )
            elif tok.is_punct("++") or tok.is_punct("--"):
                self.advance()
                expr = ast.UnaryOperator(
                    tok.text, expr, False, SourceRange(expr.range.begin, tok.end)
                )
            else:
                return expr

    def parse_primary_expr(self) -> ast.Expr:
        tok = self.tok
        if tok.kind is TokenKind.INT_LITERAL:
            self.advance()
            return ast.IntegerLiteral(
                self._int_value(tok.text), tok.text, tok.range
            )
        if tok.kind is TokenKind.FLOAT_LITERAL:
            self.advance()
            return ast.FloatingLiteral(
                self._float_value(tok.text), tok.text, tok.range
            )
        if tok.kind is TokenKind.CHAR_LITERAL:
            self.advance()
            return ast.CharacterLiteral(self._char_value(tok.text), tok.text, tok.range)
        if tok.kind is TokenKind.STRING_LITERAL:
            self.advance()
            parts = [tok]
            while self.tok.kind is TokenKind.STRING_LITERAL:
                parts.append(self.advance())
            text = "".join(p.text for p in parts)
            value = "".join(self._string_value(p.text) for p in parts)
            return ast.StringLiteral(
                value, text, SourceRange(tok.begin, parts[-1].end)
            )
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return ast.DeclRefExpr(tok.text, tok.range)
        if tok.is_punct("("):
            lparen = self.advance()
            inner = self.parse_expr()
            rparen = self.expect(")")
            return ast.ParenExpr(inner, SourceRange(lparen.begin, rparen.end))
        raise self._error(f"unexpected token {tok.text!r} in expression")

    # -- literal decoding ----------------------------------------------------

    @staticmethod
    def _int_value(text: str) -> int:
        body = text.rstrip("uUlL")
        try:
            return int(body, 0) if body else 0
        except ValueError:
            return 0

    @staticmethod
    def _float_value(text: str) -> float:
        body = text.rstrip("fFlL")
        try:
            return float(body)
        except ValueError:
            return 0.0

    _ESCAPES = {
        "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
        "a": 7, "b": 8, "f": 12, "v": 11,
    }

    @classmethod
    def _char_value(cls, text: str) -> int:
        body = text[1:-1]
        if body.startswith("\\") and len(body) >= 2:
            if body[1] == "x":
                try:
                    return int(body[2:], 16) & 0xFF
                except ValueError:
                    return 0
            if body[1].isdigit():
                try:
                    return int(body[1:], 8) & 0xFF
                except ValueError:
                    return 0
            return cls._ESCAPES.get(body[1], ord(body[1]))
        return ord(body[0]) if body else 0

    @classmethod
    def _string_value(cls, text: str) -> str:
        body = text[1:-1]
        out: list[str] = []
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "\\" and i + 1 < len(body):
                nxt = body[i + 1]
                out.append(chr(cls._ESCAPES.get(nxt, ord(nxt))))
                i += 2
            else:
                out.append(ch)
                i += 1
        return "".join(out)


def parse(text: str, name: str = "<input>") -> ast.TranslationUnit:
    """Parse C source text into a translation unit."""
    return Parser(SourceFile(text, name)).parse()
