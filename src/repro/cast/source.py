"""Source files, locations, and ranges.

Locations are plain character offsets into the original text, which makes the
rewriter (see :mod:`repro.cast.rewriter`) a simple piecewise-text substitution.
Line/column information is derived lazily for diagnostics.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in a source file, as a 0-based character offset."""

    offset: int

    def advanced(self, n: int) -> "SourceLocation":
        return SourceLocation(self.offset + n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"loc({self.offset})"


@dataclass(frozen=True)
class SourceRange:
    """A half-open [begin, end) character range in a source file."""

    begin: SourceLocation
    end: SourceLocation

    @staticmethod
    def of(begin: int, end: int) -> "SourceRange":
        # Interned: ranges are immutable value objects and the lexer/clone
        # hot paths construct millions of repeats; the bound keeps a
        # pathological offset spread from pinning memory.
        key = (begin, end)
        cached = _RANGE_INTERN.get(key)
        if cached is None:
            cached = SourceRange(SourceLocation(begin), SourceLocation(end))
            if len(_RANGE_INTERN) < 1_000_000:
                _RANGE_INTERN[key] = cached
        return cached

    @property
    def length(self) -> int:
        return self.end.offset - self.begin.offset

    def contains(self, other: "SourceRange") -> bool:
        return (
            self.begin.offset <= other.begin.offset
            and other.end.offset <= self.end.offset
        )

    def overlaps(self, other: "SourceRange") -> bool:
        return self.begin.offset < other.end.offset and other.begin.offset < self.end.offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"range({self.begin.offset},{self.end.offset})"


_RANGE_INTERN: dict[tuple[int, int], SourceRange] = {}


@dataclass
class SourceFile:
    """A named piece of C source text with line-offset bookkeeping."""

    text: str
    name: str = "<input>"
    _line_starts: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._line_starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def slice(self, rng: SourceRange) -> str:
        return self.text[rng.begin.offset : rng.end.offset]

    def line_column(self, loc: SourceLocation) -> tuple[int, int]:
        """Return 1-based (line, column) for a location."""
        line = bisect.bisect_right(self._line_starts, loc.offset) - 1
        return line + 1, loc.offset - self._line_starts[line] + 1

    def describe(self, loc: SourceLocation) -> str:
        line, col = self.line_column(loc)
        return f"{self.name}:{line}:{col}"
