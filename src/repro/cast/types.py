"""The C type system used by the front end.

Types are immutable value objects. ``QualType`` pairs a type with
const/volatile qualifiers, mirroring Clang's design, which the paper's μAST
APIs (``checkBinop``, ``checkAssignment``, ``formatAsDecl``) are written
against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class BuiltinKind(enum.Enum):
    VOID = "void"
    BOOL = "_Bool"
    CHAR = "char"
    SCHAR = "signed char"
    UCHAR = "unsigned char"
    SHORT = "short"
    USHORT = "unsigned short"
    INT = "int"
    UINT = "unsigned int"
    LONG = "long"
    ULONG = "unsigned long"
    LONGLONG = "long long"
    ULONGLONG = "unsigned long long"
    FLOAT = "float"
    DOUBLE = "double"
    LONGDOUBLE = "long double"
    COMPLEX_FLOAT = "_Complex float"
    COMPLEX_DOUBLE = "_Complex double"


_SIGNED_INTS = {
    BuiltinKind.SCHAR, BuiltinKind.SHORT, BuiltinKind.INT,
    BuiltinKind.LONG, BuiltinKind.LONGLONG, BuiltinKind.CHAR,
}
_UNSIGNED_INTS = {
    BuiltinKind.BOOL, BuiltinKind.UCHAR, BuiltinKind.USHORT,
    BuiltinKind.UINT, BuiltinKind.ULONG, BuiltinKind.ULONGLONG,
}
_FLOATS = {BuiltinKind.FLOAT, BuiltinKind.DOUBLE, BuiltinKind.LONGDOUBLE}
_COMPLEX = {BuiltinKind.COMPLEX_FLOAT, BuiltinKind.COMPLEX_DOUBLE}

#: Integer conversion rank, used by the usual arithmetic conversions.
_RANK = {
    BuiltinKind.BOOL: 0,
    BuiltinKind.CHAR: 1, BuiltinKind.SCHAR: 1, BuiltinKind.UCHAR: 1,
    BuiltinKind.SHORT: 2, BuiltinKind.USHORT: 2,
    BuiltinKind.INT: 3, BuiltinKind.UINT: 3,
    BuiltinKind.LONG: 4, BuiltinKind.ULONG: 4,
    BuiltinKind.LONGLONG: 5, BuiltinKind.ULONGLONG: 5,
}

#: Width in bits on our simulated LP64 target.
BUILTIN_BITS = {
    BuiltinKind.BOOL: 1,
    BuiltinKind.CHAR: 8, BuiltinKind.SCHAR: 8, BuiltinKind.UCHAR: 8,
    BuiltinKind.SHORT: 16, BuiltinKind.USHORT: 16,
    BuiltinKind.INT: 32, BuiltinKind.UINT: 32,
    BuiltinKind.LONG: 64, BuiltinKind.ULONG: 64,
    BuiltinKind.LONGLONG: 64, BuiltinKind.ULONGLONG: 64,
}


class Type:
    """Base class for all canonical types."""

    def spelling(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.spelling()}>"


@dataclass(frozen=True)
class BuiltinType(Type):
    kind: BuiltinKind

    def spelling(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class PointerType(Type):
    pointee: "QualType"

    def spelling(self) -> str:
        return f"{self.pointee.spelling()} *"


@dataclass(frozen=True)
class ArrayType(Type):
    element: "QualType"
    size: int | None  # None for incomplete arrays (e.g. parameters)

    def spelling(self) -> str:
        n = "" if self.size is None else str(self.size)
        return f"{self.element.spelling()} [{n}]"


@dataclass(frozen=True)
class FunctionType(Type):
    result: "QualType"
    params: tuple["QualType", ...]
    variadic: bool = False
    no_prototype: bool = False  # K&R-style declaration: foo()

    def spelling(self) -> str:
        parts = [p.spelling() for p in self.params]
        if self.variadic:
            parts.append("...")
        return f"{self.result.spelling()} ({', '.join(parts)})"


@dataclass(frozen=True)
class RecordType(Type):
    """A struct or union type, identified by its tag."""

    tag_kind: str  # "struct" or "union"
    name: str  # generated name for anonymous records
    # Fields are attached by sema; keeping them out of equality lets the
    # forward-declared and completed forms compare equal.
    fields: tuple[tuple[str, "QualType"], ...] | None = field(
        default=None, compare=False
    )

    def spelling(self) -> str:
        return f"{self.tag_kind} {self.name}"

    def field_type(self, name: str) -> "QualType | None":
        for fname, ftype in self.fields or ():
            if fname == name:
                return ftype
        return None


@dataclass(frozen=True)
class EnumType(Type):
    name: str

    def spelling(self) -> str:
        return f"enum {self.name}"


@dataclass(frozen=True)
class QualType:
    """A type together with const/volatile qualifiers."""

    type: Type
    const: bool = False
    volatile: bool = False

    def spelling(self) -> str:
        quals = []
        if self.const:
            quals.append("const")
        if self.volatile:
            quals.append("volatile")
        prefix = " ".join(quals)
        base = self.type.spelling()
        return f"{prefix} {base}".strip()

    # -- structural predicates -----------------------------------------

    def is_void(self) -> bool:
        return isinstance(self.type, BuiltinType) and self.type.kind is BuiltinKind.VOID

    def is_bool(self) -> bool:
        return isinstance(self.type, BuiltinType) and self.type.kind is BuiltinKind.BOOL

    def is_integer(self) -> bool:
        if isinstance(self.type, EnumType):
            return True
        return isinstance(self.type, BuiltinType) and (
            self.type.kind in _SIGNED_INTS or self.type.kind in _UNSIGNED_INTS
        )

    def is_signed(self) -> bool:
        return isinstance(self.type, BuiltinType) and self.type.kind in _SIGNED_INTS

    def is_floating(self) -> bool:
        return isinstance(self.type, BuiltinType) and self.type.kind in _FLOATS

    def is_complex(self) -> bool:
        return isinstance(self.type, BuiltinType) and self.type.kind in _COMPLEX

    def is_arithmetic(self) -> bool:
        return self.is_integer() or self.is_floating() or self.is_complex()

    def is_pointer(self) -> bool:
        return isinstance(self.type, PointerType)

    def is_array(self) -> bool:
        return isinstance(self.type, ArrayType)

    def is_function(self) -> bool:
        return isinstance(self.type, FunctionType)

    def is_record(self) -> bool:
        return isinstance(self.type, RecordType)

    def is_scalar(self) -> bool:
        return self.is_arithmetic() or self.is_pointer()

    # -- transformations ------------------------------------------------

    def unqualified(self) -> "QualType":
        return QualType(self.type)

    def with_const(self, const: bool = True) -> "QualType":
        return QualType(self.type, const=const, volatile=self.volatile)

    def decayed(self) -> "QualType":
        """Array-to-pointer / function-to-pointer decay."""
        if isinstance(self.type, ArrayType):
            return QualType(PointerType(self.type.element))
        if isinstance(self.type, FunctionType):
            return QualType(PointerType(QualType(self.type)))
        return self

    def pointee(self) -> "QualType | None":
        if isinstance(self.type, PointerType):
            return self.type.pointee
        return None

    def element(self) -> "QualType | None":
        if isinstance(self.type, ArrayType):
            return self.type.element
        return None


# Convenience singletons -------------------------------------------------

VOID = QualType(BuiltinType(BuiltinKind.VOID))
BOOL = QualType(BuiltinType(BuiltinKind.BOOL))
CHAR = QualType(BuiltinType(BuiltinKind.CHAR))
INT = QualType(BuiltinType(BuiltinKind.INT))
UINT = QualType(BuiltinType(BuiltinKind.UINT))
LONG = QualType(BuiltinType(BuiltinKind.LONG))
ULONG = QualType(BuiltinType(BuiltinKind.ULONG))
LONGLONG = QualType(BuiltinType(BuiltinKind.LONGLONG))
ULONGLONG = QualType(BuiltinType(BuiltinKind.ULONGLONG))
FLOAT = QualType(BuiltinType(BuiltinKind.FLOAT))
DOUBLE = QualType(BuiltinType(BuiltinKind.DOUBLE))
COMPLEX_DOUBLE = QualType(BuiltinType(BuiltinKind.COMPLEX_DOUBLE))
CHAR_PTR = QualType(PointerType(CHAR))
INT_PTR = QualType(PointerType(INT))
VOID_PTR = QualType(PointerType(VOID))


def pointer_to(pointee: QualType) -> QualType:
    return QualType(PointerType(pointee))


def array_of(element: QualType, size: int | None) -> QualType:
    return QualType(ArrayType(element, size))


def integer_promote(ty: QualType) -> QualType:
    """Apply the C integer promotions."""
    if isinstance(ty.type, EnumType):
        return INT
    if not ty.is_integer():
        return ty
    kind = ty.type.kind  # type: ignore[union-attr]
    if _RANK.get(kind, 99) < _RANK[BuiltinKind.INT]:
        return INT
    return ty.unqualified()


def usual_arithmetic_conversions(lhs: QualType, rhs: QualType) -> QualType | None:
    """Return the common type of an arithmetic binop, or None if not arithmetic."""
    if not (lhs.is_arithmetic() and rhs.is_arithmetic()):
        return None
    if lhs.is_complex() or rhs.is_complex():
        return COMPLEX_DOUBLE
    for candidate in (BuiltinKind.LONGDOUBLE, BuiltinKind.DOUBLE, BuiltinKind.FLOAT):
        for ty in (lhs, rhs):
            if isinstance(ty.type, BuiltinType) and ty.type.kind is candidate:
                return QualType(BuiltinType(candidate))
    lhs, rhs = integer_promote(lhs), integer_promote(rhs)
    lk = lhs.type.kind  # type: ignore[union-attr]
    rk = rhs.type.kind  # type: ignore[union-attr]
    if lk == rk:
        return lhs
    if _RANK[lk] == _RANK[rk]:
        return lhs if lk in _UNSIGNED_INTS else rhs
    return lhs if _RANK[lk] > _RANK[rk] else rhs


def assignable(lhs: QualType, rhs: QualType) -> bool:
    """Conservative model of C's simple-assignment constraints."""
    lhs = lhs.unqualified()
    rhs = rhs.decayed()
    if lhs.is_arithmetic() and rhs.is_arithmetic():
        return True
    if lhs.is_bool() and rhs.is_scalar():
        return True
    if lhs.is_pointer() and rhs.is_pointer():
        lp, rp = lhs.pointee(), rhs.pointee()
        assert lp is not None and rp is not None
        if lp.is_void() or rp.is_void():
            return True
        return lp.type == rp.type
    if lhs.is_pointer() and rhs.is_integer():
        return True  # allowed with a warning in C; our target accepts it
    if lhs.is_record() and rhs.is_record():
        return lhs.type == rhs.type
    return False


def compatible_for_swap(a: QualType, b: QualType) -> bool:
    """Whether two expressions' types can be exchanged (both directions)."""
    return assignable(a, b) and assignable(b, a)
