"""Dirty-region incremental re-front-ending for mutants.

A mutant produced through the :class:`~repro.cast.rewriter.Rewriter` differs
from its (already front-ended) parent only inside known byte spans.  This
module rebuilds the mutant's :class:`~repro.cast.cache.FrontendEntry` from the
parent's instead of re-running the full front end:

1. **Dirty-group detection** — the parser records per external-declaration
   *group* marks (``unit._inc_groups``); the edit script is mapped onto group
   token spans (inclusive overlap; edits in inter-group trivia attach to the
   following group) and widened to one contiguous ``[lo, hi]`` group range.
2. **Token stitching** — only the window between the last clean prefix token
   and the first clean suffix token is re-lexed.  Lexing is position-pure
   (``_at_line_start`` inspects absolute text, not lexer state), so the
   parent's prefix tokens are reused as-is and its suffix tokens are reused
   with offsets shifted by the edit delta, provided the *sync token* at the
   window's end matches the parent's in kind/text/position.
3. **Region re-parse** — a fresh :class:`~repro.cast.parser.Parser` over the
   stitched stream starts at the first dirty token with its cross-declaration
   state (typedefs, record definitions, anonymous-tag counter) seeded by
   replaying the parent's recorded definition journal prefix.
4. **AST grafting** — prefix decls are *shared* with the parent unit (their
   re-analysis is idempotent); suffix decls are cloned with all source
   ranges shifted by the delta, and ``DeclRefExpr.decl`` pointers into the
   dirty region are remapped onto the freshly parsed decls.
5. **Scoped Sema** — dirty decls run real semantic analysis; clean
   ``FunctionDecl`` bodies are skipped by replaying the parent's recorded
   per-decl diagnostics and cross-declaration effect log
   (``Sema._effect_log``).  Replaying the suffix is only legal when the
   dirty region left the semantic environment unchanged (function types,
   variable types, and the effect slice are compared value-for-value);
   otherwise the caller falls back to the full front end.

Every ineligible situation returns ``None`` (fall back to
:func:`~repro.cast.cache.analyze_front_end`); the result is bit-identical to
the full front end by construction, and ``paranoid`` mode
(:func:`assert_entries_equal`) enforces that mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cast import ast_nodes as ast
from repro.cast.lexer import Lexer, LexError, Token, TokenKind
from repro.cast.parser import ParseError, Parser
from repro.cast.sema import Diagnostic, Sema
from repro.cast.source import SourceFile, SourceLocation, SourceRange
from repro.cast.symbols import Symbol

#: An edit script: ``(begin, end, replacement)`` spans in parent coordinates,
#: non-overlapping, sorted (see :meth:`Rewriter.edit_script`).
EditScript = tuple[tuple[int, int, str], ...]


class IncrementalDivergence(AssertionError):
    """Paranoid mode: an incremental result differs from the full pipeline."""


@dataclass(frozen=True)
class IncrementalPlan:
    """What the incremental front end reused, for the middle end to consume.

    ``decl_map[i]`` is the parent decl index the mutant's ``unit.decls[i]``
    corresponds to (its analysis was reused), or ``None`` when the decl lies
    in the dirty region and was freshly parsed/analyzed.
    """

    parent: Any  # FrontendEntry (duck-typed; cache.py imports this module)
    decl_map: tuple["int | None", ...]
    delta: int

    @property
    def dirty_indices(self) -> tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.decl_map) if m is None)


# ---------------------------------------------------------------------------
# clone-with-shift


def _shift_value(v: Any, delta: int, remap: dict[int, ast.Node]) -> Any:
    # Dispatch ordered by field-value frequency: exact-type checks for the
    # position-carrying leaves first, the (pre-subclassing) Node test next,
    # containers last; everything else is position-free and shared.
    tv = type(v)
    if tv is SourceRange:
        return SourceRange.of(v.begin.offset + delta, v.end.offset + delta)
    if tv is SourceLocation:
        return SourceLocation(v.offset + delta)
    if isinstance(v, ast.Node):
        return _clone_shifted(v, delta, remap)
    if tv is list:
        return [_shift_value(x, delta, remap) for x in v]
    if tv is tuple:
        return tuple(_shift_value(x, delta, remap) for x in v)
    return v  # str/int/float/bool/None/QualType — position-free, shared


def _clone_shifted(node: ast.Node, delta: int, remap: dict[int, ast.Node]) -> ast.Node:
    """Deep-clone ``node`` with every source range shifted by ``delta``.

    ``DeclRefExpr.decl`` is a cross-reference, not a child: it is copied
    verbatim and fixed up by the caller via ``remap`` once all clones exist.
    Registers every original→clone pair in ``remap``.
    """
    new = object.__new__(type(node))
    remap[id(node)] = new
    is_ref = isinstance(node, ast.DeclRefExpr)
    shift = _shift_value
    new_dict = new.__dict__
    for k, v in node.__dict__.items():
        if is_ref and k == "decl":
            new_dict[k] = v
        else:
            new_dict[k] = shift(v, delta, remap)
    return new


# ---------------------------------------------------------------------------
# dirty-group detection


def _group_for_edit(spans: list[tuple[int, int]], eb: int, ee: int) -> int:
    for i, (b, e) in enumerate(spans):
        if eb <= e and b <= ee:  # inclusive overlap (insertions included)
            return i
        if b > ee:  # edit lies in the trivia gap before group i
            return i
    return len(spans) - 1  # trailing trivia: attach to the last group


# ---------------------------------------------------------------------------
# the incremental front end


def incremental_front_end(
    text: str, parent: Any, edits: EditScript
) -> "tuple[dict, IncrementalPlan | None] | None":
    """Front-end ``text`` (the mutant) by reusing ``parent``'s entry.

    Returns ``(fields, plan)`` where ``fields`` holds the
    ``FrontendEntry`` constructor arguments (minus ``source_hash``), or
    ``None`` when ineligible — the caller then runs the full front end.
    ``plan`` is ``None`` when the mutant failed to parse (no reuse downstream).
    """
    if parent is None or not edits:
        return None
    if parent.lex_error is not None or parent.unit is None or not parent.compilable:
        return None
    groups = getattr(parent.unit, "_inc_groups", None)
    journal = getattr(parent.unit, "_inc_journal", None)
    psema = parent.sema
    if not groups or journal is None or psema is None:
        return None
    if len(psema._decl_marks) != len(parent.unit.decls):
        return None
    ptokens = parent.token_prefix
    ptext = parent.source.text

    delta = sum(len(t) - (e - b) for b, e, t in edits)
    if len(text) != len(ptext) + delta:
        return None

    # 1. Map edits onto external-declaration groups; widen to [lo, hi].
    spans: list[tuple[int, int]] = []
    start_pos = 0
    for _n, end_pos, _jm, _am in groups:
        spans.append(
            (ptokens[start_pos].begin.offset, ptokens[end_pos - 1].end.offset)
        )
        start_pos = end_pos
    lo = hi = None
    for eb, ee, _t in edits:
        g = _group_for_edit(spans, eb, ee)
        lo = g if lo is None else min(lo, g)
        hi = g if hi is None else max(hi, g)
    assert lo is not None and hi is not None

    # Token window boundaries (parent coordinates).
    P = 0 if lo == 0 else groups[lo - 1][1]
    S_tok = groups[hi][1]
    W0 = ptokens[P - 1].end.offset if P > 0 else 0
    w1 = ptokens[S_tok].begin.offset
    if any(eb <= W0 or ee >= w1 for eb, ee, _t in edits):
        return None  # defensive: edits must fall strictly inside the window
    # Bytes outside the window must be untouched for token reuse to be sound.
    if text[:W0] != ptext[:W0] or text[w1 + delta :] != ptext[w1:]:
        return None

    # 2. Re-lex only the window; verify the sync token.
    msource = SourceFile(text)
    lexer = Lexer(msource)
    lexer.pos = W0
    sync_target = w1 + delta
    window: list[Token] = []
    try:
        while True:
            tok = lexer._next_token()
            if tok.begin.offset >= sync_target or tok.kind is TokenKind.EOF:
                break
            window.append(tok)
    except LexError:
        return None
    parent_sync = ptokens[S_tok]
    if (
        tok.begin.offset != sync_target
        or tok.kind is not parent_sync.kind
        or tok.text != parent_sync.text
    ):
        return None
    if delta == 0:
        suffix_tokens = ptokens[S_tok:]
    else:
        suffix_tokens = [
            Token(
                t.kind,
                t.text,
                SourceRange.of(t.begin.offset + delta, t.end.offset + delta),
            )
            for t in ptokens[S_tok:]
        ]
    tokens = ptokens[:P] + window + suffix_tokens

    # 3. Re-parse the dirty region with journal-seeded parser state.
    jm_prefix = 0 if lo == 0 else groups[lo - 1][2]
    am_prefix = 0 if lo == 0 else groups[lo - 1][3]
    jm_hi = groups[hi][2]
    am_hi = groups[hi][3]
    has_suffix = hi < len(groups) - 1

    parser = Parser(msource, tokens=tokens)
    parser.pos = P
    for kind, name, val in journal[:jm_prefix]:
        if kind == "record":
            parser.record_names[name] = val
        else:
            parser.typedef_names.add(name)
            parser.typedefs[name] = val
    parser._anon_counter = am_prefix

    S_new = P + len(window)
    region_decls: list[ast.Decl] = []
    region_groups: list[tuple[int, int, int, int]] = []
    try:
        while parser.pos < S_new and parser.tok.kind is not TokenKind.EOF:
            before = parser.pos
            group = parser.parse_external_declaration()
            if parser.pos == before:  # pragma: no cover - defensive
                return None
            region_decls.extend(group)
            region_groups.append(
                (len(group), parser.pos, len(parser._journal), parser._anon_counter)
            )
    except ParseError as exc:
        # A fresh full parse reaches the region with identical parser state
        # (journal replay) and fails identically; short-circuit to the same
        # failed entry the full front end would produce.
        return (
            dict(
                source=msource,
                token_prefix=tokens,
                lex_error=None,
                unit=None,
                parse_error=str(exc),
                parse_recursion=False,
                sema=None,
                sema_diags=[],
            ),
            None,
        )
    except RecursionError:
        return None
    if parser.pos != S_new:
        return None  # region under/overshot the window (e.g. a deleted ';')
    if has_suffix and parser._anon_counter != am_hi:
        return None  # anonymous-tag numbering would drift into the suffix

    # 4/5. Assemble the unit and run scoped Sema.
    pdecls = parent.unit.decls
    n_prefix_decls = sum(g[0] for g in groups[:lo])
    n_dirty_decls = sum(g[0] for g in groups[lo : hi + 1])
    prefix_decls = pdecls[:n_prefix_decls]
    parent_dirty = pdecls[n_prefix_decls : n_prefix_decls + n_dirty_decls]
    parent_suffix = pdecls[n_prefix_decls + n_dirty_decls :]

    remap: dict[int, ast.Node] = {}
    if has_suffix:
        # Pair dirty decls positionally; suffix references into the dirty
        # region are remapped along these pairs.
        if len(parent_dirty) != len(region_decls):
            return None
        for a, b in zip(parent_dirty, region_decls):
            if type(a) is not type(b):
                return None
            if getattr(a, "name", None) != getattr(b, "name", None):
                return None
            remap[id(a)] = b
            if isinstance(a, ast.EnumDecl):
                if len(a.constants) != len(b.constants):
                    return None
                for ca, cb in zip(a.constants, b.constants):
                    remap[id(ca)] = cb

    sema = Sema()
    new_decls: list[ast.Decl] = []
    decl_map: list[int | None] = []

    def run_real(decl: ast.Decl) -> None:
        sema._visit_top_level(decl)
        sema._decl_marks.append((len(sema.diagnostics), len(sema._effect_log)))

    def run_replay(decl: ast.FunctionDecl, idx: int, shift: int) -> None:
        ftype = decl.__dict__["_sema_ftype"]
        sema._file_scope.define(Symbol(decl.name, ftype, decl, "func"))
        dm0, em0 = psema._decl_marks[idx - 1] if idx > 0 else (0, 0)
        dm1, em1 = psema._decl_marks[idx]
        for eff in psema._effect_log[em0:em1]:
            kind, name, val = eff
            if kind == "record":
                sema._records[name] = val
            elif kind == "enum_const":
                sema._enum_consts[name] = val
            else:
                sema._typedefs[name] = val
            sema._effect_log.append(eff)
        for d in psema.diagnostics[dm0:dm1]:
            loc = d.loc
            if loc is not None and shift:
                loc = loc.advanced(shift)
            sema.diagnostics.append(Diagnostic(d.message, loc, d.severity))
        sema._decl_marks.append((len(sema.diagnostics), len(sema._effect_log)))

    # Stage 1: shared prefix (replay function bodies, re-run the cheap rest —
    # idempotent on shared nodes) and the freshly parsed dirty region.
    for i, decl in enumerate(prefix_decls):
        new_decls.append(decl)
        decl_map.append(i)
        if isinstance(decl, ast.FunctionDecl) and "_sema_ftype" in decl.__dict__:
            run_replay(decl, i, 0)
        else:
            run_real(decl)
    effects_before_region = len(sema._effect_log)
    for decl in region_decls:
        new_decls.append(decl)
        decl_map.append(None)
        run_real(decl)

    if has_suffix:
        # Suffix reuse is only sound when the dirty region left the semantic
        # environment unchanged: compare symbol types and the effect slice.
        em0 = psema._decl_marks[n_prefix_decls - 1][1] if n_prefix_decls else 0
        last_dirty = n_prefix_decls + n_dirty_decls - 1
        em1 = psema._decl_marks[last_dirty][1] if n_dirty_decls else em0
        if sema._effect_log[effects_before_region:] != list(
            psema._effect_log[em0:em1]
        ):
            return None
        for a, b in zip(parent_dirty, region_decls):
            if isinstance(a, ast.FunctionDecl):
                fa = a.__dict__.get("_sema_ftype")
                fb = b.__dict__.get("_sema_ftype")
                if fa is None or fb is None or fa != fb:
                    return None
                if (a.body is None) != (b.body is None):
                    return None
            elif isinstance(a, ast.VarDecl):
                if a.type != b.type:
                    return None

    # Stage 2: clone the suffix with shifted ranges and replay its analysis.
    first_suffix = len(new_decls)
    for j, pdecl in enumerate(parent_suffix):
        clone = _clone_shifted(pdecl, delta, remap)
        new_decls.append(clone)
        pidx = n_prefix_decls + n_dirty_decls + j
        decl_map.append(pidx)
        if isinstance(clone, ast.FunctionDecl) and "_sema_ftype" in clone.__dict__:
            run_replay(clone, pidx, delta)
        else:
            run_real(clone)
    # Remap cross-references of replayed clones onto the region's new decls.
    # (Real-analyzed clones were re-bound by Sema; the map is a no-op there.)
    for decl in new_decls[first_suffix:]:
        for node in decl.walk():
            if isinstance(node, ast.DeclRefExpr) and node.decl is not None:
                node.decl = remap.get(id(node.decl), node.decl)

    unit = ast.TranslationUnit(
        new_decls, SourceRange(SourceLocation(0), tokens[-1].end)
    )
    pos_shift = S_new - S_tok
    j_shift = (jm_prefix + len(parser._journal)) - jm_hi
    a_shift = parser._anon_counter - am_hi  # 0 whenever has_suffix
    unit._inc_groups = (
        tuple(groups[:lo])
        + tuple(
            (n, pos, jm_prefix + jlen, am)
            for n, pos, jlen, am in region_groups
        )
        + tuple(
            (n, pos + pos_shift, jm + j_shift, am + a_shift)
            for n, pos, jm, am in groups[hi + 1 :]
        )
    )
    unit._inc_journal = (
        tuple(journal[:jm_prefix]) + tuple(parser._journal) + tuple(journal[jm_hi:])
    )

    plan = IncrementalPlan(
        parent=parent, decl_map=tuple(decl_map), delta=delta
    )
    return (
        dict(
            source=msource,
            token_prefix=tokens,
            lex_error=None,
            unit=unit,
            parse_error=None,
            parse_recursion=False,
            sema=sema,
            sema_diags=sema.diagnostics,
        ),
        plan,
    )


# ---------------------------------------------------------------------------
# paranoid comparison


def _tokens_equal(a: list[Token] | None, b: list[Token] | None) -> bool:
    if a is None or b is None:
        return a is b
    if len(a) != len(b):
        return False
    return all(
        x.kind is y.kind
        and x.text == y.text
        and x.begin.offset == y.begin.offset
        and x.end.offset == y.end.offset
        for x, y in zip(a, b)
    )


def _diag_key(diags: list[Diagnostic]) -> list[tuple]:
    return [
        (d.message, d.loc.offset if d.loc is not None else None, d.severity)
        for d in diags
    ]


#: Node attributes that cache derived data rather than structure: a node
#: that carries one is still structurally equal to a node that doesn't.
_MEMO_ATTRS = frozenset({"_digest_memo"})


def ast_equal(a: ast.Node, b: ast.Node) -> bool:
    """Structural AST equality: positions, types, and reference *shape*.

    ``DeclRefExpr.decl`` pointers are compared by positional correspondence
    (pre-order registration), so a grafted unit sharing subtrees with its
    parent compares equal to an independently parsed one.  Memo attributes
    (:data:`_MEMO_ATTRS`) are ignored: digest caching must not make a
    grafted unit compare unequal to a fresh parse.
    """
    pairs: dict[int, ast.Node] = {}

    def eq(x: Any, y: Any) -> bool:
        if isinstance(x, ast.Node) or isinstance(y, ast.Node):
            if type(x) is not type(y):
                return False
            pairs[id(x)] = y
            da, db = x.__dict__, y.__dict__
            if da.keys() - _MEMO_ATTRS != db.keys() - _MEMO_ATTRS:
                return False
            for k in da:
                if k in _MEMO_ATTRS:
                    continue
                va, vb = da[k], db[k]
                if k == "decl" and isinstance(va, ast.Node):
                    mapped = pairs.get(id(va))
                    if mapped is None:
                        if va is not vb:
                            return False
                    elif mapped is not vb:
                        return False
                    continue
                if not eq(va, vb):
                    return False
            return True
        if isinstance(x, SourceRange):
            return (
                isinstance(y, SourceRange)
                and x.begin.offset == y.begin.offset
                and x.end.offset == y.end.offset
            )
        if isinstance(x, SourceLocation):
            return isinstance(y, SourceLocation) and x.offset == y.offset
        if isinstance(x, (list, tuple)):
            return (
                type(x) is type(y)
                and len(x) == len(y)
                and all(eq(p, q) for p, q in zip(x, y))
            )
        return type(x) is type(y) and x == y

    return eq(a, b)


def assert_entries_equal(inc: Any, full: Any) -> None:
    """Raise :class:`IncrementalDivergence` unless the entries are identical."""

    def diverge(what: str) -> None:
        raise IncrementalDivergence(
            f"incremental front end diverged from full pipeline: {what}"
        )

    if not _tokens_equal(inc.token_prefix, full.token_prefix):
        diverge("token stream")
    if (inc.lex_error is None) != (full.lex_error is None):
        diverge("lex error")
    if inc.parse_error != full.parse_error:
        diverge(f"parse error ({inc.parse_error!r} vs {full.parse_error!r})")
    if _diag_key(inc.sema_diags) != _diag_key(full.sema_diags):
        diverge("diagnostics")
    if (inc.unit is None) != (full.unit is None):
        diverge("unit presence")
    if inc.unit is not None:
        if not ast_equal(inc.unit, full.unit):
            diverge("AST structure")
    if inc.sema is not None and full.sema is not None:
        if inc.sema._records != full.sema._records:
            diverge("record table")
        if inc.sema._enum_consts != full.sema._enum_consts:
            diverge("enum constants")
        if inc.sema._typedefs != full.sema._typedefs:
            diverge("typedef table")
        if inc.sema._decl_marks != full.sema._decl_marks:
            diverge("sema decl marks")
        if list(inc.sema._effect_log) != list(full.sema._effect_log):
            diverge("sema effect log")
