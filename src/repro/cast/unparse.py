"""AST pretty-printer.

``unparse`` renders an AST back to compilable C text.  It is used by the
property-based tests (``parse ∘ unparse`` reaches a fixpoint) and by tools
that want a normalized view of a mutant.
"""

from __future__ import annotations

from repro.cast import ast_nodes as ast
from repro.cast import types as ct


class _Printer:
    def __init__(self, indent: str = "  ") -> None:
        self.indent = indent
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append(self.indent * self.depth + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    # -- declarations -------------------------------------------------------

    def print_unit(self, unit: ast.TranslationUnit) -> None:
        for decl in unit.decls:
            self.print_decl(decl)

    def print_decl(self, decl: ast.Decl) -> None:
        if isinstance(decl, ast.FunctionDecl):
            self._print_function(decl)
        elif isinstance(decl, ast.VarDecl):
            self.emit(self._var_decl_text(decl) + ";")
        elif isinstance(decl, ast.RecordDecl):
            self._print_record(decl)
        elif isinstance(decl, ast.EnumDecl):
            self._print_enum(decl)
        elif isinstance(decl, ast.TypedefDecl):
            self.emit(f"typedef {declare(decl.underlying, decl.name)};")
        else:  # pragma: no cover - exhaustive over top-level kinds
            raise ValueError(f"cannot print declaration {decl.kind}")

    def _var_decl_text(self, decl: ast.VarDecl) -> str:
        storage = f"{decl.storage} " if decl.storage else ""
        text = storage + declare(decl.type, decl.name)
        if decl.init is not None:
            text += " = " + expr_text(decl.init)
        return text

    def _print_function(self, decl: ast.FunctionDecl) -> None:
        params = ", ".join(declare(p.type, p.name) for p in decl.params)
        if decl.variadic:
            params = f"{params}, ..." if params else "..."
        if not params:
            params = "void"
        storage = f"{decl.storage} " if decl.storage else ""
        header = f"{storage}{declare(decl.return_type, decl.name)}({params})"
        if decl.body is None:
            self.emit(header + ";")
            return
        self.emit(header + " {")
        self.depth += 1
        for stmt in decl.body.stmts:
            self.print_stmt(stmt)
        self.depth -= 1
        self.emit("}")

    def _print_record(self, decl: ast.RecordDecl) -> None:
        self.emit(f"{decl.tag_kind} {decl.name} {{")
        self.depth += 1
        for f in decl.fields:
            self.emit(declare(f.type, f.name) + ";")
        self.depth -= 1
        self.emit("};")

    def _print_enum(self, decl: ast.EnumDecl) -> None:
        parts = []
        for c in decl.constants:
            if c.value is not None:
                parts.append(f"{c.name} = {expr_text(c.value)}")
            else:
                parts.append(c.name)
        self.emit(f"enum {decl.name} {{ {', '.join(parts)} }};")

    # -- statements -----------------------------------------------------------

    def print_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, f"_stmt_{stmt.kind}")
        method(stmt)

    def _block_or_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            self._stmt_CompoundStmt(stmt)
        else:
            self.depth += 1
            self.print_stmt(stmt)
            self.depth -= 1

    def _stmt_CompoundStmt(self, stmt: ast.CompoundStmt) -> None:
        self.emit("{")
        self.depth += 1
        for s in stmt.stmts:
            self.print_stmt(s)
        self.depth -= 1
        self.emit("}")

    def _stmt_DeclStmt(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.decls:
            if isinstance(decl, ast.VarDecl):
                self.emit(self._var_decl_text(decl) + ";")
            else:
                self.print_decl(decl)

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self.emit(expr_text(stmt.expr) + ";")

    def _stmt_NullStmt(self, stmt: ast.NullStmt) -> None:
        self.emit(";")

    def _stmt_IfStmt(self, stmt: ast.IfStmt) -> None:
        self.emit(f"if ({expr_text(stmt.cond)})")
        self._block_or_stmt(stmt.then_branch)
        if stmt.else_branch is not None:
            self.emit("else")
            self._block_or_stmt(stmt.else_branch)

    def _stmt_WhileStmt(self, stmt: ast.WhileStmt) -> None:
        self.emit(f"while ({expr_text(stmt.cond)})")
        self._block_or_stmt(stmt.body)

    def _stmt_DoStmt(self, stmt: ast.DoStmt) -> None:
        self.emit("do")
        self._block_or_stmt(stmt.body)
        self.emit(f"while ({expr_text(stmt.cond)});")

    def _stmt_ForStmt(self, stmt: ast.ForStmt) -> None:
        if isinstance(stmt.init, ast.DeclStmt):
            decls = [d for d in stmt.init.decls if isinstance(d, ast.VarDecl)]
            init = ", ".join(self._var_decl_text(d) for d in decls)
        elif isinstance(stmt.init, ast.ExprStmt):
            init = expr_text(stmt.init.expr)
        else:
            init = ""
        cond = expr_text(stmt.cond) if stmt.cond is not None else ""
        inc = expr_text(stmt.inc) if stmt.inc is not None else ""
        self.emit(f"for ({init}; {cond}; {inc})")
        self._block_or_stmt(stmt.body)

    def _stmt_SwitchStmt(self, stmt: ast.SwitchStmt) -> None:
        self.emit(f"switch ({expr_text(stmt.cond)})")
        self._block_or_stmt(stmt.body)

    def _stmt_CaseStmt(self, stmt: ast.CaseStmt) -> None:
        self.emit(f"case {expr_text(stmt.expr)}:")
        if stmt.stmt is not None:
            self.depth += 1
            self.print_stmt(stmt.stmt)
            self.depth -= 1

    def _stmt_DefaultStmt(self, stmt: ast.DefaultStmt) -> None:
        self.emit("default:")
        if stmt.stmt is not None:
            self.depth += 1
            self.print_stmt(stmt.stmt)
            self.depth -= 1

    def _stmt_BreakStmt(self, stmt: ast.BreakStmt) -> None:
        self.emit("break;")

    def _stmt_ContinueStmt(self, stmt: ast.ContinueStmt) -> None:
        self.emit("continue;")

    def _stmt_ReturnStmt(self, stmt: ast.ReturnStmt) -> None:
        if stmt.expr is not None:
            self.emit(f"return {expr_text(stmt.expr)};")
        else:
            self.emit("return;")

    def _stmt_GotoStmt(self, stmt: ast.GotoStmt) -> None:
        self.emit(f"goto {stmt.label};")

    def _stmt_LabelStmt(self, stmt: ast.LabelStmt) -> None:
        self.emit(f"{stmt.name}:")
        self.print_stmt(stmt.stmt)


def declare(qt: ct.QualType, name: str) -> str:
    """Format a type and identifier as a C declaration (μAST formatAsDecl)."""
    quals = ("const " if qt.const else "") + ("volatile " if qt.volatile else "")
    ty = qt.type
    if isinstance(ty, ct.PointerType):
        inner = declare(ty.pointee, f"*{quals}{name}".rstrip())
        return inner
    if isinstance(ty, ct.ArrayType):
        n = "" if ty.size is None else str(ty.size)
        return declare(ty.element, f"{quals}{name}[{n}]".strip())
    if isinstance(ty, ct.FunctionType):
        params = ", ".join(declare(p, "") for p in ty.params) or "void"
        if ty.variadic:
            params += ", ..."
        return declare(ty.result, f"{quals}{name}({params})".strip())
    base = ty.spelling()
    return f"{quals}{base} {name}".strip()


def expr_text(expr: ast.Expr) -> str:
    """Render an expression with explicit parentheses where needed."""
    if isinstance(expr, (ast.IntegerLiteral, ast.FloatingLiteral)):
        return expr.text
    if isinstance(expr, (ast.CharacterLiteral, ast.StringLiteral)):
        return expr.text
    if isinstance(expr, ast.DeclRefExpr):
        return expr.name
    if isinstance(expr, ast.ParenExpr):
        # Forms that print their own parentheses don't need another pair;
        # collapsing them makes parse ∘ unparse reach a fixpoint.
        if isinstance(
            expr.inner,
            (ast.ParenExpr, ast.BinaryOperator, ast.ConditionalOperator,
             ast.CastExpr, ast.CompoundLiteralExpr),
        ):
            return expr_text(expr.inner)
        return f"({expr_text(expr.inner)})"
    if isinstance(expr, ast.UnaryOperator):
        operand = expr_text(expr.operand)
        if not isinstance(
            expr.operand,
            (ast.IntegerLiteral, ast.FloatingLiteral, ast.DeclRefExpr, ast.ParenExpr,
             ast.CharacterLiteral, ast.CallExpr, ast.ArraySubscriptExpr,
             ast.MemberExpr),
        ):
            operand = f"({operand})"
        if expr.prefix:
            sep = " " if expr.op in ("__imag", "__real") else ""
            return f"{expr.op}{sep}{operand}"
        return f"{operand}{expr.op}"
    if isinstance(expr, ast.BinaryOperator):
        return f"({expr_text(expr.lhs)} {expr.op} {expr_text(expr.rhs)})"
    if isinstance(expr, ast.ConditionalOperator):
        return (
            f"({expr_text(expr.cond)} ? {expr_text(expr.true_expr)} : "
            f"{expr_text(expr.false_expr)})"
        )
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(expr_text(a) for a in expr.args)
        return f"{expr_text(expr.callee)}({args})"
    if isinstance(expr, ast.ArraySubscriptExpr):
        return f"{expr_text(expr.base)}[{expr_text(expr.index)}]"
    if isinstance(expr, ast.MemberExpr):
        op = "->" if expr.is_arrow else "."
        return f"{expr_text(expr.base)}{op}{expr.member}"
    if isinstance(expr, ast.CastExpr):
        return f"(({expr.type_text})({expr_text(expr.operand)}))"
    if isinstance(expr, ast.SizeofExpr):
        if expr.type_operand is not None:
            return f"sizeof({expr.type_operand.spelling()})"
        assert expr.operand is not None
        return f"sizeof({expr_text(expr.operand)})"
    if isinstance(expr, ast.InitListExpr):
        return "{" + ", ".join(expr_text(i) for i in expr.inits) + "}"
    if isinstance(expr, ast.CompoundLiteralExpr):
        return f"(({expr.type_text}){expr_text(expr.init)})"
    raise ValueError(f"cannot print expression {expr.kind}")  # pragma: no cover


def unparse(unit: ast.TranslationUnit) -> str:
    """Render a translation unit back to C source text."""
    printer = _Printer()
    printer.print_unit(unit)
    return printer.text()
