"""AST node classes, mirroring the Clang node taxonomy.

Every node records the exact :class:`~repro.cast.source.SourceRange` it was
parsed from so that mutators can rewrite the original text.  ``Expr`` nodes
additionally carry the ``QualType`` computed by semantic analysis.

The class names intentionally match Clang's (``IfStmt``, ``BinaryOperator``,
``DeclRefExpr``, ...) because the paper's [Program Structure] list — and hence
the invented mutator descriptions — are phrased in terms of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterator, Optional

from repro.cast.source import SourceLocation, SourceRange
from repro.cast.types import QualType


class Node:
    """Base class of every AST node."""

    range: SourceRange

    @property
    def kind(self) -> str:
        """The Clang-style node-kind name (the class name)."""
        return type(self).__name__

    def children(self) -> Iterator["Node"]:
        """Iterate over direct child nodes."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this node and all descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            children = list(node.children())
            children.reverse()
            stack.extend(children)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} {self.range!r}>"


def _iter(*items: Optional[Node]) -> Iterator[Node]:
    for item in items:
        if item is not None:
            yield item


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Decl(Node):
    """Base class for declarations."""


@dataclass(repr=False)
class TranslationUnit(Node):
    decls: list[Decl]
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return iter(self.decls)

    def functions(self) -> list["FunctionDecl"]:
        return [d for d in self.decls if isinstance(d, FunctionDecl)]


@dataclass(repr=False)
class VarDecl(Decl):
    name: str
    type: QualType
    init: Optional["Expr"]
    range: SourceRange
    name_range: SourceRange
    #: Range of the declaration-specifier tokens (e.g. ``static const int``).
    specifier_range: SourceRange
    storage: str | None = None  # "static", "extern", "typedef", ...
    #: Location of the '=' introducing the initializer, if any.
    init_eq_loc: SourceLocation | None = None
    is_global: bool = False

    def children(self) -> Iterator[Node]:
        return _iter(self.init)


@dataclass(repr=False)
class ParmVarDecl(Decl):
    name: str
    type: QualType
    range: SourceRange
    name_range: SourceRange

    def children(self) -> Iterator[Node]:
        return iter(())


@dataclass(repr=False)
class FieldDecl(Decl):
    name: str
    type: QualType
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return iter(())


@dataclass(repr=False)
class RecordDecl(Decl):
    tag_kind: str  # "struct" | "union"
    name: str
    fields: list[FieldDecl]
    range: SourceRange
    is_definition: bool = True

    def children(self) -> Iterator[Node]:
        return iter(self.fields)


@dataclass(repr=False)
class EnumConstantDecl(Decl):
    name: str
    value: Optional["Expr"]
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.value)


@dataclass(repr=False)
class EnumDecl(Decl):
    name: str
    constants: list[EnumConstantDecl]
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return iter(self.constants)


@dataclass(repr=False)
class TypedefDecl(Decl):
    name: str
    underlying: QualType
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return iter(())


@dataclass(repr=False)
class FunctionDecl(Decl):
    name: str
    return_type: QualType
    params: list[ParmVarDecl]
    body: Optional["CompoundStmt"]
    range: SourceRange
    name_range: SourceRange
    #: Source range of the return-type tokens (μAST getReturnTypeSourceRange).
    return_type_range: SourceRange
    #: Locations of the parameter-list parentheses.
    lparen_loc: SourceLocation | None = None
    rparen_loc: SourceLocation | None = None
    storage: str | None = None
    variadic: bool = False
    #: True for K&R-style declarations ``int f();`` (no parameter info).
    no_prototype: bool = False
    attributes: list[str] = dc_field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.params
        if self.body is not None:
            yield self.body

    @property
    def is_definition(self) -> bool:
        return self.body is not None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""


@dataclass(repr=False)
class CompoundStmt(Stmt):
    stmts: list[Stmt]
    range: SourceRange
    lbrace_loc: SourceLocation | None = None
    rbrace_loc: SourceLocation | None = None

    def children(self) -> Iterator[Node]:
        return iter(self.stmts)


@dataclass(repr=False)
class DeclStmt(Stmt):
    decls: list[Decl]
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return iter(self.decls)


@dataclass(repr=False)
class ExprStmt(Stmt):
    expr: "Expr"
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.expr)


@dataclass(repr=False)
class NullStmt(Stmt):
    range: SourceRange


@dataclass(repr=False)
class IfStmt(Stmt):
    cond: "Expr"
    then_branch: Stmt
    else_branch: Optional[Stmt]
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.cond, self.then_branch, self.else_branch)


@dataclass(repr=False)
class WhileStmt(Stmt):
    cond: "Expr"
    body: Stmt
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.cond, self.body)


@dataclass(repr=False)
class DoStmt(Stmt):
    body: Stmt
    cond: "Expr"
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.body, self.cond)


@dataclass(repr=False)
class ForStmt(Stmt):
    init: Optional[Node]  # DeclStmt, ExprStmt, or None
    cond: Optional["Expr"]
    inc: Optional["Expr"]
    body: Stmt
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.init, self.cond, self.inc, self.body)


@dataclass(repr=False)
class SwitchStmt(Stmt):
    cond: "Expr"
    body: Stmt
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.cond, self.body)

    def cases(self) -> list["CaseStmt | DefaultStmt"]:
        return [n for n in self.body.walk() if isinstance(n, (CaseStmt, DefaultStmt))]


@dataclass(repr=False)
class CaseStmt(Stmt):
    expr: "Expr"
    stmt: Optional[Stmt]
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.expr, self.stmt)


@dataclass(repr=False)
class DefaultStmt(Stmt):
    stmt: Optional[Stmt]
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.stmt)


@dataclass(repr=False)
class BreakStmt(Stmt):
    range: SourceRange


@dataclass(repr=False)
class ContinueStmt(Stmt):
    range: SourceRange


@dataclass(repr=False)
class ReturnStmt(Stmt):
    expr: Optional["Expr"]
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.expr)


@dataclass(repr=False)
class GotoStmt(Stmt):
    label: str
    range: SourceRange


@dataclass(repr=False)
class LabelStmt(Stmt):
    name: str
    stmt: Stmt
    range: SourceRange

    def children(self) -> Iterator[Node]:
        return _iter(self.stmt)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions; ``type`` is filled in by sema."""

    type: QualType | None = None


@dataclass(repr=False)
class IntegerLiteral(Expr):
    value: int
    text: str
    range: SourceRange
    type: QualType | None = None


@dataclass(repr=False)
class FloatingLiteral(Expr):
    value: float
    text: str
    range: SourceRange
    type: QualType | None = None


@dataclass(repr=False)
class CharacterLiteral(Expr):
    value: int
    text: str
    range: SourceRange
    type: QualType | None = None


@dataclass(repr=False)
class StringLiteral(Expr):
    value: str
    text: str
    range: SourceRange
    type: QualType | None = None


@dataclass(repr=False)
class DeclRefExpr(Expr):
    name: str
    range: SourceRange
    decl: Decl | None = None  # resolved by sema
    type: QualType | None = None


@dataclass(repr=False)
class ParenExpr(Expr):
    inner: Expr
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.inner)


#: Unary operator spellings; ``__imag``/``__real`` are GNU extensions used by
#: the paper's GCC #111819 case.
UNARY_OPS = ("+", "-", "!", "~", "*", "&", "++", "--", "__imag", "__real")


@dataclass(repr=False)
class UnaryOperator(Expr):
    op: str
    operand: Expr
    prefix: bool
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.operand)


BINARY_OPS = (
    "*", "/", "%", "+", "-", "<<", ">>", "<", ">", "<=", ">=",
    "==", "!=", "&", "^", "|", "&&", "||", ",",
)
ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "^=", "|=")
COMPARISON_OPS = ("<", ">", "<=", ">=", "==", "!=")
LOGICAL_OPS = ("&&", "||")
ARITHMETIC_OPS = ("*", "/", "%", "+", "-")
BITWISE_OPS = ("&", "^", "|", "<<", ">>")


@dataclass(repr=False)
class BinaryOperator(Expr):
    op: str
    lhs: Expr
    rhs: Expr
    range: SourceRange
    op_range: SourceRange | None = None
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.lhs, self.rhs)

    @property
    def is_assignment(self) -> bool:
        return self.op in ASSIGN_OPS

    @property
    def is_comparison(self) -> bool:
        return self.op in COMPARISON_OPS

    @property
    def is_logical(self) -> bool:
        return self.op in LOGICAL_OPS


@dataclass(repr=False)
class ConditionalOperator(Expr):
    cond: Expr
    true_expr: Expr
    false_expr: Expr
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.cond, self.true_expr, self.false_expr)


@dataclass(repr=False)
class CallExpr(Expr):
    callee: Expr
    args: list[Expr]
    range: SourceRange
    lparen_loc: SourceLocation | None = None
    rparen_loc: SourceLocation | None = None
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        yield self.callee
        yield from self.args

    def callee_name(self) -> str | None:
        node = self.callee
        while isinstance(node, ParenExpr):
            node = node.inner
        if isinstance(node, DeclRefExpr):
            return node.name
        return None


@dataclass(repr=False)
class ArraySubscriptExpr(Expr):
    base: Expr
    index: Expr
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.base, self.index)


@dataclass(repr=False)
class MemberExpr(Expr):
    base: Expr
    member: str
    is_arrow: bool
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.base)


@dataclass(repr=False)
class CastExpr(Expr):
    target_type: QualType
    #: The spelled type text inside the parens, preserved for rewriting.
    type_text: str
    operand: Expr
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.operand)


@dataclass(repr=False)
class SizeofExpr(Expr):
    #: Either an expression operand or a type operand (exactly one is set).
    operand: Expr | None
    type_operand: QualType | None
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.operand)


@dataclass(repr=False)
class InitListExpr(Expr):
    inits: list[Expr]
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return iter(self.inits)


@dataclass(repr=False)
class CompoundLiteralExpr(Expr):
    target_type: QualType
    type_text: str
    init: InitListExpr
    range: SourceRange
    type: QualType | None = None

    def children(self) -> Iterator[Node]:
        return _iter(self.init)


#: All statement node kinds, handy for mutators that target "any statement".
STMT_KINDS = (
    "CompoundStmt", "DeclStmt", "ExprStmt", "NullStmt", "IfStmt", "WhileStmt",
    "DoStmt", "ForStmt", "SwitchStmt", "CaseStmt", "DefaultStmt", "BreakStmt",
    "ContinueStmt", "ReturnStmt", "GotoStmt", "LabelStmt",
)

#: All expression node kinds.
EXPR_KINDS = (
    "IntegerLiteral", "FloatingLiteral", "CharacterLiteral", "StringLiteral",
    "DeclRefExpr", "ParenExpr", "UnaryOperator", "BinaryOperator",
    "ConditionalOperator", "CallExpr", "ArraySubscriptExpr", "MemberExpr",
    "CastExpr", "SizeofExpr", "InitListExpr", "CompoundLiteralExpr",
)
