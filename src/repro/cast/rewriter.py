"""Textual rewriting keyed on source ranges (the Clang ``Rewriter`` analog).

Mutators never rebuild the AST; they splice replacement text into the original
source at the ranges the parser recorded.  Edits are collected and applied in
one pass; overlapping edits are rejected (the operation returns ``False``),
matching how the paper's mutators detect conflicting rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cast.source import SourceFile, SourceLocation, SourceRange


@dataclass(frozen=True)
class _Edit:
    begin: int
    end: int
    text: str
    #: Monotonic sequence number; orders same-point insertions.
    seq: int


class Rewriter:
    """Accumulates text edits over a source file and materializes the result."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self._edits: list[_Edit] = []
        self._seq = 0

    # -- edit operations ---------------------------------------------------

    def replace_text(self, rng: SourceRange, text: str) -> bool:
        """Replace the text in ``rng``; False if it overlaps a prior edit."""
        return self._add(rng.begin.offset, rng.end.offset, text)

    def remove_text(self, rng: SourceRange) -> bool:
        return self.replace_text(rng, "")

    def insert_text_before(self, loc: SourceLocation, text: str) -> bool:
        return self._add(loc.offset, loc.offset, text)

    def insert_text_after(self, loc: SourceLocation, text: str) -> bool:
        return self._add(loc.offset, loc.offset, text)

    def _add(self, begin: int, end: int, text: str) -> bool:
        if begin > end or begin < 0 or end > len(self.source.text):
            return False
        is_insertion = begin == end
        for edit in self._edits:
            if is_insertion:
                # Insertions are fine anywhere except strictly inside a
                # replaced region (that text is going away).
                if edit.begin < begin < edit.end:
                    return False
            elif edit.begin == edit.end:
                # Prior insertion strictly inside this replacement conflicts.
                if begin < edit.begin < end:
                    return False
            else:
                # Two replacements must not overlap.
                if begin < edit.end and edit.begin < end:
                    return False
        self._edits.append(_Edit(begin, end, text, self._seq))
        self._seq += 1
        return True

    # -- materialization ------------------------------------------------------

    @property
    def has_edits(self) -> bool:
        return bool(self._edits)

    def edit_count(self) -> int:
        return len(self._edits)

    def edit_script(self) -> tuple[tuple[int, int, str], ...]:
        """The accumulated edits as ``(begin, end, replacement)`` spans.

        Spans are in *original* (pre-edit) coordinates, sorted in the same
        order :meth:`rewritten_text` applies them; ``begin == end`` denotes
        an insertion.  ``_add`` guarantees the spans are non-overlapping, so
        applying them left to right reproduces :meth:`rewritten_text` and
        the net length change is ``sum(len(text) - (end - begin))``.  The
        incremental front end (:mod:`repro.cast.incremental`) consumes this
        to locate the dirty declarations of a mutant.
        """
        return tuple(
            (e.begin, e.end, e.text)
            for e in sorted(self._edits, key=lambda e: (e.begin, e.end, e.seq))
        )

    def rewritten_text(self) -> str:
        """Apply all edits to the original text and return the result."""
        parts: list[str] = []
        pos = 0
        text = self.source.text
        for edit in sorted(self._edits, key=lambda e: (e.begin, e.end, e.seq)):
            parts.append(text[pos : edit.begin])
            parts.append(edit.text)
            pos = max(pos, edit.end)
        parts.append(text[pos:])
        return "".join(parts)
