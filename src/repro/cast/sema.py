"""Semantic analysis: name resolution and type checking.

``Sema`` defines what "compilable" means throughout the reproduction: a
program compiles iff it lexes, parses, and passes this analysis.  The checks
are modelled on the constraint violations GCC/Clang reject — exactly the
errors that invalid mutants exhibit in the paper's validation loop (goal #6).

After a successful run, every ``Expr`` node carries its ``QualType`` and every
``DeclRefExpr`` points at its declaration, which the μAST semantic-check APIs
(``checkBinop``, ``checkAssignment``) and the IR generator rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.cast.source import SourceLocation
from repro.cast.symbols import Scope, Symbol


class SemaError(Exception):
    """A semantic (type/name) error, i.e. the program does not compile."""

    def __init__(self, message: str, loc: SourceLocation | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.loc = loc


@dataclass
class Diagnostic:
    message: str
    loc: SourceLocation | None
    severity: str = "error"


#: Library functions known to the front end (as if declared by headers).
#: result type, parameter types, variadic.
_BUILTIN_FUNCTIONS: dict[str, tuple[ct.QualType, tuple[ct.QualType, ...], bool]] = {
    "printf": (ct.INT, (ct.CHAR_PTR,), True),
    "sprintf": (ct.INT, (ct.CHAR_PTR, ct.CHAR_PTR), True),
    "snprintf": (ct.INT, (ct.CHAR_PTR, ct.ULONG, ct.CHAR_PTR), True),
    "scanf": (ct.INT, (ct.CHAR_PTR,), True),
    "puts": (ct.INT, (ct.CHAR_PTR,), False),
    "putchar": (ct.INT, (ct.INT,), False),
    "abort": (ct.VOID, (), False),
    "exit": (ct.VOID, (ct.INT,), False),
    "malloc": (ct.VOID_PTR, (ct.ULONG,), False),
    "calloc": (ct.VOID_PTR, (ct.ULONG, ct.ULONG), False),
    "free": (ct.VOID, (ct.VOID_PTR,), False),
    "memset": (ct.VOID_PTR, (ct.VOID_PTR, ct.INT, ct.ULONG), False),
    "memcpy": (ct.VOID_PTR, (ct.VOID_PTR, ct.VOID_PTR, ct.ULONG), False),
    "strlen": (ct.ULONG, (ct.CHAR_PTR,), False),
    "strcpy": (ct.CHAR_PTR, (ct.CHAR_PTR, ct.CHAR_PTR), False),
    "strcmp": (ct.INT, (ct.CHAR_PTR, ct.CHAR_PTR), False),
    "abs": (ct.INT, (ct.INT,), False),
    "labs": (ct.LONG, (ct.LONG,), False),
    "rand": (ct.INT, (), False),
    "srand": (ct.VOID, (ct.UINT,), False),
    "assert": (ct.VOID, (ct.INT,), False),
}


class Sema:
    """Performs semantic analysis over a translation unit."""

    def __init__(self, strict_prototypes: bool = True) -> None:
        self.diagnostics: list[Diagnostic] = []
        self.strict_prototypes = strict_prototypes
        self._file_scope = Scope(kind="file")
        self._scope = self._file_scope
        self._current_function: ast.FunctionDecl | None = None
        self._labels: set[str] = set()
        self._gotos: list[ast.GotoStmt] = []
        self._records: dict[str, ct.RecordType] = {}
        self._enum_consts: dict[str, int] = {}
        self._typedefs: dict[str, ct.QualType] = {}
        #: Ordered log of writes to the cross-declaration dicts above
        #: (``("record", name, rec)`` / ``("enum_const", name, value)`` /
        #: ``("typedef", name, qt)``).  An incremental re-analysis replays a
        #: clean declaration's slice of this log as pure dict writes instead
        #: of re-walking its body (see :mod:`repro.cast.incremental`).
        self._effect_log: list[tuple] = []
        #: Per top-level decl (aligned with ``unit.decls`` after
        #: :meth:`analyze`): (diagnostic count, effect-log length) once the
        #: decl was fully analyzed.
        self._decl_marks: list[tuple[int, int]] = []

    # -- public API ---------------------------------------------------------

    def analyze(self, unit: ast.TranslationUnit) -> list[Diagnostic]:
        """Analyze a unit; returns diagnostics (empty = compilable)."""
        for decl in unit.decls:
            self._visit_top_level(decl)
            self._decl_marks.append(
                (len(self.diagnostics), len(self._effect_log))
            )
        return self.diagnostics

    def check(self, unit: ast.TranslationUnit) -> None:
        """Analyze and raise :class:`SemaError` on the first error."""
        diags = self.analyze(unit)
        errors = [d for d in diags if d.severity == "error"]
        if errors:
            raise SemaError(errors[0].message, errors[0].loc)

    # -- helpers -------------------------------------------------------------

    def _error(self, message: str, node: ast.Node | None = None) -> None:
        loc = node.range.begin if node is not None else None
        self.diagnostics.append(Diagnostic(message, loc, "error"))

    def _warn(self, message: str, node: ast.Node | None = None) -> None:
        loc = node.range.begin if node is not None else None
        self.diagnostics.append(Diagnostic(message, loc, "warning"))

    def _push(self, kind: str = "block") -> None:
        self._scope = Scope(parent=self._scope, kind=kind)

    def _pop(self) -> None:
        assert self._scope.parent is not None
        self._scope = self._scope.parent

    def _resolve(self, qt: ct.QualType) -> ct.QualType:
        """Resolve record types to their completed definitions."""
        if isinstance(qt.type, ct.RecordType) and qt.type.fields is None:
            completed = self._records.get(qt.type.name)
            if completed is not None:
                return ct.QualType(completed, qt.const, qt.volatile)
        return qt

    # -- declarations ----------------------------------------------------------

    def _visit_top_level(self, decl: ast.Decl) -> None:
        if isinstance(decl, ast.FunctionDecl):
            self._visit_function(decl)
        elif isinstance(decl, ast.VarDecl):
            decl.is_global = True
            self._declare_var(decl)
        elif isinstance(decl, ast.RecordDecl):
            self._declare_record(decl)
        elif isinstance(decl, ast.EnumDecl):
            self._declare_enum(decl)
        elif isinstance(decl, ast.TypedefDecl):
            self._typedefs[decl.name] = decl.underlying
            self._effect_log.append(("typedef", decl.name, decl.underlying))
            self._scope.define(Symbol(decl.name, decl.underlying, decl, "typedef"))
        else:  # pragma: no cover - parser produces no other top-level kinds
            self._error(f"unsupported top-level declaration {decl.kind}", decl)

    def _declare_record(self, decl: ast.RecordDecl) -> None:
        rec = ct.RecordType(
            decl.tag_kind,
            decl.name,
            tuple((f.name, self._resolve(f.type)) for f in decl.fields),
        )
        self._records[decl.name] = rec
        self._effect_log.append(("record", decl.name, rec))
        seen: set[str] = set()
        for f in decl.fields:
            if f.name in seen:
                self._error(f"duplicate member {f.name!r}", f)
            seen.add(f.name)
            if f.type.is_void():
                self._error(f"member {f.name!r} has incomplete type void", f)

    def _declare_enum(self, decl: ast.EnumDecl) -> None:
        next_value = 0
        for const in decl.constants:
            if const.value is not None:
                self._visit_expr(const.value)
                folded = fold_int(const.value)
                next_value = folded if folded is not None else next_value
            self._enum_consts[const.name] = next_value
            self._effect_log.append(("enum_const", const.name, next_value))
            if not self._scope.define(Symbol(const.name, ct.INT, const, "enum_const")):
                self._error(f"redefinition of enumerator {const.name!r}", const)
            next_value += 1

    def _declare_var(self, decl: ast.VarDecl) -> None:
        decl.type = self._resolve(decl.type)
        if decl.type.is_void():
            self._error(f"variable {decl.name!r} has incomplete type void", decl)
        if (
            isinstance(decl.type.type, ct.RecordType)
            and decl.type.type.fields is None
        ):
            self._error(
                f"variable {decl.name!r} has incomplete type {decl.type.spelling()}",
                decl,
            )
        if isinstance(decl.type.type, ct.ArrayType):
            size = decl.type.type.size
            if size is not None and size < 0:
                self._error(f"array {decl.name!r} has negative size", decl)
            if size is None and decl.init is None and not decl.is_global:
                self._error(f"array {decl.name!r} has unknown size", decl)
        # A declaration is in scope from its own initializer (int a = a;).
        if not self._scope.define(Symbol(decl.name, decl.type, decl, "var")):
            self._error(f"redefinition of {decl.name!r}", decl)
        if decl.init is not None:
            self._check_initializer(decl, decl.type, decl.init)
            if (decl.is_global or decl.storage == "static") and decl.init is not None:
                if not self._is_constant_init(decl.init):
                    self._error(
                        f"initializer of {decl.name!r} is not a constant "
                        f"expression",
                        decl.init,
                    )

    def _check_initializer(
        self, decl: ast.VarDecl, ty: ct.QualType, init: ast.Expr
    ) -> None:
        if isinstance(init, ast.InitListExpr):
            self._check_init_list(ty, init)
            return
        self._visit_expr(init)
        if init.type is None:
            return
        if ty.is_array():
            # Only char arrays may take a string-literal initializer.
            if isinstance(init, ast.StringLiteral):
                elem = ty.element()
                if elem is not None and not (
                    isinstance(elem.type, ct.BuiltinType)
                    and elem.type.kind
                    in (ct.BuiltinKind.CHAR, ct.BuiltinKind.SCHAR, ct.BuiltinKind.UCHAR)
                ):
                    self._error("string literal initializing non-char array", init)
                return
            self._error(f"invalid initializer for array {decl.name!r}", init)
            return
        if not ct.assignable(ty, init.type):
            self._error(
                f"initializing {ty.spelling()!r} with incompatible type "
                f"{init.type.spelling()!r}",
                init,
            )

    def _check_init_list(self, ty: ct.QualType, init: ast.InitListExpr) -> None:
        init.type = ty
        if ty.is_array():
            elem = ty.element()
            assert elem is not None
            size = ty.type.size  # type: ignore[union-attr]
            if size is not None and len(init.inits) > max(size, 1):
                self._error("excess elements in array initializer", init)
            for item in init.inits:
                if isinstance(item, ast.InitListExpr):
                    self._check_init_list(elem, item)
                else:
                    self._visit_expr(item)
                    if item.type is not None and not self._init_item_ok(elem, item):
                        self._error("incompatible array element initializer", item)
            return
        if ty.is_record():
            rec = ty.type
            assert isinstance(rec, ct.RecordType)
            fields = rec.fields or ()
            if len(init.inits) > len(fields) and fields:
                self._error("excess elements in struct initializer", init)
            for item, (fname, ftype) in zip(init.inits, fields):
                if isinstance(item, ast.InitListExpr):
                    self._check_init_list(self._resolve(ftype), item)
                else:
                    self._visit_expr(item)
                    if item.type is not None and not self._init_item_ok(
                        self._resolve(ftype), item
                    ):
                        self._error(
                            f"incompatible initializer for member {fname!r}", item
                        )
            return
        if ty.is_complex() or ty.is_scalar():
            if len(init.inits) != 1:
                self._error("scalar initializer requires exactly one element", init)
            for item in init.inits:
                if isinstance(item, ast.InitListExpr):
                    self._error("braces around scalar initializer", item)
                else:
                    self._visit_expr(item)
                    if item.type is not None and not ct.assignable(ty, item.type):
                        self._error("incompatible scalar initializer", item)
            return
        self._error(f"cannot initialize type {ty.spelling()!r} with a list", init)

    def _is_constant_init(self, init: ast.Expr) -> bool:
        """Whether ``init`` is acceptable as a static-storage initializer."""
        if isinstance(init, ast.InitListExpr):
            return all(self._is_constant_init(i) for i in init.inits)
        if isinstance(init, (ast.StringLiteral, ast.FloatingLiteral)):
            return True
        if isinstance(init, ast.UnaryOperator) and init.op == "&":
            return True  # address constants
        if isinstance(init, ast.UnaryOperator) and init.op in ("-", "+") and isinstance(
            init.operand, ast.FloatingLiteral
        ):
            return True
        if isinstance(init, ast.CastExpr):
            return self._is_constant_init(init.operand)
        return fold_int(init) is not None

    def _init_item_ok(self, target: ct.QualType, item: ast.Expr) -> bool:
        """Whether a non-list initializer item is valid for ``target``."""
        assert item.type is not None
        if target.is_array():
            if isinstance(item, ast.StringLiteral):
                elem = target.element()
                return elem is not None and isinstance(
                    elem.type, ct.BuiltinType
                ) and elem.type.kind in (
                    ct.BuiltinKind.CHAR, ct.BuiltinKind.SCHAR, ct.BuiltinKind.UCHAR
                )
            return False
        if target.is_complex():
            return item.type.is_arithmetic()
        return ct.assignable(target, item.type)

    def _visit_function(self, decl: ast.FunctionDecl) -> None:
        decl.return_type = self._resolve(decl.return_type)
        ftype = ct.QualType(
            ct.FunctionType(
                decl.return_type,
                tuple(self._resolve(p.type) for p in decl.params),
                variadic=decl.variadic,
                no_prototype=decl.no_prototype,
            )
        )
        # Stash the symbol type *before* the in-place parameter decay below:
        # re-running this method on an already-analyzed decl would build a
        # different (decayed) ftype, so incremental replay uses the stash.
        decl._sema_ftype = ftype
        existing = self._file_scope.lookup_local(decl.name)
        if existing is not None and existing.kind == "func":
            old = existing.type.type
            new = ftype.type
            assert isinstance(old, ct.FunctionType) and isinstance(new, ct.FunctionType)
            if old.result != new.result and not (old.no_prototype or new.no_prototype):
                self._error(f"conflicting types for {decl.name!r}", decl)
        if not self._file_scope.define(Symbol(decl.name, ftype, decl, "func")):
            self._error(f"redefinition of {decl.name!r}", decl)
        if decl.body is None:
            return
        self._current_function = decl
        self._labels = {
            n.name for n in decl.body.walk() if isinstance(n, ast.LabelStmt)
        }
        self._gotos = []
        self._push("function")
        seen_params: set[str] = set()
        for p in decl.params:
            p.type = self._resolve(p.type).decayed()
            if p.name:
                if p.name in seen_params:
                    self._error(f"redefinition of parameter {p.name!r}", p)
                seen_params.add(p.name)
                self._scope.define(Symbol(p.name, p.type, p, "param"))
            elif decl.body is not None:
                self._error("parameter name omitted in function definition", p)
        self._visit_stmt(decl.body)
        self._pop()
        for g in self._gotos:
            if g.label not in self._labels:
                self._error(f"use of undeclared label {g.label!r}", g)
        self._current_function = None

    # -- statements ---------------------------------------------------------------

    def _visit_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, f"_stmt_{stmt.kind}", None)
        if method is None:  # pragma: no cover - exhaustive dispatch
            self._error(f"unsupported statement {stmt.kind}", stmt)
            return
        method(stmt)

    def _stmt_CompoundStmt(self, stmt: ast.CompoundStmt) -> None:
        self._push("block")
        for s in stmt.stmts:
            self._visit_stmt(s)
        self._pop()

    def _stmt_DeclStmt(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.decls:
            if isinstance(decl, ast.VarDecl):
                self._declare_var(decl)
            elif isinstance(decl, ast.RecordDecl):
                self._declare_record(decl)
            elif isinstance(decl, ast.EnumDecl):
                self._declare_enum(decl)
            elif isinstance(decl, ast.TypedefDecl):
                self._typedefs[decl.name] = decl.underlying
                self._effect_log.append(("typedef", decl.name, decl.underlying))
                self._scope.define(
                    Symbol(decl.name, decl.underlying, decl, "typedef")
                )
            elif isinstance(decl, ast.FunctionDecl):
                pass  # local prototypes are accepted
            else:  # pragma: no cover
                self._error(f"unsupported local declaration {decl.kind}", decl)

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self._visit_expr(stmt.expr)

    def _stmt_NullStmt(self, stmt: ast.NullStmt) -> None:
        pass

    def _stmt_IfStmt(self, stmt: ast.IfStmt) -> None:
        self._check_condition(stmt.cond)
        self._visit_stmt(stmt.then_branch)
        if stmt.else_branch is not None:
            self._visit_stmt(stmt.else_branch)

    def _stmt_WhileStmt(self, stmt: ast.WhileStmt) -> None:
        self._check_condition(stmt.cond)
        self._push("loop")
        self._visit_stmt(stmt.body)
        self._pop()

    def _stmt_DoStmt(self, stmt: ast.DoStmt) -> None:
        self._push("loop")
        self._visit_stmt(stmt.body)
        self._pop()
        self._check_condition(stmt.cond)

    def _stmt_ForStmt(self, stmt: ast.ForStmt) -> None:
        self._push("loop")
        if isinstance(stmt.init, ast.DeclStmt):
            self._stmt_DeclStmt(stmt.init)
        elif isinstance(stmt.init, ast.ExprStmt):
            self._visit_expr(stmt.init.expr)
        if stmt.cond is not None:
            self._check_condition(stmt.cond)
        if stmt.inc is not None:
            self._visit_expr(stmt.inc)
        self._visit_stmt(stmt.body)
        self._pop()

    def _stmt_SwitchStmt(self, stmt: ast.SwitchStmt) -> None:
        self._visit_expr(stmt.cond)
        if stmt.cond.type is not None and not stmt.cond.type.is_integer():
            self._error("switch condition is not an integer", stmt.cond)
        self._push("switch")
        self._visit_stmt(stmt.body)
        self._pop()

    def _stmt_CaseStmt(self, stmt: ast.CaseStmt) -> None:
        if not self._scope.in_switch():
            self._error("'case' statement not in switch statement", stmt)
        self._visit_expr(stmt.expr)
        if fold_int(stmt.expr) is None:
            self._error("case label is not an integer constant expression", stmt.expr)
        if stmt.stmt is not None:
            self._visit_stmt(stmt.stmt)

    def _stmt_DefaultStmt(self, stmt: ast.DefaultStmt) -> None:
        if not self._scope.in_switch():
            self._error("'default' statement not in switch statement", stmt)
        if stmt.stmt is not None:
            self._visit_stmt(stmt.stmt)

    def _stmt_BreakStmt(self, stmt: ast.BreakStmt) -> None:
        if not self._scope.in_loop_or_switch():
            self._error("'break' statement not in loop or switch statement", stmt)

    def _stmt_ContinueStmt(self, stmt: ast.ContinueStmt) -> None:
        if not self._scope.in_loop():
            self._error("'continue' statement not in loop statement", stmt)

    def _stmt_ReturnStmt(self, stmt: ast.ReturnStmt) -> None:
        fn = self._current_function
        assert fn is not None
        if stmt.expr is not None:
            self._visit_expr(stmt.expr)
            if fn.return_type.is_void():
                self._error(
                    f"void function {fn.name!r} should not return a value", stmt
                )
            elif stmt.expr.type is not None and not ct.assignable(
                fn.return_type, stmt.expr.type
            ):
                self._error(
                    f"returning {stmt.expr.type.spelling()!r} from a function "
                    f"with result type {fn.return_type.spelling()!r}",
                    stmt,
                )
        elif not fn.return_type.is_void():
            self._error(
                f"non-void function {fn.name!r} should return a value", stmt
            )

    def _stmt_GotoStmt(self, stmt: ast.GotoStmt) -> None:
        self._gotos.append(stmt)

    def _stmt_LabelStmt(self, stmt: ast.LabelStmt) -> None:
        self._visit_stmt(stmt.stmt)

    def _check_condition(self, cond: ast.Expr) -> None:
        self._visit_expr(cond)
        if cond.type is not None and not cond.type.decayed().is_scalar():
            self._error(
                f"condition has non-scalar type {cond.type.spelling()!r}", cond
            )

    # -- expressions -----------------------------------------------------------

    def _visit_expr(self, expr: ast.Expr) -> ct.QualType | None:
        method = getattr(self, f"_expr_{expr.kind}", None)
        if method is None:  # pragma: no cover - exhaustive dispatch
            self._error(f"unsupported expression {expr.kind}", expr)
            return None
        expr.type = method(expr)
        return expr.type

    def _expr_IntegerLiteral(self, e: ast.IntegerLiteral) -> ct.QualType:
        suffix = "".join(c for c in e.text if c in "uUlL").lower()
        if "u" in suffix and suffix.count("l") >= 2:
            return ct.ULONGLONG
        if suffix.count("l") >= 2:
            return ct.LONGLONG
        if "u" in suffix and "l" in suffix:
            return ct.ULONG
        if "l" in suffix:
            return ct.LONG
        if "u" in suffix:
            return ct.UINT
        return ct.INT if e.value <= 0x7FFFFFFF else ct.LONG

    def _expr_FloatingLiteral(self, e: ast.FloatingLiteral) -> ct.QualType:
        return ct.FLOAT if e.text[-1:] in "fF" else ct.DOUBLE

    def _expr_CharacterLiteral(self, e: ast.CharacterLiteral) -> ct.QualType:
        return ct.INT

    def _expr_StringLiteral(self, e: ast.StringLiteral) -> ct.QualType:
        return ct.array_of(ct.CHAR, len(e.value) + 1)

    def _expr_DeclRefExpr(self, e: ast.DeclRefExpr) -> ct.QualType | None:
        sym = self._scope.lookup(e.name)
        if sym is None:
            if e.name in _BUILTIN_FUNCTIONS:
                result, params, variadic = _BUILTIN_FUNCTIONS[e.name]
                return ct.QualType(ct.FunctionType(result, params, variadic))
            self._error(f"use of undeclared identifier {e.name!r}", e)
            return None
        e.decl = sym.decl
        return sym.type

    def _expr_ParenExpr(self, e: ast.ParenExpr) -> ct.QualType | None:
        return self._visit_expr(e.inner)

    def _expr_UnaryOperator(self, e: ast.UnaryOperator) -> ct.QualType | None:
        ty = self._visit_expr(e.operand)
        if ty is None:
            return None
        op = e.op
        if op in ("++", "--"):
            if not self._is_lvalue(e.operand):
                self._error(f"operand of {op} is not an lvalue", e)
                return None
            if ty.const:
                self._error(f"cannot modify const operand with {op}", e)
            if not ty.decayed().is_scalar():
                self._error(f"invalid operand type {ty.spelling()!r} for {op}", e)
                return None
            return ty.unqualified()
        if op in ("+", "-"):
            if not ty.decayed().is_arithmetic():
                self._error(f"invalid operand type {ty.spelling()!r} to unary {op}", e)
                return None
            return ct.integer_promote(ty) if ty.is_integer() else ty.unqualified()
        if op == "~":
            if not ty.is_integer():
                self._error(f"invalid operand type {ty.spelling()!r} to unary ~", e)
                return None
            return ct.integer_promote(ty)
        if op == "!":
            if not ty.decayed().is_scalar():
                self._error("invalid operand to logical not", e)
                return None
            return ct.INT
        if op == "*":
            dec = ty.decayed()
            pointee = dec.pointee()
            if pointee is None:
                self._error(
                    f"indirection requires pointer operand ({ty.spelling()!r} given)",
                    e,
                )
                return None
            if isinstance(pointee.type, ct.FunctionType):
                return pointee
            return self._resolve(pointee)
        if op == "&":
            if not self._is_lvalue(e.operand) and not (
                isinstance(e.operand, ast.UnaryOperator)
                and e.operand.op in ("__imag", "__real")
            ):
                self._error("cannot take the address of an rvalue", e)
                return None
            return ct.pointer_to(ty)
        if op in ("__imag", "__real"):
            if not ty.is_complex() and not ty.is_arithmetic():
                self._error(f"invalid operand type to {op}", e)
                return None
            return ct.DOUBLE
        self._error(f"unknown unary operator {op!r}", e)  # pragma: no cover
        return None

    def _expr_BinaryOperator(self, e: ast.BinaryOperator) -> ct.QualType | None:
        if e.op in ast.ASSIGN_OPS:
            return self._check_assignment_op(e)
        lty = self._visit_expr(e.lhs)
        rty = self._visit_expr(e.rhs)
        if lty is None or rty is None:
            return None
        if e.op == ",":
            return rty
        return self.binop_result(e.op, lty, rty, e)

    def binop_result(
        self,
        op: str,
        lty: ct.QualType,
        rty: ct.QualType,
        node: ast.Node | None = None,
    ) -> ct.QualType | None:
        """Type of ``lhs op rhs``; reports an error and returns None if invalid."""
        lhs, rhs = lty.decayed(), rty.decayed()
        if op in ("&&", "||"):
            if lhs.is_scalar() and rhs.is_scalar():
                return ct.INT
            self._error(f"invalid operands to binary {op}", node)
            return None
        if op in ast.COMPARISON_OPS:
            if lhs.is_arithmetic() and rhs.is_arithmetic():
                return ct.INT
            if lhs.is_pointer() and rhs.is_pointer():
                return ct.INT
            if (lhs.is_pointer() and rhs.is_integer()) or (
                rhs.is_pointer() and lhs.is_integer()
            ):
                return ct.INT  # accepted with a warning by real compilers
            self._error(
                f"invalid operands to binary {op} "
                f"({lty.spelling()!r} and {rty.spelling()!r})",
                node,
            )
            return None
        if op in ("%", "&", "|", "^", "<<", ">>"):
            if lhs.is_integer() and rhs.is_integer():
                return ct.usual_arithmetic_conversions(lhs, rhs)
            self._error(
                f"invalid operands to binary {op} "
                f"({lty.spelling()!r} and {rty.spelling()!r})",
                node,
            )
            return None
        if op == "+":
            if lhs.is_pointer() and rhs.is_integer():
                return lhs
            if lhs.is_integer() and rhs.is_pointer():
                return rhs
        if op == "-":
            if lhs.is_pointer() and rhs.is_integer():
                return lhs
            if lhs.is_pointer() and rhs.is_pointer():
                return ct.LONG  # ptrdiff_t
        if op in ("+", "-", "*", "/"):
            common = ct.usual_arithmetic_conversions(lhs, rhs)
            if common is not None:
                return common
            self._error(
                f"invalid operands to binary {op} "
                f"({lty.spelling()!r} and {rty.spelling()!r})",
                node,
            )
            return None
        self._error(f"unknown binary operator {op!r}", node)  # pragma: no cover
        return None

    def _check_assignment_op(self, e: ast.BinaryOperator) -> ct.QualType | None:
        lty = self._visit_expr(e.lhs)
        rty = self._visit_expr(e.rhs)
        if lty is None or rty is None:
            return None
        if not self._is_lvalue(e.lhs):
            self._error("expression is not assignable", e.lhs)
            return None
        if lty.const:
            self._error(
                f"cannot assign to variable with const-qualified type "
                f"{lty.spelling()!r}",
                e.lhs,
            )
            return None
        if lty.is_array():
            self._error("array type is not assignable", e.lhs)
            return None
        if e.op == "=":
            if not ct.assignable(lty, rty):
                self._error(
                    f"assigning to {lty.spelling()!r} from incompatible type "
                    f"{rty.spelling()!r}",
                    e,
                )
                return None
            return lty.unqualified()
        base_op = e.op[:-1]  # "+=" -> "+"
        result = self.binop_result(base_op, lty, rty, e)
        if result is None:
            return None
        if not ct.assignable(lty, result):
            self._error(f"invalid compound assignment {e.op}", e)
            return None
        return lty.unqualified()

    def _expr_ConditionalOperator(self, e: ast.ConditionalOperator) -> ct.QualType | None:
        cty = self._visit_expr(e.cond)
        if cty is not None and not cty.decayed().is_scalar():
            self._error("condition of ?: is not scalar", e.cond)
        tty = self._visit_expr(e.true_expr)
        fty = self._visit_expr(e.false_expr)
        if tty is None or fty is None:
            return None
        t, f = tty.decayed(), fty.decayed()
        common = ct.usual_arithmetic_conversions(t, f)
        if common is not None:
            return common
        if t.is_pointer() and f.is_pointer():
            return t
        if t.is_pointer() and f.is_integer():
            return t
        if f.is_pointer() and t.is_integer():
            return f
        if t.is_void() and f.is_void():
            return ct.VOID
        if t.is_record() and t.type == f.type:
            return t.unqualified()
        self._error(
            f"incompatible operand types in ?: "
            f"({tty.spelling()!r} and {fty.spelling()!r})",
            e,
        )
        return None

    def _expr_CallExpr(self, e: ast.CallExpr) -> ct.QualType | None:
        # Implicit declarations (C89 style) are accepted with a warning.
        callee_name = e.callee_name()
        callee_ty: ct.QualType | None
        if callee_name is not None and self._scope.lookup(callee_name) is None:
            if callee_name in _BUILTIN_FUNCTIONS:
                result, params, variadic = _BUILTIN_FUNCTIONS[callee_name]
                callee_ty = ct.QualType(ct.FunctionType(result, params, variadic))
                e.callee.type = callee_ty
            else:
                self._warn(
                    f"implicit declaration of function {callee_name!r}", e
                )
                callee_ty = ct.QualType(
                    ct.FunctionType(ct.INT, (), no_prototype=True)
                )
                e.callee.type = callee_ty
        else:
            callee_ty = self._visit_expr(e.callee)
        for arg in e.args:
            self._visit_expr(arg)
        if callee_ty is None:
            return None
        fn_ty = callee_ty.type
        if isinstance(fn_ty, ct.PointerType) and isinstance(
            fn_ty.pointee.type, ct.FunctionType
        ):
            fn_ty = fn_ty.pointee.type
        if not isinstance(fn_ty, ct.FunctionType):
            self._error(
                f"called object type {callee_ty.spelling()!r} is not a function",
                e,
            )
            return None
        if not fn_ty.no_prototype and self.strict_prototypes:
            if len(e.args) < len(fn_ty.params) or (
                len(e.args) > len(fn_ty.params) and not fn_ty.variadic
            ):
                self._error(
                    f"call to {callee_name or 'function'!r} expects "
                    f"{len(fn_ty.params)} argument(s), got {len(e.args)}",
                    e,
                )
                return fn_ty.result
            for arg, pty in zip(e.args, fn_ty.params):
                if arg.type is not None and not ct.assignable(
                    self._resolve(pty), arg.type
                ):
                    self._error(
                        f"passing {arg.type.spelling()!r} to parameter of "
                        f"incompatible type {pty.spelling()!r}",
                        arg,
                    )
        return self._resolve(fn_ty.result)

    def _expr_ArraySubscriptExpr(self, e: ast.ArraySubscriptExpr) -> ct.QualType | None:
        bty = self._visit_expr(e.base)
        ity = self._visit_expr(e.index)
        if bty is None or ity is None:
            return None
        base, index = bty.decayed(), ity.decayed()
        if base.is_integer() and index.is_pointer():
            base, index = index, base  # the quirky i[arr] form
        pointee = base.pointee()
        if pointee is None:
            self._error(
                f"subscripted value is not an array or pointer "
                f"({bty.spelling()!r})",
                e,
            )
            return None
        if not index.is_integer():
            self._error("array subscript is not an integer", e.index)
        return self._resolve(pointee)

    def _expr_MemberExpr(self, e: ast.MemberExpr) -> ct.QualType | None:
        bty = self._visit_expr(e.base)
        if bty is None:
            return None
        if e.is_arrow:
            pointee = bty.decayed().pointee()
            if pointee is None:
                self._error(
                    f"member reference type {bty.spelling()!r} is not a pointer", e
                )
                return None
            bty = pointee
        bty = self._resolve(bty)
        rec = bty.type
        if not isinstance(rec, ct.RecordType):
            self._error(
                f"member reference base type {bty.spelling()!r} is not a structure "
                f"or union",
                e,
            )
            return None
        if rec.fields is None:
            self._error(f"incomplete type {rec.spelling()!r} in member access", e)
            return None
        fty = rec.field_type(e.member)
        if fty is None:
            self._error(
                f"no member named {e.member!r} in {rec.spelling()!r}", e
            )
            return None
        return self._resolve(fty)

    def _expr_CastExpr(self, e: ast.CastExpr) -> ct.QualType | None:
        oty = self._visit_expr(e.operand)
        target = self._resolve(e.target_type)
        if oty is None:
            return target
        src = oty.decayed()
        if target.is_void():
            return target
        if target.is_record() or src.is_record():
            if target.type != src.type:
                self._error(
                    f"cannot cast {oty.spelling()!r} to {target.spelling()!r}", e
                )
                return None
            return target
        if target.is_array():
            self._error("cast to array type is not allowed", e)
            return None
        if not (target.is_scalar() or target.is_complex()):
            self._error(f"invalid cast target {target.spelling()!r}", e)
            return None
        if not (src.is_scalar() or src.is_complex()):
            self._error(f"cannot cast operand of type {oty.spelling()!r}", e)
            return None
        if target.is_pointer() and src.is_floating():
            self._error("cannot cast floating value to pointer", e)
            return None
        if target.is_floating() and src.is_pointer():
            self._error("cannot cast pointer to floating type", e)
            return None
        return target

    def _expr_SizeofExpr(self, e: ast.SizeofExpr) -> ct.QualType:
        if e.operand is not None:
            self._visit_expr(e.operand)
        return ct.ULONG

    def _expr_InitListExpr(self, e: ast.InitListExpr) -> ct.QualType | None:
        # Reached only when an init list appears outside a declaration
        # (compound literals handle their own lists).
        self._error("initializer list in unexpected context", e)
        return None

    def _expr_CompoundLiteralExpr(self, e: ast.CompoundLiteralExpr) -> ct.QualType | None:
        target = self._resolve(e.target_type)
        self._check_init_list(target, e.init)
        return target

    # -- lvalue-ness -----------------------------------------------------------

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.ParenExpr):
            return self._is_lvalue(expr.inner)
        if isinstance(expr, ast.DeclRefExpr):
            return not (
                expr.decl is not None and isinstance(expr.decl, ast.EnumConstantDecl)
            ) and not (expr.type is not None and expr.type.is_function())
        if isinstance(expr, (ast.ArraySubscriptExpr, ast.MemberExpr)):
            return True
        if isinstance(expr, ast.UnaryOperator) and expr.op == "*":
            return True
        if isinstance(expr, ast.UnaryOperator) and expr.op in ("__imag", "__real"):
            # GNU extension: __imag/__real of an lvalue is itself an lvalue.
            return self._is_lvalue(expr.operand)
        if isinstance(expr, ast.StringLiteral):
            return True
        if isinstance(expr, ast.CompoundLiteralExpr):
            return True
        return False


def fold_int(expr: ast.Expr) -> int | None:
    """Fold an integer constant expression, or return None."""
    if isinstance(expr, ast.IntegerLiteral):
        return expr.value
    if isinstance(expr, ast.CharacterLiteral):
        return expr.value
    if isinstance(expr, ast.ParenExpr):
        return fold_int(expr.inner)
    if isinstance(expr, ast.DeclRefExpr) and isinstance(
        expr.decl, ast.EnumConstantDecl
    ):
        return 0  # value resolved elsewhere; constant-ness is what matters here
    if isinstance(expr, ast.UnaryOperator) and expr.op in ("-", "+", "~", "!"):
        v = fold_int(expr.operand)
        if v is None:
            return None
        return {"-": -v, "+": v, "~": ~v, "!": int(not v)}[expr.op]
    if isinstance(expr, ast.BinaryOperator):
        lhs, rhs = fold_int(expr.lhs), fold_int(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                "/": lhs // rhs if rhs else None,
                "%": lhs % rhs if rhs else None,
                "<<": lhs << (rhs & 63), ">>": lhs >> (rhs & 63),
                "&": lhs & rhs, "|": lhs | rhs, "^": lhs ^ rhs,
                "==": int(lhs == rhs), "!=": int(lhs != rhs),
                "<": int(lhs < rhs), ">": int(lhs > rhs),
                "<=": int(lhs <= rhs), ">=": int(lhs >= rhs),
                "&&": int(bool(lhs and rhs)), "||": int(bool(lhs or rhs)),
            }.get(expr.op)
        except (ValueError, OverflowError):
            return None
    return None


def check(unit: ast.TranslationUnit) -> list[Diagnostic]:
    """Run semantic analysis; returns all diagnostics."""
    return Sema().analyze(unit)
