"""MetaMut reproduction: fuzzing compilers with LLM-generated mutators.

A from-scratch Python reproduction of "The Mutators Reloaded: Fuzzing
Compilers with Large Language Model Generated Mutation Operators"
(Ou, Li, Jiang, Xu — ASPLOS 2024).

Packages:

* :mod:`repro.cast` — C front-end substrate (lexer/parser/AST/sema/rewriter);
* :mod:`repro.muast` — the μAST mutation API (Figure 6) and mutator registry;
* :mod:`repro.mutators` — the library of 118 generated mutators (§4.1);
* :mod:`repro.compiler` — the simulated GCC/Clang targets: IR, optimizer,
  back end, branch coverage, and the seeded-bug registry;
* :mod:`repro.llm` — the simulated GPT-4 with calibrated cost/fault models;
* :mod:`repro.metamut` — the MetaMut pipeline (Figure 1);
* :mod:`repro.fuzzing` — μCFuzz (Algorithm 1), the macro fuzzer, and the
  AFL++/GrayC/Csmith/YARPGen baselines;
* :mod:`repro.analysis` — crash Venn diagrams, stats, bug-report modelling.
"""

__version__ = "1.0.0"
