"""Campaign runner: drives fuzzers over a virtual clock and records trends.

The paper's headline experiment runs 60 parallel instances for 24 hours per
fuzzer/compiler pair.  The reproduction runs a fixed number of steps and maps
them onto the virtual 24-hour axis, recording the coverage and unique-crash
trends that Figures 7 and 9 plot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.compiler.driver import Compiler
from repro.muast.registry import MutatorRegistry, global_registry
from repro.resilience.circuit import MutatorQuarantine
from repro.resilience.faultinject import CellFault
from repro.fuzzing.schedule import MutatorScheduler
from repro.telemetry import TelemetrySession

# Importing the library populates the global registry with all 118 mutators.
import repro.mutators  # noqa: F401  (registration side effect)
from repro.fuzzing.base import Fuzzer
from repro.fuzzing.baselines import AFLPlusPlus, CsmithSim, GrayCSim, YarpGenSim
from repro.fuzzing.crash import CrashLog
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.parallel import (
    CellOutcome,
    CellSpec,
    run_cells,
    run_cells_resilient,
    stable_cell_seed,
)

FUZZER_NAMES = ("uCFuzz.s", "uCFuzz.u", "AFL++", "GrayC", "Csmith", "YARPGen")


@dataclass
class CampaignResult:
    fuzzer: str
    compiler: str
    steps: int
    virtual_hours: float
    #: (virtual hour, covered branch-edge count) samples.
    coverage_trend: list[tuple[float, int]] = field(default_factory=list)
    crashes: CrashLog = field(default_factory=CrashLog)
    compiled: int = 0
    total: int = 0
    #: Modeled 24-hour program total (Table 5 extrapolation).
    throughput_total: int = 0
    #: Fuzzer execution stats (attempts, cache hits/misses, hit rate).
    stats: dict = field(default_factory=dict)

    @property
    def compilable_ratio(self) -> float:
        return self.compiled / self.total if self.total else 0.0

    @property
    def final_coverage(self) -> int:
        return self.coverage_trend[-1][1] if self.coverage_trend else 0

    def crash_trend(self) -> list[tuple[float, int]]:
        return self.crashes.timeline()

    # -- checkpoint serialization (campaign resume) -----------------------

    def to_json(self) -> dict:
        return {
            "fuzzer": self.fuzzer,
            "compiler": self.compiler,
            "steps": self.steps,
            "virtual_hours": self.virtual_hours,
            "coverage_trend": [[hour, edges] for hour, edges in self.coverage_trend],
            "crashes": self.crashes.to_json(),
            "compiled": self.compiled,
            "total": self.total,
            "throughput_total": self.throughput_total,
            "stats": self.stats,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CampaignResult":
        return cls(
            fuzzer=payload["fuzzer"],
            compiler=payload["compiler"],
            steps=payload["steps"],
            virtual_hours=payload["virtual_hours"],
            coverage_trend=[
                (hour, edges) for hour, edges in payload["coverage_trend"]
            ],
            crashes=CrashLog.from_json(payload["crashes"]),
            compiled=payload["compiled"],
            total=payload["total"],
            throughput_total=payload["throughput_total"],
            stats=payload["stats"],
        )


def make_fuzzer(
    name: str,
    compiler: Compiler,
    seeds: list[str],
    registry: MutatorRegistry,
    rng: random.Random,
    quarantine_threshold: int | None = None,
    cache_maxsize: int | None = None,
    incremental: bool = True,
    paranoid: bool = False,
    session: bool = False,
    fuse_passes: bool = False,
    flat_ir: bool = False,
    flat_native: bool = False,
    batch_compile: bool = False,
    scheduler: "MutatorScheduler | None" = None,
    mutator_stats: bool | None = None,
    telemetry: TelemetrySession | None = None,
) -> Fuzzer:
    """Instantiate one of the six evaluated fuzzers by its paper name."""
    quarantine = (
        MutatorQuarantine(quarantine_threshold)
        if quarantine_threshold is not None
        else None
    )
    # ``session=True`` gives the μCFuzz variants a private per-cell
    # CompileSession (cross-step middle-end memoization); the generator
    # baselines ignore it, as they do the evolutionary scheduler.
    session_arg = True if session else None
    if name == "uCFuzz.s":
        fuzzer: Fuzzer = MuCFuzz(
            compiler, rng, seeds, registry.supervised(), name=name,
            quarantine=quarantine, cache_maxsize=cache_maxsize,
            incremental=incremental, paranoid=paranoid,
            session=session_arg, fuse_passes=fuse_passes,
            flat_ir=flat_ir, flat_native=flat_native,
            batch_compile=batch_compile,
            scheduler=scheduler, mutator_stats=mutator_stats,
        )
    elif name == "uCFuzz.u":
        fuzzer = MuCFuzz(
            compiler, rng, seeds, registry.unsupervised(), name=name,
            quarantine=quarantine, cache_maxsize=cache_maxsize,
            incremental=incremental, paranoid=paranoid,
            session=session_arg, fuse_passes=fuse_passes,
            flat_ir=flat_ir, flat_native=flat_native,
            batch_compile=batch_compile,
            scheduler=scheduler, mutator_stats=mutator_stats,
        )
    elif name == "AFL++":
        fuzzer = AFLPlusPlus(compiler, rng, seeds)
    elif name == "GrayC":
        fuzzer = GrayCSim(compiler, rng, seeds)
    elif name == "Csmith":
        fuzzer = CsmithSim(compiler, rng)
    elif name == "YARPGen":
        fuzzer = YarpGenSim(compiler, rng)
    else:
        raise ValueError(f"unknown fuzzer {name!r}")
    if telemetry is not None:
        fuzzer.adopt_telemetry(telemetry)
    return fuzzer


def run_campaign(
    fuzzer: Fuzzer,
    steps: int,
    virtual_hours: float = 24.0,
    sample_points: int = 24,
    *,
    telemetry: "TelemetrySession | None" = None,
) -> CampaignResult:
    """Run ``steps`` fuzzing iterations mapped onto a virtual time span.

    ``telemetry`` (or the fuzzer's own session, when it carries a sink)
    receives campaign lifecycle, crash-discovery, coverage-sample, and
    kept-step events.  Event emission consumes no randomness and never
    touches compared state, so a telemetry-enabled run produces a
    bit-identical :class:`CampaignResult`.
    """
    telem = telemetry if telemetry is not None else fuzzer.telemetry
    if telemetry is not None and fuzzer.telemetry is not telemetry:
        fuzzer.adopt_telemetry(telemetry)
    result = CampaignResult(
        fuzzer=getattr(fuzzer, "name", type(fuzzer).__name__),
        compiler=fuzzer.compiler.name,
        steps=steps,
        virtual_hours=virtual_hours,
    )
    telem.emit(
        "campaign", "start",
        fuzzer=result.fuzzer, compiler=result.compiler, steps=steps,
        virtual_hours=virtual_hours,
    )
    sample_every = max(steps // max(sample_points, 1), 1)
    for i in range(steps):
        vhour = (i + 1) / steps * virtual_hours
        step = fuzzer.step()
        result.total += 1
        if step.result.ok or (step.result.crashed and not step.result.diagnostics):
            result.compiled += 1
        if step.result.crashed:
            rec = result.crashes.add(step.result, vhour, step.program)
            if rec is not None:
                telem.emit(
                    "crash", rec.bug_id,
                    module=rec.module, kind=rec.kind,
                    vhour=round(vhour, 4), step=i + 1,
                    mutator=step.mutator,
                    frames=[[f.function, f.pc] for f in rec.signature.frames],
                )
        if step.kept:
            telem.emit(
                "step", "kept", step=i + 1, mutator=step.mutator,
                pool_size=len(getattr(fuzzer, "pool", ())),
            )
        for name in (step.stats or {}).get("quarantined", ()):
            telem.emit("quarantine", name, step=i + 1)
        for name in (step.stats or {}).get("retired", ()):
            telem.emit("quarantine", name, step=i + 1, reason="retired")
        if (i + 1) % sample_every == 0 or i + 1 == steps:
            result.coverage_trend.append((vhour, len(fuzzer.coverage)))
            telem.emit(
                "coverage", "sample",
                vhour=round(vhour, 4), edges=len(fuzzer.coverage),
            )
    result.throughput_total = int(virtual_hours * 3600 / fuzzer.step_cost)
    # Deterministic by construction: stats_snapshot() excludes the
    # wall-clock profile (profile_snapshot() carries it), so no caller has
    # to strip timing keys to keep serial==parallel comparisons honest.
    result.stats = fuzzer.stats_snapshot()
    telem.emit(
        "campaign", "end",
        compiled=result.compiled, total=result.total,
        crashes=len(result.crashes), final_coverage=result.final_coverage,
    )
    telem.flush()
    return result


@dataclass
class Campaign:
    """The full RQ1 comparison: all six fuzzers over the given compilers."""

    compilers: list[Compiler]
    seeds: list[str]
    registry: MutatorRegistry
    steps: int = 600
    base_seed: int = 2024
    quarantine_threshold: int | None = None
    #: Front-end cache capacity per cell (None = FrontendCache default).
    cache_maxsize: int | None = None
    #: Incremental (dirty-region + function-granular) compilation per cell.
    incremental: bool = True
    #: Differentially check every incremental compile (slow; CI/tests only).
    paranoid: bool = False
    #: Cross-step middle-end memoization: one CompileSession per cell.
    session: bool = False
    #: Route local optimization through the fused single-walk pass.
    fuse_passes: bool = False
    #: Run the optimizer's local rounds over the flat slotted IR buffer.
    flat_ir: bool = False
    #: Keep the whole middle end buffer-native — buffer-direct irgen, flat
    #: inlining, buffer-served journal replay (implies ``flat_ir``).
    flat_native: bool = False
    #: Compile each μCFuzz step's attempt set as one session batch.
    batch_compile: bool = False
    #: Evolutionary mutator scheduling: give each μCFuzz cell a
    #: fitness-proportional :class:`MutatorScheduler` seeded from the cell
    #: seed (scheduled cells stay serial == parallel == fabric identical).
    schedule: bool = False
    #: Track per-mutator yield counters even without the scheduler (the
    #: uniform arm of the scheduling ablation); ``None`` follows
    #: ``schedule``.
    mutator_stats: bool | None = None
    #: Stream per-cell telemetry (JSONL events) into this directory; the
    #: resilient runner additionally writes a ``grid.jsonl`` of cell
    #: lifecycle events.  None (the default) disables the sinks.  Telemetry
    #: never changes campaign results.
    telemetry_dir: str | None = None

    def cell_specs(
        self,
        fuzzer_names: tuple[str, ...] = FUZZER_NAMES,
        faults: "dict | None" = None,
    ) -> list[CellSpec]:
        """The grid's cell specs, in stable (compiler-major) order.

        ``faults`` (test/CI-only) maps a fuzzer name, or a
        ``(fuzzer_name, personality)`` pair, to the :class:`CellFault` to
        inject into that cell.
        """
        registry = self.registry if self.registry is not global_registry else None
        specs = [
            CellSpec(
                fuzzer_name=name,
                personality=compiler.personality,
                version=compiler.version,
                bug_seed=compiler.bug_seed,
                seeds=tuple(self.seeds),
                steps=self.steps,
                cell_seed=stable_cell_seed(name, compiler.name, self.base_seed),
                registry=registry,
                quarantine_threshold=self.quarantine_threshold,
                cache_maxsize=self.cache_maxsize,
                incremental=self.incremental,
                paranoid=self.paranoid,
                session=self.session,
                fuse_passes=self.fuse_passes,
                flat_ir=self.flat_ir,
                flat_native=self.flat_native,
                batch_compile=self.batch_compile,
                schedule=self.schedule,
                mutator_stats=self.mutator_stats,
                telemetry_dir=self.telemetry_dir,
            )
            for compiler in self.compilers
            for name in fuzzer_names
        ]
        if faults:
            specs = [
                replace(
                    spec,
                    fault=(
                        faults.get((spec.fuzzer_name, spec.personality))
                        or faults.get(spec.fuzzer_name)
                    ),
                )
                for spec in specs
            ]
        return specs

    def run(
        self,
        fuzzer_names: tuple[str, ...] = FUZZER_NAMES,
        parallelism: int = 1,
    ) -> list[CampaignResult]:
        """Run every fuzzer × compiler cell; fan out over processes if asked.

        Each cell's RNG is seeded from a stable digest of the (fuzzer,
        compiler) pair (``hash()`` would vary with PYTHONHASHSEED and per
        pool worker), and every cell — serial or parallel — is executed from
        an identical :class:`CellSpec`, so ``parallelism=N`` returns the
        same results as ``parallelism=1``, in the same stable order.
        """
        return run_cells(self.cell_specs(fuzzer_names), parallelism)

    def run_resilient(
        self,
        fuzzer_names: tuple[str, ...] = FUZZER_NAMES,
        parallelism: int = 1,
        *,
        cell_timeout: float | None = None,
        cell_retries: int = 1,
        checkpoint_dir: str | None = None,
        faults: "dict[str | tuple[str, str], CellFault] | None" = None,
    ) -> list[CellOutcome]:
        """The fault-isolated grid: one :class:`CellOutcome` per cell.

        A crashed, hung, or timed-out cell is retried up to ``cell_retries``
        times from its identical spec and otherwise lands as a recorded
        failure; the other cells complete normally.  With
        ``checkpoint_dir``, finished cells persist as they complete and a
        rerun skips them (campaign resume).
        """
        return run_cells_resilient(
            self.cell_specs(fuzzer_names, faults),
            parallelism,
            cell_timeout=cell_timeout,
            cell_retries=cell_retries,
            checkpoint_dir=checkpoint_dir,
            telemetry_dir=self.telemetry_dir,
        )

    def run_fabric(
        self,
        fuzzer_names: tuple[str, ...] = FUZZER_NAMES,
        fleet_size: int = 4,
        *,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 2.0,
        cell_timeout: float | None = None,
        cell_retries: int = 1,
        poison_threshold: int = 3,
        max_respawns: int | None = None,
        checkpoint_dir: str | None = None,
        faults: "dict[str | tuple[str, str], CellFault] | None" = None,
        chaos=None,
    ) -> list[CellOutcome]:
        """The supervised grid: a lease-based work queue over a worker fleet.

        Unlike :meth:`run_resilient` (one process per cell, failure noticed
        only at the cell timeout), ``run_fabric`` runs ``fleet_size``
        long-lived workers that heartbeat their leases: a dead or stalled
        worker is detected within ``heartbeat_timeout`` seconds and its
        cell is re-dispatched to a survivor, a cell that kills
        ``poison_threshold`` distinct workers is quarantined as a recorded
        poison failure, and every transition is journalled under
        ``checkpoint_dir`` so a killed supervisor resumes mid-grid.
        Completed cells are bit-identical to the serial run regardless of
        fleet churn (``chaos``, a
        :class:`~repro.resilience.faultinject.ChaosPlan`, injects that
        churn deterministically in tests/CI).
        """
        from repro.fabric import run_cells_fabric

        return run_cells_fabric(
            self.cell_specs(fuzzer_names, faults),
            fleet_size,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            cell_timeout=cell_timeout,
            cell_retries=cell_retries,
            poison_threshold=poison_threshold,
            max_respawns=max_respawns,
            checkpoint_dir=checkpoint_dir,
            telemetry_dir=self.telemetry_dir,
            chaos=chaos,
        )
