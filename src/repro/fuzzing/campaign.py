"""Campaign runner: drives fuzzers over a virtual clock and records trends.

The paper's headline experiment runs 60 parallel instances for 24 hours per
fuzzer/compiler pair.  The reproduction runs a fixed number of steps and maps
them onto the virtual 24-hour axis, recording the coverage and unique-crash
trends that Figures 7 and 9 plot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.compiler.driver import Compiler
from repro.muast.registry import MutatorRegistry, global_registry

# Importing the library populates the global registry with all 118 mutators.
import repro.mutators  # noqa: F401  (registration side effect)
from repro.fuzzing.base import Fuzzer
from repro.fuzzing.baselines import AFLPlusPlus, CsmithSim, GrayCSim, YarpGenSim
from repro.fuzzing.crash import CrashLog
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.parallel import CellSpec, run_cells, stable_cell_seed

FUZZER_NAMES = ("uCFuzz.s", "uCFuzz.u", "AFL++", "GrayC", "Csmith", "YARPGen")


@dataclass
class CampaignResult:
    fuzzer: str
    compiler: str
    steps: int
    virtual_hours: float
    #: (virtual hour, covered branch-edge count) samples.
    coverage_trend: list[tuple[float, int]] = field(default_factory=list)
    crashes: CrashLog = field(default_factory=CrashLog)
    compiled: int = 0
    total: int = 0
    #: Modeled 24-hour program total (Table 5 extrapolation).
    throughput_total: int = 0
    #: Fuzzer execution stats (attempts, cache hits/misses, hit rate).
    stats: dict = field(default_factory=dict)

    @property
    def compilable_ratio(self) -> float:
        return self.compiled / self.total if self.total else 0.0

    @property
    def final_coverage(self) -> int:
        return self.coverage_trend[-1][1] if self.coverage_trend else 0

    def crash_trend(self) -> list[tuple[float, int]]:
        return self.crashes.timeline()


def make_fuzzer(
    name: str,
    compiler: Compiler,
    seeds: list[str],
    registry: MutatorRegistry,
    rng: random.Random,
) -> Fuzzer:
    """Instantiate one of the six evaluated fuzzers by its paper name."""
    if name == "uCFuzz.s":
        return MuCFuzz(compiler, rng, seeds, registry.supervised(), name=name)
    if name == "uCFuzz.u":
        return MuCFuzz(compiler, rng, seeds, registry.unsupervised(), name=name)
    if name == "AFL++":
        return AFLPlusPlus(compiler, rng, seeds)
    if name == "GrayC":
        return GrayCSim(compiler, rng, seeds)
    if name == "Csmith":
        return CsmithSim(compiler, rng)
    if name == "YARPGen":
        return YarpGenSim(compiler, rng)
    raise ValueError(f"unknown fuzzer {name!r}")


def run_campaign(
    fuzzer: Fuzzer,
    steps: int,
    virtual_hours: float = 24.0,
    sample_points: int = 24,
) -> CampaignResult:
    """Run ``steps`` fuzzing iterations mapped onto a virtual time span."""
    result = CampaignResult(
        fuzzer=getattr(fuzzer, "name", type(fuzzer).__name__),
        compiler=fuzzer.compiler.name,
        steps=steps,
        virtual_hours=virtual_hours,
    )
    sample_every = max(steps // max(sample_points, 1), 1)
    for i in range(steps):
        vhour = (i + 1) / steps * virtual_hours
        step = fuzzer.step()
        result.total += 1
        if step.result.ok or (step.result.crashed and not step.result.diagnostics):
            result.compiled += 1
        if step.result.crashed:
            result.crashes.add(step.result, vhour, step.program)
        if (i + 1) % sample_every == 0 or i + 1 == steps:
            result.coverage_trend.append((vhour, len(fuzzer.coverage)))
    result.throughput_total = int(virtual_hours * 3600 / fuzzer.step_cost)
    result.stats = fuzzer.stats_snapshot()
    return result


@dataclass
class Campaign:
    """The full RQ1 comparison: all six fuzzers over the given compilers."""

    compilers: list[Compiler]
    seeds: list[str]
    registry: MutatorRegistry
    steps: int = 600
    base_seed: int = 2024

    def run(
        self,
        fuzzer_names: tuple[str, ...] = FUZZER_NAMES,
        parallelism: int = 1,
    ) -> list[CampaignResult]:
        """Run every fuzzer × compiler cell; fan out over processes if asked.

        Each cell's RNG is seeded from a stable digest of the (fuzzer,
        compiler) pair (``hash()`` would vary with PYTHONHASHSEED and per
        pool worker), and every cell — serial or parallel — is executed from
        an identical :class:`CellSpec`, so ``parallelism=N`` returns the
        same results as ``parallelism=1``, in the same stable order.
        """
        registry = self.registry if self.registry is not global_registry else None
        specs = [
            CellSpec(
                fuzzer_name=name,
                personality=compiler.personality,
                version=compiler.version,
                bug_seed=compiler.bug_seed,
                seeds=tuple(self.seeds),
                steps=self.steps,
                cell_seed=stable_cell_seed(name, compiler.name, self.base_seed),
                registry=registry,
            )
            for compiler in self.compilers
            for name in fuzzer_names
        ]
        return run_cells(specs, parallelism)
