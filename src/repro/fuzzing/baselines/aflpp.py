"""AFL++-style byte-level coverage-guided fuzzing.

Treats programs as byte arrays (no semantic awareness) and applies stacked
Havoc mutations: bit flips, byte substitutions, chunk deletion/duplication,
and splicing.  Most outputs do not compile (§5.2 reports 3.53%), but the
broken inputs exercise the compiler front end's error paths — where most of
AFL++'s crashes come from (11 of its 15 GCC crashes in the paper).
"""

from __future__ import annotations

import random

from repro.compiler.driver import Compiler
from repro.fuzzing.base import CoverageGuidedFuzzer, StepResult

_INTERESTING_BYTES = b"\x00\xff{}()[];\"'*&#<>%"


class AFLPlusPlus(CoverageGuidedFuzzer):
    name = "AFL++"
    step_cost = 0.040  # ≈2.15M execs / 24 h (Table 5)

    def __init__(
        self, compiler: Compiler, rng: random.Random, seeds: list[str]
    ) -> None:
        super().__init__(compiler, rng, seeds)

    def step(self) -> StepResult:
        parent = self.pool.random_choice(self.rng)
        data = bytearray(parent.text.encode("latin-1", "replace"))
        rounds = 1 << self.rng.randint(0, 4)  # stacked havoc
        for _ in range(rounds):
            self._havoc_once(data)
        mutant = bytes(data).decode("latin-1")
        result = self.compiler.compile(mutant)
        kept = self.keep_if_new_coverage(mutant, result, parent, "havoc")
        self.coverage.merge(result.coverage)
        return StepResult(mutant, result, kept=kept, mutator="havoc")

    def _havoc_once(self, data: bytearray) -> None:
        if not data:
            data.extend(b"A")
            return
        rng = self.rng
        choice = rng.randrange(7)
        pos = rng.randrange(len(data))
        if choice == 0:  # bit flip
            data[pos] ^= 1 << rng.randrange(8)
        elif choice == 1:  # interesting byte
            data[pos] = rng.choice(_INTERESTING_BYTES)
        elif choice == 2:  # random byte
            data[pos] = rng.randrange(32, 127)
        elif choice == 3:  # delete chunk
            n = min(rng.randint(1, 16), len(data) - pos)
            del data[pos : pos + n]
        elif choice == 4:  # duplicate chunk
            n = min(rng.randint(1, 16), len(data) - pos)
            data[pos:pos] = data[pos : pos + n]
        elif choice == 5:  # insert random bytes
            data[pos:pos] = bytes(
                rng.randrange(32, 127) for _ in range(rng.randint(1, 8))
            )
        else:  # splice with another pool entry
            other = self.pool.random_choice(rng).text.encode("latin-1", "replace")
            if other:
                cut = rng.randrange(len(other))
                data[pos:] = other[cut:]
