"""YARPGen-style generation-based fuzzing.

YARPGen addresses Csmith's saturation with *generation policies*; v2 focuses
specifically on loop optimizations.  The simulation uses a loop-heavy policy
with deep nests over global arrays — the program shape that reaches the two
loop-misoptimization bugs of the registry, matching YARPGen's two unique
crashes in §5.2.
"""

from __future__ import annotations

import random

from repro.compiler.driver import Compiler
from repro.fuzzing.base import Fuzzer, StepResult
from repro.fuzzing.progen import GenPolicy, ProgramGenerator

YARPGEN_POLICY = GenPolicy(
    max_helpers=2,
    max_stmts=10,
    max_depth=6,
    loop_focus=True,
    safe_math=True,
    use_goto=False,
    use_switch=False,
    use_struct=False,
)


class YarpGenSim(Fuzzer):
    name = "YARPGen"
    step_cost = 1.14  # ≈76k programs / 24 h (Table 5)

    def __init__(self, compiler: Compiler, rng: random.Random) -> None:
        super().__init__(compiler, rng)

    def step(self) -> StepResult:
        gen = ProgramGenerator(
            random.Random(self.rng.randrange(1 << 62)), YARPGEN_POLICY
        )
        program = gen.generate()
        result = self.compiler.compile(program)
        self.coverage.merge(result.coverage)
        return StepResult(program, result, kept=False, mutator=None)
