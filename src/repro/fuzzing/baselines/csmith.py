"""Csmith-style generation-based fuzzing.

Generates well-formed, UB-free programs from scratch (no seeds, no coverage
guidance — Csmith is a black-box generator).  Its grammar policy carefully
avoids undefined behaviour (guarded divisions, masked shifts), which also
means its outputs carry none of the mutation fingerprints the latent deep
bugs key on: the saturation effect §5.2 observes (0 crashes on current
compilers despite 1,440 CPU hours).
"""

from __future__ import annotations

import random

from repro.compiler.driver import Compiler
from repro.fuzzing.base import Fuzzer, StepResult
from repro.fuzzing.progen import GenPolicy, ProgramGenerator

CSMITH_POLICY = GenPolicy(
    max_helpers=4,
    max_stmts=14,
    max_depth=3,
    safe_math=True,
    use_goto=True,
    use_complex=False,
)


class CsmithSim(Fuzzer):
    name = "Csmith"
    step_cost = 2.75  # ≈31k programs / 24 h (Table 5)

    def __init__(self, compiler: Compiler, rng: random.Random) -> None:
        super().__init__(compiler, rng)

    def step(self) -> StepResult:
        gen = ProgramGenerator(
            random.Random(self.rng.randrange(1 << 62)), CSMITH_POLICY
        )
        program = gen.generate()
        result = self.compiler.compile(program)
        self.coverage.merge(result.coverage)
        return StepResult(program, result, kept=False, mutator=None)
