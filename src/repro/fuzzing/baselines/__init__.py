"""The four baseline fuzzers of §5.1: AFL++, GrayC, Csmith, and YARPGen.

These re-implement each tool at the level the evaluation compares them —
input representation (bytes vs. AST vs. grammar), coverage guidance, and
characteristic compilable-mutant profile — not their full engineering.
"""

from repro.fuzzing.baselines.aflpp import AFLPlusPlus
from repro.fuzzing.baselines.csmith import CsmithSim
from repro.fuzzing.baselines.yarpgen import YarpGenSim
from repro.fuzzing.baselines.grayc import GrayCSim

__all__ = ["AFLPlusPlus", "CsmithSim", "YarpGenSim", "GrayCSim"]
