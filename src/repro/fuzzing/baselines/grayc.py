"""GrayC-style greybox fuzzing with five hand-written semantic mutators.

GrayC ships exactly five carefully designed semantic-aware mutators (§5.2
footnote: ``./grayc --list-mutations``) and validates mutants before emitting
them, which is why ~99% of its outputs compile.  The five below follow the
GrayC paper's categories: constant replacement, statement deletion,
statement duplication, function-call argument mutation, and control-flow
injection.
"""

from __future__ import annotations

import random

from repro.cast import ast_nodes as ast
from repro.cast.parser import ParseError, parse
from repro.cast.rewriter import Rewriter
from repro.cast.sema import Sema
from repro.cast.source import SourceFile
from repro.compiler.driver import Compiler
from repro.fuzzing.base import CoverageGuidedFuzzer, StepResult

GRAYC_MUTATORS = (
    "ConstantReplacement",
    "DeleteStatement",
    "DuplicateStatement",
    "FunctionCallMutation",
    "InjectControlFlow",
)


def _compiles(text: str) -> bool:
    try:
        unit = parse(text)
    except (ParseError, RecursionError):
        return False
    return not any(d.severity == "error" for d in Sema().analyze(unit))


class GrayCSim(CoverageGuidedFuzzer):
    name = "GrayC"
    step_cost = 0.088  # ≈983k programs / 24 h (Table 5)

    def __init__(
        self, compiler: Compiler, rng: random.Random, seeds: list[str]
    ) -> None:
        super().__init__(compiler, rng, seeds)

    def step(self) -> StepResult:
        parent = self.pool.random_choice(self.rng)
        mutator = self.rng.choice(GRAYC_MUTATORS)
        mutant = self._apply(parent.text, mutator)
        if mutant is None or mutant == parent.text:
            mutant = parent.text
        result = self.compiler.compile(mutant)
        kept = self.keep_if_new_coverage(mutant, result, parent, mutator)
        self.coverage.merge(result.coverage)
        return StepResult(mutant, result, kept=kept, mutator=mutator)

    # ------------------------------------------------------------------

    def _apply(self, text: str, mutator: str) -> str | None:
        try:
            unit = parse(text)
        except (ParseError, RecursionError):
            return None
        Sema().analyze(unit)
        source = SourceFile(text)
        rewriter = Rewriter(source)
        handler = getattr(self, f"_mut_{mutator}")
        if not handler(unit, source, rewriter):
            return None
        mutant = rewriter.rewritten_text()
        # GrayC validates before emitting; fall back to the parent when the
        # mutant is broken (this is what keeps its compilable ratio ~99%).
        if not _compiles(mutant):
            return None
        return mutant

    def _mut_ConstantReplacement(self, unit, source, rewriter) -> bool:
        literals = [n for n in unit.walk() if isinstance(n, ast.IntegerLiteral)]
        if not literals:
            return False
        lit = literals[self.rng.randrange(len(literals))]
        value = self.rng.choice([0, 1, 2, 255, 4096, 0x7FFFFFFF, 64])
        return rewriter.replace_text(lit.range, str(value))

    def _removable(self, unit) -> list[ast.Stmt]:
        out = []
        for node in unit.walk():
            if not isinstance(node, ast.CompoundStmt):
                continue
            for stmt in node.stmts:
                if isinstance(stmt, (ast.ExprStmt, ast.ReturnStmt, ast.NullStmt)):
                    out.append(stmt)
        return out

    def _mut_DeleteStatement(self, unit, source, rewriter) -> bool:
        stmts = [
            s for s in self._removable(unit) if not isinstance(s, ast.ReturnStmt)
        ]
        if not stmts:
            return False
        stmt = stmts[self.rng.randrange(len(stmts))]
        return rewriter.remove_text(stmt.range)

    def _mut_DuplicateStatement(self, unit, source, rewriter) -> bool:
        stmts = self._removable(unit)
        if not stmts:
            return False
        stmt = stmts[self.rng.randrange(len(stmts))]
        text = source.slice(stmt.range)
        return rewriter.insert_text_after(stmt.range.end, "\n" + text)

    def _mut_FunctionCallMutation(self, unit, source, rewriter) -> bool:
        calls = [
            n
            for n in unit.walk()
            if isinstance(n, ast.CallExpr)
            and n.args
            and n.args[0].type is not None
            and n.args[0].type.is_integer()
        ]
        if not calls:
            return False
        call = calls[self.rng.randrange(len(calls))]
        arg = call.args[self.rng.randrange(len(call.args))]
        if arg.type is None or not arg.type.is_integer():
            return False
        return rewriter.replace_text(arg.range, str(self.rng.randint(-8, 1024)))

    def _mut_InjectControlFlow(self, unit, source, rewriter) -> bool:
        stmts = self._removable(unit)
        if not stmts:
            return False
        stmt = stmts[self.rng.randrange(len(stmts))]
        text = source.slice(stmt.range)
        snippet = self.rng.choice(
            [
                f"if (0) {{ {text} }}",
                "do { ; } while (0);",
                f"while (0) {{ {text} }}",
            ]
        )
        return rewriter.insert_text_after(stmt.range.end, "\n" + snippet)
