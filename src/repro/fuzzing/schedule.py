"""Evolutionary mutator scheduling: a seeded fitness-proportional bandit.

The paper's μCFuzz picks mutators uniformly at random (Algorithm 1).
FunFuzz-style evolutionary outer loops do better: mutators that keep
producing coverage, crashes, or at least compilable mutants should be
tried first, and chronic losers should be retired and flagged for
replacement invention.  :class:`MutatorScheduler` implements that as a
deterministic multi-armed bandit over the per-mutator yield counters the
fuzzer records (see :data:`MUTATOR_STAT_KEYS`):

* **Fitness** is the average per-attempt yield — coverage gain and crash
  yield weighted far above the mere compilable/changed ratios — so an arm's
  score is a pure function of its observed counter record.
* **Ordering** is a fitness-proportional sample without replacement
  (Efraimidis–Spirakis keys: ``u ** (1/w)`` with ``u`` from the
  scheduler's *own* seeded RNG), so high-yield mutators tend to occupy the
  front of each step's try-order while every live arm keeps a nonzero
  chance (the exploration floor plus an optimistic prior for barely-tried
  arms).
* **Retirement** permanently removes an arm whose fitness stays below
  ``retire_below`` after ``retire_after`` attempts, records it on the
  attached :class:`~repro.resilience.circuit.MutatorQuarantine` (firing
  its ``on_retire`` hook), and queues a replacement request carrying the
  retired mutator's category/action/structure metadata for the MetaMut
  invention loop.

RNG-neutrality contract (the quarantine-consult rule): the scheduler owns
a private :class:`random.Random` derived from the campaign cell seed and
never draws from the fuzzer's RNG stream, and a retired or quarantined
mutator draws **no** scheduler entropy either — so ``scheduler=None``
leaves the fuzzer byte-identical to the uniform Algorithm 1 loop, and a
scheduled cell is reproducible serial == parallel == fabric.
"""

from __future__ import annotations

import argparse
import math
import random
import zlib
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.muast.registry import MutatorInfo
    from repro.resilience.circuit import MutatorQuarantine

#: The uniform per-mutator counter schema every tracked cell zero-fills up
#: front: a cell snapshot carries *every* mutator's record with *all* of
#: these keys, whether or not the mutator was ever tried, so grid
#: ``merge_stats`` folds are schema-identical regardless of which cells
#: happened to try (or skip) which arms.
MUTATOR_STAT_KEYS = ("attempts", "changed", "compiled", "coverage_gain", "crashes")

#: Domain-separation constant mixed into the cell seed so the scheduler's
#: private RNG stream never collides with the fuzzer's.
_SCHEDULER_SALT = zlib.crc32(b"mutator-scheduler")


def zero_mutator_stats(names: Iterable[str]) -> dict:
    """A zero-filled ``name -> counter record`` table over ``names``."""
    return {name: dict.fromkeys(MUTATOR_STAT_KEYS, 0) for name in sorted(names)}


class MutatorScheduler:
    """Deterministic fitness-proportional ordering over the mutator set.

    Construct via :meth:`from_cell_seed` inside a campaign cell (the
    scheduler's RNG is derived from the cell seed, so two runs of the same
    cell schedule identically), then :meth:`attach` the fuzzer's mutator
    stat table and quarantine.  :meth:`order` is the only per-step entry
    point.
    """

    def __init__(
        self,
        seed: int,
        *,
        prior: float = 2.0,
        floor: float = 0.3,
        w_coverage: float = 8.0,
        w_crash: float = 4.0,
        w_compiled: float = 0.5,
        w_changed: float = 0.25,
        retire_after: int | None = 60,
        retire_below: float = 0.02,
    ) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        #: Optimistic weight of an untried arm; decays as ``prior/(1+n)``.
        self.prior = prior
        #: Exploration floor: no live arm's weight falls to zero.
        self.floor = floor
        self.w_coverage = w_coverage
        self.w_crash = w_crash
        self.w_compiled = w_compiled
        self.w_changed = w_changed
        #: Attempts before an arm becomes eligible for retirement
        #: (``None`` disables retirement outright).
        self.retire_after = retire_after
        #: Fitness below which a fully-sampled arm is a chronic loser.
        self.retire_below = retire_below
        #: Names this scheduler retired (mirrors the quarantine's set).
        self.retired: set[str] = set()
        #: Replacement-invention requests, one per retirement, carrying the
        #: retired mutator's template metadata for the MetaMut loop.
        self.replacements: list[dict] = []
        self._stats: dict | None = None
        self._quarantine: "MutatorQuarantine | None" = None

    @classmethod
    def from_cell_seed(cls, cell_seed: int, **knobs) -> "MutatorScheduler":
        """The cell's scheduler: seeded from (salted) ``cell_seed``.

        The salt keeps the scheduler's stream disjoint from the fuzzer's
        ``random.Random(cell_seed)`` stream even though both derive from
        the same cell identity.
        """
        return cls(_SCHEDULER_SALT ^ (int(cell_seed) & 0xFFFFFFFF), **knobs)

    def attach(
        self, stats: dict, quarantine: "MutatorQuarantine | None"
    ) -> None:
        """Bind the fuzzer's per-mutator counter table and quarantine.

        The stat table is the scheduler's *only* input signal — the fuzzer
        records yields there and the scheduler reads them, so there is one
        source of truth and the MetricsRegistry snapshot the campaign
        compares is exactly what drove the schedule.
        """
        self._stats = stats
        self._quarantine = quarantine

    # -- fitness -----------------------------------------------------------

    def fitness(self, rec: dict | None) -> float | None:
        """Average per-attempt yield of one arm; None when never tried."""
        if rec is None:
            return None
        attempts = rec.get("attempts", 0)
        if not attempts:
            return None
        score = (
            self.w_coverage * rec.get("coverage_gain", 0)
            + self.w_crash * rec.get("crashes", 0)
            + self.w_compiled * rec.get("compiled", 0)
            + self.w_changed * rec.get("changed", 0)
        )
        return score / attempts

    def weight(self, rec: dict | None) -> float:
        """Sampling weight: saturated fitness with a floor and prior.

        The square root tempers the raw per-attempt average: one lucky
        coverage burst must not let an arm monopolise the front of the
        order after its marginal yield has decayed (coverage is a
        saturating resource, but the lifetime average stays high), while
        the ordering between arms is preserved.
        """
        observed = self.fitness(rec)
        if observed is None:
            return self.prior
        return max(self.floor, math.sqrt(observed)) + self.prior / (
            1.0 + rec.get("attempts", 0)
        )

    def should_retire(self, rec: dict | None) -> bool:
        """Chronic loser: fully sampled and still yielding ~nothing."""
        if self.retire_after is None or rec is None:
            return False
        if rec.get("attempts", 0) < self.retire_after:
            return False
        return (self.fitness(rec) or 0.0) < self.retire_below

    # -- population management ---------------------------------------------

    def retire(self, info: "MutatorInfo | str", rec: dict | None = None) -> bool:
        """Retire one arm and queue its replacement-invention request."""
        name = info if isinstance(info, str) else info.name
        if name in self.retired:
            return False
        self.retired.add(name)
        if self._quarantine is not None:
            self._quarantine.retire(name, reason="low-fitness")
        self.replacements.append(
            {
                "name": name,
                "category": getattr(info, "category", ""),
                "action": getattr(info, "action", ""),
                "structure": getattr(info, "structure", ""),
                "attempts": (rec or {}).get("attempts", 0),
                "fitness": round(self.fitness(rec) or 0.0, 6),
            }
        )
        return True

    def drain_replacement_requests(self) -> list[dict]:
        """Hand the queued invention requests to a MetaMut loop (once)."""
        drained, self.replacements = self.replacements, []
        return drained

    # -- ordering ----------------------------------------------------------

    def order(self, candidates: "list[MutatorInfo]") -> "list[MutatorInfo]":
        """The step's try-order: weighted sample without replacement.

        Quarantined and retired arms are excluded *before* any entropy is
        drawn — exactly one ``random()`` per live arm — so population
        changes never shift another arm's draw within the same call, and
        the draw sequence stays a pure function of (seed, recorded stats,
        quarantine state).
        """
        stats = self._stats or {}
        quarantine = self._quarantine
        live: list = []
        for info in candidates:
            name = info if isinstance(info, str) else info.name
            if name in self.retired:
                continue
            if quarantine is not None and not quarantine.allows(name):
                continue
            rec = stats.get(name)
            if self.should_retire(rec):
                self.retire(info, rec)
                continue
            live.append((name, info))
        keyed = []
        for pos, (name, info) in enumerate(live):
            w = self.weight(stats.get(name))
            u = self._rng.random()
            # Efraimidis–Spirakis: sorting by u**(1/w) descending is a
            # weight-proportional sample without replacement.
            keyed.append((-(u ** (1.0 / w)), pos))
        keyed.sort()
        return [live[pos][1] for _, pos in keyed]


# ---------------------------------------------------------------------------
# sched-smoke: the scheduled-vs-uniform ablation gate (tier-2 CI)

#: Seed-state golden for the uniform arm of :func:`smoke_main` (uCFuzz.s,
#: GCC sim, 40 generated seeds, RNG seed 2024, 150 steps): the scheduler
#: PR must leave the uniform fuzzer's results untouched.
_UNIFORM_GOLDEN = {"steps": 300, "seed": 2024, "coverage": 1322, "pool": 186}


def _smoke_arm(scheduled: bool, steps: int, seed: int, seeds: list[str]) -> dict:
    import repro.mutators  # noqa: F401  (populate the registry)
    from repro.compiler.driver import Compiler, GCC_SIM
    from repro.fuzzing.mucfuzz import MuCFuzz
    from repro.muast.registry import global_registry

    compiler = Compiler(*GCC_SIM)
    scheduler = MutatorScheduler.from_cell_seed(seed) if scheduled else None
    fuzzer = MuCFuzz(
        compiler,
        random.Random(seed),
        seeds,
        global_registry.supervised(),
        name="uCFuzz.s",
        scheduler=scheduler,
        mutator_stats=True,
    )
    trend = []
    sample_every = max(steps // 6, 1)
    for i in range(steps):
        fuzzer.step()
        if (i + 1) % sample_every == 0 or i + 1 == steps:
            trend.append(len(fuzzer.coverage))
    return {
        "coverage": len(fuzzer.coverage),
        "pool": len(fuzzer.pool),
        "trend": trend,
        "stats": fuzzer.stats_snapshot(),
    }


def smoke_main(argv: "list[str] | None" = None) -> int:
    """Scheduled-vs-uniform ablation smoke on a short Fig. 7-style trend.

    Gates on: (1) determinism — two runs of each arm are identical;
    (2) the uniform arm's coverage/pool exactly match the recorded
    pre-scheduler seed state; (3) the scheduled arm's final coverage is at
    least the uniform arm's; (4) every arm's snapshot carries the full
    zero-filled per-mutator yield schema.
    """
    parser = argparse.ArgumentParser(description="sched-smoke")
    parser.add_argument("--steps", type=int, default=_UNIFORM_GOLDEN["steps"])
    parser.add_argument("--seed", type=int, default=_UNIFORM_GOLDEN["seed"])
    args = parser.parse_args(argv)
    from repro.fuzzing.seedgen import generate_seeds
    from repro.muast.registry import global_registry

    import repro.mutators  # noqa: F401

    seeds = generate_seeds(40)
    arms: dict[str, dict] = {}
    for label, scheduled in (("uniform", False), ("scheduled", True)):
        first = _smoke_arm(scheduled, args.steps, args.seed, seeds)
        second = _smoke_arm(scheduled, args.steps, args.seed, seeds)
        if first != second:
            raise SystemExit(f"sched-smoke: {label} arm is nondeterministic")
        arms[label] = first
    uniform, scheduled_arm = arms["uniform"], arms["scheduled"]
    pinned = (
        args.steps == _UNIFORM_GOLDEN["steps"]
        and args.seed == _UNIFORM_GOLDEN["seed"]
    )
    if pinned and (
        uniform["coverage"] != _UNIFORM_GOLDEN["coverage"]
        or uniform["pool"] != _UNIFORM_GOLDEN["pool"]
    ):
        raise SystemExit(
            "sched-smoke: uniform arm diverged from the seed state "
            f"(coverage {uniform['coverage']} pool {uniform['pool']}, "
            f"expected {_UNIFORM_GOLDEN['coverage']}/{_UNIFORM_GOLDEN['pool']})"
        )
    if scheduled_arm["coverage"] < uniform["coverage"]:
        raise SystemExit(
            f"sched-smoke: scheduled coverage {scheduled_arm['coverage']} fell "
            f"below uniform {uniform['coverage']}"
        )
    expected = set(m.name for m in global_registry.supervised())
    for label, arm in arms.items():
        table = arm["stats"].get("mutator_stats")
        if table is None or set(table) != expected or any(
            set(rec) != set(MUTATOR_STAT_KEYS) for rec in table.values()
        ):
            raise SystemExit(
                f"sched-smoke: {label} arm's per-mutator stat schema is "
                "missing or non-uniform"
            )
    print(
        f"sched-smoke: {args.steps} steps, uniform coverage "
        f"{uniform['coverage']} (pool {uniform['pool']}) vs scheduled "
        f"{scheduled_arm['coverage']} (pool {scheduled_arm['pool']}), "
        "both deterministic, per-mutator schema uniform"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(smoke_main())
