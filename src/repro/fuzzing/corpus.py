"""The fuzzing corpus: program entries and the seed pool."""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field


@dataclass
class ProgramEntry:
    """One test program in the pool, with its provenance."""

    text: str
    seed_id: int
    generation: int = 0
    parent: int | None = None
    mutator: str | None = None

    @property
    def digest(self) -> str:
        return hashlib.sha1(self.text.encode("utf-8", "replace")).hexdigest()[:16]


@dataclass
class Corpus:
    """The growing pool P of Algorithm 1."""

    entries: list[ProgramEntry] = field(default_factory=list)
    _digests: set[str] = field(default_factory=set)

    def add(self, entry: ProgramEntry) -> bool:
        digest = entry.digest
        if digest in self._digests:
            return False
        self._digests.add(digest)
        self.entries.append(entry)
        return True

    def random_choice(self, rng: random.Random) -> ProgramEntry:
        return self.entries[rng.randrange(len(self.entries))]

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_texts(cls, texts: list[str]) -> "Corpus":
        corpus = cls()
        for i, text in enumerate(texts):
            corpus.add(ProgramEntry(text, seed_id=i))
        return corpus
