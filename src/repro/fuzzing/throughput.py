"""Fuzzing-throughput measurement: uncached vs. cached vs. incremental vs. session vs. flat-ir vs. flat-native.

The perf contract of the compile pipeline is measured here: the same μCFuzz
run (same compiler, seeds, RNG seed — hence an identical step sequence) is
executed six ways in one process — front end uncached, front-end cache
only, fully incremental (dirty-region front end plus function-granular
middle-end replay), session+fused (cross-step middle-end memoization
through a persistent :class:`~repro.compiler.session.CompileSession`, the
fused single-walk local pass, and batched per-step compilation),
flat-ir (everything the session arm does, with the optimizer's local
rounds running over the flat slotted
:class:`~repro.compiler.flatir.IRBuffer`), and flat-native (the whole
middle end buffer-native: buffer-direct irgen, flat inlining/strlen/
vectorize, and buffer-served journal replay — the object IR is never
constructed on the hot path, gated by ``flat_decodes == 0``) — and the
steps/sec ratios, cache hit-rates, and per-stage timing breakdown are
written to ``BENCH_throughput.json`` so successive PRs accumulate a perf
trajectory.  All runs must land on identical final coverage and pool sizes:
the speedup changes no observable result.

Entry points:

* ``python benchmarks/bench_fuzzer_throughput.py`` — the full 600-step run;
* ``bench-smoke`` (``pyproject.toml`` script) / :func:`smoke_main` — a tiny
  step budget that asserts the caches are actually hitting (tier-2 CI);
* ``paranoid-smoke`` / :func:`paranoid_main` — a paranoid-mode run where
  every incremental compile is differentially checked against a
  from-scratch compile; any divergence raises.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import time
from pathlib import Path

#: Default step budget: the acceptance run of the ISSUE (600-step μCFuzz.s).
DEFAULT_STEPS = 600
DEFAULT_SEEDS = 40
DEFAULT_REPORT = "BENCH_throughput.json"

#: Every compile-pipeline stage any arm can hit.  Each arm's reported
#: ``stage_timings`` is zero-filled over this set so the per-arm schema is
#: uniform — an arm that never enters a stage reports 0.0 for it instead of
#: omitting the key (the historical asymmetry made cross-arm diffs fiddly).
STAGE_KEYS = (
    "lex",
    "parse",
    "sema",
    "frontend_incremental",
    "irgen",
    "opt",
    "backend",
    "session",
)


def _build_fuzzer(
    fuzzer_name: str,
    seeds: list[str],
    seed: int,
    use_cache: bool,
    incremental: bool = False,
    paranoid: bool = False,
    cache_maxsize: int | None = None,
    session: bool = False,
    fuse_passes: bool = False,
    flat_ir: bool = False,
    flat_native: bool = False,
    batch_compile: bool = False,
):
    import repro.mutators  # noqa: F401  (populate the registry)
    from repro.compiler.driver import Compiler, GCC_SIM
    from repro.fuzzing.mucfuzz import MuCFuzz
    from repro.muast.registry import global_registry

    compiler = Compiler(*GCC_SIM)
    mutators = (
        global_registry.unsupervised()
        if fuzzer_name == "uCFuzz.u"
        else global_registry.supervised()
    )
    return MuCFuzz(
        compiler,
        random.Random(seed),
        seeds,
        mutators,
        name=fuzzer_name,
        use_cache=use_cache,
        cache_maxsize=cache_maxsize,
        incremental=incremental,
        paranoid=paranoid,
        session=True if session else None,
        fuse_passes=fuse_passes,
        flat_ir=flat_ir,
        flat_native=flat_native,
        batch_compile=batch_compile,
    )


def _time_run(fuzzer, steps: int) -> dict:
    # GC pauses scale with total retained heap, which grows over the
    # process's lifetime — they would bill the later run for the earlier
    # run's garbage.  Collect up front, then keep GC out of the timed loop.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for _ in range(steps):
            fuzzer.step()
        elapsed = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    stats = fuzzer.stats_snapshot()
    profile = fuzzer.profile_snapshot()
    # Uniform per-arm schema: zero-fill the full stage-key set (an arm that
    # never entered a stage reports 0.0, not a missing key).
    observed = profile["stage_timings"]
    profile["stage_timings"] = dict(
        sorted({**{stage: 0.0 for stage in STAGE_KEYS}, **observed}.items())
    )
    return {
        "steps": steps,
        "seconds": round(elapsed, 4),
        # None (not a fake 0.0) when the clock resolution swallowed the
        # run — ratio code skips it instead of dividing by a lie.
        "steps_per_sec": round(steps / elapsed, 2) if elapsed > 0 else None,
        "final_coverage": len(fuzzer.coverage),
        "pool_size": len(fuzzer.pool),
        "stats": stats,
        "profile": profile,
    }


def measure_throughput(
    steps: int = DEFAULT_STEPS,
    fuzzer_name: str = "uCFuzz.s",
    n_seeds: int = DEFAULT_SEEDS,
    seed: int = 2024,
) -> dict:
    """Run the uncached through flat-native arms (six of them).

    All runs use the same RNG seed; neither caching, incremental
    compilation, the compile session, nor the flat IR (buffer passes or the
    fully buffer-native middle end) consumes fuzzer randomness (the batched
    step path draws per attempt lazily, in the sequential order), so they
    execute the identical step sequence and the comparison is
    apples-to-apples (also sanity-checked via final coverage and pool size,
    which must match exactly across all six arms).
    """
    from repro.fuzzing.seedgen import generate_seeds

    seeds = generate_seeds(n_seeds)
    report: dict = {"fuzzer": fuzzer_name, "seed": seed, "n_seeds": n_seeds}
    variants = (
        # (label, use_cache, incremental, session, flat_ir, flat_native)
        ("uncached", False, False, False, False, False),
        ("cached", True, False, False, False, False),
        ("incremental", True, True, False, False, False),
        ("session", True, True, True, False, False),
        ("flat_ir", True, True, True, True, False),
        ("flat_native", True, True, True, True, True),
    )
    for label, use_cache, incremental, session, flat_ir, flat_native in variants:
        fuzzer = _build_fuzzer(
            fuzzer_name, seeds, seed, use_cache, incremental=incremental,
            session=session, fuse_passes=session, flat_ir=flat_ir,
            flat_native=flat_native, batch_compile=session,
        )
        report[label] = _time_run(fuzzer, steps)
    for label in ("cached", "incremental", "session", "flat_ir", "flat_native"):
        assert (
            report[label]["final_coverage"]
            == report["uncached"]["final_coverage"]
        ), f"{label} run changed fuzzing coverage"
        assert (
            report[label]["pool_size"] == report["uncached"]["pool_size"]
        ), f"{label} run changed the mutant pool"
    uncached_sps = report["uncached"]["steps_per_sec"]

    def _ratio(a: "float | None", b: "float | None") -> "float | None":
        # None propagates: a timing too small to measure produces no ratio.
        if a is None or not b:
            return None
        return round(a / b, 3)

    report["speedup"] = _ratio(report["cached"]["steps_per_sec"], uncached_sps)
    report["speedup_incremental"] = _ratio(
        report["incremental"]["steps_per_sec"], uncached_sps
    )
    report["speedup_incremental_vs_cached"] = _ratio(
        report["incremental"]["steps_per_sec"],
        report["cached"]["steps_per_sec"],
    )
    report["speedup_session"] = _ratio(
        report["session"]["steps_per_sec"], uncached_sps
    )
    report["speedup_session_vs_incremental"] = _ratio(
        report["session"]["steps_per_sec"],
        report["incremental"]["steps_per_sec"],
    )
    report["speedup_flat_ir"] = _ratio(
        report["flat_ir"]["steps_per_sec"], uncached_sps
    )
    report["speedup_flat_ir_vs_session"] = _ratio(
        report["flat_ir"]["steps_per_sec"],
        report["session"]["steps_per_sec"],
    )
    report["speedup_flat_native"] = _ratio(
        report["flat_native"]["steps_per_sec"], uncached_sps
    )
    report["speedup_flat_native_vs_flat_ir"] = _ratio(
        report["flat_native"]["steps_per_sec"],
        report["flat_ir"]["steps_per_sec"],
    )
    report["cache_hit_rate"] = report["cached"]["stats"].get("cache_hit_rate", 0.0)
    inc_stats = report["incremental"]["stats"]
    report["incremental_hit_rate"] = _ratio(
        inc_stats.get("cache_incremental_hits", 0),
        inc_stats.get("cache_incremental_hits", 0)
        + inc_stats.get("cache_incremental_fallbacks", 0),
    )
    report["session_hit_rate"] = report["session"]["stats"].get(
        "middle_session_hit_rate", 0.0
    )
    report["stage_timings"] = report["incremental"]["profile"]["stage_timings"]
    return report


def write_report(report: dict, path: str | Path = DEFAULT_REPORT) -> Path:
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def run(steps: int, output: str | Path, fuzzer_name: str = "uCFuzz.s") -> dict:
    report = measure_throughput(steps=steps, fuzzer_name=fuzzer_name)
    path = write_report(report, output)
    print(
        f"{report['fuzzer']}: {report['uncached']['steps_per_sec']} -> "
        f"{report['cached']['steps_per_sec']} (cached) -> "
        f"{report['incremental']['steps_per_sec']} (incremental) -> "
        f"{report['session']['steps_per_sec']} (session+fused) -> "
        f"{report['flat_ir']['steps_per_sec']} (flat-ir) -> "
        f"{report['flat_native']['steps_per_sec']} (flat-native) steps/sec "
        f"(flat-native speedup {report['speedup_flat_native']}x over "
        f"uncached, {report['speedup_flat_native_vs_flat_ir']}x over "
        f"flat-ir, flat decodes "
        f"{report['flat_native']['stats'].get('flat_decodes', 0)}, "
        f"cache hit-rate {report['cache_hit_rate']:.2%}, "
        f"session hit-rate {report['session_hit_rate']:.2%}) -> {path}"
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument("--fuzzer", default="uCFuzz.s", choices=["uCFuzz.s", "uCFuzz.u"])
    parser.add_argument("--output", default=DEFAULT_REPORT)
    args = parser.parse_args(argv)
    run(args.steps, args.output, args.fuzzer)
    return 0


def smoke_main(argv: list[str] | None = None) -> int:
    """Tiny-budget CI smoke: the caches must be hitting on the hot path."""
    parser = argparse.ArgumentParser(description="bench-smoke")
    parser.add_argument("--steps", type=int, default=40)
    parser.add_argument("--output", default=DEFAULT_REPORT)
    args = parser.parse_args(argv)
    report = run(args.steps, args.output)
    if report["cache_hit_rate"] <= 0:
        raise SystemExit("bench-smoke: cache hit-rate is 0 on the hot path")
    inc_stats = report["incremental"]["stats"]
    if inc_stats.get("cache_incremental_hits", 0) <= 0:
        raise SystemExit("bench-smoke: incremental front end never hit")
    sess_stats = report["session"]["stats"]
    if sess_stats.get("middle_session_hits", 0) <= 0:
        raise SystemExit("bench-smoke: the compile session never hit")
    # The session arm must change no observable: same coverage and pool as
    # the incremental arm (both already == uncached via measure_throughput).
    if (
        report["session"]["final_coverage"]
        != report["incremental"]["final_coverage"]
        or report["session"]["pool_size"] != report["incremental"]["pool_size"]
    ):
        raise SystemExit("bench-smoke: session arm diverged from incremental")
    if report["flat_ir"]["stats"].get("middle_session_hits", 0) <= 0:
        raise SystemExit("bench-smoke: the flat-ir arm's session never hit")
    flat_native_stats = report["flat_native"]["stats"]
    if flat_native_stats.get("middle_session_hits", 0) <= 0:
        raise SystemExit(
            "bench-smoke: the flat-native arm's session never hit"
        )
    # The bridge-elimination contract: a flat-native run never decodes a
    # buffer back to object IR on the hot path (encodes would mean irgen
    # fell back to object emission somewhere).
    if flat_native_stats.get("flat_decodes", 0) != 0:
        raise SystemExit(
            "bench-smoke: the flat-native arm crossed the IR bridge "
            f"({flat_native_stats.get('flat_decodes')} decodes)"
        )
    # Arm ordering: each optimization layer must not make the pipeline
    # slower.  A tiny step budget is noisy, so the gate is a generous slack
    # factor, not strict monotonicity — it catches a de-optimized layer
    # (2x regressions), not jitter — and only applies once the budget is
    # large enough to amortize session/cache warmup (below ~40 steps the
    # memoizing arms legitimately trail while their stores are cold).
    slack = 0.7
    order = (
        "uncached", "cached", "incremental", "session", "flat_ir",
        "flat_native",
    )
    rates = [report[label]["steps_per_sec"] for label in order]
    if args.steps >= 40 and all(rate is not None for rate in rates):
        for i in range(1, len(order)):
            if rates[i] < rates[i - 1] * slack:
                raise SystemExit(
                    f"bench-smoke: {order[i]} arm ({rates[i]}/s) fell below "
                    f"{slack}x of the {order[i - 1]} arm ({rates[i - 1]}/s)"
                )
    return 0


def paranoid_main(argv: list[str] | None = None) -> int:
    """Differential smoke: every incremental compile is cross-checked.

    Runs μCFuzz with ``paranoid=True`` — each cached/incremental compile is
    recompiled from scratch and compared field-for-field; any divergence
    raises :class:`~repro.cast.incremental.IncrementalDivergence` and fails
    the run.  Gating is on zero divergences, not on throughput.
    """
    parser = argparse.ArgumentParser(description="paranoid-smoke")
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--session", action="store_true",
        help="run with a CompileSession (cross-step middle-end memoization)",
    )
    parser.add_argument(
        "--fused", action="store_true",
        help="route local optimization through the fused single-walk pass",
    )
    parser.add_argument(
        "--flat-ir", action="store_true",
        help="run the optimizer's local rounds over the flat slotted IR "
        "(every paranoid check then doubles as a flat-vs-object "
        "differential)",
    )
    parser.add_argument(
        "--flat-native", action="store_true",
        help="keep the whole middle end buffer-native (buffer-direct "
        "irgen, flat inlining, buffer-served journal replay); every "
        "paranoid check then differentials the flat-native pipeline "
        "against a cold object-IR compile",
    )
    args = parser.parse_args(argv)
    from repro.fuzzing.seedgen import generate_seeds

    seeds = generate_seeds(DEFAULT_SEEDS)
    fuzzer = _build_fuzzer(
        "uCFuzz.s", seeds, args.seed, True, incremental=True, paranoid=True,
        session=args.session, fuse_passes=args.fused, flat_ir=args.flat_ir,
        flat_native=args.flat_native, batch_compile=args.session,
    )
    for _ in range(args.steps):
        fuzzer.step()  # IncrementalDivergence propagates and fails the job
    stats = fuzzer.stats_snapshot()
    inc_hits = stats.get("cache_incremental_hits", 0)
    middle_hits = stats.get("middle_incremental_hits", 0)
    session_hits = stats.get("middle_session_hits", 0)
    mode = "session+fused" if args.session else "incremental"
    if args.flat_native:
        mode = "flat-native+" + mode
    elif args.flat_ir:
        mode = "flat-ir+" + mode
    print(
        f"paranoid-smoke[{mode}]: {args.steps} steps, 0 divergences, "
        f"{stats.get('cache_paranoid_checks', 0)} front-end checks, "
        f"{inc_hits} incremental front ends, "
        f"{middle_hits} middle-end replays, "
        f"{session_hits} session replays"
    )
    if inc_hits <= 0:
        raise SystemExit(
            "paranoid-smoke: the incremental front end was never exercised"
        )
    if args.session:
        if session_hits <= 0:
            raise SystemExit(
                "paranoid-smoke: the compile session was never exercised"
            )
    elif middle_hits <= 0:
        raise SystemExit(
            "paranoid-smoke: the incremental middle end was never exercised"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the bench script
    raise SystemExit(main())
