"""Fuzzing-throughput measurement: steps/sec with the cache on vs. off.

The perf contract of the front-end cache is measured here: the same μCFuzz
run (same compiler, seeds, RNG seed — hence an identical step sequence) is
executed uncached and cached in one process, and the steps/sec ratio plus
the cache hit-rate are written to ``BENCH_throughput.json`` so successive
PRs accumulate a perf trajectory.

Entry points:

* ``python benchmarks/bench_fuzzer_throughput.py`` — the full 600-step run;
* ``bench-smoke`` (``pyproject.toml`` script) / :func:`smoke_main` — a tiny
  step budget that asserts the cache is actually hitting (tier-2 CI smoke).
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import time
from pathlib import Path

#: Default step budget: the acceptance run of the ISSUE (600-step μCFuzz.s).
DEFAULT_STEPS = 600
DEFAULT_SEEDS = 40
DEFAULT_REPORT = "BENCH_throughput.json"


def _build_fuzzer(fuzzer_name: str, seeds: list[str], seed: int, use_cache: bool):
    import repro.mutators  # noqa: F401  (populate the registry)
    from repro.compiler.driver import Compiler, GCC_SIM
    from repro.fuzzing.mucfuzz import MuCFuzz
    from repro.muast.registry import global_registry

    compiler = Compiler(*GCC_SIM)
    mutators = (
        global_registry.unsupervised()
        if fuzzer_name == "uCFuzz.u"
        else global_registry.supervised()
    )
    return MuCFuzz(
        compiler,
        random.Random(seed),
        seeds,
        mutators,
        name=fuzzer_name,
        use_cache=use_cache,
    )


def _time_run(fuzzer, steps: int) -> dict:
    # GC pauses scale with total retained heap, which grows over the
    # process's lifetime — they would bill the later run for the earlier
    # run's garbage.  Collect up front, then keep GC out of the timed loop.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for _ in range(steps):
            fuzzer.step()
        elapsed = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    stats = fuzzer.stats_snapshot()
    return {
        "steps": steps,
        "seconds": round(elapsed, 4),
        "steps_per_sec": round(steps / elapsed, 2) if elapsed > 0 else 0.0,
        "final_coverage": len(fuzzer.coverage),
        "pool_size": len(fuzzer.pool),
        "stats": stats,
    }


def measure_throughput(
    steps: int = DEFAULT_STEPS,
    fuzzer_name: str = "uCFuzz.s",
    n_seeds: int = DEFAULT_SEEDS,
    seed: int = 2024,
) -> dict:
    """Run the cache-off and cache-on variants and compare steps/sec.

    Both runs use the same RNG seed; caching does not consume fuzzer
    randomness, so they execute the identical step sequence and the
    comparison is apples-to-apples (also sanity-checked via coverage).
    """
    from repro.fuzzing.seedgen import generate_seeds

    seeds = generate_seeds(n_seeds)
    report: dict = {"fuzzer": fuzzer_name, "seed": seed, "n_seeds": n_seeds}
    for label, use_cache in (("uncached", False), ("cached", True)):
        fuzzer = _build_fuzzer(fuzzer_name, seeds, seed, use_cache)
        report[label] = _time_run(fuzzer, steps)
    assert (
        report["cached"]["final_coverage"] == report["uncached"]["final_coverage"]
    ), "cache changed fuzzing behaviour"
    uncached_sps = report["uncached"]["steps_per_sec"]
    report["speedup"] = (
        round(report["cached"]["steps_per_sec"] / uncached_sps, 3)
        if uncached_sps
        else 0.0
    )
    report["cache_hit_rate"] = report["cached"]["stats"].get("cache_hit_rate", 0.0)
    return report


def write_report(report: dict, path: str | Path = DEFAULT_REPORT) -> Path:
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def run(steps: int, output: str | Path, fuzzer_name: str = "uCFuzz.s") -> dict:
    report = measure_throughput(steps=steps, fuzzer_name=fuzzer_name)
    path = write_report(report, output)
    print(
        f"{report['fuzzer']}: {report['uncached']['steps_per_sec']} -> "
        f"{report['cached']['steps_per_sec']} steps/sec "
        f"(speedup {report['speedup']}x, "
        f"cache hit-rate {report['cache_hit_rate']:.2%}) -> {path}"
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument("--fuzzer", default="uCFuzz.s", choices=["uCFuzz.s", "uCFuzz.u"])
    parser.add_argument("--output", default=DEFAULT_REPORT)
    args = parser.parse_args(argv)
    run(args.steps, args.output, args.fuzzer)
    return 0


def smoke_main(argv: list[str] | None = None) -> int:
    """Tiny-budget CI smoke: the cache must be hitting on the hot path."""
    parser = argparse.ArgumentParser(description="bench-smoke")
    parser.add_argument("--steps", type=int, default=40)
    parser.add_argument("--output", default=DEFAULT_REPORT)
    args = parser.parse_args(argv)
    report = run(args.steps, args.output)
    if report["cache_hit_rate"] <= 0:
        raise SystemExit("bench-smoke: cache hit-rate is 0 on the hot path")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the bench script
    raise SystemExit(main())
