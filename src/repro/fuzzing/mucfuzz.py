"""μCFuzz: the paper's micro coverage-guided fuzzer (Algorithm 1).

Each iteration picks a random pool program, applies mutators in a random
order, and keeps the first mutant that covers a new branch.  No Havoc, no
mopt, no fork server, no pool culling — deliberately simple (§3.4).

Performance: all mutation attempts of one iteration target the same parent
program, so the front end (lex/parse/sema) of the parent is computed once
and shared through a :class:`~repro.cast.cache.FrontendCache`; the same
cache backs ``Compiler.compile``'s front-end stage for mutants and no-op
recompiles.  Pass ``use_cache=False`` to measure the uncached baseline.
"""

from __future__ import annotations

import random

from repro.cast.cache import FrontendCache
from repro.compiler.driver import Compiler
from repro.compiler.session import CompileSession
from repro.muast.mutator import MutatorCrash, MutatorHang, apply_mutator
from repro.muast.registry import MutatorInfo
from repro.resilience.circuit import MutatorQuarantine
from repro.fuzzing.base import CoverageGuidedFuzzer, StepResult
from repro.fuzzing.schedule import MutatorScheduler, zero_mutator_stats

#: How many mutators of the shuffled list one iteration may try before
#: giving up (a timeslice; Algorithm 1's inner loop is unbounded).
MAX_TRIES_PER_ITERATION = 6


class MuCFuzz(CoverageGuidedFuzzer):
    """μCFuzz.s / μCFuzz.u, depending on the mutator set it is given."""

    step_cost = 0.086  # ≈1M mutants / 24 h, matching GrayC-class throughput

    def __init__(
        self,
        compiler: Compiler,
        rng: random.Random,
        seeds: list[str],
        mutators: list[MutatorInfo],
        name: str = "uCFuzz",
        *,
        cache: FrontendCache | None = None,
        use_cache: bool = True,
        cache_maxsize: int | None = None,
        incremental: bool = True,
        paranoid: bool = False,
        quarantine: MutatorQuarantine | None = None,
        session: "CompileSession | bool | None" = None,
        fuse_passes: bool = False,
        flat_ir: bool = False,
        flat_native: bool = False,
        batch_compile: bool = False,
        scheduler: MutatorScheduler | None = None,
        mutator_stats: bool | None = None,
    ) -> None:
        super().__init__(compiler, rng, seeds)
        self.mutators = list(mutators)
        self.name = name
        # Cross-step middle-end memoization: ``True`` builds a private
        # per-fuzzer session (one per campaign cell), an explicit
        # ``CompileSession`` shares one, ``False`` force-disables whatever
        # the compiler was constructed with, and ``None`` leaves the
        # compiler's own ``session`` attribute alone.
        if session is True:
            compiler.session = CompileSession()
        elif session is False:
            compiler.session = None
        elif session is not None:
            compiler.session = session
        self.session = compiler.session
        if fuse_passes:
            compiler.fuse_passes = True
        if flat_ir:
            compiler.flat_ir = True
        if flat_native:
            # Buffer-native middle end; implies the flat pass set.
            compiler.flat_native = True
            compiler.flat_ir = True
        #: Compile each step's mutation attempts as one batch against the
        #: session (parent materialized once); requires a session.
        self.batch_compile = batch_compile and self.session is not None
        if cache is not None:
            self.cache = cache
        elif use_cache:
            self.cache = (
                FrontendCache(maxsize=cache_maxsize)
                if cache_maxsize is not None
                else FrontendCache()
            )
        else:
            self.cache = None
        #: Feed mutant edit scripts to the compiler for dirty-region
        #: front-end reuse and function-granular middle-end replay.
        self.incremental = incremental and self.cache is not None
        #: Cross-check every cached/incremental compile against a full one.
        self.paranoid = paranoid
        #: Evolutionary outer loop: a seeded fitness-proportional bandit
        #: that reorders each step's mutator try-list from the per-mutator
        #: yield stats.  ``None`` (the default) keeps the paper's uniform
        #: Algorithm 1 ordering byte-for-byte.
        self.scheduler = scheduler
        if mutator_stats is None:
            mutator_stats = scheduler is not None
        elif not mutator_stats and scheduler is not None:
            raise ValueError("a MutatorScheduler requires mutator_stats")
        if scheduler is not None and quarantine is None:
            # Population management (retirement) lives on the quarantine;
            # threshold=None keeps the crash breaker itself disabled.
            quarantine = MutatorQuarantine(threshold=None)
        self.quarantine = quarantine
        self.stats.update(
            {
                "steps": 0,
                "attempts": 0,
                "mutator_failures": 0,
                "unchanged": 0,
            }
        )
        if quarantine is not None:
            # Zero-filled up front: a cell that never skips still carries
            # the key, so grid merge_stats summaries are schema-uniform.
            self.stats.setdefault("quarantine_skips", 0)
        if mutator_stats:
            self.stats["mutator_stats"] = zero_mutator_stats(
                info.name for info in self.mutators
            )
        if scheduler is not None:
            scheduler.attach(self.stats["mutator_stats"], quarantine)

    def stats_snapshot(self) -> dict:
        if self.session is not None:
            self.stats.update(self.session.stats())
        self.stats["fused_pass_runs"] = self.compiler.fused_pass_runs
        bridge = getattr(self.compiler, "bridge", None)
        if bridge is not None and getattr(self.compiler, "flat_ir", False):
            # Object<->buffer bridge crossings: a flat-native campaign at
            # steady state holds both at zero.  Only surfaced for the flat
            # arms so non-flat cells keep their pinned stats schema.
            self.stats["flat_encodes"] = bridge.encodes
            self.stats["flat_decodes"] = bridge.decodes
        snap = super().stats_snapshot()
        if self.cache is not None:
            snap.update(self.cache.stats())
        snap["middle_incremental_hits"] = self.compiler.middle_incremental_hits
        snap["middle_incremental_fallbacks"] = (
            self.compiler.middle_incremental_fallbacks
        )
        steps = snap.get("steps", 0)
        snap["attempts_per_step"] = snap["attempts"] / steps if steps else 0.0
        return snap

    def step(self) -> StepResult:
        self.stats["steps"] += 1
        cache_before = (
            (self.cache.hits, self.cache.misses) if self.cache is not None else (0, 0)
        )
        attempts_before = self.stats["attempts"]
        events_before = (
            len(self.quarantine.events) if self.quarantine is not None else 0
        )
        retired_before = (
            len(self.quarantine.retirements)
            if self.quarantine is not None
            else 0
        )
        parent = self.pool.random_choice(self.rng)
        order = list(self.mutators)
        # The uniform shuffle always runs (same fuzzer-RNG draws with the
        # scheduler on or off); the scheduler then reorders the shuffled
        # list using only its own seeded RNG — RNG-neutral by construction.
        self.rng.shuffle(order)
        if self.scheduler is not None:
            order = self.scheduler.order(order)
        if self.batch_compile:
            return self._step_batched(
                parent, order, attempts_before, cache_before, events_before,
                retired_before,
            )
        last: StepResult | None = None
        for info in order[:MAX_TRIES_PER_ITERATION]:
            if self.quarantine is not None and not self.quarantine.allows(
                info.name
            ):
                self.stats["quarantine_skips"] += 1
                continue
            self.stats["attempts"] += 1
            mutated = self._mutate(parent.text, info)
            if mutated is None or mutated[0] == parent.text:
                self.stats["unchanged"] += 1
                self.record_mutator_yield(info.name)
                continue
            mutant, edits = mutated
            result = self.compiler.compile(
                mutant,
                cache=self.cache,
                edits_from=(parent.text, edits) if self.incremental else None,
                paranoid=self.paranoid,
            )
            kept = self.keep_if_new_coverage(mutant, result, parent, info.name)
            covered_before = len(self.coverage)
            self.coverage.merge(result.coverage)
            self.record_mutator_yield(
                info.name,
                changed=True,
                compiled=result.ok,
                crashed=result.crashed,
                coverage_gain=len(self.coverage) - covered_before,
            )
            last = StepResult(mutant, result, kept=kept, mutator=info.name)
            if kept or result.crashed:
                return self._finish(
                    last, attempts_before, cache_before, events_before,
                    retired_before,
                )
        if last is not None:
            return self._finish(
                last, attempts_before, cache_before, events_before,
                retired_before,
            )
        # Nothing mutated this round; recompile the parent (a no-op round).
        result = self.compiler.compile(
            parent.text, cache=self.cache, paranoid=self.paranoid
        )
        self.coverage.merge(result.coverage)
        return self._finish(
            StepResult(parent.text, result, kept=False, mutator=None),
            attempts_before,
            cache_before,
            events_before,
            retired_before,
        )

    def _step_batched(
        self,
        parent,
        order: list[MutatorInfo],
        attempts_before: int,
        cache_before: tuple[int, int],
        events_before: int,
        retired_before: int = 0,
    ) -> StepResult:
        """One iteration routed through :meth:`Compiler.compile_batch`.

        Behaviourally identical to the sequential loop in :meth:`step` —
        same RNG draw order (the request generator is lazy, so a mutator
        only consumes entropy when the batch actually reaches it), same
        keep/merge bookkeeping, same early exit on a kept or crashing
        mutant.  The only addition is that ``compile_batch`` materializes
        the parent's session record once up front, so every attempt's
        clean functions replay from the session.
        """
        state: dict = {}

        def requests():
            for info in order[:MAX_TRIES_PER_ITERATION]:
                if self.quarantine is not None and not self.quarantine.allows(
                    info.name
                ):
                    self.stats["quarantine_skips"] += 1
                    continue
                self.stats["attempts"] += 1
                mutated = self._mutate(parent.text, info)
                if mutated is None or mutated[0] == parent.text:
                    self.stats["unchanged"] += 1
                    self.record_mutator_yield(info.name)
                    continue
                mutant, edits = mutated
                state["pending"] = (mutant, info)
                yield mutant, (
                    (parent.text, edits) if self.incremental else None
                )

        def until(result) -> bool:
            mutant, info = state.pop("pending")
            kept = self.keep_if_new_coverage(mutant, result, parent, info.name)
            covered_before = len(self.coverage)
            self.coverage.merge(result.coverage)
            self.record_mutator_yield(
                info.name,
                changed=True,
                compiled=result.ok,
                crashed=result.crashed,
                coverage_gain=len(self.coverage) - covered_before,
            )
            state["last"] = StepResult(
                mutant, result, kept=kept, mutator=info.name
            )
            return kept or result.crashed

        self.compiler.compile_batch(
            requests(), cache=self.cache, paranoid=self.paranoid, until=until
        )
        last = state.get("last")
        if last is not None:
            return self._finish(
                last, attempts_before, cache_before, events_before,
                retired_before,
            )
        result = self.compiler.compile(
            parent.text, cache=self.cache, paranoid=self.paranoid
        )
        self.coverage.merge(result.coverage)
        return self._finish(
            StepResult(parent.text, result, kept=False, mutator=None),
            attempts_before,
            cache_before,
            events_before,
            retired_before,
        )

    def _finish(
        self,
        step: StepResult,
        attempts_before: int,
        cache_before: tuple[int, int],
        events_before: int = 0,
        retired_before: int = 0,
    ) -> StepResult:
        step.stats = {"attempts": self.stats["attempts"] - attempts_before}
        if self.cache is not None:
            step.stats["cache_hits"] = self.cache.hits - cache_before[0]
            step.stats["cache_misses"] = self.cache.misses - cache_before[1]
        if self.quarantine is not None:
            step.stats["quarantined"] = [
                event.mutator
                for event in self.quarantine.events[events_before:]
            ]
            if self.scheduler is not None:
                step.stats["retired"] = [
                    event.mutator
                    for event in self.quarantine.retirements[retired_before:]
                ]
        return step

    def _mutate(self, text: str, info: MutatorInfo) -> tuple[str, tuple] | None:
        """The mutated text plus its edit script, or None on failure/no-op."""
        mutator = info.create(random.Random(self.rng.randrange(1 << 62)))
        try:
            with self.telemetry.span("mutate", mutator=info.name):
                outcome = apply_mutator(mutator, text, cache=self.cache)
        except (MutatorCrash, MutatorHang, RecursionError) as exc:
            self.stats["mutator_failures"] += 1
            if self.quarantine is not None and self.quarantine.record_failure(
                info.name, type(exc).__name__
            ):
                self.telemetry.emit(
                    "quarantine", info.name, reason=type(exc).__name__
                )
            return None
        if not outcome.changed:
            # A no-op application is not a success: it must not reset the
            # breaker's consecutive-failure streak, or a mutator that
            # crashes intermittently but otherwise only no-ops would dodge
            # quarantine forever.
            return None
        if self.quarantine is not None:
            self.quarantine.record_success(info.name)
        return outcome.mutant_text, outcome.edits
