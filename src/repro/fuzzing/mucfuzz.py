"""μCFuzz: the paper's micro coverage-guided fuzzer (Algorithm 1).

Each iteration picks a random pool program, applies mutators in a random
order, and keeps the first mutant that covers a new branch.  No Havoc, no
mopt, no fork server, no pool culling — deliberately simple (§3.4).
"""

from __future__ import annotations

import random

from repro.compiler.driver import Compiler
from repro.muast.mutator import MutatorCrash, MutatorHang, apply_mutator
from repro.muast.registry import MutatorInfo
from repro.fuzzing.base import CoverageGuidedFuzzer, StepResult

#: How many mutators of the shuffled list one iteration may try before
#: giving up (a timeslice; Algorithm 1's inner loop is unbounded).
MAX_TRIES_PER_ITERATION = 6


class MuCFuzz(CoverageGuidedFuzzer):
    """μCFuzz.s / μCFuzz.u, depending on the mutator set it is given."""

    step_cost = 0.086  # ≈1M mutants / 24 h, matching GrayC-class throughput

    def __init__(
        self,
        compiler: Compiler,
        rng: random.Random,
        seeds: list[str],
        mutators: list[MutatorInfo],
        name: str = "uCFuzz",
    ) -> None:
        super().__init__(compiler, rng, seeds)
        self.mutators = list(mutators)
        self.name = name
        self.stats = {"attempts": 0, "mutator_failures": 0, "unchanged": 0}

    def step(self) -> StepResult:
        parent = self.pool.random_choice(self.rng)
        order = list(self.mutators)
        self.rng.shuffle(order)
        last: StepResult | None = None
        for info in order[:MAX_TRIES_PER_ITERATION]:
            self.stats["attempts"] += 1
            mutant = self._mutate(parent.text, info)
            if mutant is None or mutant == parent.text:
                self.stats["unchanged"] += 1
                continue
            result = self.compiler.compile(mutant)
            kept = self.keep_if_new_coverage(mutant, result, parent, info.name)
            self.coverage.merge(result.coverage)
            last = StepResult(mutant, result, kept=kept, mutator=info.name)
            if kept or result.crashed:
                return last
        if last is not None:
            return last
        # Nothing mutated this round; recompile the parent (a no-op round).
        result = self.compiler.compile(parent.text)
        self.coverage.merge(result.coverage)
        return StepResult(parent.text, result, kept=False, mutator=None)

    def _mutate(self, text: str, info: MutatorInfo) -> str | None:
        mutator = info.create(random.Random(self.rng.randrange(1 << 62)))
        try:
            outcome = apply_mutator(mutator, text)
        except (MutatorCrash, MutatorHang, RecursionError):
            self.stats["mutator_failures"] += 1
            return None
        if not outcome.changed:
            return None
        return outcome.mutant_text
