"""A policy-driven random C program generator.

Three consumers share this substrate with different policies:

* :mod:`repro.fuzzing.seedgen` — compiler-test-suite style seeds (feature
  rich, moderate size);
* the Csmith baseline — UB-free expression-heavy programs (safe wrappers
  around division, shifts kept narrow), mirroring Csmith's design goal;
* the YARPGen baseline — loop- and arithmetic-focused programs per its
  loop-optimization generation policies.

Generated programs are compilable by construction: every expression only
references in-scope variables with compatible types.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class GenPolicy:
    max_helpers: int = 3
    max_stmts: int = 10
    max_depth: int = 3
    max_expr_depth: int = 3
    use_goto: bool = True
    use_switch: bool = True
    use_struct: bool = True
    use_arrays: bool = True
    use_strings: bool = True
    use_complex: bool = False
    #: Guard divisions/shifts so no UB is possible (Csmith style).
    safe_math: bool = True
    #: Bias heavily towards counting loops over global arrays (YARPGen).
    loop_focus: bool = False
    int_types: tuple[str, ...] = ("int", "unsigned int", "long", "char", "short")
    print_result: bool = True


@dataclass
class _Var:
    name: str
    ctype: str
    is_array: bool = False
    array_len: int = 0


@dataclass
class _Scope:
    vars: list[_Var] = field(default_factory=list)


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.depth + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class ProgramGenerator:
    """Generates one random, compilable C program per ``generate`` call."""

    def __init__(self, rng: random.Random, policy: GenPolicy | None = None) -> None:
        self.rng = rng
        self.policy = policy or GenPolicy()
        self._counter = 0

    # ------------------------------------------------------------------

    def generate(self) -> str:
        rng, pol = self.rng, self.policy
        self._counter = 0
        out = _Emitter()
        self.globals: list[_Var] = []
        self.helpers: list[tuple[str, int]] = []  # (name, arity)

        n_globals = rng.randint(2, 5)
        for _ in range(n_globals):
            self._emit_global(out)
        if pol.use_struct and rng.random() < 0.4:
            out.emit("struct rec { int a; int b; long c; };")
            out.emit("struct rec shared = { 1, 2, 3 };")
        if pol.use_complex and rng.random() < 0.3:
            out.emit("_Complex double cplx;")

        n_helpers = rng.randint(1, pol.max_helpers)
        for _ in range(n_helpers):
            self._emit_helper(out)

        self._emit_main(out)
        return out.text()

    # ------------------------------------------------------------------

    def _name(self, base: str) -> str:
        self._counter += 1
        return f"{base}{self._counter}"

    def _emit_global(self, out: _Emitter) -> None:
        rng, pol = self.rng, self.policy
        ctype = rng.choice(pol.int_types + ("double",) if rng.random() < 0.2 else pol.int_types)
        name = self._name("g")
        if pol.use_arrays and rng.random() < (0.55 if pol.loop_focus else 0.3):
            length = rng.choice([4, 6, 8, 16, 32, 64])
            out.emit(f"{ctype} {name}[{length}];")
            self.globals.append(_Var(name, ctype, True, length))
            return
        init = ""
        if rng.random() < 0.6:
            if ctype == "double":
                init = f" = {rng.randint(0, 99)}.{rng.randint(0, 9)}"
            else:
                init = f" = {rng.randint(-64, 1024)}"
        storage = "static " if rng.random() < 0.3 else ""
        out.emit(f"{storage}{ctype} {name}{init};")
        self.globals.append(_Var(name, ctype))

    def _emit_helper(self, out: _Emitter) -> None:
        rng = self.rng
        name = self._name("fn")
        arity = rng.randint(1, 3)
        params = [_Var(f"p{i}", "int") for i in range(arity)]
        sig = ", ".join(f"int {p.name}" for p in params)
        out.emit(f"int {name}({sig}) {{")
        out.depth += 1
        scope = _Scope(list(params) + [g for g in self.globals if not g.is_array])
        n = rng.randint(2, max(3, self.policy.max_stmts // 2))
        for _ in range(n):
            self._emit_stmt(out, scope, depth=1)
        out.emit(f"return {self._int_expr(scope, 0)};")
        out.depth -= 1
        out.emit("}")
        self.helpers.append((name, arity))

    def _emit_main(self, out: _Emitter) -> None:
        rng, pol = self.rng, self.policy
        out.emit("int main(void) {")
        out.depth += 1
        scope = _Scope([g for g in self.globals if not g.is_array])
        n_locals = rng.randint(2, 4)
        for _ in range(n_locals):
            name = self._name("v")
            ctype = rng.choice(pol.int_types)
            out.emit(f"{ctype} {name} = {rng.randint(-16, 128)};")
            scope.vars.append(_Var(name, ctype))
        n = rng.randint(3, pol.max_stmts)
        for _ in range(n):
            self._emit_stmt(out, scope, depth=1)
        if pol.print_result and scope.vars:
            v = rng.choice(scope.vars)
            fmt = "%f" if v.ctype == "double" else "%d"
            cast = "(double)" if v.ctype == "double" else "(int)"
            out.emit(f'printf("{fmt}\\n", {cast}{v.name});')
        out.emit(f"return {rng.randint(0, 3)};")
        out.depth -= 1
        out.emit("}")

    # -- statements --------------------------------------------------------

    def _emit_stmt(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        rng, pol = self.rng, self.policy
        choices = ["assign", "assign", "compound_assign", "if", "decl"]
        if depth < pol.max_depth:
            choices += ["for", "if"]
            if not pol.loop_focus:
                choices += ["while"]
            else:
                choices += ["for", "for"]
            if pol.use_switch:
                choices.append("switch")
        if self.helpers:
            choices.append("call")
        if pol.use_arrays and any(g.is_array for g in self.globals):
            choices += ["array_store", "array_store" if pol.loop_focus else "assign"]
        if pol.use_goto and depth == 1 and rng.random() < 0.15:
            choices.append("goto_fwd")
        kind = rng.choice(choices)
        emit = getattr(self, f"_stmt_{kind}")
        emit(out, scope, depth)

    def _stmt_decl(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        name = self._name("t")
        ctype = self.rng.choice(self.policy.int_types)
        out.emit(f"{ctype} {name} = {self._int_expr(scope, 0)};")
        scope.vars.append(_Var(name, ctype))

    def _stmt_assign(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        target = self._pick_int_var(scope)
        if target is None:
            self._stmt_decl(out, scope, depth)
            return
        expr = self._int_expr(scope, 0)
        if expr == target.name:
            expr = f"({expr} + 2)"
        out.emit(f"{target.name} = {expr};")

    def _stmt_compound_assign(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        target = self._pick_int_var(scope)
        if target is None:
            return
        op = self.rng.choice(["+=", "-=", "*=", "^=", "|=", "&="])
        out.emit(f"{target.name} {op} {self._int_expr(scope, 1)};")

    def _stmt_if(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        out.emit(f"if ({self._cond_expr(scope)}) {{")
        out.depth += 1
        inner = _Scope(list(scope.vars))
        self._emit_stmt(out, inner, depth + 1)
        if self.rng.random() < 0.5:
            self._emit_stmt(out, inner, depth + 1)
        out.depth -= 1
        if self.rng.random() < 0.5:
            out.emit("} else {")
            out.depth += 1
            inner_else = _Scope(list(scope.vars))
            self._emit_stmt(out, inner_else, depth + 1)
            out.depth -= 1
        out.emit("}")

    def _stmt_for(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        i = self._name("i")
        bound = self.rng.choice([4, 8, 16, 32, 64])
        out.emit(f"int {i};")
        out.emit(f"for ({i} = 0; {i} < {bound}; {i}++) {{")
        out.depth += 1
        inner = _Scope(list(scope.vars) + [_Var(i, "int")])
        if self.policy.loop_focus and any(g.is_array for g in self.globals):
            arr = self.rng.choice([g for g in self.globals if g.is_array])
            idx = f"{i} % {arr.array_len}" if arr.array_len < bound else i
            out.emit(f"{arr.name}[{idx}] += {self._int_expr(inner, 1)};")
        self._emit_stmt(out, inner, depth + 1)
        out.depth -= 1
        out.emit("}")

    def _stmt_while(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        counter = self._name("w")
        out.emit(f"int {counter} = {self.rng.randint(2, 9)};")
        out.emit(f"while ({counter} > 0) {{")
        out.depth += 1
        inner = _Scope(list(scope.vars) + [_Var(counter, "int")])
        self._emit_stmt(out, inner, depth + 1)
        out.emit(f"{counter}--;")
        out.depth -= 1
        out.emit("}")

    def _stmt_switch(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        var = self._pick_int_var(scope)
        if var is None:
            return
        n_cases = self.rng.randint(2, 4)
        out.emit(f"switch ({var.name} & {n_cases + 1}) {{")
        out.depth += 1
        for c in range(n_cases):
            out.emit(f"case {c}:")
            out.depth += 1
            self._emit_stmt(out, _Scope(list(scope.vars)), depth + 1)
            if self.rng.random() < 0.8:
                out.emit("break;")
            out.depth -= 1
        out.emit("default:")
        out.depth += 1
        self._emit_stmt(out, _Scope(list(scope.vars)), depth + 1)
        out.depth -= 1
        out.depth -= 1
        out.emit("}")

    def _stmt_call(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        name, arity = self.rng.choice(self.helpers)
        args = ", ".join(self._int_expr(scope, 0) for _ in range(arity))
        target = self._pick_int_var(scope)
        if target is not None and self.rng.random() < 0.7:
            out.emit(f"{target.name} = {name}({args});")
        else:
            out.emit(f"{name}({args});")

    def _stmt_array_store(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        arrays = [g for g in self.globals if g.is_array]
        if not arrays:
            return
        arr = self.rng.choice(arrays)
        idx = self.rng.randrange(arr.array_len)
        out.emit(f"{arr.name}[{idx}] = {self._int_expr(scope, 0)};")

    def _stmt_goto_fwd(self, out: _Emitter, scope: _Scope, depth: int) -> None:
        label = self._name("skip")
        target = self._pick_int_var(scope)
        if target is None:
            return
        out.emit(f"if ({self._cond_expr(scope)}) goto {label};")
        self._emit_stmt(out, _Scope(list(scope.vars)), depth + 1)
        out.emit(f"{label}: {target.name} ^= 3;")

    # -- expressions ---------------------------------------------------------

    def _pick_int_var(self, scope: _Scope) -> _Var | None:
        ints = [v for v in scope.vars if v.ctype != "double" and not v.is_array]
        return self.rng.choice(ints) if ints else None

    def _int_atom(self, scope: _Scope) -> str:
        rng = self.rng
        var = self._pick_int_var(scope)
        if var is not None and rng.random() < 0.7:
            return var.name
        return str(rng.choice([2, 3, 5, 7, 10, 16, 63, 255, rng.randint(2, 999)]))

    def _int_expr(self, scope: _Scope, depth: int) -> str:
        rng, pol = self.rng, self.policy
        if depth >= pol.max_expr_depth or rng.random() < 0.35:
            return self._int_atom(scope)
        op = rng.choice(["+", "-", "*", "&", "|", "^", "%", "/", "<<", ">>"])
        lhs = self._int_expr(scope, depth + 1)
        rhs = self._int_expr(scope, depth + 1)
        if op in ("/", "%"):
            if pol.safe_math:
                rhs = f"(({rhs}) | 1)"
            else:
                rhs = f"({rhs} + 1)"
        if op in ("<<", ">>"):
            rhs = f"({rhs} & 7)"
        return f"({lhs} {op} {rhs})"

    def _cond_expr(self, scope: _Scope) -> str:
        rng = self.rng
        var = self._pick_int_var(scope)
        lhs = var.name if var is not None else self._int_expr(scope, 1)
        op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
        rhs = self._int_atom(scope)
        cond = f"{lhs} {op} {rhs}"
        if rng.random() < 0.25:
            left = var.name if var is not None else self._int_atom(scope)
            other = f"{left} {rng.choice(['<', '!='])} {self._int_atom(scope)}"
            cond = f"{cond} {rng.choice(['&&', '||'])} {other}"
        return cond
