"""Crash collection and deduplication for fuzzing runs.

A crash is uniquely identified by its top two stack frames (§5.1); hangs are
bucketed by the responsible bug since they produce no backtrace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.crash import CompilerCrash, CompilerHang, CrashSignature, StackFrame
from repro.compiler.driver import CompileResult


@dataclass(frozen=True)
class CrashRecord:
    signature: CrashSignature
    bug_id: str
    module: str
    kind: str  # "assert" | "segfault" | "hang"
    message: str


def record_from_result(result: CompileResult) -> CrashRecord | None:
    if result.crash is not None:
        crash = result.crash
        return CrashRecord(
            crash.signature(), crash.bug_id, crash.module, crash.kind, crash.message
        )
    if result.hang is not None:
        hang = result.hang
        sig = CrashSignature((StackFrame("<hang>", 0), StackFrame(hang.bug_id, 0)))
        return CrashRecord(sig, hang.bug_id, hang.module, "hang", hang.message)
    return None


@dataclass
class CrashLog:
    """Unique crashes with first-discovery bookkeeping."""

    records: dict[CrashSignature, CrashRecord] = field(default_factory=dict)
    first_seen: dict[CrashSignature, float] = field(default_factory=dict)
    triggers: dict[CrashSignature, str] = field(default_factory=dict)

    def add(
        self, result: CompileResult, when: float, program: str = ""
    ) -> CrashRecord | None:
        """Record a crash from a compile result; returns it iff it is new."""
        rec = record_from_result(result)
        if rec is None:
            return None
        if rec.signature in self.records:
            return None
        self.records[rec.signature] = rec
        self.first_seen[rec.signature] = when
        self.triggers[rec.signature] = program
        return rec

    def __len__(self) -> int:
        return len(self.records)

    def signatures(self) -> set[CrashSignature]:
        return set(self.records)

    def by_module(self) -> dict[str, int]:
        out = {"front-end": 0, "ir-gen": 0, "optimization": 0, "back-end": 0}
        for rec in self.records.values():
            out[rec.module] += 1
        return out

    def timeline(self) -> list[tuple[float, int]]:
        """(time, cumulative unique crashes) discovery curve."""
        times = sorted(self.first_seen.values())
        return [(t, i + 1) for i, t in enumerate(times)]

    # -- checkpoint serialization (campaign resume) -----------------------

    def to_json(self) -> list[dict]:
        """A JSON-safe rendering, in discovery (insertion) order."""
        return [
            {
                "frames": [[f.function, f.pc] for f in sig.frames],
                "bug_id": rec.bug_id,
                "module": rec.module,
                "kind": rec.kind,
                "message": rec.message,
                "first_seen": self.first_seen[sig],
                "trigger": self.triggers.get(sig, ""),
            }
            for sig, rec in self.records.items()
        ]

    @classmethod
    def from_json(cls, rows: list[dict]) -> "CrashLog":
        log = cls()
        for row in rows:
            sig = CrashSignature(
                tuple(StackFrame(fn, pc) for fn, pc in row["frames"])
            )
            log.records[sig] = CrashRecord(
                sig, row["bug_id"], row["module"], row["kind"], row["message"]
            )
            log.first_seen[sig] = row["first_seen"]
            log.triggers[sig] = row.get("trigger", "")
        return log
