"""Crash collection and deduplication for fuzzing runs.

A crash is uniquely identified by its top two stack frames (§5.1); hangs are
bucketed by the responsible bug since they produce no backtrace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.compiler.crash import CompilerCrash, CompilerHang, CrashSignature, StackFrame
from repro.compiler.driver import CompileResult

#: The four pipeline modules of the paper's Table 6 census.  Crash records
#: can carry any module string (``CompilerCrash.module`` is arbitrary), so
#: the census seeds these and counts everything else alongside them.
CANONICAL_MODULES = ("front-end", "ir-gen", "optimization", "back-end")


@dataclass(frozen=True)
class CrashRecord:
    signature: CrashSignature
    bug_id: str
    module: str
    kind: str  # "assert" | "segfault" | "hang"
    message: str


def record_from_result(result: CompileResult) -> CrashRecord | None:
    if result.crash is not None:
        crash = result.crash
        return CrashRecord(
            crash.signature(), crash.bug_id, crash.module, crash.kind, crash.message
        )
    if result.hang is not None:
        hang = result.hang
        sig = CrashSignature((StackFrame("<hang>", 0), StackFrame(hang.bug_id, 0)))
        return CrashRecord(sig, hang.bug_id, hang.module, "hang", hang.message)
    return None


@dataclass
class CrashLog:
    """Unique crashes with first-discovery bookkeeping."""

    records: dict[CrashSignature, CrashRecord] = field(default_factory=dict)
    first_seen: dict[CrashSignature, float] = field(default_factory=dict)
    triggers: dict[CrashSignature, str] = field(default_factory=dict)

    def add(
        self, result: CompileResult, when: float, program: str = ""
    ) -> CrashRecord | None:
        """Record a crash from a compile result; returns it iff it is new."""
        rec = record_from_result(result)
        if rec is None:
            return None
        if rec.signature in self.records:
            return None
        self.records[rec.signature] = rec
        self.first_seen[rec.signature] = when
        self.triggers[rec.signature] = program
        return rec

    def __len__(self) -> int:
        return len(self.records)

    def signatures(self) -> set[CrashSignature]:
        return set(self.records)

    def by_module(self) -> dict[str, int]:
        """Unique crashes per pipeline module (the Table 6 census).

        A ``Counter`` seeded with the canonical four modules: records whose
        module is outside that set (the field is an arbitrary string) count
        under their own key instead of raising.
        """
        out = Counter({module: 0 for module in CANONICAL_MODULES})
        for rec in self.records.values():
            out[rec.module] += 1
        return dict(out)

    def timeline(self) -> list[tuple[float, int]]:
        """(time, cumulative unique crashes) discovery curve.

        Ties on ``first_seen`` collapse into a single point carrying the
        final cumulative count for that time, so the curve is a function of
        time (one y per x) rather than a vertical run of duplicates.
        """
        curve: list[tuple[float, int]] = []
        for i, t in enumerate(sorted(self.first_seen.values())):
            if curve and curve[-1][0] == t:
                curve[-1] = (t, i + 1)
            else:
                curve.append((t, i + 1))
        return curve

    # -- checkpoint serialization (campaign resume) -----------------------

    def to_json(self) -> list[dict]:
        """A JSON-safe rendering, in discovery (insertion) order."""
        return [
            {
                "frames": [[f.function, f.pc] for f in sig.frames],
                "bug_id": rec.bug_id,
                "module": rec.module,
                "kind": rec.kind,
                "message": rec.message,
                "first_seen": self.first_seen[sig],
                "trigger": self.triggers.get(sig, ""),
            }
            for sig, rec in self.records.items()
        ]

    @classmethod
    def from_json(cls, rows: list[dict]) -> "CrashLog":
        log = cls()
        for row in rows:
            sig = CrashSignature(
                tuple(StackFrame(fn, pc) for fn, pc in row["frames"])
            )
            log.records[sig] = CrashRecord(
                sig, row["bug_id"], row["module"], row["kind"], row["message"]
            )
            log.first_seen[sig] = row["first_seen"]
            log.triggers[sig] = row.get("trigger", "")
        return log
