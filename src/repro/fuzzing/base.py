"""The common fuzzing loop contract.

A fuzzer produces one test program per ``step``; the campaign runner compiles
it, advances the virtual clock, feeds coverage back, and records crashes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.compiler.driver import Compiler, CompileResult
from repro.compiler.coverage import CoverageMap
from repro.fuzzing.corpus import Corpus, ProgramEntry
from repro.fuzzing.schedule import MUTATOR_STAT_KEYS
from repro.telemetry import TelemetrySession


@dataclass
class StepResult:
    program: str
    result: CompileResult
    #: Whether the program was added back to the pool (coverage-guided only).
    kept: bool = False
    mutator: str | None = None
    #: Per-step execution stats (mutation attempts, cache hits/misses);
    #: None for fuzzers that don't track them.
    stats: dict | None = None


class Fuzzer:
    """Base class: one compile per step, optional coverage feedback."""

    name = "fuzzer"
    #: Modeled per-program generation cost in seconds, used to extrapolate
    #: 24-hour throughput (Table 5 "Total").  Calibrated to the paper's
    #: reported totals: AFL++ ≈ 2.15M programs/24 h, μCFuzz/GrayC ≈ 1M,
    #: YARPGen ≈ 76 k, Csmith ≈ 31 k.
    step_cost: float = 0.086

    def __init__(self, compiler: Compiler, rng: random.Random) -> None:
        self.compiler = compiler
        self.rng = rng
        self.coverage = CoverageMap()
        #: The run's telemetry (sink-less by default: deterministic metrics
        #: and the wall profile only).  ``self.stats`` *is* the session
        #: registry's counter mapping, so ``stats_snapshot()`` is a view
        #: over the registry; subclasses add their own keys.
        self.telemetry = TelemetrySession()
        self.stats: dict = self.telemetry.metrics.counters
        #: Optional per-mutator circuit breaker
        #: (:class:`repro.resilience.circuit.MutatorQuarantine`); fuzzers
        #: that apply mutators consult and feed it.
        self.quarantine = None
        #: Optional evolutionary scheduler
        #: (:class:`repro.fuzzing.schedule.MutatorScheduler`); mutation
        #: fuzzers that track per-mutator yield stats feed it.
        self.scheduler = None

    def step(self) -> StepResult:
        raise NotImplementedError

    def record_mutator_yield(
        self,
        name: str,
        *,
        changed: bool = False,
        compiled: bool = False,
        crashed: bool = False,
        coverage_gain: int = 0,
    ) -> None:
        """Fold one mutation attempt into the per-mutator yield counters.

        A strict no-op unless the fuzzer zero-filled ``mutator_stats``
        (scheduler on, or ``mutator_stats=True``): recording consumes no
        randomness and never touches control flow, so tracked and
        untracked runs produce identical fuzzing results.
        """
        table = self.stats.get("mutator_stats")
        if table is None:
            return
        rec = table.get(name)
        if rec is None:  # a mutator outside the zero-filled set
            rec = table[name] = dict.fromkeys(MUTATOR_STAT_KEYS, 0)
        rec["attempts"] += 1
        if changed:
            rec["changed"] += 1
        if compiled:
            rec["compiled"] += 1
        if crashed:
            rec["crashes"] += 1
        if coverage_gain:
            rec["coverage_gain"] += coverage_gain

    def adopt_telemetry(self, session: TelemetrySession) -> None:
        """Re-home this fuzzer's metrics onto an external (sinked) session.

        Counters recorded so far carry over, the compiler's stage spans are
        routed into the session's sink/clock, and ``self.stats`` keeps being
        a registry view.  Adopting a session changes only where telemetry
        lands, never the fuzzing results.
        """
        session.metrics.counters.update(self.stats)
        session.metrics.wall.update(self.telemetry.metrics.wall)
        self.telemetry = session
        self.stats = session.metrics.counters
        session.attach_compiler(self.compiler)

    def stats_snapshot(self) -> dict:
        """The cumulative *deterministic* stats, for campaign reporting.

        Wall-clock profile data (stage timings, span durations) is excluded
        here by construction — see :meth:`profile_snapshot` — so campaign
        results can be compared across serial/parallel/incremental runs
        without any caller stripping timing keys.
        """
        snap = dict(self.stats)
        if self.quarantine is not None:
            snap.update(self.quarantine.stats())
        return snap

    def profile_snapshot(self) -> dict:
        """The wall-clock profile: real, machine-dependent, never compared."""
        profile: dict = {
            "stage_timings": {
                stage: round(seconds, 4)
                for stage, seconds in sorted(self.compiler.stage_timings.items())
            }
        }
        spans = self.telemetry.metrics.wall_snapshot()
        if spans:
            profile["spans"] = spans
        return profile

    def observe(self, step: StepResult) -> None:
        """Default coverage accounting (after the campaign recorded it)."""


class CoverageGuidedFuzzer(Fuzzer):
    """Shared Algorithm-1 style pool handling."""

    def __init__(
        self, compiler: Compiler, rng: random.Random, seeds: list[str]
    ) -> None:
        super().__init__(compiler, rng)
        self.pool = Corpus.from_texts(seeds)
        self._generation = 0

    def keep_if_new_coverage(
        self, text: str, result: CompileResult, parent: ProgramEntry, mutator: str
    ) -> bool:
        """P' joins the pool iff it covers a branch nothing in P covers."""
        if not self.coverage.new_edges(result.coverage):
            return False
        self._generation += 1
        self.pool.add(
            ProgramEntry(
                text,
                seed_id=parent.seed_id,
                generation=parent.generation + 1,
                parent=parent.seed_id,
                mutator=mutator,
            )
        )
        return True
