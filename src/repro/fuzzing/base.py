"""The common fuzzing loop contract.

A fuzzer produces one test program per ``step``; the campaign runner compiles
it, advances the virtual clock, feeds coverage back, and records crashes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.compiler.driver import Compiler, CompileResult
from repro.compiler.coverage import CoverageMap
from repro.fuzzing.corpus import Corpus, ProgramEntry


@dataclass
class StepResult:
    program: str
    result: CompileResult
    #: Whether the program was added back to the pool (coverage-guided only).
    kept: bool = False
    mutator: str | None = None
    #: Per-step execution stats (mutation attempts, cache hits/misses);
    #: None for fuzzers that don't track them.
    stats: dict | None = None


class Fuzzer:
    """Base class: one compile per step, optional coverage feedback."""

    name = "fuzzer"
    #: Modeled per-program generation cost in seconds, used to extrapolate
    #: 24-hour throughput (Table 5 "Total").  Calibrated to the paper's
    #: reported totals: AFL++ ≈ 2.15M programs/24 h, μCFuzz/GrayC ≈ 1M,
    #: YARPGen ≈ 76 k, Csmith ≈ 31 k.
    step_cost: float = 0.086

    def __init__(self, compiler: Compiler, rng: random.Random) -> None:
        self.compiler = compiler
        self.rng = rng
        self.coverage = CoverageMap()
        #: Cumulative execution counters; subclasses add their own keys.
        self.stats: dict = {}
        #: Optional per-mutator circuit breaker
        #: (:class:`repro.resilience.circuit.MutatorQuarantine`); fuzzers
        #: that apply mutators consult and feed it.
        self.quarantine = None

    def step(self) -> StepResult:
        raise NotImplementedError

    def stats_snapshot(self) -> dict:
        """A copy of the cumulative stats, for campaign reporting."""
        snap = dict(self.stats)
        if self.quarantine is not None:
            snap.update(self.quarantine.stats())
        return snap

    def observe(self, step: StepResult) -> None:
        """Default coverage accounting (after the campaign recorded it)."""


class CoverageGuidedFuzzer(Fuzzer):
    """Shared Algorithm-1 style pool handling."""

    def __init__(
        self, compiler: Compiler, rng: random.Random, seeds: list[str]
    ) -> None:
        super().__init__(compiler, rng)
        self.pool = Corpus.from_texts(seeds)
        self._generation = 0

    def keep_if_new_coverage(
        self, text: str, result: CompileResult, parent: ProgramEntry, mutator: str
    ) -> bool:
        """P' joins the pool iff it covers a branch nothing in P covers."""
        if not self.coverage.new_edges(result.coverage):
            return False
        self._generation += 1
        self.pool.add(
            ProgramEntry(
                text,
                seed_id=parent.seed_id,
                generation=parent.generation + 1,
                parent=parent.seed_id,
                mutator=mutator,
            )
        )
        return True
