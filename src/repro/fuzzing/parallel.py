"""Process-parallel campaign execution with per-cell fault isolation.

The paper's headline experiment runs 60 parallel fuzzer instances per
fuzzer/compiler pair; the reproduction's RQ1 grid is an embarrassingly
parallel set of *cells* (one fuzzer on one compiler).  This module fans
cells out over worker processes.

Determinism contract: a cell is fully described by a picklable
:class:`CellSpec` — fuzzer name, compiler personality/version/bug seed,
seed programs, step budget, and a stable per-cell RNG seed.  A worker
reconstructs the compiler and fuzzer from the spec, so the result depends
only on the spec, never on which process (or how many) executed it, nor on
how many times it was attempted; ``parallelism=N`` is result-for-result
identical to the serial run, and a cell retried after a worker crash
reruns from the identical spec.  Results are returned in submission order.

Two entry points:

* :func:`run_cells` — the historical strict API: returns bare
  ``CampaignResult``s and lets a cell's exception propagate (it no longer
  silently reruns the whole grid serially; the serial fallback is reserved
  for pool-startup/pickling failures, where it is behaviour-preserving).
* :func:`run_cells_resilient` — the fault-isolated API: each cell runs in
  its own process with a wall-clock timeout and a bounded retry budget,
  one crashed/hung cell yields a recorded :class:`CellOutcome` failure
  instead of aborting the grid, and finished cells are checkpointed to
  JSON so a killed campaign resumes where it stopped.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faultinject import CellFault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.fuzzing.campaign import CampaignResult
    from repro.muast.registry import MutatorRegistry

#: Scheduler poll interval (real seconds) for isolated cell processes.
_POLL_SECONDS = 0.01

#: Grace period (real seconds) given to SIGTERM before escalating.
_TERM_GRACE = 5.0


def ensure_dead(proc, grace: float = _TERM_GRACE) -> None:
    """Terminate ``proc``, escalating to SIGKILL if SIGTERM is ignored.

    A worker stuck in a non-cooperative state (e.g. a hang inside a C
    extension, or an injected ``CellFault(kind="hang")`` that shadows the
    default SIGTERM handling) would survive ``terminate()`` forever;
    without the ``kill()`` escalation it leaks a live process past the
    grid.  Used by both the resilient runner and the fabric supervisor.
    """
    if not proc.is_alive():
        proc.join(0)
        return
    proc.terminate()
    proc.join(grace)
    if proc.is_alive():
        proc.kill()
        proc.join(grace)


def stable_cell_seed(fuzzer_name: str, compiler_name: str, base_seed: int) -> int:
    """A per-cell RNG seed that is stable across processes and runs.

    ``hash()`` on strings is randomized per interpreter (PYTHONHASHSEED), so
    it would differ between pool workers and the parent; CRC32 is not.
    """
    digest = zlib.crc32(f"{fuzzer_name}\x00{compiler_name}".encode("utf-8"))
    return (digest ^ base_seed) & 0xFFFFFFFF


@dataclass(frozen=True)
class CellSpec:
    """One fuzzer × compiler campaign cell, picklable for pool workers."""

    fuzzer_name: str
    personality: str
    version: str
    bug_seed: int
    seeds: tuple[str, ...]
    steps: int
    cell_seed: int
    virtual_hours: float = 24.0
    sample_points: int = 24
    #: None means "the process-global registry" (every worker imports
    #: :mod:`repro.mutators`, so the global registry is identical everywhere).
    registry: "MutatorRegistry | None" = None
    #: Consecutive crash/hang threshold for the per-mutator circuit
    #: breaker; None leaves quarantine off (the historical behaviour).
    quarantine_threshold: int | None = None
    #: Front-end cache capacity for the cell's fuzzer (None = default).
    cache_maxsize: int | None = None
    #: Feed mutant edit scripts to the compiler for incremental reuse.
    incremental: bool = True
    #: Cross-check every incremental compile against a full one (CI/tests).
    paranoid: bool = False
    #: Give the cell's fuzzer a private CompileSession (cross-step
    #: middle-end memoization).  Sessions are per-cell by construction —
    #: a worker builds its own — so serial==parallel holds.
    session: bool = False
    #: Route local optimization through the fused single-walk pass.
    fuse_passes: bool = False
    #: Run the optimizer's local rounds over the flat slotted IR buffer.
    flat_ir: bool = False
    #: Keep the whole middle end buffer-native (implies ``flat_ir``).
    flat_native: bool = False
    #: Compile each μCFuzz step's attempt set as one session batch.
    batch_compile: bool = False
    #: Evolutionary mutator scheduling: the worker builds a
    #: :class:`~repro.fuzzing.schedule.MutatorScheduler` seeded from
    #: ``cell_seed``, so every execution of the spec — serial, parallel,
    #: or fabric — schedules identically.
    schedule: bool = False
    #: Track per-mutator yield counters without the scheduler (uniform
    #: ablation arm); ``None`` follows ``schedule``.
    mutator_stats: bool | None = None
    #: Stream this cell's telemetry events to a JSONL file in this
    #: directory (``<fuzzer>-<personality>-<version>.jsonl``).  Execution
    #: circumstance, not identity: excluded from :func:`cell_key` and from
    #: the determinism contract (events never alter results).
    telemetry_dir: str | None = None
    #: Test/CI-only injected fault (fired by :func:`run_cell`).
    fault: CellFault | None = None
    #: Which execution attempt this is (set by the resilient runner on
    #: retries; does not affect the cell's RNG or results).
    attempt: int = 0


def cell_key(spec: CellSpec) -> str:
    """A stable checkpoint key over the cell's *identity* fields.

    Excludes ``fault`` and ``attempt`` (execution circumstances, not
    identity) and ``registry`` (checkpointing assumes the process-global
    registry, which is identical in every worker).
    """
    ident = (
        spec.fuzzer_name,
        spec.personality,
        spec.version,
        spec.bug_seed,
        spec.seeds,
        spec.steps,
        spec.cell_seed,
        spec.virtual_hours,
        spec.sample_points,
        spec.quarantine_threshold,
        spec.cache_maxsize,
        spec.incremental,
        spec.paranoid,
        spec.session,
        spec.fuse_passes,
        spec.flat_ir,
        spec.flat_native,
        spec.batch_compile,
        spec.schedule,
        spec.mutator_stats,
    )
    digest = hashlib.sha1(repr(ident).encode("utf-8")).hexdigest()
    return f"{spec.fuzzer_name}-{spec.personality}-{digest[:16]}"


@dataclass
class CellOutcome:
    """What happened to one cell: a result, or a recorded failure."""

    spec: CellSpec
    ok: bool
    result: "CampaignResult | None" = None
    error: str = ""
    error_type: str = ""  # exception class | "timeout" | "worker-crash"
    attempts: int = 1
    from_checkpoint: bool = False

    @property
    def failed(self) -> bool:
        return not self.ok

    def to_json(self) -> dict:
        payload = {
            "ok": self.ok,
            "fuzzer": self.spec.fuzzer_name,
            "compiler": f"{self.spec.personality}-{self.spec.version}",
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
        }
        if self.result is not None:
            payload["result"] = self.result.to_json()
        return payload


def _outcome_from_checkpoint(spec: CellSpec, payload: dict) -> CellOutcome:
    from repro.fuzzing.campaign import CampaignResult

    return CellOutcome(
        spec=spec,
        ok=True,
        result=CampaignResult.from_json(payload["result"]),
        attempts=int(payload.get("attempts", 1)),
        from_checkpoint=True,
    )


def cell_telemetry_session(spec: CellSpec):
    """The cell's JSONL-sinked telemetry session, or None when disabled."""
    if spec.telemetry_dir is None:
        return None
    from pathlib import Path

    from repro.resilience.checkpoint import sanitize_key
    from repro.telemetry import TelemetrySession

    stem = sanitize_key(f"{spec.fuzzer_name}-{spec.personality}-{spec.version}")
    return TelemetrySession.to_jsonl(Path(spec.telemetry_dir) / f"{stem}.jsonl")


def run_cell(spec: CellSpec) -> "CampaignResult":
    """Run one campaign cell from scratch; the pool worker entry point."""
    import random

    import repro.mutators  # noqa: F401  (populate the worker's registry)
    from repro.compiler.driver import Compiler
    from repro.fuzzing.campaign import make_fuzzer, run_campaign
    from repro.muast.registry import global_registry

    if spec.fault is not None:
        spec.fault.fire(spec.attempt)
    registry = spec.registry if spec.registry is not None else global_registry
    compiler = Compiler(spec.personality, spec.version, bug_seed=spec.bug_seed)
    session = cell_telemetry_session(spec)
    scheduler = None
    if spec.schedule:
        from repro.fuzzing.schedule import MutatorScheduler

        # Derived from the cell seed, never from the fuzzer's RNG stream:
        # a retried/re-dispatched spec rebuilds the identical scheduler.
        scheduler = MutatorScheduler.from_cell_seed(spec.cell_seed)
    fuzzer = make_fuzzer(
        spec.fuzzer_name,
        compiler,
        list(spec.seeds),
        registry,
        random.Random(spec.cell_seed),
        quarantine_threshold=spec.quarantine_threshold,
        cache_maxsize=spec.cache_maxsize,
        incremental=spec.incremental,
        paranoid=spec.paranoid,
        session=spec.session,
        fuse_passes=spec.fuse_passes,
        flat_ir=spec.flat_ir,
        flat_native=spec.flat_native,
        batch_compile=spec.batch_compile,
        scheduler=scheduler,
        mutator_stats=spec.mutator_stats,
        telemetry=session,
    )
    try:
        return run_campaign(
            fuzzer, spec.steps, spec.virtual_hours, spec.sample_points
        )
    finally:
        if session is not None:
            session.close()


# ---------------------------------------------------------------------------
# Strict API (historical behaviour, minus the silent serial rerun)


def run_cells(
    specs: Sequence[CellSpec], parallelism: int = 1
) -> "list[CampaignResult]":
    """Run all cells, fanning out over processes when ``parallelism > 1``.

    Falls back to the serial loop only when the pool itself cannot be used
    (single cell, no multiprocessing support in the environment, or
    unpicklable specs — e.g. a registry holding locally-defined mutator
    classes); because cells are deterministic, that fallback is
    behaviour-preserving.  A *cell* error, by contrast, propagates to the
    caller — use :func:`run_cells_resilient` to record failures instead.
    """
    if parallelism <= 1 or len(specs) <= 1:
        return [run_cell(spec) for spec in specs]
    try:
        pickle.dumps(tuple(specs))
    except (pickle.PicklingError, AttributeError, TypeError):
        return [run_cell(spec) for spec in specs]
    try:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(parallelism, len(specs), os.cpu_count() or 1)
        pool = ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return [run_cell(spec) for spec in specs]
    with pool:
        futures = [pool.submit(run_cell, spec) for spec in specs]
        return [f.result() for f in futures]


# ---------------------------------------------------------------------------
# Resilient API: per-cell isolation, timeout, retry, checkpoint/resume


def _cell_worker(conn, spec: CellSpec) -> None:  # pragma: no cover - subprocess
    try:
        result = run_cell(spec)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silently
        try:
            conn.send(("error", str(exc), type(exc).__name__))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _RunningCell:
    index: int
    spec: CellSpec
    attempt: int
    proc: object
    conn: object
    deadline: float | None
    timeout: float | None


def _start_cell(
    index: int, spec: CellSpec, attempt: int, timeout: float | None
) -> _RunningCell:
    import multiprocessing as mp

    ctx = mp.get_context()
    effective = dataclasses.replace(spec, attempt=attempt) if attempt else spec
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_cell_worker, args=(child_conn, effective), daemon=True
    )
    proc.start()
    child_conn.close()
    deadline = None if timeout is None else time.monotonic() + timeout
    return _RunningCell(index, spec, attempt, proc, parent_conn, deadline, timeout)


def _drain(conn) -> tuple | None:
    if conn.poll(0):
        try:
            payload = conn.recv()
        except EOFError:
            return None
        if isinstance(payload, tuple):
            return payload
    return None


def _poll_cell(cell: _RunningCell) -> tuple | None:
    """A status tuple once the cell finished/died/timed out, else None."""
    payload = _drain(cell.conn)
    if payload is not None:
        return payload
    if cell.deadline is not None and time.monotonic() > cell.deadline:
        ensure_dead(cell.proc)
        return (
            "timeout",
            f"cell exceeded its {cell.timeout}s wall-clock budget",
            "timeout",
        )
    if not cell.proc.is_alive():
        # The worker died; one last drain catches a message sent just
        # before exit, otherwise it is a hard crash (no exception reached
        # the worker's reporting path).
        payload = _drain(cell.conn)
        if payload is not None:
            return payload
        return (
            "worker-crash",
            f"worker process died with exit code {cell.proc.exitcode}",
            "worker-crash",
        )
    return None


def _reap(cell: _RunningCell) -> None:
    cell.proc.join(5)
    if cell.proc.is_alive():  # refused to exit after reporting: escalate
        ensure_dead(cell.proc)
    cell.conn.close()


def _run_cell_inprocess(spec: CellSpec, cell_retries: int) -> CellOutcome:
    """Serial fallback: no process isolation, but the same retry contract."""
    attempt = 0
    while True:
        effective = (
            dataclasses.replace(spec, attempt=attempt) if attempt else spec
        )
        try:
            result = run_cell(effective)
        except Exception as exc:  # a cell bug or an injected "raise" fault
            if attempt < cell_retries:
                attempt += 1
                continue
            return CellOutcome(
                spec=spec,
                ok=False,
                error=str(exc),
                error_type=type(exc).__name__,
                attempts=attempt + 1,
            )
        return CellOutcome(spec=spec, ok=True, result=result, attempts=attempt + 1)


def _run_cells_isolated(
    todo: list[tuple[int, CellSpec]],
    parallelism: int,
    cell_timeout: float | None,
    cell_retries: int,
    on_done,
) -> dict[int, CellOutcome]:
    """Schedule each cell in its own process; retry crashes/timeouts."""
    from collections import deque

    pending = deque((index, spec, 0) for index, spec in todo)
    running: dict[int, _RunningCell] = {}
    outcomes: dict[int, CellOutcome] = {}
    slots = max(1, parallelism)
    try:
        while pending or running:
            while pending and len(running) < slots:
                index, spec, attempt = pending.popleft()
                try:
                    running[index] = _start_cell(index, spec, attempt, cell_timeout)
                except (
                    pickle.PicklingError,
                    AttributeError,
                    TypeError,
                    ImportError,
                    OSError,
                ):
                    # Unpicklable spec or no process support: run this cell
                    # without isolation (deterministic either way).
                    outcomes[index] = _run_cell_inprocess(spec, cell_retries)
                    on_done(outcomes[index])
            finished = []
            for index, cell in list(running.items()):
                status = _poll_cell(cell)
                if status is not None:
                    finished.append((index, status))
            if not finished:
                if running:
                    time.sleep(_POLL_SECONDS)
                continue
            for index, status in finished:
                cell = running.pop(index)
                _reap(cell)
                if status[0] == "ok":
                    outcomes[index] = CellOutcome(
                        spec=cell.spec,
                        ok=True,
                        result=status[1],
                        attempts=cell.attempt + 1,
                    )
                    on_done(outcomes[index])
                elif cell.attempt < cell_retries:
                    # Retry from the *identical* spec: determinism holds.
                    pending.append((index, cell.spec, cell.attempt + 1))
                else:
                    outcomes[index] = CellOutcome(
                        spec=cell.spec,
                        ok=False,
                        error=status[1],
                        error_type=status[2],
                        attempts=cell.attempt + 1,
                    )
                    on_done(outcomes[index])
    finally:
        for cell in running.values():  # interrupted: don't leak workers
            ensure_dead(cell.proc)
    return outcomes


def run_cells_resilient(
    specs: Sequence[CellSpec],
    parallelism: int = 1,
    *,
    cell_timeout: float | None = None,
    cell_retries: int = 1,
    checkpoint_dir: str | os.PathLike | None = None,
    telemetry_dir: str | os.PathLike | None = None,
) -> list[CellOutcome]:
    """Run all cells with per-cell fault isolation; never abort the grid.

    Each cell runs in its own worker process (when ``parallelism > 1`` or a
    ``cell_timeout`` is set), is retried up to ``cell_retries`` times on a
    crash/timeout from the identical :class:`CellSpec`, and lands in the
    returned list as a :class:`CellOutcome` — a result on success, a
    recorded failure otherwise.  With ``checkpoint_dir``, finished cells are
    persisted as they complete and a rerun skips the cells whose successful
    checkpoints already exist, reproducing the interrupted campaign's
    remaining cells with identical results.  With ``telemetry_dir``, cell
    lifecycle events (checkpoint skips, completions, recorded failures)
    stream to ``<telemetry_dir>/grid.jsonl``; the event order reflects
    completion order under parallel scheduling, which is why grid telemetry
    is an annotation stream, never compared state.
    """
    store = (
        CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
    )
    gridlog = None
    if telemetry_dir is not None:
        from pathlib import Path

        from repro.telemetry import TelemetrySession

        gridlog = TelemetrySession.to_jsonl(Path(telemetry_dir) / "grid.jsonl")

    def emit_cell(spec: CellSpec, status: str, **fields) -> None:
        if gridlog is not None:
            gridlog.emit(
                "cell", cell_key(spec), status=status,
                fuzzer=spec.fuzzer_name,
                compiler=f"{spec.personality}-{spec.version}", **fields,
            )

    outcomes: dict[int, CellOutcome] = {}
    todo: list[tuple[int, CellSpec]] = []
    try:
        for index, spec in enumerate(specs):
            if store is not None:
                payload = store.load(cell_key(spec))
                if payload is not None and payload.get("ok") and "result" in payload:
                    outcomes[index] = _outcome_from_checkpoint(spec, payload)
                    emit_cell(spec, "checkpoint-skip")
                    continue
            todo.append((index, spec))

        def on_done(outcome: CellOutcome) -> None:
            if store is not None:
                store.save(cell_key(outcome.spec), outcome.to_json())
            emit_cell(
                outcome.spec,
                "ok" if outcome.ok else "failed",
                attempts=outcome.attempts,
                error_type=outcome.error_type,
            )

        if todo:
            isolate = parallelism > 1 or cell_timeout is not None
            if isolate:
                outcomes.update(
                    _run_cells_isolated(
                        todo, parallelism, cell_timeout, cell_retries, on_done
                    )
                )
            else:
                for index, spec in todo:
                    outcomes[index] = _run_cell_inprocess(spec, cell_retries)
                    on_done(outcomes[index])
    finally:
        if gridlog is not None:
            gridlog.close()
    return [outcomes[index] for index in range(len(specs))]
