"""Process-parallel campaign execution.

The paper's headline experiment runs 60 parallel fuzzer instances per
fuzzer/compiler pair; the reproduction's RQ1 grid is an embarrassingly
parallel set of *cells* (one fuzzer on one compiler).  This module fans
cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract: a cell is fully described by a picklable
:class:`CellSpec` — fuzzer name, compiler personality/version/bug seed,
seed programs, step budget, and a stable per-cell RNG seed.  A worker
reconstructs the compiler and fuzzer from the spec, so the result depends
only on the spec, never on which process (or how many) executed it;
``parallelism=N`` is result-for-result identical to the serial run.
Results are returned in submission order.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.fuzzing.campaign import CampaignResult
    from repro.muast.registry import MutatorRegistry


def stable_cell_seed(fuzzer_name: str, compiler_name: str, base_seed: int) -> int:
    """A per-cell RNG seed that is stable across processes and runs.

    ``hash()`` on strings is randomized per interpreter (PYTHONHASHSEED), so
    it would differ between pool workers and the parent; CRC32 is not.
    """
    digest = zlib.crc32(f"{fuzzer_name}\x00{compiler_name}".encode("utf-8"))
    return (digest ^ base_seed) & 0xFFFFFFFF


@dataclass(frozen=True)
class CellSpec:
    """One fuzzer × compiler campaign cell, picklable for pool workers."""

    fuzzer_name: str
    personality: str
    version: str
    bug_seed: int
    seeds: tuple[str, ...]
    steps: int
    cell_seed: int
    virtual_hours: float = 24.0
    sample_points: int = 24
    #: None means "the process-global registry" (every worker imports
    #: :mod:`repro.mutators`, so the global registry is identical everywhere).
    registry: "MutatorRegistry | None" = None


def run_cell(spec: CellSpec) -> "CampaignResult":
    """Run one campaign cell from scratch; the pool worker entry point."""
    import random

    import repro.mutators  # noqa: F401  (populate the worker's registry)
    from repro.compiler.driver import Compiler
    from repro.fuzzing.campaign import make_fuzzer, run_campaign
    from repro.muast.registry import global_registry

    registry = spec.registry if spec.registry is not None else global_registry
    compiler = Compiler(spec.personality, spec.version, bug_seed=spec.bug_seed)
    fuzzer = make_fuzzer(
        spec.fuzzer_name,
        compiler,
        list(spec.seeds),
        registry,
        random.Random(spec.cell_seed),
    )
    return run_campaign(
        fuzzer, spec.steps, spec.virtual_hours, spec.sample_points
    )


def run_cells(
    specs: Sequence[CellSpec], parallelism: int = 1
) -> "list[CampaignResult]":
    """Run all cells, fanning out over processes when ``parallelism > 1``.

    Falls back to the serial loop when the pool cannot be used (single cell,
    no multiprocessing support in the environment, or unpicklable specs —
    e.g. a registry holding locally-defined mutator classes).  Because cells
    are deterministic, the fallback produces the same results.
    """
    if parallelism <= 1 or len(specs) <= 1:
        return [run_cell(spec) for spec in specs]
    try:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(parallelism, len(specs), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_cell, spec) for spec in specs]
            return [f.result() for f in futures]
    except Exception:
        # Pool startup/pickling failures; cell errors re-raise identically
        # from the serial rerun below.
        return [run_cell(spec) for spec in specs]
