"""The macro fuzzer: μCFuzz plus the long-campaign engineering of §3.4.

Enhancements over Algorithm 1:

1. random sampling of compiler command-line arguments (-O level and the
   ``SAMPLABLE_FLAGS``), which is what reaches flag-gated bugs like
   GCC #111820 (-O3 -fno-tree-vrp);
2. Havoc: several rounds of mutation per mutant for more diverse outputs;
3. a shared coverage map across parallel instances;
4. resource limits on mutant size (the paper limits memory/time so compiler
   bugs cannot take the host down).
"""

from __future__ import annotations

import random

from repro.cast.cache import FrontendCache
from repro.compiler.coverage import CoverageMap
from repro.compiler.driver import Compiler, SAMPLABLE_FLAGS
from repro.muast.mutator import MutatorCrash, MutatorHang, apply_mutator
from repro.muast.registry import MutatorInfo
from repro.resilience.circuit import MutatorQuarantine
from repro.fuzzing.base import CoverageGuidedFuzzer, StepResult

MAX_MUTANT_BYTES = 64 * 1024  # resource limit (enhancement 4)
MAX_HAVOC_ROUNDS = 5


class MacroFuzzer(CoverageGuidedFuzzer):
    """The bug-hunting fuzzer used for the eight-month field experiment."""

    name = "macro"
    step_cost = 0.086

    def __init__(
        self,
        compiler: Compiler,
        rng: random.Random,
        seeds: list[str],
        mutators: list[MutatorInfo],
        shared_coverage: CoverageMap | None = None,
        *,
        cache: FrontendCache | None = None,
        use_cache: bool = True,
        cache_maxsize: int | None = None,
        incremental: bool = True,
        paranoid: bool = False,
        quarantine: MutatorQuarantine | None = None,
    ) -> None:
        super().__init__(compiler, rng, seeds)
        self.mutators = list(mutators)
        if shared_coverage is not None:
            self.coverage = shared_coverage  # enhancement 3
        # Havoc re-front-ends the intermediate mutant of every round; the
        # shared cache makes rounds after the first nearly free.
        if cache is not None:
            self.cache = cache
        elif use_cache:
            self.cache = (
                FrontendCache(maxsize=cache_maxsize)
                if cache_maxsize is not None
                else FrontendCache()
            )
        else:
            self.cache = None
        self.incremental = incremental and self.cache is not None
        self.paranoid = paranoid
        self.quarantine = quarantine

    def sample_options(self) -> tuple[int, tuple[str, ...]]:
        """Enhancement 1: random -O level plus a random flag subset."""
        opt_level = self.rng.choice([0, 1, 2, 2, 2, 3, 3])
        n_flags = self.rng.choice([0, 0, 1, 1, 2])
        flags = tuple(self.rng.sample(SAMPLABLE_FLAGS, n_flags))
        return opt_level, flags

    def step(self) -> StepResult:
        parent = self.pool.random_choice(self.rng)
        mutant = parent.text
        applied: list[str] = []
        rounds = self.rng.randint(1, MAX_HAVOC_ROUNDS)  # enhancement 2
        events_before = (
            len(self.quarantine.events) if self.quarantine is not None else 0
        )
        # Havoc chains mutations, so the incremental parent of the final
        # compile is the *last* intermediate text (already front-ended into
        # the cache by apply_mutator), not the pool parent.
        base_text: str | None = None
        last_edits: tuple = ()
        for _ in range(rounds):
            info = self.mutators[self.rng.randrange(len(self.mutators))]
            if self.quarantine is not None and not self.quarantine.allows(
                info.name
            ):
                continue
            mutated = self._mutate(mutant, info)
            if mutated is not None and len(mutated[0]) <= MAX_MUTANT_BYTES:
                base_text = mutant
                mutant, last_edits = mutated
                applied.append(info.name)
        opt_level, flags = self.sample_options()
        edits_from = (
            (base_text, last_edits)
            if self.incremental and base_text is not None
            else None
        )
        result = self.compiler.compile(
            mutant,
            opt_level=opt_level,
            flags=flags,
            cache=self.cache,
            edits_from=edits_from,
            paranoid=self.paranoid,
        )
        kept = False
        if applied:
            kept = self.keep_if_new_coverage(
                mutant, result, parent, "+".join(applied)
            )
        self.coverage.merge(result.coverage)
        step = StepResult(
            mutant, result, kept=kept, mutator="+".join(applied) or None
        )
        if self.quarantine is not None:
            step.stats = {
                "quarantined": [
                    event.mutator
                    for event in self.quarantine.events[events_before:]
                ]
            }
        return step

    def _mutate(self, text: str, info: MutatorInfo) -> tuple[str, tuple] | None:
        """The mutated text plus its edit script, or None on failure/no-op."""
        mutator = info.create(random.Random(self.rng.randrange(1 << 62)))
        try:
            with self.telemetry.span("mutate", mutator=info.name):
                outcome = apply_mutator(mutator, text, cache=self.cache)
        except (MutatorCrash, MutatorHang, RecursionError) as exc:
            if self.quarantine is not None and self.quarantine.record_failure(
                info.name, type(exc).__name__
            ):
                self.telemetry.emit(
                    "quarantine", info.name, reason=type(exc).__name__
                )
            return None
        if not outcome.changed:
            # No-op applications are not successes: they must not reset the
            # breaker's consecutive-failure streak (see MuCFuzz._mutate).
            return None
        if self.quarantine is not None:
            self.quarantine.record_success(info.name)
        return outcome.mutant_text, outcome.edits
