"""The seed corpus: 1,839 test-suite style programs (§5.1).

The paper seeds every mutation-based fuzzer with 1,839 programs derived from
the GCC and Clang test suites.  We generate a deterministic stand-in corpus
of the same size: a set of hand-written templates modelled on the actual
test-suite files the paper's case studies mutate (GCC #20001226-1, the
sprintf/strlen case, the ``while (--n)`` loop of GCC #111820, the
``_Complex``/``__imag`` file of GCC #111819, Clang #69213's struct-pointer
pattern), plus policy-varied random programs from :mod:`progen`.
"""

from __future__ import annotations

import random

from repro.fuzzing.progen import GenPolicy, ProgramGenerator

#: Hand-written seed templates (paper-case analogs).  `{n}` is a variation
#: knob so repeated instantiations stay distinct.
TEMPLATES = [
    # GCC test-suite #20001226-1 analog: label-heavy computation (Ret2V →
    # Clang #63762).
    """
unsigned foo{n}(int x[64], int y[64]) {{
  int i;
  for (i = 0; i < 64; i++) {{ x[i] += y[i] & {n}; }}
  if (x[0] > y[1]) goto gt;
  if (x[1] < y[0]) goto lt;
  return 0x01234567;
gt:
  return 0x12345678;
lt:
  return 0xF012345;
}}
int arrs{n}[64];
int main(void) {{
  unsigned r = foo{n}(arrs{n}, arrs{n});
  printf("%u\\n", r);
  return 0;
}}
""",
    # The sprintf/strlen test (GCC strlen-opt crash case of §5.2).
    """
static char buffer{n}[32];
int test4_{n}(void) {{
  return sprintf(buffer{n}, "%s", "bar");
}}
void main_test{n}(void) {{
  memset(buffer{n}, 'A', 32);
  if (test4_{n}() != 3) abort();
}}
int main(void) {{
  main_test{n}();
  printf("%s\\n", buffer{n});
  return 0;
}}
""",
    # The r[6] accumulation loop with a decremented parameter
    # (GCC #111820 precursor).
    """
int r{n}[6];
void f{n}(int n) {{
  while (--n) {{
    r{n}[0] += r{n}[5];
    r{n}[1] += r{n}[0];
    r{n}[2] += r{n}[1];
    r{n}[3] += r{n}[2];
    r{n}[4] += r{n}[3];
    r{n}[5] += r{n}[4];
  }}
}}
int main(void) {{
  f{n}({n} + 2);
  printf("%d\\n", r{n}[5]);
  return 0;
}}
""",
    # _Complex double with __imag (GCC #111819 precursor).
    """
_Complex double x{n};
int *bar{n}(void) {{
  return (int *)&__imag x{n};
}}
int main(void) {{
  int *p = bar{n}();
  *p = {n};
  printf("%d\\n", *p);
  return 0;
}}
""",
    # Struct pointers and compound literals (Clang #69213 precursor).
    """
struct s{n} {{ int a; int b; }};
void foo{n}(struct s{n} *ptr) {{
  *ptr = (struct s{n}) {{ {n}, 0 }};
}}
int main(void) {{
  struct s{n} v;
  foo{n}(&v);
  printf("%d\\n", v.a);
  return 0;
}}
""",
    # A switch-dense program (test-suite style).
    """
int classify{n}(int v) {{
  switch (v & 7) {{
    case 0: return 10;
    case 1: return 11;
    case 2: v += 2;
    case 3: return v;
    case 4: break;
    default: return -v;
  }}
  return 0;
}}
int main(void) {{
  int i, total = 0;
  for (i = 0; i < 16; i++) total += classify{n}(i + {n});
  printf("%d\\n", total);
  return 0;
}}
""",
    # Pointer/array interplay.
    """
int data{n}[16];
long sum{n}(int *p, int count) {{
  long total = 0;
  while (count-- > 0) total += *p++;
  return total;
}}
int main(void) {{
  int i;
  for (i = 0; i < 16; i++) data{n}[i] = i * {n};
  printf("%ld\\n", sum{n}(data{n}, 16));
  return 0;
}}
""",
    # Enum / typedef / conditional mix.
    """
typedef int word{n};
enum mode{n} {{ OFF{n}, ON{n} = {n} + 1, AUTO{n} }};
word{n} pick{n}(word{n} a, word{n} b) {{
  return a > b ? a - b : (a == b ? ON{n} : b - a);
}}
int main(void) {{
  word{n} acc = 0;
  int i;
  for (i = 0; i < 10; i++) acc = pick{n}(acc, i);
  printf("%d\\n", acc + AUTO{n});
  return 0;
}}
""",
]


def template_seeds(count_per_template: int = 3) -> list[str]:
    seeds = []
    for template in TEMPLATES:
        for n in range(1, count_per_template + 1):
            seeds.append(template.format(n=n).lstrip())
    return seeds


def generate_seeds(count: int = 1839, seed: int = 1839) -> list[str]:
    """The deterministic seed corpus (default size matches §5.1)."""
    rng = random.Random(seed)
    seeds = template_seeds()
    # Vary generation policy across the corpus, like a real test suite's mix.
    policies = [
        GenPolicy(),
        GenPolicy(use_goto=False, max_stmts=6),
        GenPolicy(use_switch=False, use_struct=False, max_stmts=14),
        GenPolicy(loop_focus=True, max_stmts=8),
        GenPolicy(use_complex=True, max_stmts=7),
        GenPolicy(int_types=("int", "long", "unsigned int"), max_stmts=12),
    ]
    while len(seeds) < count:
        policy = policies[len(seeds) % len(policies)]
        gen = ProgramGenerator(random.Random(rng.randrange(1 << 62)), policy)
        seeds.append(gen.generate())
    return seeds[:count]
