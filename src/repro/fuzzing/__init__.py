"""Fuzzers: μCFuzz, the macro fuzzer, the four baselines, and the campaign
runner used by the evaluation benches."""

from repro.fuzzing.corpus import Corpus, ProgramEntry
from repro.fuzzing.seedgen import generate_seeds
from repro.fuzzing.schedule import MutatorScheduler
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.macro import MacroFuzzer
from repro.fuzzing.campaign import Campaign, CampaignResult, run_campaign
from repro.fuzzing.parallel import (
    CellOutcome,
    CellSpec,
    run_cells,
    run_cells_resilient,
)

__all__ = [
    "Corpus",
    "ProgramEntry",
    "generate_seeds",
    "MutatorScheduler",
    "MuCFuzz",
    "MacroFuzzer",
    "Campaign",
    "CampaignResult",
    "run_campaign",
    "CellOutcome",
    "CellSpec",
    "run_cells",
    "run_cells_resilient",
]
