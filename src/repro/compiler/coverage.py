"""Branch-coverage instrumentation for the simulated compilers.

Compiler components report branch *edges* — (site, outcome) pairs — into a
:class:`CoverageMap`.  Sites are parameterized by the structures being
processed (node kinds, operator names, type combinations, pass decisions), so
the edge space grows with input diversity the way real compiler branch
coverage does; μCFuzz's Algorithm 1 keeps a mutant iff it covers a new edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable


Edge = tuple[str, Hashable]


@dataclass
class CoverageMap:
    """A set of covered branch edges, with cheap union/diff operations."""

    edges: set[Edge] = field(default_factory=set)
    #: Optional event sink: when set, every :meth:`hit` *attempt* (including
    #: re-hits of already-covered edges) is appended as ``("cov", site,
    #: outcome)``, in order.  The incremental middle end
    #: (:mod:`repro.compiler.incremental`) records a compile's event stream
    #: through this hook and replays it for unchanged functions.  Excluded
    #: from :meth:`copy` and merge semantics.
    journal: list | None = field(default=None, repr=False, compare=False)

    def hit(self, site: str, outcome: Hashable = True) -> None:
        """Record that branch ``site`` was taken with ``outcome``."""
        if self.journal is not None:
            self.journal.append(("cov", site, outcome))
        self.edges.add((site, outcome))

    def merge(self, other: "CoverageMap | Iterable[Edge]") -> int:
        """Merge edges in; returns how many were new."""
        edges = other.edges if isinstance(other, CoverageMap) else set(other)
        new = len(edges - self.edges)
        self.edges |= edges
        return new

    def new_edges(self, other: "CoverageMap | Iterable[Edge]") -> set[Edge]:
        edges = other.edges if isinstance(other, CoverageMap) else set(other)
        return edges - self.edges

    def covers(self, other: "CoverageMap") -> bool:
        """Whether this map already covers every edge of ``other``."""
        return other.edges <= self.edges

    def __len__(self) -> int:
        return len(self.edges)

    def copy(self) -> "CoverageMap":
        return CoverageMap(set(self.edges))
