"""A three-address intermediate representation.

The IR is deliberately LLVM-flavoured: functions of basic blocks, virtual
temporaries, explicit loads/stores against stack slots and globals, and
branch/jump terminators.  The optimizer passes and the back end operate on
this representation; the interpreter executes it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union


class IRType(enum.Enum):
    I8 = "i8"
    I16 = "i16"
    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"
    PTR = "ptr"
    VOID = "void"

    @property
    def is_int(self) -> bool:
        return self in (IRType.I8, IRType.I16, IRType.I32, IRType.I64)

    @property
    def is_float(self) -> bool:
        return self in (IRType.F32, IRType.F64)

    @property
    def size(self) -> int:
        return {
            IRType.I8: 1, IRType.I16: 2, IRType.I32: 4, IRType.I64: 8,
            IRType.F32: 4, IRType.F64: 8, IRType.PTR: 8, IRType.VOID: 0,
        }[self]

    @property
    def bits(self) -> int:
        return self.size * 8


@dataclass(frozen=True)
class Temp:
    """A virtual register."""

    index: int

    def __repr__(self) -> str:
        return f"%t{self.index}"


@dataclass(frozen=True)
class ImmInt:
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ImmFloat:
    value: float

    def __repr__(self) -> str:
        return repr(self.value)


Operand = Union[Temp, ImmInt, ImmFloat]


@dataclass
class Instr:
    """Base class for IR instructions."""

    def operands(self) -> list[Operand]:
        return []

    def dest(self) -> Temp | None:
        return None

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        pass

    @property
    def has_side_effects(self) -> bool:
        return False


@dataclass
class BinOp(Instr):
    dst: Temp
    op: str  # + - * / % << >> & | ^ and comparisons: lt le gt ge eq ne
    lhs: Operand
    rhs: Operand
    ty: IRType

    def operands(self) -> list[Operand]:
        return [self.lhs, self.rhs]

    def dest(self) -> Temp | None:
        return self.dst

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.lhs = mapping.get(self.lhs, self.lhs)
        self.rhs = mapping.get(self.rhs, self.rhs)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.ty.value} {self.lhs}, {self.rhs}"


@dataclass
class UnOp(Instr):
    dst: Temp
    op: str  # neg, lnot, bnot
    src: Operand
    ty: IRType

    def operands(self) -> list[Operand]:
        return [self.src]

    def dest(self) -> Temp | None:
        return self.dst

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.src = mapping.get(self.src, self.src)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.ty.value} {self.src}"


@dataclass
class Cast(Instr):
    dst: Temp
    src: Operand
    from_ty: IRType
    to_ty: IRType
    signed: bool = True

    def operands(self) -> list[Operand]:
        return [self.src]

    def dest(self) -> Temp | None:
        return self.dst

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.src = mapping.get(self.src, self.src)

    def __repr__(self) -> str:
        return f"{self.dst} = cast {self.from_ty.value}->{self.to_ty.value} {self.src}"


@dataclass
class LocalAddr(Instr):
    """Address of a stack slot."""

    dst: Temp
    slot: str

    def dest(self) -> Temp | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = local &{self.slot}"


@dataclass
class GlobalAddr(Instr):
    dst: Temp
    name: str

    def dest(self) -> Temp | None:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = global &{self.name}"


@dataclass
class Load(Instr):
    dst: Temp
    ptr: Operand
    ty: IRType
    volatile: bool = False

    def operands(self) -> list[Operand]:
        return [self.ptr]

    def dest(self) -> Temp | None:
        return self.dst

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.ptr = mapping.get(self.ptr, self.ptr)

    @property
    def has_side_effects(self) -> bool:
        return self.volatile

    def __repr__(self) -> str:
        v = " volatile" if self.volatile else ""
        return f"{self.dst} = load{v} {self.ty.value} {self.ptr}"


@dataclass
class Store(Instr):
    ptr: Operand
    value: Operand
    ty: IRType
    volatile: bool = False

    def operands(self) -> list[Operand]:
        return [self.ptr, self.value]

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.ptr = mapping.get(self.ptr, self.ptr)
        self.value = mapping.get(self.value, self.value)

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        v = " volatile" if self.volatile else ""
        return f"store{v} {self.ty.value} {self.value} -> {self.ptr}"


@dataclass
class Gep(Instr):
    """Pointer arithmetic: dst = base + index * scale + offset."""

    dst: Temp
    base: Operand
    index: Operand
    scale: int
    offset: int = 0

    def operands(self) -> list[Operand]:
        return [self.base, self.index]

    def dest(self) -> Temp | None:
        return self.dst

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.base = mapping.get(self.base, self.base)
        self.index = mapping.get(self.index, self.index)

    def __repr__(self) -> str:
        return f"{self.dst} = gep {self.base} + {self.index}*{self.scale} + {self.offset}"


@dataclass
class Call(Instr):
    dst: Temp | None
    callee: str
    args: list[Operand]
    arg_tys: list[IRType]
    ret_ty: IRType

    def operands(self) -> list[Operand]:
        return list(self.args)

    def dest(self) -> Temp | None:
        return self.dst

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.args = [mapping.get(a, a) for a in self.args]

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        dst = f"{self.dst} = " if self.dst else ""
        return f"{dst}call {self.callee}({args})"


@dataclass
class Memcpy(Instr):
    dst_ptr: Operand
    src_ptr: Operand
    size: int

    def operands(self) -> list[Operand]:
        return [self.dst_ptr, self.src_ptr]

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.dst_ptr = mapping.get(self.dst_ptr, self.dst_ptr)
        self.src_ptr = mapping.get(self.src_ptr, self.src_ptr)

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"memcpy {self.dst_ptr} <- {self.src_ptr} ({self.size})"


# Terminators ----------------------------------------------------------------


@dataclass
class Jmp(Instr):
    target: str

    def __repr__(self) -> str:
        return f"jmp {self.target}"


@dataclass
class Br(Instr):
    cond: Operand
    if_true: str
    if_false: str

    def operands(self) -> list[Operand]:
        return [self.cond]

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        self.cond = mapping.get(self.cond, self.cond)

    def __repr__(self) -> str:
        return f"br {self.cond} ? {self.if_true} : {self.if_false}"


@dataclass
class Ret(Instr):
    value: Operand | None
    ty: IRType

    def operands(self) -> list[Operand]:
        return [self.value] if self.value is not None else []

    def replace_operands(self, mapping: dict[Operand, Operand]) -> None:
        if self.value is not None:
            self.value = mapping.get(self.value, self.value)

    def __repr__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


TERMINATORS = (Jmp, Br, Ret)


@dataclass
class Block:
    label: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr | None:
        if self.instrs and isinstance(self.instrs[-1], TERMINATORS):
            return self.instrs[-1]
        return None

    def successors(self) -> list[str]:
        term = self.terminator
        if isinstance(term, Jmp):
            return [term.target]
        if isinstance(term, Br):
            return [term.if_true, term.if_false]
        return []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<block {self.label} ({len(self.instrs)} instrs)>"


@dataclass
class IRFunction:
    name: str
    params: list[tuple[str, IRType]]
    ret_ty: IRType
    blocks: list[Block] = field(default_factory=list)
    #: slot name -> (size in bytes, value IRType or None for aggregates)
    slots: dict[str, int] = field(default_factory=dict)
    attributes: list[str] = field(default_factory=list)

    def block(self, label: str) -> Block:
        for b in self.blocks:
            if b.label == label:
                return b
        raise KeyError(label)

    def block_map(self) -> dict[str, Block]:
        return {b.label: b for b in self.blocks}

    def instructions(self) -> Iterator[Instr]:
        for b in self.blocks:
            yield from b.instrs

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {b.label: [] for b in self.blocks}
        for b in self.blocks:
            for s in b.successors():
                preds.setdefault(s, []).append(b.label)
        return preds

    def dump(self) -> str:
        lines = [f"func {self.name}({', '.join(n for n, _ in self.params)}):"]
        for slot, size in self.slots.items():
            lines.append(f"  slot {slot}: {size}")
        for b in self.blocks:
            lines.append(f"{b.label}:")
            lines.extend(f"  {i!r}" for i in b.instrs)
        return "\n".join(lines)


@dataclass
class GlobalVar:
    name: str
    size: int
    #: Initial bytes as a flat list of (offset, IRType, int|float) triples.
    init: list[tuple[int, IRType, int | float]] = field(default_factory=list)
    #: Raw string data (for string literals / char arrays).
    bytes_init: bytes | None = None
    const: bool = False
    volatile: bool = False


@dataclass
class IRModule:
    functions: dict[str, IRFunction] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)

    def dump(self) -> str:
        parts = [f"global {g.name}: {g.size}" for g in self.globals.values()]
        parts.extend(f.dump() for f in self.functions.values())
        return "\n\n".join(parts)
