"""Compiler crash/hang modelling.

A crash carries synthetic stack frames; unique crashes are identified by the
top two frames (program counter included), exactly as in §5.1, and helper
frames like ``llvm::report_error`` are excluded from bucketing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Frames excluded from crash bucketing (the paper excludes helpers like
#: llvm::report_error).
HELPER_FRAMES = frozenset(
    {
        "llvm::report_error",
        "llvm::report_fatal_error",
        "internal_error",
        "fancy_abort",
        "abort",
        "assert_fail",
    }
)


@dataclass(frozen=True)
class StackFrame:
    function: str
    pc: int

    def __repr__(self) -> str:
        return f"{self.function}+{self.pc:#x}"


@dataclass
class CrashSignature:
    """The dedup key: top two non-helper frames."""

    frames: tuple[StackFrame, ...]

    def __hash__(self) -> int:
        return hash(self.frames)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CrashSignature) and self.frames == other.frames


class CompilerCrash(Exception):
    """An internal compiler error (assertion failure or segfault)."""

    def __init__(
        self,
        bug_id: str,
        module: str,
        message: str,
        frames: list[StackFrame],
        kind: str = "assert",  # "assert" | "segfault"
    ) -> None:
        super().__init__(message)
        self.bug_id = bug_id
        self.module = module
        self.message = message
        self.frames = frames
        self.kind = kind

    def signature(self) -> CrashSignature:
        useful = [f for f in self.frames if f.function not in HELPER_FRAMES]
        return CrashSignature(tuple(useful[:2]))


class CompilerHang(Exception):
    """The compiler failed to terminate (detected via a fuel limit)."""

    def __init__(self, bug_id: str, module: str, message: str) -> None:
        super().__init__(message)
        self.bug_id = bug_id
        self.module = module
        self.message = message
