"""Cross-step middle-end compile sessions: content-keyed IR interning.

PR 3's incremental middle end replays a clean function's journal slice from
its *parent's* recorded run — every mutant still pays O(parent events) per
clean function, and the reuse chain is pinned to one parent lineage.  A
:class:`CompileSession` generalizes that into a persistent, cross-step store:
per-function middle-end artifacts (IR generation replay segments, per-phase
optimizer segments, the final post-pipeline IR object, backend asm/stats) are
interned under a **content key** that captures everything the function's
middle-end run can observe.  Any mutant whose function hashes to a known key
skips irgen, the optimizer, and the backend for that function entirely —
regardless of which program the record was made in.

The key must cover all cross-declaration state the middle end reads:

* the options tuple (personality, bug seed, -O level, flags);
* the enum-constant table (``_collect_enums`` walks the whole unit);
* the *environment digest* — per-decl header text for function definitions
  (signature only; bodies are invisible to other decls) and full text for
  everything else, in declaration order (sema-visible state: typedefs,
  records, globals, prototypes);
* the running **globals-state digest** — name and content of every global
  emitted by earlier decls (``_intern_string`` dedups string literals by
  content against *all* module globals, so a clean function's interned-name
  references depend on what preceded it);
* the string/static name counters at the decl's start (interned names embed
  them);
* the declaration's full source text.

Inlining is the one pass that makes one function's events depend on another
function's *body*.  Records therefore carry the recording module's inline
candidate name-set and a digest over the candidates' (name, content key)
pairs; reuse aborts — falling back to a fully live, self-recording run —
whenever the current module's candidate situation differs (a dirty function
is or was a candidate, candidate sets disagree across records, or a
candidate's body key changed).

Replay is segment-compiled: each recorded journal slice is split at
bug-checkpoint events into ``(coverage edge set, stats deltas, checkpoint)``
segments.  Coverage applies as one bulk set-union and stats as direct counter
adds — O(unique sites), not O(events) — while checkpoints run live through
the bug registry with the evolving feature dict, preserving crash identity
and the exact abort point of a seeded crash.

``paranoid=True`` on :meth:`Compiler.compile` cross-checks every
session-served compile against a cold run (no cache, no session) via
:func:`~repro.compiler.incremental.assert_results_equal`.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field

from repro.cast.cache import decl_digests, source_digest
from repro.compiler.backend import BackendResult, _lower_function, lower_to_asm
from repro.compiler.flatir import FunctionSnapshot
from repro.compiler.ir import IRFunction, IRModule
from repro.compiler.irgen import FlatIRGen, IRGen, LoweringError
from repro.compiler.incremental import (
    _MiddleAbort,
    _decl_kind,
    _stats_delta,
    middle_memo_key,
)
from repro.compiler.passes import (
    OptContext,
    cleanup_opt,
    flat_inline_into_caller,
    flat_inlinable,
    flat_loop_vectorize,
    flat_strlen_opt_fn,
    inline_candidates,
    inline_into_caller,
    local_opt,
    loop_vectorize,
    strlen_opt_fn,
)
from repro.compiler.passes.inline import _inlinable
from repro.telemetry.spans import span

#: Default bound on interned per-function records.  A campaign cell's live
#: working set is (pool size × functions per program) plus mutant churn;
#: 4096 holds the whole 600-step bench without evictions.
DEFAULT_SESSION_SIZE = 4096
#: Default bound on whole-result memos (same-text recompiles).
DEFAULT_RESULT_SIZE = 2048


def _digest(*parts) -> str:
    """A stable digest over repr-serializable parts."""
    return source_digest("\x1f".join(repr(p) for p in parts))


def _global_sig(name: str, g) -> str:
    """Serialized identity of one emitted global (name + full content)."""
    return repr(
        (
            name,
            g.size,
            g.const,
            g.volatile,
            g.bytes_init,
            tuple((off, ty.value, val) for off, ty, val in g.init),
        )
    )


def _segments(events: tuple) -> tuple:
    """Compile a journal slice into bulk-applicable replay segments.

    Each segment is ``(edges, stats, check)``: the coverage edges and stats
    deltas preceding the next checkpoint (order-free — coverage is a set,
    stats are sums), then the checkpoint itself, which must run live and in
    order because it can raise a seeded crash.  A crash truncates the event
    stream exactly where the original run stopped.
    """
    segs: list = []
    edges: list = []
    stats: list = []
    for ev in events:
        tag = ev[0]
        if tag == "cov":
            edges.append((ev[1], ev[2]))
        elif tag == "stat":
            stats.append((ev[1], ev[2]))
        else:
            segs.append(
                (frozenset(edges), tuple(stats), (ev[1], tuple(ev[2].items())))
            )
            edges, stats = [], []
    if edges or stats or not segs:
        segs.append((frozenset(edges), tuple(stats), None))
    return tuple(segs)


@dataclass(frozen=True)
class SessionFnRecord:
    """Everything the middle end did for one declaration, replayable."""

    kind: str  # "fn" | "var"
    name: str | None
    irgen_segments: tuple
    irgen_stats: tuple  # ((key, n), ...) applied to IRGenStats
    globals_added: tuple  # ((name, GlobalVar), ...) in emission order
    fn: IRFunction | None  # final post-pipeline object (never mutated again)
    str_delta: int
    static_delta: int
    phase_segments: dict = field(default_factory=dict)  # phase -> segments
    backend_segments: tuple = ()
    backend_stats: tuple = ()
    asm: str = ""
    candidate_names: frozenset = frozenset()
    candidates_digest: str = ""
    #: Post-local-opt flat snapshot when this function was an inline
    #: candidate in its recording run (the body callers inline by value);
    #: materialized back to object IR on reuse.
    snapshot: "FunctionSnapshot | None" = None


@dataclass(frozen=True)
class SessionResult:
    """The complete observable outcome of one non-crashing compile."""

    ok: bool
    diagnostics: tuple
    asm: str
    module: IRModule | None
    features: dict
    edges: frozenset
    stages: tuple


class CompileSession:
    """A persistent cross-step store of interned middle-end artifacts."""

    def __init__(
        self,
        maxsize: int = DEFAULT_SESSION_SIZE,
        result_maxsize: int = DEFAULT_RESULT_SIZE,
    ) -> None:
        if maxsize < 1:
            raise ValueError("session maxsize must be >= 1")
        self.maxsize = maxsize
        self.result_maxsize = result_maxsize
        self._records: OrderedDict[str, SessionFnRecord] = OrderedDict()
        self._results: OrderedDict[tuple, SessionResult] = OrderedDict()
        #: Per-declaration replays served / live lowers recorded.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Reuse attempts that fell back to a fully live run.
        self.aborts = 0
        #: Whole-compile replays (same text, same options).
        self.result_hits = 0
        #: Parent compiles issued by :meth:`Compiler.compile_batch` to warm
        #: the step's shared clean functions.
        self.materializations = 0
        self.paranoid_checks = 0
        #: Front-end decl summaries interned across cache entries, keyed by
        #: ``(header digest tuple, decl digest)`` — see
        #: :func:`repro.compiler.driver._decl_summaries`.
        self.summary_intern: OrderedDict[tuple, tuple] = OrderedDict()
        self.summary_hits = 0
        #: Mutable sink for :func:`repro.cast.cache.decl_digests` node-memo
        #: hit counting; merged into :meth:`stats`.
        self.digest_stats: dict = {"decl_digest_memo_hits": 0}

    # -- record store ------------------------------------------------------

    def get(self, key: str) -> SessionFnRecord | None:
        rec = self._records.get(key)
        if rec is not None:
            self._records.move_to_end(key)
        return rec

    def put(self, key: str, rec: SessionFnRecord) -> None:
        self._records[key] = rec
        self._records.move_to_end(key)
        while len(self._records) > self.maxsize:
            self._records.popitem(last=False)
            self.evictions += 1

    # -- whole-result memo -------------------------------------------------

    def result_for(self, key: tuple) -> SessionResult | None:
        memo = self._results.get(key)
        if memo is not None:
            self._results.move_to_end(key)
        return memo

    def store_result(self, key: tuple, memo: SessionResult) -> None:
        self._results[key] = memo
        self._results.move_to_end(key)
        while len(self._results) > self.result_maxsize:
            self._results.popitem(last=False)

    def has_result(self, options_key: str, text: str) -> bool:
        return (options_key, source_digest(text)) in self._results

    # -- introspection -----------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "middle_session_hits": self.hits,
            "middle_session_misses": self.misses,
            "middle_session_evictions": self.evictions,
            "middle_session_aborts": self.aborts,
            "middle_session_result_hits": self.result_hits,
            "middle_session_hit_rate": self.hit_rate,
            "middle_session_size": len(self._records),
            "middle_session_materializations": self.materializations,
            "middle_session_paranoid_checks": self.paranoid_checks,
            "middle_session_summary_hits": self.summary_hits,
            "decl_digest_memo_hits": self.digest_stats[
                "decl_digest_memo_hits"
            ],
        }

    def __len__(self) -> int:
        return len(self._records)


class _Pending:
    """Mutable capture state for one live-lowered declaration."""

    __slots__ = (
        "key", "kind", "name", "irgen_events", "irgen_stats", "globals_added",
        "str_delta", "static_delta", "phase_events", "backend_events",
        "backend_stats", "asm", "snapshot",
    )

    def __init__(self, key: str, kind: str, name: str | None) -> None:
        self.key = key
        self.kind = kind
        self.name = name
        self.irgen_events: tuple = ()
        self.irgen_stats: tuple = ()
        self.globals_added: tuple = ()
        self.str_delta = 0
        self.static_delta = 0
        self.phase_events: dict = {}
        self.backend_events: tuple = ()
        self.backend_stats: tuple = ()
        self.asm = ""
        self.snapshot: IRFunction | None = None


class _SessionRun:
    """One session-backed middle-end run (interning and/or replaying)."""

    def __init__(
        self,
        compiler,
        session: CompileSession,
        entry,
        opt_level: int,
        flags: tuple,
        cov,
        features: dict,
        journal: list,
        plan,
        reuse: bool,
    ) -> None:
        self.compiler = compiler
        self.session = session
        self.entry = entry
        self.unit = entry.unit
        self.opt_level = opt_level
        self.flags = flags
        self.cov = cov
        self.features = features
        self.journal = journal
        self.plan = plan
        self.reuse = reuse
        #: decl index -> reused record; fn name -> record for fn records.
        self.reused: dict[int, SessionFnRecord] = {}
        self.clean_fns: dict[str, SessionFnRecord] = {}
        self.pending: list[_Pending] = []
        self.pending_fn: dict[str, _Pending] = {}
        #: fn name -> content key, for candidate digests (both paths).
        self.fn_keys: dict[str, str] = {}
        self.candidate_names: frozenset = frozenset()
        self.candidates_digest = ""

        def checkpoint(point: str, extra: dict) -> None:
            self.journal.append(("check", point, dict(extra)))
            merged = dict(self.features)
            merged.update(extra)
            self.compiler.bugs.check(point, merged)

        self.checkpoint = checkpoint

    # -- replay ------------------------------------------------------------

    def _apply_segments(self, segments: tuple, counters: Counter | None) -> None:
        """Bulk-apply compiled segments; checkpoints run live, unjournaled.

        Replayed events must not re-enter the journal: live declarations'
        capture slices are delimited by journal length, and a replay landing
        inside one would corrupt it.  Coverage goes straight into the edge
        set (bypassing ``cov.hit``'s journal append) for the same reason.
        """
        for edges, stats, check in segments:
            if edges:
                self.cov.edges.update(edges)
            if stats:
                if counters is None:
                    raise _MiddleAbort("unexpected stats outside the optimizer")
                for key, n in stats:
                    counters[key] += n
            if check is not None:
                merged = dict(self.features)
                merged.update(dict(check[1]))
                self.compiler.bugs.check(check[0], merged)

    # -- irgen -------------------------------------------------------------

    def lower(self) -> IRModule:
        flat_native = getattr(self.compiler, "flat_native", False)
        if flat_native:
            # Buffer-direct emission; replayed records re-inject their
            # FlatFunction carriers verbatim (zero bridge crossings).
            irgen = FlatIRGen(
                self.entry.sema,
                self.cov,
                counters=getattr(self.compiler, "bridge", None),
            )
        else:
            irgen = IRGen(self.entry.sema, self.cov)
        irgen._collect_enums(self.unit)
        enum_digest = _digest(tuple(irgen._enum_values.items()))
        full_digests, header_digests = decl_digests(
            self.entry, self.plan, memo_stats=self.session.digest_stats
        )
        options = middle_memo_key(
            self.compiler.name, self.compiler.bug_seed, self.opt_level,
            tuple(self.flags),
            mode="flat-native" if flat_native else "",
        )
        env_digest = _digest(header_digests)
        globals_state = ""
        for i, decl in enumerate(self.unit.decls):
            kind, name = _decl_kind(decl)
            if kind == "other":
                continue  # no middle-end footprint; covered by env_digest
            key = _digest(
                options, env_digest, enum_digest, globals_state,
                irgen._string_counter, irgen._static_counter,
                kind, full_digests[i],
            )
            if kind == "fn":
                self.fn_keys[name] = key
            rec = self.session.get(key) if self.reuse else None
            if rec is not None:
                self._apply_segments(rec.irgen_segments, None)
                for k, n in rec.irgen_stats:
                    irgen.stats.counters[k] += n
                for gname, gvar in rec.globals_added:
                    irgen.module.globals[gname] = gvar
                if rec.fn is not None:
                    irgen.module.functions[rec.name] = rec.fn
                irgen._string_counter += rec.str_delta
                irgen._static_counter += rec.static_delta
                self.reused[i] = rec
                if kind == "fn":
                    self.clean_fns[name] = rec
                self.session.hits += 1
                added = rec.globals_added
            else:
                start = len(self.journal)
                stats0 = Counter(irgen.stats.counters)
                g0 = len(irgen.module.globals)
                str0, static0 = irgen._string_counter, irgen._static_counter
                if kind == "var":
                    irgen._lower_global(decl)
                else:
                    irgen._lower_function(decl)
                added = tuple(list(irgen.module.globals.items())[g0:])
                pend = _Pending(key, kind, name)
                pend.irgen_events = tuple(self.journal[start:])
                pend.irgen_stats = _stats_delta(stats0, irgen.stats.counters)
                pend.globals_added = added
                pend.str_delta = irgen._string_counter - str0
                pend.static_delta = irgen._static_counter - static0
                self.pending.append(pend)
                if kind == "fn":
                    self.pending_fn[name] = pend
                self.session.misses += 1
            for gname, gvar in added:
                globals_state = _digest(globals_state, _global_sig(gname, gvar))
        self.irgen = irgen
        return irgen.module

    # -- optimizer ---------------------------------------------------------

    def optimize(self, module: IRModule, ctx: OptContext) -> None:
        if ctx.opt_level <= 0:
            return

        def drive(phase: str, fn, runner) -> None:
            rec = self.clean_fns.get(fn.name)
            if rec is not None:
                segments = rec.phase_segments.get(phase)
                if segments is None:  # pragma: no cover - defensive
                    raise _MiddleAbort(f"missing session phase {phase}")
                self._apply_segments(segments, ctx.stats.counters)
                return
            start = len(self.journal)
            runner()
            pend = self.pending_fn.get(fn.name)
            if pend is not None:
                pend.phase_events[phase] = tuple(self.journal[start:])

        # Flat-native runs splice/scan IRBuffers directly; the object
        # stage entry points remain the paranoid reference path.
        inline_fn = flat_inline_into_caller if ctx.flat_native else inline_into_caller
        strlen_fn = flat_strlen_opt_fn if ctx.flat_native else strlen_opt_fn
        vectorize_fn = flat_loop_vectorize if ctx.flat_native else loop_vectorize

        for fn in list(module.functions.values()):
            drive("local", fn, lambda f=fn: local_opt(f, ctx))
        if ctx.opt_level >= 2:
            candidates = self._candidates(module)
            if candidates:
                for caller in module.functions.values():
                    drive(
                        "inline",
                        caller,
                        lambda c=caller: inline_fn(c, candidates, ctx),
                    )
            for fn in module.functions.values():
                drive("strlen", fn, lambda f=fn: strlen_fn(f, module, ctx))
            for fn in list(module.functions.values()):
                drive("cleanup", fn, lambda f=fn: cleanup_opt(f, ctx))
        if ctx.opt_level >= 3 or ctx.flag("-ftree-vectorize"):
            for fn in list(module.functions.values()):
                drive("vectorize", fn, lambda f=fn: vectorize_fn(f, ctx))

    def _cand_digest(self, names: frozenset) -> str:
        return _digest(tuple(sorted((n, self.fn_keys[n]) for n in names)))

    def _candidates(self, module: IRModule) -> dict:
        """The inline candidate map, consistency-checked against records.

        Inlined bodies cross function boundaries, so every reused record must
        have been made against the *same* candidates — same name set, same
        per-candidate content keys (the post-local-opt snapshot is a pure
        function of the candidate's irgen key).  Any disagreement aborts to
        a fully live run, which re-records everything coherently.
        """
        flat_native = getattr(self.compiler, "flat_native", False)
        if not self.clean_fns:
            if flat_native:
                candidates = {
                    name: fn.buffer()
                    for name, fn in module.functions.items()
                    if flat_inlinable(fn.buffer())
                }
            else:
                candidates = inline_candidates(module)
            self.candidate_names = frozenset(candidates)
            self.candidates_digest = self._cand_digest(self.candidate_names)
            for name in candidates:
                pend = self.pending_fn.get(name)
                if pend is not None:
                    # Callers inline the body by value: snapshot it at this
                    # (post-local-opt) point, before later phases mutate it.
                    # Flat snapshots cost a handful of list copies instead of
                    # a deep object-graph walk.
                    pend.snapshot = FunctionSnapshot.of(module.functions[name])
            return candidates
        names = None
        for rec in self.clean_fns.values():
            if names is None:
                names = rec.candidate_names
            elif rec.candidate_names != names:
                raise _MiddleAbort("session candidate sets disagree")
        dirty = [n for n in module.functions if n not in self.clean_fns]
        for name in dirty:
            fn = module.functions[name]
            is_candidate = (
                flat_inlinable(fn.buffer()) if flat_native else _inlinable(fn)
            )
            if name in names or is_candidate:
                raise _MiddleAbort("dirty function affects inline candidacy")
        for name in names:
            rec = self.clean_fns.get(name)
            if rec is None or rec.snapshot is None:
                raise _MiddleAbort("candidate not served from the session")
        digest = self._cand_digest(names)
        for rec in self.clean_fns.values():
            if rec.candidates_digest != digest:
                raise _MiddleAbort("candidate bodies changed")
        self.candidate_names = names
        self.candidates_digest = digest
        if flat_native:
            # Session-served callee bodies feed the flat inliner as raw
            # buffers: no materialization, no bridge crossing.
            return {
                name: self.clean_fns[name].snapshot.buf
                for name in names
            }
        return {
            name: self.clean_fns[name].snapshot.materialize()
            for name in names
        }

    # -- backend -----------------------------------------------------------

    def backend(self, module: IRModule, ctx: OptContext) -> BackendResult:
        def lower_fn(fn, fn_ctx) -> BackendResult:
            rec = self.clean_fns.get(fn.name)
            if rec is not None:
                self._apply_segments(rec.backend_segments, None)
                return BackendResult(rec.asm, dict(rec.backend_stats))
            start = len(self.journal)
            res = _lower_function(fn, fn_ctx)
            pend = self.pending_fn.get(fn.name)
            if pend is not None:
                pend.backend_events = tuple(self.journal[start:])
                pend.backend_stats = tuple(res.stats.items())
                pend.asm = res.asm
            return res

        return lower_to_asm(module, ctx, fn_lowerer=lower_fn)

    # -- interning ---------------------------------------------------------

    def commit(self, module: IRModule) -> None:
        """Intern records for every live-lowered declaration.

        Only called after a complete, successful pipeline run: partial
        records (crash, lowering failure, abort) must never seed replays.
        """
        for pend in self.pending:
            self.session.put(
                pend.key,
                SessionFnRecord(
                    kind=pend.kind,
                    name=pend.name,
                    irgen_segments=_segments(pend.irgen_events),
                    irgen_stats=pend.irgen_stats,
                    globals_added=pend.globals_added,
                    fn=(
                        module.functions.get(pend.name)
                        if pend.kind == "fn"
                        else None
                    ),
                    str_delta=pend.str_delta,
                    static_delta=pend.static_delta,
                    phase_segments={
                        phase: _segments(events)
                        for phase, events in pend.phase_events.items()
                    },
                    backend_segments=_segments(pend.backend_events),
                    backend_stats=pend.backend_stats,
                    asm=pend.asm,
                    candidate_names=self.candidate_names,
                    candidates_digest=self.candidates_digest,
                    snapshot=pend.snapshot,
                ),
            )


def lower_and_optimize_session(
    compiler,
    session: CompileSession,
    entry,
    opt_level: int,
    flags: tuple,
    cov,
    features: dict,
    result,
    *,
    journal: list,
    plan=None,
    stages: list | None = None,
) -> None:
    """The session-backed middle end + back end of ``Compiler.compile``.

    Replaces :func:`repro.compiler.incremental.lower_and_optimize` when the
    compile carries a :class:`CompileSession`: per-function reuse is keyed on
    content, not parent lineage, so it also fires across steps, across pool
    members, and on mutants of mutants.  A reuse inconsistency aborts to a
    fully live run that re-records every declaration.
    """
    options = middle_memo_key(
        compiler.name,
        compiler.bug_seed,
        opt_level,
        tuple(flags),
        mode="flat-native" if getattr(compiler, "flat_native", False) else "",
    )
    result_key = (options, entry.source_hash)
    with span(compiler.tracer, "session"):
        memo = session.result_for(result_key)
    if memo is not None:
        session.result_hits += 1
        _replay_session_result(memo, cov, features, result, stages)
        return
    try:
        _run_session(
            compiler, session, entry, opt_level, flags, cov, features,
            result, journal, plan, stages, result_key, reuse=True,
        )
    except _MiddleAbort:
        session.aborts += 1
        # Same prefix property as the incremental middle end: everything
        # applied so far (idempotent coverage inserts, unmerged features) is
        # a subset of what the live run recomputes.  Stale replayed function
        # objects in the half-built module are discarded with it.
        journal.clear()
        _run_session(
            compiler, session, entry, opt_level, flags, cov, features,
            result, journal, plan, stages, result_key, reuse=False,
        )


def _run_session(
    compiler,
    session,
    entry,
    opt_level,
    flags,
    cov,
    features,
    result,
    journal,
    plan,
    stages,
    result_key,
    reuse,
) -> None:
    run = _SessionRun(
        compiler, session, entry, opt_level, flags, cov, features, journal,
        plan, reuse,
    )
    try:
        with span(compiler.tracer, "irgen"):
            module = run.lower()
    except (LoweringError, RecursionError) as exc:
        result.diagnostics.append(f"sorry, unimplemented: {exc}")
        features["lowering_failed"] = 1
        compiler.bugs.check("ir-gen", features)
        session.store_result(
            result_key,
            SessionResult(
                ok=False,
                diagnostics=tuple(result.diagnostics),
                asm="",
                module=None,
                features=dict(features),
                edges=frozenset(cov.edges),
                stages=tuple(stages) if stages is not None else (),
            ),
        )
        return
    features.update(run.irgen.stats.counters)
    compiler.bugs.check("ir-gen", features)

    with span(compiler.tracer, "opt"):
        ctx = OptContext(
            cov=cov,
            opt_level=opt_level,
            flags=compiler._personality_flags(flags),
            checkpoint=run.checkpoint,
            fuse=compiler.fuse_passes,
            flat=getattr(compiler, "flat_ir", False),
            flat_native=getattr(compiler, "flat_native", False),
            bridge=getattr(compiler, "bridge", None),
        )
        ctx.stats.journal = journal
        run.optimize(module, ctx)
    features.update(ctx.stats.counters)
    compiler.bugs.check("optimization", features)

    with span(compiler.tracer, "backend"):
        be = run.backend(module, ctx)
    if stages is not None:
        stages.append("backend")
    features.update(be.stats)
    compiler.bugs.check("back-end", features)

    result.ok = True
    result.asm = be.asm
    result.module = module
    compiler.fused_pass_runs += ctx.fused_runs
    with span(compiler.tracer, "session"):
        run.commit(module)
        session.store_result(
            result_key,
            SessionResult(
                ok=True,
                diagnostics=(),
                asm=be.asm,
                module=module,
                features=dict(features),
                edges=frozenset(cov.edges),
                stages=tuple(stages) if stages is not None else (),
            ),
        )


def _replay_session_result(
    memo: SessionResult, cov, features, result, stages
) -> None:
    """Re-apply a memoized compile outcome (same text, same options)."""
    cov.edges.update(memo.edges)
    result.diagnostics.extend(memo.diagnostics)
    features.update(memo.features)
    result.ok = memo.ok
    result.asm = memo.asm
    result.module = memo.module
    if stages is not None:
        for stage in memo.stages:
            if stage not in stages:
                stages.append(stage)
