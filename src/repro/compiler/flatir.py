"""A flat, slotted, array-of-struct encoding of the IR.

The object IR (:mod:`repro.compiler.ir`) spends the hot path allocating and
chasing per-node Python objects: every instruction is a dataclass, every
operand a frozen ``Temp``/``ImmInt``/``ImmFloat``, and every pass decision an
``isinstance`` chain.  :class:`IRBuffer` stores one function as parallel
arrays instead — opcode ints, destination temp indices, encoded operands,
type tags, and an opcode-specific ``aux`` payload — with blocks as lists of
instruction indices and all strings (op names, labels, slots, callees)
interned into one table.

Operand encoding
----------------

An operand is one int: ``enc = (payload << 2) | tag`` with

* ``tag 0`` — no operand (``enc == 0`` exactly; ``NONE``),
* ``tag 1`` — a temp; the payload is the (possibly negative) temp index,
* ``tag 2`` — an immediate; the payload is an index into the per-buffer
  immediate pool.

Negative temp indices (parameter temps) survive because Python's ``>>``
is arithmetic: ``(-1 << 2) | 1 == -3`` and ``-3 >> 2 == -1``, ``-3 & 3 == 1``.

The immediate pool deduplicates by *exact* value: ints by value, floats by
``repr`` so ``-0.0`` and ``0.0`` (equal under ``==``) keep distinct slots and
decode losslessly.  Pool entries are the frozen ``ImmInt``/``ImmFloat``
objects themselves, so bridging back to object form allocates nothing new
for immediates, and flat passes that need object-equality semantics (CSE
keys) can use the pooled objects directly.

The bridge contract
-------------------

``to_nodes(from_nodes(fn))`` is dump-identical and structurally equal to
``fn``; ``from_nodes(to_nodes(buf))`` reproduces ``buf`` bit-identically for
any freshly-encoded buffer (interning order is instruction order, which the
decode walk preserves).  Everything not ported to the buffer — inlining,
strlen/vectorize, crash seeding, coverage features, the paranoid
differential — keeps operating on the object form via this bridge.
"""

from __future__ import annotations

from repro.compiler.ir import (
    BinOp, Block, Br, Call, Cast, Gep, GlobalAddr, ImmFloat, ImmInt,
    IRFunction, IRType, Jmp, Load, LocalAddr, Memcpy, Ret, Store, Temp, UnOp,
)

# Opcode ints.  Order is part of the on-buffer format (dispatch tables index
# by these), so append-only.
(
    OP_BINOP, OP_UNOP, OP_CAST, OP_LOCALADDR, OP_GLOBALADDR, OP_LOAD,
    OP_STORE, OP_GEP, OP_CALL, OP_MEMCPY, OP_JMP, OP_BR, OP_RET,
) = range(13)

TERMINATOR_OPS = frozenset((OP_JMP, OP_BR, OP_RET))

#: tag -> IRType and back; tags index this tuple.
TYPES = tuple(IRType)
TYPE_TAG = {t: i for i, t in enumerate(TYPES)}
F32_TAG = TYPE_TAG[IRType.F32]
VOID_TAG = TYPE_TAG[IRType.VOID]

NONE = 0
TAG_TEMP = 1
TAG_IMM = 2


def temp_enc(index: int) -> int:
    return (index << 2) | TAG_TEMP


class IRBuffer:
    """One function's instructions as parallel arrays (see module docstring).

    Field usage per opcode (``-`` means unused/zero):

    =============  =====  ========  ========  =========  =======================
    opcode         dst    a         b         ty         aux
    =============  =====  ========  ========  =========  =======================
    OP_BINOP       temp   lhs       rhs       ty         op name id
    OP_UNOP        temp   src       -         ty         op name id
    OP_CAST        temp   src       -         to_ty      (from_ty << 1) | signed
    OP_LOCALADDR   temp   -         -         -          slot name id
    OP_GLOBALADDR  temp   -         -         -          global name id
    OP_LOAD        temp   ptr       -         ty         volatile
    OP_STORE       -      ptr       value     ty         volatile
    OP_GEP         temp   base      index     -          xdata id -> (scale, offset)
    OP_CALL        temp?  -         -         ret_ty     xdata id -> (callee id,
                                                         [arg encs], (arg ty tags))
    OP_MEMCPY      -      dst_ptr   src_ptr   -          size
    OP_JMP         -      -         -         -          target label id
    OP_BR          -      cond      true id   -          false label id
    OP_RET         -      value?    -         ty         -
    =============  =====  ========  ========  =========  =======================
    """

    __slots__ = (
        "name", "params", "ret_ty", "slots", "attributes",
        "opc", "dst", "a", "b", "ty", "aux",
        "imms", "imm_index", "names", "name_index", "xdata", "blocks",
    )

    def __init__(self, name: str = "", params=(), ret_ty: int = VOID_TAG):
        self.name = name
        self.params = list(params)  # [(param name, ty tag)]
        self.ret_ty = ret_ty
        self.slots: dict[str, int] = {}
        self.attributes: list[str] = []
        self.opc: list[int] = []
        self.dst: list[int | None] = []
        self.a: list[int] = []
        self.b: list[int] = []
        self.ty: list[int] = []
        self.aux: list[int] = []
        self.imms: list = []  # ImmInt | ImmFloat pool entries
        self.imm_index: dict = {}
        self.names: list[str] = []
        self.name_index: dict[str, int] = {}
        self.xdata: list = []
        self.blocks: list[list] = []  # [[label id, [instr idx, ...]], ...]

    # -- interning ---------------------------------------------------------

    def name_id(self, s: str) -> int:
        idx = self.name_index.get(s)
        if idx is None:
            idx = len(self.names)
            self.names.append(s)
            self.name_index[s] = idx
        return idx

    def imm_enc(self, op) -> int:
        """Encode an existing ``ImmInt``/``ImmFloat`` operand."""
        if type(op) is ImmInt:
            key = op.value
        else:
            key = (True, repr(op.value))
        idx = self.imm_index.get(key)
        if idx is None:
            idx = len(self.imms)
            self.imms.append(op)
            self.imm_index[key] = idx
        return (idx << 2) | TAG_IMM

    def imm_int_enc(self, value: int) -> int:
        idx = self.imm_index.get(value)
        if idx is None:
            idx = len(self.imms)
            self.imms.append(ImmInt(value))
            self.imm_index[value] = idx
        return (idx << 2) | TAG_IMM

    def imm_float_enc(self, value: float) -> int:
        key = (True, repr(value))
        idx = self.imm_index.get(key)
        if idx is None:
            idx = len(self.imms)
            self.imms.append(ImmFloat(value))
            self.imm_index[key] = idx
        return (idx << 2) | TAG_IMM

    # -- operand bridge ----------------------------------------------------

    def enc(self, op) -> int:
        if op is None:
            return NONE
        if type(op) is Temp:
            return (op.index << 2) | TAG_TEMP
        return self.imm_enc(op)

    def dec(self, enc: int):
        if enc == NONE:
            return None
        if enc & 3 == TAG_TEMP:
            return Temp(enc >> 2)
        return self.imms[enc >> 2]

    def push(self, opc: int, dst, a: int, b: int, ty: int, aux: int) -> int:
        idx = len(self.opc)
        self.opc.append(opc)
        self.dst.append(dst)
        self.a.append(a)
        self.b.append(b)
        self.ty.append(ty)
        self.aux.append(aux)
        return idx

    # -- comparison (tests; not on any hot path) ---------------------------

    def _content(self):
        return (
            self.name, self.params, self.ret_ty, self.slots, self.attributes,
            self.opc, self.dst, self.a, self.b, self.ty, self.aux,
            [(type(v).__name__, repr(v)) for v in self.imms],
            self.names, self.xdata, self.blocks,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, IRBuffer):
            return NotImplemented
        return self._content() == other._content()

    __hash__ = None


def from_nodes(fn: IRFunction) -> IRBuffer:
    """Encode an object-form function into a fresh buffer (lossless)."""
    buf = IRBuffer(
        fn.name,
        [(n, TYPE_TAG[t]) for n, t in fn.params],
        TYPE_TAG[fn.ret_ty],
    )
    buf.slots = dict(fn.slots)
    buf.attributes = list(fn.attributes)
    enc = buf.enc
    nid = buf.name_id
    push = buf.push
    xdata = buf.xdata
    for block in fn.blocks:
        idxs = []
        for instr in block.instrs:
            cls = type(instr)
            if cls is BinOp:
                i = push(OP_BINOP, instr.dst.index, enc(instr.lhs),
                         enc(instr.rhs), TYPE_TAG[instr.ty], nid(instr.op))
            elif cls is Load:
                i = push(OP_LOAD, instr.dst.index, enc(instr.ptr), NONE,
                         TYPE_TAG[instr.ty], int(instr.volatile))
            elif cls is Store:
                i = push(OP_STORE, None, enc(instr.ptr), enc(instr.value),
                         TYPE_TAG[instr.ty], int(instr.volatile))
            elif cls is UnOp:
                i = push(OP_UNOP, instr.dst.index, enc(instr.src), NONE,
                         TYPE_TAG[instr.ty], nid(instr.op))
            elif cls is Cast:
                i = push(OP_CAST, instr.dst.index, enc(instr.src), NONE,
                         TYPE_TAG[instr.to_ty],
                         (TYPE_TAG[instr.from_ty] << 1) | int(instr.signed))
            elif cls is LocalAddr:
                i = push(OP_LOCALADDR, instr.dst.index, NONE, NONE, 0,
                         nid(instr.slot))
            elif cls is GlobalAddr:
                i = push(OP_GLOBALADDR, instr.dst.index, NONE, NONE, 0,
                         nid(instr.name))
            elif cls is Gep:
                xdata.append((instr.scale, instr.offset))
                i = push(OP_GEP, instr.dst.index, enc(instr.base),
                         enc(instr.index), 0, len(xdata) - 1)
            elif cls is Call:
                xdata.append((
                    nid(instr.callee),
                    [enc(arg) for arg in instr.args],
                    tuple(TYPE_TAG[t] for t in instr.arg_tys),
                ))
                i = push(OP_CALL,
                         instr.dst.index if instr.dst is not None else None,
                         NONE, NONE, TYPE_TAG[instr.ret_ty], len(xdata) - 1)
            elif cls is Memcpy:
                i = push(OP_MEMCPY, None, enc(instr.dst_ptr),
                         enc(instr.src_ptr), 0, instr.size)
            elif cls is Jmp:
                i = push(OP_JMP, None, NONE, NONE, 0, nid(instr.target))
            elif cls is Br:
                i = push(OP_BR, None, enc(instr.cond), nid(instr.if_true), 0,
                         nid(instr.if_false))
            elif cls is Ret:
                i = push(OP_RET, None, enc(instr.value), NONE,
                         TYPE_TAG[instr.ty], 0)
            else:
                raise TypeError(f"cannot encode {instr!r}")
            idxs.append(i)
        buf.blocks.append([nid(block.label), idxs])
    return buf


def to_nodes(buf: IRBuffer) -> IRFunction:
    """Decode a buffer into a fresh object-form function (lossless)."""
    names = buf.names
    xdata = buf.xdata
    dec = buf.dec
    opcl, dstl, al, bl, tyl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.ty, buf.aux
    blocks = []
    for label_id, idxs in buf.blocks:
        instrs = []
        for i in idxs:
            op = opcl[i]
            if op == OP_BINOP:
                ins = BinOp(Temp(dstl[i]), names[auxl[i]], dec(al[i]),
                            dec(bl[i]), TYPES[tyl[i]])
            elif op == OP_LOAD:
                ins = Load(Temp(dstl[i]), dec(al[i]), TYPES[tyl[i]],
                           bool(auxl[i]))
            elif op == OP_STORE:
                ins = Store(dec(al[i]), dec(bl[i]), TYPES[tyl[i]],
                            bool(auxl[i]))
            elif op == OP_UNOP:
                ins = UnOp(Temp(dstl[i]), names[auxl[i]], dec(al[i]),
                           TYPES[tyl[i]])
            elif op == OP_CAST:
                ins = Cast(Temp(dstl[i]), dec(al[i]), TYPES[auxl[i] >> 1],
                           TYPES[tyl[i]], bool(auxl[i] & 1))
            elif op == OP_LOCALADDR:
                ins = LocalAddr(Temp(dstl[i]), names[auxl[i]])
            elif op == OP_GLOBALADDR:
                ins = GlobalAddr(Temp(dstl[i]), names[auxl[i]])
            elif op == OP_GEP:
                scale, offset = xdata[auxl[i]]
                ins = Gep(Temp(dstl[i]), dec(al[i]), dec(bl[i]), scale, offset)
            elif op == OP_CALL:
                callee, args, arg_tys = xdata[auxl[i]]
                d = dstl[i]
                ins = Call(Temp(d) if d is not None else None, names[callee],
                           [dec(e) for e in args],
                           [TYPES[t] for t in arg_tys], TYPES[tyl[i]])
            elif op == OP_MEMCPY:
                ins = Memcpy(dec(al[i]), dec(bl[i]), auxl[i])
            elif op == OP_JMP:
                ins = Jmp(names[auxl[i]])
            elif op == OP_BR:
                ins = Br(dec(al[i]), names[bl[i]], names[auxl[i]])
            else:  # OP_RET
                ins = Ret(dec(al[i]), TYPES[tyl[i]])
            instrs.append(ins)
        blocks.append(Block(names[label_id], instrs))
    return IRFunction(
        name=buf.name,
        params=[(n, TYPES[t]) for n, t in buf.params],
        ret_ty=TYPES[buf.ret_ty],
        blocks=blocks,
        slots=dict(buf.slots),
        attributes=list(buf.attributes),
    )


class FunctionSnapshot:
    """A cheap point-in-time copy of a function, captured as a buffer.

    Replaces the ``copy.deepcopy(fn)`` snapshots the session/incremental
    middle ends record for inline candidates: :meth:`of` walks the function
    once into flat arrays (no per-node deepcopy dispatch), and
    :meth:`materialize` decodes it back on first use and memoizes the
    result.  Sharing one materialized function across reuses is safe because
    the inliner deep-copies candidate bodies into callers and never mutates
    the candidate itself.
    """

    __slots__ = ("_buf", "_fn")

    def __init__(self, buf: IRBuffer):
        self._buf = buf
        self._fn = None

    @classmethod
    def of(cls, fn: IRFunction) -> "FunctionSnapshot":
        return cls(from_nodes(fn))

    def materialize(self) -> IRFunction:
        if self._fn is None:
            self._fn = to_nodes(self._buf)
        return self._fn
