"""A flat, slotted, array-of-struct encoding of the IR.

The object IR (:mod:`repro.compiler.ir`) spends the hot path allocating and
chasing per-node Python objects: every instruction is a dataclass, every
operand a frozen ``Temp``/``ImmInt``/``ImmFloat``, and every pass decision an
``isinstance`` chain.  :class:`IRBuffer` stores one function as parallel
arrays instead — opcode ints, destination temp indices, encoded operands,
type tags, and an opcode-specific ``aux`` payload — with blocks as lists of
instruction indices and all strings (op names, labels, slots, callees)
interned into one table.

Operand encoding
----------------

An operand is one int: ``enc = (payload << 2) | tag`` with

* ``tag 0`` — no operand (``enc == 0`` exactly; ``NONE``),
* ``tag 1`` — a temp; the payload is the (possibly negative) temp index,
* ``tag 2`` — an immediate; the payload is an index into the per-buffer
  immediate pool.

Negative temp indices (parameter temps) survive because Python's ``>>``
is arithmetic: ``(-1 << 2) | 1 == -3`` and ``-3 >> 2 == -1``, ``-3 & 3 == 1``.

The immediate pool deduplicates by *exact* value: ints by value, floats by
their IEEE-754 bit pattern (``struct.pack``) so ``-0.0`` and ``0.0`` (equal
under ``==``) keep distinct slots and NaNs with distinct payloads intern
distinctly and round-trip bit-exactly (``repr`` collapses every NaN to the
string ``'nan'``).  Pool entries are the frozen ``ImmInt``/``ImmFloat``
objects themselves, so bridging back to object form allocates nothing new
for immediates, and flat passes that need object-equality semantics (CSE
keys) can use the pooled objects directly.

The bridge contract
-------------------

``to_nodes(from_nodes(fn))`` is dump-identical and structurally equal to
``fn``; ``from_nodes(to_nodes(buf))`` reproduces ``buf`` bit-identically for
any freshly-encoded buffer (interning order is instruction order, which the
decode walk preserves).  Everything not ported to the buffer — inlining,
strlen/vectorize, crash seeding, coverage features, the paranoid
differential — keeps operating on the object form via this bridge.
"""

from __future__ import annotations

import struct

from repro.compiler.ir import (
    BinOp, Block, Br, Call, Cast, Gep, GlobalAddr, ImmFloat, ImmInt,
    IRFunction, IRType, Jmp, Load, LocalAddr, Memcpy, Ret, Store, Temp, UnOp,
)

_pack_double = struct.Struct("<d").pack


def _float_key(value: float) -> bytes:
    """Immediate-pool key for a float: its IEEE-754 bit pattern.

    ``bytes`` keys can never collide with the ``int`` keys used for
    ``ImmInt`` entries, and unlike ``repr`` they distinguish NaN payloads
    (every NaN reprs as ``'nan'``) as well as ``-0.0`` vs ``0.0``.
    """
    return _pack_double(value)


class BridgeCounters:
    """Counts object<->buffer bridge crossings for one compiler instance.

    ``encodes`` is bumped by :func:`from_nodes` (object IR flattened into a
    buffer), ``decodes`` by :func:`to_nodes` (buffer materialized back into
    object IR) — but only when a counter is threaded through, so diagnostic
    decodes (dumps, paranoid references) never pollute the steady-state
    measurement.  The flat-native bench gate asserts ``decodes == 0`` at
    steady state: a cache-warm hot path should never need object IR.
    """

    __slots__ = ("encodes", "decodes")

    def __init__(self):
        self.encodes = 0
        self.decodes = 0

# Opcode ints.  Order is part of the on-buffer format (dispatch tables index
# by these), so append-only.
(
    OP_BINOP, OP_UNOP, OP_CAST, OP_LOCALADDR, OP_GLOBALADDR, OP_LOAD,
    OP_STORE, OP_GEP, OP_CALL, OP_MEMCPY, OP_JMP, OP_BR, OP_RET,
) = range(13)

TERMINATOR_OPS = frozenset((OP_JMP, OP_BR, OP_RET))

#: tag -> IRType and back; tags index this tuple.
TYPES = tuple(IRType)
TYPE_TAG = {t: i for i, t in enumerate(TYPES)}
F32_TAG = TYPE_TAG[IRType.F32]
VOID_TAG = TYPE_TAG[IRType.VOID]

NONE = 0
TAG_TEMP = 1
TAG_IMM = 2


def temp_enc(index: int) -> int:
    return (index << 2) | TAG_TEMP


class IRBuffer:
    """One function's instructions as parallel arrays (see module docstring).

    Field usage per opcode (``-`` means unused/zero):

    =============  =====  ========  ========  =========  =======================
    opcode         dst    a         b         ty         aux
    =============  =====  ========  ========  =========  =======================
    OP_BINOP       temp   lhs       rhs       ty         op name id
    OP_UNOP        temp   src       -         ty         op name id
    OP_CAST        temp   src       -         to_ty      (from_ty << 1) | signed
    OP_LOCALADDR   temp   -         -         -          slot name id
    OP_GLOBALADDR  temp   -         -         -          global name id
    OP_LOAD        temp   ptr       -         ty         volatile
    OP_STORE       -      ptr       value     ty         volatile
    OP_GEP         temp   base      index     -          xdata id -> (scale, offset)
    OP_CALL        temp?  -         -         ret_ty     xdata id -> (callee id,
                                                         [arg encs], (arg ty tags))
    OP_MEMCPY      -      dst_ptr   src_ptr   -          size
    OP_JMP         -      -         -         -          target label id
    OP_BR          -      cond      true id   -          false label id
    OP_RET         -      value?    -         ty         -
    =============  =====  ========  ========  =========  =======================
    """

    __slots__ = (
        "name", "params", "ret_ty", "slots", "attributes",
        "opc", "dst", "a", "b", "ty", "aux",
        "imms", "imm_index", "names", "name_index", "xdata", "blocks",
    )

    def __init__(self, name: str = "", params=(), ret_ty: int = VOID_TAG):
        self.name = name
        self.params = list(params)  # [(param name, ty tag)]
        self.ret_ty = ret_ty
        self.slots: dict[str, int] = {}
        self.attributes: list[str] = []
        self.opc: list[int] = []
        self.dst: list[int | None] = []
        self.a: list[int] = []
        self.b: list[int] = []
        self.ty: list[int] = []
        self.aux: list[int] = []
        self.imms: list = []  # ImmInt | ImmFloat pool entries
        self.imm_index: dict = {}
        self.names: list[str] = []
        self.name_index: dict[str, int] = {}
        self.xdata: list = []
        self.blocks: list[list] = []  # [[label id, [instr idx, ...]], ...]

    # -- interning ---------------------------------------------------------

    def name_id(self, s: str) -> int:
        idx = self.name_index.get(s)
        if idx is None:
            idx = len(self.names)
            self.names.append(s)
            self.name_index[s] = idx
        return idx

    def imm_enc(self, op) -> int:
        """Encode an existing ``ImmInt``/``ImmFloat`` operand."""
        if type(op) is ImmInt:
            key = op.value
        else:
            key = _pack_double(op.value)
        idx = self.imm_index.get(key)
        if idx is None:
            idx = len(self.imms)
            self.imms.append(op)
            self.imm_index[key] = idx
        return (idx << 2) | TAG_IMM

    def imm_int_enc(self, value: int) -> int:
        idx = self.imm_index.get(value)
        if idx is None:
            idx = len(self.imms)
            self.imms.append(ImmInt(value))
            self.imm_index[value] = idx
        return (idx << 2) | TAG_IMM

    def imm_float_enc(self, value: float) -> int:
        key = _pack_double(value)
        idx = self.imm_index.get(key)
        if idx is None:
            idx = len(self.imms)
            self.imms.append(ImmFloat(value))
            self.imm_index[key] = idx
        return (idx << 2) | TAG_IMM

    # -- operand bridge ----------------------------------------------------

    def enc(self, op) -> int:
        if op is None:
            return NONE
        if type(op) is Temp:
            return (op.index << 2) | TAG_TEMP
        return self.imm_enc(op)

    def dec(self, enc: int):
        if enc == NONE:
            return None
        if enc & 3 == TAG_TEMP:
            return Temp(enc >> 2)
        return self.imms[enc >> 2]

    def push(self, opc: int, dst, a: int, b: int, ty: int, aux: int) -> int:
        idx = len(self.opc)
        self.opc.append(opc)
        self.dst.append(dst)
        self.a.append(a)
        self.b.append(b)
        self.ty.append(ty)
        self.aux.append(aux)
        return idx

    def clone(self) -> "IRBuffer":
        """An independent copy sharing only the frozen imm pool entries.

        ``Call`` xdata entries carry a *mutable* arg-enc list that flat
        passes rewrite in place, so those lists are copied fresh; Gep xdata
        tuples and pool immediates are immutable and shared.
        """
        new = IRBuffer.__new__(IRBuffer)
        new.name = self.name
        new.params = list(self.params)
        new.ret_ty = self.ret_ty
        new.slots = dict(self.slots)
        new.attributes = list(self.attributes)
        new.opc = list(self.opc)
        new.dst = list(self.dst)
        new.a = list(self.a)
        new.b = list(self.b)
        new.ty = list(self.ty)
        new.aux = list(self.aux)
        new.imms = list(self.imms)
        new.imm_index = dict(self.imm_index)
        new.names = list(self.names)
        new.name_index = dict(self.name_index)
        new.xdata = [
            (x[0], list(x[1]), x[2]) if len(x) == 3 else x
            for x in self.xdata
        ]
        new.blocks = [[label, list(idxs)] for label, idxs in self.blocks]
        return new

    # -- comparison (tests; not on any hot path) ---------------------------

    def _content(self):
        return (
            self.name, self.params, self.ret_ty, self.slots, self.attributes,
            self.opc, self.dst, self.a, self.b, self.ty, self.aux,
            [
                (type(v).__name__,
                 v.value if type(v) is ImmInt else _pack_double(v.value))
                for v in self.imms
            ],
            self.names, self.xdata, self.blocks,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, IRBuffer):
            return NotImplemented
        return self._content() == other._content()

    __hash__ = None


def encode_instr(buf: IRBuffer, instr) -> int:
    """Append one object-form instruction as a buffer row; returns its index.

    Shared by :func:`from_nodes` (bulk encode) and ``FlatIRGen._emit``
    (buffer-direct irgen), so the two paths cannot drift.
    """
    enc = buf.enc
    nid = buf.name_id
    push = buf.push
    cls = type(instr)
    if cls is BinOp:
        return push(OP_BINOP, instr.dst.index, enc(instr.lhs),
                    enc(instr.rhs), TYPE_TAG[instr.ty], nid(instr.op))
    if cls is Load:
        return push(OP_LOAD, instr.dst.index, enc(instr.ptr), NONE,
                    TYPE_TAG[instr.ty], int(instr.volatile))
    if cls is Store:
        return push(OP_STORE, None, enc(instr.ptr), enc(instr.value),
                    TYPE_TAG[instr.ty], int(instr.volatile))
    if cls is UnOp:
        return push(OP_UNOP, instr.dst.index, enc(instr.src), NONE,
                    TYPE_TAG[instr.ty], nid(instr.op))
    if cls is Cast:
        return push(OP_CAST, instr.dst.index, enc(instr.src), NONE,
                    TYPE_TAG[instr.to_ty],
                    (TYPE_TAG[instr.from_ty] << 1) | int(instr.signed))
    if cls is LocalAddr:
        return push(OP_LOCALADDR, instr.dst.index, NONE, NONE, 0,
                    nid(instr.slot))
    if cls is GlobalAddr:
        return push(OP_GLOBALADDR, instr.dst.index, NONE, NONE, 0,
                    nid(instr.name))
    if cls is Gep:
        buf.xdata.append((instr.scale, instr.offset))
        return push(OP_GEP, instr.dst.index, enc(instr.base),
                    enc(instr.index), 0, len(buf.xdata) - 1)
    if cls is Call:
        buf.xdata.append((
            nid(instr.callee),
            [enc(arg) for arg in instr.args],
            tuple(TYPE_TAG[t] for t in instr.arg_tys),
        ))
        return push(OP_CALL,
                    instr.dst.index if instr.dst is not None else None,
                    NONE, NONE, TYPE_TAG[instr.ret_ty], len(buf.xdata) - 1)
    if cls is Memcpy:
        return push(OP_MEMCPY, None, enc(instr.dst_ptr),
                    enc(instr.src_ptr), 0, instr.size)
    if cls is Jmp:
        return push(OP_JMP, None, NONE, NONE, 0, nid(instr.target))
    if cls is Br:
        return push(OP_BR, None, enc(instr.cond), nid(instr.if_true), 0,
                    nid(instr.if_false))
    if cls is Ret:
        return push(OP_RET, None, enc(instr.value), NONE,
                    TYPE_TAG[instr.ty], 0)
    raise TypeError(f"cannot encode {instr!r}")


def from_nodes(fn: IRFunction, counters: BridgeCounters | None = None) -> IRBuffer:
    """Encode an object-form function into a fresh buffer (lossless)."""
    if counters is not None:
        counters.encodes += 1
    buf = IRBuffer(
        fn.name,
        [(n, TYPE_TAG[t]) for n, t in fn.params],
        TYPE_TAG[fn.ret_ty],
    )
    buf.slots = dict(fn.slots)
    buf.attributes = list(fn.attributes)
    nid = buf.name_id
    for block in fn.blocks:
        idxs = [encode_instr(buf, instr) for instr in block.instrs]
        buf.blocks.append([nid(block.label), idxs])
    return buf


def to_nodes(buf: IRBuffer, counters: BridgeCounters | None = None) -> IRFunction:
    """Decode a buffer into a fresh object-form function (lossless)."""
    if counters is not None:
        counters.decodes += 1
    names = buf.names
    xdata = buf.xdata
    dec = buf.dec
    opcl, dstl, al, bl, tyl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.ty, buf.aux
    blocks = []
    for label_id, idxs in buf.blocks:
        instrs = []
        for i in idxs:
            op = opcl[i]
            if op == OP_BINOP:
                ins = BinOp(Temp(dstl[i]), names[auxl[i]], dec(al[i]),
                            dec(bl[i]), TYPES[tyl[i]])
            elif op == OP_LOAD:
                ins = Load(Temp(dstl[i]), dec(al[i]), TYPES[tyl[i]],
                           bool(auxl[i]))
            elif op == OP_STORE:
                ins = Store(dec(al[i]), dec(bl[i]), TYPES[tyl[i]],
                            bool(auxl[i]))
            elif op == OP_UNOP:
                ins = UnOp(Temp(dstl[i]), names[auxl[i]], dec(al[i]),
                           TYPES[tyl[i]])
            elif op == OP_CAST:
                ins = Cast(Temp(dstl[i]), dec(al[i]), TYPES[auxl[i] >> 1],
                           TYPES[tyl[i]], bool(auxl[i] & 1))
            elif op == OP_LOCALADDR:
                ins = LocalAddr(Temp(dstl[i]), names[auxl[i]])
            elif op == OP_GLOBALADDR:
                ins = GlobalAddr(Temp(dstl[i]), names[auxl[i]])
            elif op == OP_GEP:
                scale, offset = xdata[auxl[i]]
                ins = Gep(Temp(dstl[i]), dec(al[i]), dec(bl[i]), scale, offset)
            elif op == OP_CALL:
                callee, args, arg_tys = xdata[auxl[i]]
                d = dstl[i]
                ins = Call(Temp(d) if d is not None else None, names[callee],
                           [dec(e) for e in args],
                           [TYPES[t] for t in arg_tys], TYPES[tyl[i]])
            elif op == OP_MEMCPY:
                ins = Memcpy(dec(al[i]), dec(bl[i]), auxl[i])
            elif op == OP_JMP:
                ins = Jmp(names[auxl[i]])
            elif op == OP_BR:
                ins = Br(dec(al[i]), names[bl[i]], names[auxl[i]])
            else:  # OP_RET
                ins = Ret(dec(al[i]), TYPES[tyl[i]])
            instrs.append(ins)
        blocks.append(Block(names[label_id], instrs))
    return IRFunction(
        name=buf.name,
        params=[(n, TYPES[t]) for n, t in buf.params],
        ret_ty=TYPES[buf.ret_ty],
        blocks=blocks,
        slots=dict(buf.slots),
        attributes=list(buf.attributes),
    )


class FlatFunction:
    """A buffer-backed function that duck-types as :class:`IRFunction`.

    Exactly one of ``buf``/``_obj`` is authoritative at any moment.  The
    flat-native middle end keeps ``buf`` live end to end; any consumer that
    reaches for object-IR structure (``.blocks``, ``block()``, …) *decays*
    the carrier — the buffer is materialized into an ``IRFunction`` (bumping
    ``flat_decodes``) and becomes the authority until :meth:`buffer`
    re-encodes (bumping ``flat_encodes``).  The bench gate asserting
    ``flat_decodes == 0`` at steady state is therefore a structural proof
    that the hot path never left the buffer.

    ``dump()`` decodes a throwaway copy without decaying and without
    counting: it serves diagnostics and the paranoid differential, which
    must not perturb the measurement they are checking.
    """

    __slots__ = ("buf", "counters", "_obj")

    def __init__(self, buf: IRBuffer, counters: BridgeCounters | None = None):
        self.buf = buf
        self.counters = counters
        self._obj = None

    # -- authority flips ---------------------------------------------------

    def _decay(self) -> IRFunction:
        if self._obj is None:
            self._obj = to_nodes(self.buf, self.counters)
            self.buf = None
        return self._obj

    def buffer(self) -> IRBuffer:
        """The live buffer, re-encoding (counted) if object passes decayed it."""
        if self.buf is None:
            self.buf = from_nodes(self._obj, self.counters)
            self._obj = None
        return self.buf

    # -- IRFunction surface ------------------------------------------------

    @property
    def name(self) -> str:
        return self.buf.name if self.buf is not None else self._obj.name

    @property
    def params(self):
        if self.buf is not None:
            return [(n, TYPES[t]) for n, t in self.buf.params]
        return self._obj.params

    @property
    def ret_ty(self) -> IRType:
        if self.buf is not None:
            return TYPES[self.buf.ret_ty]
        return self._obj.ret_ty

    @property
    def slots(self) -> dict:
        return self.buf.slots if self.buf is not None else self._obj.slots

    @property
    def attributes(self):
        if self.buf is not None:
            return self.buf.attributes
        return self._obj.attributes

    @property
    def blocks(self):
        return self._decay().blocks

    @blocks.setter
    def blocks(self, value):
        self._decay().blocks = value

    def block(self, label: str) -> Block:
        return self._decay().block(label)

    def block_map(self) -> dict:
        return self._decay().block_map()

    def instructions(self):
        return self._decay().instructions()

    def predecessors(self) -> dict:
        return self._decay().predecessors()

    def dump(self) -> str:
        if self.buf is not None:
            return to_nodes(self.buf).dump()
        return self._obj.dump()


class FunctionSnapshot:
    """A cheap point-in-time copy of a function, captured as a buffer.

    Replaces the ``copy.deepcopy(fn)`` snapshots the session/incremental
    middle ends record for inline candidates: :meth:`of` walks the function
    once into flat arrays (no per-node deepcopy dispatch) — or, for a
    buffer-backed :class:`FlatFunction`, just clones the arrays with no
    bridge crossing at all — and :meth:`materialize` decodes it back on
    first use and memoizes the result.  Sharing one materialized function
    across reuses is safe because the inliner deep-copies candidate bodies
    into callers and never mutates the candidate itself; sharing
    :attr:`buf` with the flat inliner is safe because buffer splicing only
    reads the callee arrays.
    """

    __slots__ = ("_buf", "_fn")

    def __init__(self, buf: IRBuffer):
        self._buf = buf
        self._fn = None

    @classmethod
    def of(cls, fn, counters: BridgeCounters | None = None) -> "FunctionSnapshot":
        if type(fn) is FlatFunction:
            return cls(fn.buffer().clone())
        return cls(from_nodes(fn, counters))

    @property
    def buf(self) -> IRBuffer:
        """The snapshot buffer (read-only by convention — never mutate)."""
        return self._buf

    def materialize(self, counters: BridgeCounters | None = None) -> IRFunction:
        if self._fn is None:
            self._fn = to_nodes(self._buf, counters)
        return self._fn
