"""An IR interpreter.

Executes :class:`IRModule` programs with a byte-addressed segmented memory
model and a small C library.  Used by the MetaMut validation loop (test
programs must be executable) and by the differential tests that check the
optimizer preserves semantics (-O0 vs -O2 must behave identically on
UB-free programs).
"""

from __future__ import annotations

import struct as _struct
from dataclasses import dataclass, field

from repro.compiler.flatir import TYPES as _FLAT_TYPES
from repro.compiler.ir import (
    BinOp, Br, Call, Cast, Gep, GlobalAddr, ImmFloat, ImmInt, IRFunction,
    IRModule, IRType, Jmp, Load, LocalAddr, Memcpy, Operand, Ret, Store,
    Temp, UnOp,
)

#: Pointers are encoded as integers: (segment+1) << SEG_SHIFT | offset.
SEG_SHIFT = 40
_OFF_MASK = (1 << SEG_SHIFT) - 1

_PACK = {
    IRType.I8: "<b", IRType.I16: "<h", IRType.I32: "<i", IRType.I64: "<q",
    IRType.F32: "<f", IRType.F64: "<d", IRType.PTR: "<q",
}


class Trap(Exception):
    """A runtime trap (bad pointer, division by zero, abort, ...)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _Exit(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


class OutOfFuel(Exception):
    """The program exceeded its execution budget (treated as a hang)."""


@dataclass
class ExecResult:
    status: str  # "ok" | "abort" | "trap" | "timeout" | "unsupported"
    return_code: int = 0
    output: str = ""
    steps: int = 0
    reason: str = ""

    @property
    def observable(self) -> tuple[str, int, str]:
        """The behaviour tuple used by differential testing."""
        return (self.status, self.return_code, self.output)


class Interpreter:
    """Executes an IR module starting from a chosen function.

    With ``flat=True``, function bodies are encoded once into
    :class:`~repro.compiler.flatir.IRBuffer` form (cached per function) and
    the execution loop dispatches over opcode ints via a table instead of an
    isinstance chain; observable behaviour is identical.
    """

    def __init__(
        self, module: IRModule, fuel: int = 200_000, flat: bool = False
    ) -> None:
        self.module = module
        self.fuel = fuel
        self.flat = flat
        self._flat_cache: dict[str, tuple] = {}
        self.segments: dict[int, bytearray] = {}
        self.seg_names: dict[str, int] = {}
        self._next_seg = 0
        self.output: list[str] = []
        self._rand_state = 1
        self._init_globals()

    # -- memory ------------------------------------------------------------

    def _new_segment(self, size: int) -> int:
        seg = self._next_seg
        self._next_seg += 1
        self.segments[seg] = bytearray(max(size, 1))
        return seg

    def _ptr(self, seg: int, off: int = 0) -> int:
        return ((seg + 1) << SEG_SHIFT) | (off & _OFF_MASK)

    def _decode(self, ptr: int) -> tuple[int, int]:
        if not isinstance(ptr, int) or ptr <= 0:
            raise Trap(f"invalid pointer {ptr!r}")
        seg = (ptr >> SEG_SHIFT) - 1
        off = ptr & _OFF_MASK
        if seg not in self.segments:
            raise Trap(f"wild pointer segment {seg}")
        return seg, off

    def _init_globals(self) -> None:
        for name, g in self.module.globals.items():
            seg = self._new_segment(g.size)
            self.seg_names[name] = seg
        # Second pass: fill initializers (may reference other globals).
        for name, g in self.module.globals.items():
            seg = self.seg_names[name]
            for off, ty, value in g.init:
                if isinstance(value, tuple) and value[0] == "addr":
                    target = value[1]
                    if target in self.seg_names:
                        resolved = self._ptr(self.seg_names[target], value[2])
                    else:
                        resolved = 0
                    self._write(seg, off, IRType.PTR, resolved)
                else:
                    self._write(seg, off, ty, value)

    def _write(self, seg: int, off: int, ty: IRType, value: int | float) -> None:
        buf = self.segments[seg]
        size = ty.size
        if off < 0 or off + size > len(buf):
            raise Trap(f"out-of-bounds store at {off} (+{size}) in segment of {len(buf)}")
        if ty.is_int or ty is IRType.PTR:
            value = int(value) & ((1 << ty.bits) - 1)
            buf[off : off + size] = int(value).to_bytes(size, "little")
        else:
            buf[off : off + size] = _struct.pack(_PACK[ty], _clamp_float(value, ty))

    def _read(self, seg: int, off: int, ty: IRType, signed: bool = True) -> int | float:
        buf = self.segments[seg]
        size = ty.size
        if off < 0 or off + size > len(buf):
            raise Trap(f"out-of-bounds load at {off} (+{size}) in segment of {len(buf)}")
        raw = bytes(buf[off : off + size])
        if ty.is_float:
            return _struct.unpack(_PACK[ty], raw)[0]
        value = int.from_bytes(raw, "little", signed=False)
        if ty is IRType.PTR:
            return value
        if signed and value >= (1 << (ty.bits - 1)):
            value -= 1 << ty.bits
        return value

    # -- execution ---------------------------------------------------------

    def run(self, entry: str = "main", args: list[int | float] | None = None) -> ExecResult:
        if entry not in self.module.functions:
            return ExecResult("unsupported", reason=f"no function {entry!r}")
        try:
            value = self._call_function(self.module.functions[entry], args or [])
            code = int(value) if isinstance(value, (int, float)) else 0
            return ExecResult("ok", code & 0xFF, "".join(self.output), self._steps())
        except _Exit as e:
            return ExecResult("ok", e.code & 0xFF, "".join(self.output), self._steps())
        except Trap as t:
            status = "abort" if t.reason == "abort" else "trap"
            return ExecResult(
                status, 134, "".join(self.output), self._steps(), t.reason
            )
        except OutOfFuel:
            return ExecResult("timeout", 0, "".join(self.output), self._steps())
        except RecursionError:
            return ExecResult("trap", 139, "".join(self.output), self._steps(), "stack overflow")

    def _steps(self) -> int:
        return 0  # filled by callers that care; fuel is the budget

    def _call_function(
        self, fn: IRFunction, args: list[int | float]
    ) -> int | float | None:
        if self.flat:
            return self._call_function_flat(fn, args)
        frame_segs: dict[str, int] = {}
        for slot, size in fn.slots.items():
            frame_segs[slot] = self._new_segment(size)
        temps: dict[int, int | float] = {}
        for i, _p in enumerate(fn.params):
            temps[-(i + 1)] = args[i] if i < len(args) else 0
        blocks = fn.block_map()
        if not fn.blocks:
            return 0
        label = fn.blocks[0].label
        while True:
            block = blocks.get(label)
            if block is None:
                raise Trap(f"jump to unknown block {label}")
            next_label: str | None = None
            for instr in block.instrs:
                self.fuel -= 1
                if self.fuel <= 0:
                    raise OutOfFuel
                result = self._step(instr, temps, frame_segs)
                if result is not None:
                    kind, payload = result
                    if kind == "jmp":
                        next_label = payload
                        break
                    if kind == "ret":
                        for seg in frame_segs.values():
                            self.segments.pop(seg, None)
                        return payload
            if next_label is None:
                # Fell off the end of a block without a terminator.
                for seg in frame_segs.values():
                    self.segments.pop(seg, None)
                return 0
            label = next_label

    def _value(self, op: Operand, temps: dict[int, int | float]) -> int | float:
        if isinstance(op, ImmInt):
            return op.value
        if isinstance(op, ImmFloat):
            return op.value
        assert isinstance(op, Temp)
        if op.index not in temps:
            raise Trap(f"use of undefined temp {op}")
        return temps[op.index]

    def _step(self, instr, temps, frame_segs):
        if isinstance(instr, BinOp):
            temps[instr.dst.index] = self._binop(instr, temps)
            return None
        if isinstance(instr, UnOp):
            v = self._value(instr.src, temps)
            if instr.op == "neg":
                out = -v
            elif instr.op == "bnot":
                out = ~int(v)
            elif instr.op == "lnot":
                out = int(not v)
            else:
                raise Trap(f"unknown unop {instr.op}")
            temps[instr.dst.index] = _wrap(out, instr.ty)
            return None
        if isinstance(instr, Cast):
            temps[instr.dst.index] = self._cast(instr, temps)
            return None
        if isinstance(instr, LocalAddr):
            seg = frame_segs.get(instr.slot)
            if seg is None:
                raise Trap(f"unknown slot {instr.slot}")
            temps[instr.dst.index] = self._ptr(seg)
            return None
        if isinstance(instr, GlobalAddr):
            if instr.name in self.seg_names:
                temps[instr.dst.index] = self._ptr(self.seg_names[instr.name])
            elif instr.name in self.module.functions:
                temps[instr.dst.index] = self._fn_ptr(instr.name)
            else:
                raise Trap(f"unknown global {instr.name}")
            return None
        if isinstance(instr, Load):
            seg, off = self._decode(int(self._value(instr.ptr, temps)))
            temps[instr.dst.index] = self._read(seg, off, instr.ty)
            return None
        if isinstance(instr, Store):
            seg, off = self._decode(int(self._value(instr.ptr, temps)))
            self._write(seg, off, instr.ty, self._value(instr.value, temps))
            return None
        if isinstance(instr, Gep):
            base = int(self._value(instr.base, temps))
            index = int(self._value(instr.index, temps))
            temps[instr.dst.index] = base + index * instr.scale + instr.offset
            return None
        if isinstance(instr, Memcpy):
            dseg, doff = self._decode(int(self._value(instr.dst_ptr, temps)))
            sseg, soff = self._decode(int(self._value(instr.src_ptr, temps)))
            data = bytes(self.segments[sseg][soff : soff + instr.size])
            if doff + instr.size > len(self.segments[dseg]):
                raise Trap("memcpy overflow")
            self.segments[dseg][doff : doff + instr.size] = data
            return None
        if isinstance(instr, Call):
            value = self._call(instr, temps)
            if instr.dst is not None:
                temps[instr.dst.index] = value if value is not None else 0
            return None
        if isinstance(instr, Jmp):
            return ("jmp", instr.target)
        if isinstance(instr, Br):
            cond = self._value(instr.cond, temps)
            return ("jmp", instr.if_true if cond else instr.if_false)
        if isinstance(instr, Ret):
            value = (
                self._value(instr.value, temps) if instr.value is not None else None
            )
            return ("ret", value)
        raise Trap(f"unknown instruction {instr!r}")

    _FN_SEG_BASE = 1 << 30

    def _fn_ptr(self, name: str) -> int:
        names = sorted(self.module.functions)
        return ((self._FN_SEG_BASE + names.index(name)) << SEG_SHIFT) | 1

    def _binop(self, instr: BinOp, temps) -> int | float:
        a = self._value(instr.lhs, temps)
        b = self._value(instr.rhs, temps)
        return self._binop_values(instr.op, instr.ty, a, b)

    def _binop_values(
        self, op: str, ty: IRType, a: int | float, b: int | float
    ) -> int | float:
        if op.startswith(("lt", "le", "gt", "ge", "eq", "ne")):
            if op.endswith("u") and ty.is_int:
                a, b = _unsigned(a, ty), _unsigned(b, ty)
                op = op[:-1]
            return int(
                {
                    "lt": a < b, "le": a <= b, "gt": a > b,
                    "ge": a >= b, "eq": a == b, "ne": a != b,
                }[op]
            )
        if op in ("/", "%", "/u", "%u", ">>u") and not ty.is_float:
            a_i, b_i = int(a), int(b)
            if op.endswith("u"):
                a_i, b_i = _unsigned(a_i, ty), _unsigned(b_i, ty)
                op = op[0] if op != ">>u" else ">>"
            if op in ("/", "%") and b_i == 0:
                raise Trap("integer division by zero")
            if op == "/":
                out = int(a_i / b_i) if b_i else 0
            elif op == "%":
                out = a_i - int(a_i / b_i) * b_i
            else:
                out = a_i >> (b_i & (ty.bits - 1))
            return _wrap(out, ty)
        if ty.is_float:
            try:
                out = {
                    "+": a + b, "-": a - b, "*": a * b,
                    "/": a / b if b else float("inf") * (1 if a > 0 else -1 if a < 0 else 0),
                }.get(op)
            except (ZeroDivisionError, OverflowError):
                out = 0.0
            if out is None:
                raise Trap(f"float op {op}")
            return _clamp_float(out, ty)
        a_i, b_i = int(a), int(b)
        if op == "+":
            out = a_i + b_i
        elif op == "-":
            out = a_i - b_i
        elif op == "*":
            out = a_i * b_i
        elif op == "<<":
            out = a_i << (b_i & (ty.bits - 1))
        elif op == ">>":
            out = a_i >> (b_i & (ty.bits - 1))
        elif op == "&":
            out = a_i & b_i
        elif op == "|":
            out = a_i | b_i
        elif op == "^":
            out = a_i ^ b_i
        else:
            raise Trap(f"unknown binop {op}")
        return _wrap(out, ty)

    def _cast(self, instr: Cast, temps) -> int | float:
        v = self._value(instr.src, temps)
        return self._cast_value(v, instr.to_ty, instr.signed)

    def _cast_value(self, v: int | float, to: IRType, signed: bool) -> int | float:
        if to.is_float:
            return _clamp_float(float(v), to)
        if to is IRType.PTR:
            return int(v)
        iv = int(v)
        return _wrap(iv, to) if signed else _unsigned(_wrap(iv, to), to)

    # -- flat execution ----------------------------------------------------

    def _flat_entry(self, fn: IRFunction):
        """The cached (buffer, label-id block map) encoding of ``fn``.

        A function that already carries a flat buffer — a ``FlatFunction``
        from the buffer-direct irgen, or anything exposing ``.buffer()``
        such as a ``FunctionSnapshot``-backed carrier — is used as-is; only
        plain object functions pay the ``from_nodes`` encode, and only once
        per function identity.
        """
        cached = self._flat_cache.get(fn.name)
        if cached is not None and cached[0] is fn:
            return cached[1], cached[2]
        buffer = getattr(fn, "buffer", None)
        if buffer is not None:
            buf = buffer()
        else:
            from repro.compiler.flatir import from_nodes

            buf = from_nodes(fn)
        block_map = {blk[0]: blk for blk in buf.blocks}
        self._flat_cache[fn.name] = (fn, buf, block_map)
        return buf, block_map

    def _flat_value(self, buf, enc: int, temps) -> int | float:
        if enc & 3 == 2:  # TAG_IMM
            return buf.imms[enc >> 2].value
        idx = enc >> 2
        if idx not in temps:
            raise Trap(f"use of undefined temp %t{idx}")
        return temps[idx]

    def _call_function_flat(
        self, fn: IRFunction, args: list[int | float]
    ) -> int | float | None:
        buf, block_map = self._flat_entry(fn)
        frame_segs: dict[str, int] = {}
        for slot, size in fn.slots.items():
            frame_segs[slot] = self._new_segment(size)
        temps: dict[int, int | float] = {}
        for i, _p in enumerate(fn.params):
            temps[-(i + 1)] = args[i] if i < len(args) else 0
        if not buf.blocks:
            return 0
        label = buf.blocks[0][0]
        opcl = buf.opc
        dispatch = _FLAT_DISPATCH
        while True:
            block = block_map.get(label)
            if block is None:
                raise Trap(f"jump to unknown block {buf.names[label]}")
            next_label: int | None = None
            for i in block[1]:
                self.fuel -= 1
                if self.fuel <= 0:
                    raise OutOfFuel
                result = dispatch[opcl[i]](self, buf, i, temps, frame_segs)
                if result is not None:
                    kind, payload = result
                    if kind == "jmp":
                        next_label = payload
                        break
                    if kind == "ret":
                        for seg in frame_segs.values():
                            self.segments.pop(seg, None)
                        return payload
            if next_label is None:
                # Fell off the end of a block without a terminator.
                for seg in frame_segs.values():
                    self.segments.pop(seg, None)
                return 0
            label = next_label

    # -- library -----------------------------------------------------------

    def _call(self, instr: Call, temps) -> int | float | None:
        name = instr.callee
        args = [self._value(a, temps) for a in instr.args]
        if name in self.module.functions:
            return self._call_function(self.module.functions[name], args)
        handler = getattr(self, f"_lib_{name}", None)
        if handler is None:
            raise Trap(f"call to unknown function {name!r}")
        return handler(args)

    def _cstring(self, ptr: int) -> str:
        seg, off = self._decode(int(ptr))
        buf = self.segments[seg]
        end = off
        while end < len(buf) and buf[end] != 0:
            end += 1
        return bytes(buf[off:end]).decode("latin-1", "replace")

    def _format(self, fmt: str, args: list) -> str:
        out: list[str] = []
        ai = 0
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch != "%":
                out.append(ch)
                i += 1
                continue
            j = i + 1
            while j < len(fmt) and fmt[j] in "0123456789.+-# l":
                j += 1
            if j >= len(fmt):
                out.append("%")
                break
            conv = fmt[j]
            arg = args[ai] if ai < len(args) else 0
            ai += 1
            if conv in "di":
                out.append(str(int(arg)))
            elif conv == "u":
                out.append(str(int(arg) & 0xFFFFFFFF))
            elif conv == "x":
                out.append(format(int(arg) & 0xFFFFFFFFFFFFFFFF, "x"))
            elif conv == "c":
                out.append(chr(int(arg) & 0xFF))
            elif conv in "fge":
                out.append(f"{float(arg):.6f}" if conv == "f" else f"{float(arg):g}")
            elif conv == "s":
                out.append(self._cstring(int(arg)))
            elif conv == "p":
                out.append(hex(int(arg)))
            elif conv == "%":
                out.append("%")
                ai -= 1
            else:
                out.append(conv)
            i = j + 1
        return "".join(out)

    def _lib_printf(self, args):
        text = self._format(self._cstring(int(args[0])), args[1:])
        self.output.append(text)
        return len(text)

    def _lib_puts(self, args):
        self.output.append(self._cstring(int(args[0])) + "\n")
        return 0

    def _lib_putchar(self, args):
        self.output.append(chr(int(args[0]) & 0xFF))
        return int(args[0])

    def _lib_sprintf(self, args):
        text = self._format(self._cstring(int(args[1])), args[2:])
        seg, off = self._decode(int(args[0]))
        data = text.encode("latin-1", "replace") + b"\x00"
        buf = self.segments[seg]
        if off + len(data) > len(buf):
            raise Trap("sprintf overflow")
        buf[off : off + len(data)] = data
        return len(text)

    def _lib_snprintf(self, args):
        text = self._format(self._cstring(int(args[2])), args[3:])
        n = int(args[1])
        seg, off = self._decode(int(args[0]))
        data = text.encode("latin-1", "replace")[: max(n - 1, 0)] + b"\x00"
        buf = self.segments[seg]
        if off + len(data) > len(buf):
            raise Trap("snprintf overflow")
        buf[off : off + len(data)] = data
        return len(text)

    def _lib_abort(self, args):
        raise Trap("abort")

    def _lib_exit(self, args):
        raise _Exit(int(args[0]) if args else 0)

    def _lib_assert(self, args):
        if not args or not args[0]:
            raise Trap("abort")
        return 0

    def _lib_malloc(self, args):
        size = int(args[0]) if args else 0
        if size < 0 or size > 1 << 24:
            return 0
        return self._ptr(self._new_segment(size))

    def _lib_calloc(self, args):
        n = int(args[0]) * int(args[1]) if len(args) >= 2 else 0
        return self._lib_malloc([n])

    def _lib_free(self, args):
        return 0

    def _lib_memset(self, args):
        seg, off = self._decode(int(args[0]))
        value = int(args[1]) & 0xFF
        n = int(args[2])
        buf = self.segments[seg]
        if off + n > len(buf) or n < 0:
            raise Trap("memset overflow")
        buf[off : off + n] = bytes([value]) * n
        return args[0]

    def _lib_memcpy(self, args):
        dseg, doff = self._decode(int(args[0]))
        sseg, soff = self._decode(int(args[1]))
        n = int(args[2])
        data = bytes(self.segments[sseg][soff : soff + n])
        if doff + n > len(self.segments[dseg]):
            raise Trap("memcpy overflow")
        self.segments[dseg][doff : doff + n] = data
        return args[0]

    def _lib_strlen(self, args):
        return len(self._cstring(int(args[0])))

    def _lib_strcpy(self, args):
        s = self._cstring(int(args[1]))
        seg, off = self._decode(int(args[0]))
        data = s.encode("latin-1", "replace") + b"\x00"
        buf = self.segments[seg]
        if off + len(data) > len(buf):
            raise Trap("strcpy overflow")
        buf[off : off + len(data)] = data
        return args[0]

    def _lib_strcmp(self, args):
        a = self._cstring(int(args[0]))
        b = self._cstring(int(args[1]))
        return (a > b) - (a < b)

    def _lib_abs(self, args):
        return abs(int(args[0]))

    def _lib_labs(self, args):
        return abs(int(args[0]))

    def _lib_rand(self, args):
        self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rand_state

    def _lib_srand(self, args):
        self._rand_state = int(args[0]) & 0x7FFFFFFF
        return 0

    def _lib_scanf(self, args):
        return 0  # no stdin in the sandbox; scanf matches nothing


def _wrap(value: int, ty: IRType) -> int:
    if not ty.is_int:
        return value
    bits = ty.bits
    value &= (1 << bits) - 1
    if value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _unsigned(value: int | float, ty: IRType) -> int:
    return int(value) & ((1 << ty.bits) - 1)


def _clamp_float(value: float, ty: IRType) -> float:
    if ty is IRType.F32:
        try:
            return _struct.unpack("<f", _struct.pack("<f", value))[0]
        except (OverflowError, ValueError):
            return float("inf") if value > 0 else float("-inf")
    return float(value)


def execute(
    module: IRModule,
    entry: str = "main",
    fuel: int = 200_000,
    flat: bool = False,
) -> ExecResult:
    """Convenience wrapper: run ``entry`` and return the result."""
    interp = Interpreter(module, fuel=fuel, flat=flat)
    result = interp.run(entry)
    return result


# -- flat dispatch table ------------------------------------------------------
#
# One handler per opcode int, indexed by the flatir opcode constants; each
# mirrors the corresponding isinstance branch of ``Interpreter._step``.


def _fi_binop(interp, buf, i, temps, frame_segs):
    a = interp._flat_value(buf, buf.a[i], temps)
    b = interp._flat_value(buf, buf.b[i], temps)
    temps[buf.dst[i]] = interp._binop_values(
        buf.names[buf.aux[i]], _FLAT_TYPES[buf.ty[i]], a, b
    )


def _fi_unop(interp, buf, i, temps, frame_segs):
    v = interp._flat_value(buf, buf.a[i], temps)
    op = buf.names[buf.aux[i]]
    if op == "neg":
        out = -v
    elif op == "bnot":
        out = ~int(v)
    elif op == "lnot":
        out = int(not v)
    else:
        raise Trap(f"unknown unop {op}")
    temps[buf.dst[i]] = _wrap(out, _FLAT_TYPES[buf.ty[i]])


def _fi_cast(interp, buf, i, temps, frame_segs):
    v = interp._flat_value(buf, buf.a[i], temps)
    temps[buf.dst[i]] = interp._cast_value(
        v, _FLAT_TYPES[buf.ty[i]], bool(buf.aux[i] & 1)
    )


def _fi_localaddr(interp, buf, i, temps, frame_segs):
    slot = buf.names[buf.aux[i]]
    seg = frame_segs.get(slot)
    if seg is None:
        raise Trap(f"unknown slot {slot}")
    temps[buf.dst[i]] = interp._ptr(seg)


def _fi_globaladdr(interp, buf, i, temps, frame_segs):
    name = buf.names[buf.aux[i]]
    if name in interp.seg_names:
        temps[buf.dst[i]] = interp._ptr(interp.seg_names[name])
    elif name in interp.module.functions:
        temps[buf.dst[i]] = interp._fn_ptr(name)
    else:
        raise Trap(f"unknown global {name}")


def _fi_load(interp, buf, i, temps, frame_segs):
    seg, off = interp._decode(int(interp._flat_value(buf, buf.a[i], temps)))
    temps[buf.dst[i]] = interp._read(seg, off, _FLAT_TYPES[buf.ty[i]])


def _fi_store(interp, buf, i, temps, frame_segs):
    seg, off = interp._decode(int(interp._flat_value(buf, buf.a[i], temps)))
    interp._write(
        seg, off, _FLAT_TYPES[buf.ty[i]],
        interp._flat_value(buf, buf.b[i], temps),
    )


def _fi_gep(interp, buf, i, temps, frame_segs):
    base = int(interp._flat_value(buf, buf.a[i], temps))
    index = int(interp._flat_value(buf, buf.b[i], temps))
    scale, offset = buf.xdata[buf.aux[i]]
    temps[buf.dst[i]] = base + index * scale + offset


def _fi_call(interp, buf, i, temps, frame_segs):
    callee, arg_encs, _arg_tys = buf.xdata[buf.aux[i]]
    name = buf.names[callee]
    args = [interp._flat_value(buf, e, temps) for e in arg_encs]
    if name in interp.module.functions:
        value = interp._call_function_flat(interp.module.functions[name], args)
    else:
        handler = getattr(interp, f"_lib_{name}", None)
        if handler is None:
            raise Trap(f"call to unknown function {name!r}")
        value = handler(args)
    d = buf.dst[i]
    if d is not None:
        temps[d] = value if value is not None else 0


def _fi_memcpy(interp, buf, i, temps, frame_segs):
    dseg, doff = interp._decode(int(interp._flat_value(buf, buf.a[i], temps)))
    sseg, soff = interp._decode(int(interp._flat_value(buf, buf.b[i], temps)))
    size = buf.aux[i]
    data = bytes(interp.segments[sseg][soff : soff + size])
    if doff + size > len(interp.segments[dseg]):
        raise Trap("memcpy overflow")
    interp.segments[dseg][doff : doff + size] = data


def _fi_jmp(interp, buf, i, temps, frame_segs):
    return ("jmp", buf.aux[i])


def _fi_br(interp, buf, i, temps, frame_segs):
    cond = interp._flat_value(buf, buf.a[i], temps)
    return ("jmp", buf.b[i] if cond else buf.aux[i])


def _fi_ret(interp, buf, i, temps, frame_segs):
    e = buf.a[i]
    value = interp._flat_value(buf, e, temps) if e != 0 else None
    return ("ret", value)


#: Indexed by the flatir opcode ints (OP_BINOP..OP_RET).
_FLAT_DISPATCH = (
    _fi_binop, _fi_unop, _fi_cast, _fi_localaddr, _fi_globaladdr, _fi_load,
    _fi_store, _fi_gep, _fi_call, _fi_memcpy, _fi_jmp, _fi_br, _fi_ret,
)
