"""The compiler facade: personalities, options, and the full pipeline.

``Compiler.compile`` never raises for input-dependent outcomes: the result
carries diagnostics (the program didn't compile), a crash (an internal
compiler error — a seeded bug fired), or a hang, plus the coverage edges the
run produced.  This is exactly the interface a fuzzer needs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cast import ast_nodes as ast
from repro.cast.cache import (
    FrontendCache,
    FrontendEntry,
    analyze_front_end,
    decl_digests,
)
from repro.compiler import features as feat
from repro.compiler.bugs import BugRegistry
from repro.compiler.coverage import CoverageMap
from repro.compiler.crash import CompilerCrash, CompilerHang
from repro.compiler.flatir import BridgeCounters
from repro.compiler.incremental import (
    assert_results_equal,
    lower_and_optimize,
)
from repro.compiler.ir import IRModule
from repro.compiler.session import (
    CompileSession,
    lower_and_optimize_session,
    middle_memo_key,
)
from repro.telemetry.spans import Tracer

#: Sentinel for "use the compiler's own session" on per-call overrides.
_SESSION_DEFAULT = object()


@dataclass
class CompileResult:
    ok: bool
    compiler: str
    diagnostics: list[str] = field(default_factory=list)
    crash: CompilerCrash | None = None
    hang: CompilerHang | None = None
    asm: str = ""
    module: IRModule | None = None
    coverage: CoverageMap = field(default_factory=CoverageMap)
    features: dict = field(default_factory=dict)
    #: Virtual compile time in seconds (used by the campaign clock), scaled
    #: by the pipeline stages the compile actually reached.
    cost: float = 0.09
    #: Which stages logically ran ("frontend", "middle", "backend") — replay
    #: counts as running, so this is invariant under incremental compilation.
    stages: tuple = ()

    @property
    def crashed(self) -> bool:
        return self.crash is not None or self.hang is not None


#: Command-line flags the macro fuzzer samples (§3.4 enhancement 1).
SAMPLABLE_FLAGS = (
    "-fno-tree-vrp",
    "-funroll-loops",
    "-ftree-vectorize",
    "-fno-inline",
    "-fomit-frame-pointer",
    "-fwrapv",
)


class Compiler:
    """One compiler personality (gcc-sim-14 or clang-sim-18)."""

    def __init__(
        self,
        personality: str,
        version: str,
        bug_seed: int = 20240427,
        cache: FrontendCache | None = None,
        session: CompileSession | None = None,
        fuse_passes: bool = False,
        flat_ir: bool = False,
        flat_native: bool = False,
    ) -> None:
        assert personality in ("gcc-sim", "clang-sim")
        self.personality = personality
        self.version = version
        self.name = f"{personality}-{version}"
        self.bug_seed = bug_seed
        self.bugs = BugRegistry.for_compiler(personality, seed=bug_seed)
        #: Optional shared front-end cache; ``compile(cache=...)`` overrides.
        self.cache = cache
        #: Optional cross-step middle-end session; ``compile(session=...)``
        #: overrides (``session=None`` there forces a session-less compile).
        self.session = session
        #: Run the fused single-walk -O1 round instead of the sequential
        #: five-pass loop (bit-identical observable behaviour).
        self.fuse_passes = fuse_passes
        #: Run the local optimizer rounds over the flat slotted
        #: :class:`~repro.compiler.flatir.IRBuffer` instead of the object IR
        #: (bit-identical observable behaviour; takes precedence over
        #: ``fuse_passes`` for pass selection).
        self.flat_ir = flat_ir or flat_native
        #: Keep the whole middle end buffer-native: irgen emits
        #: :class:`~repro.compiler.flatir.IRBuffer` rows directly, inlining/
        #: strlen/vectorize run their flat ports, the backend walks the live
        #: buffer, and journal replay serves buffer snapshots.  Implies
        #: ``flat_ir``; bit-identical observable behaviour.
        self.flat_native = flat_native
        #: Object<->buffer bridge crossings charged to this compiler
        #: (``flat_encodes``/``flat_decodes`` in ``stats_snapshot``).  Like
        #: ``fused_pass_runs``, deliberately outside the compared
        #: feature/stats space.
        self.bridge = BridgeCounters()
        #: Fused fixpoint loops executed (deliberately outside the compared
        #: feature/stats space — see ``OptContext.fused_runs``).
        self.fused_pass_runs = 0
        #: Wall-clock seconds per pipeline stage (lex/parse/sema via the
        #: cache, plus irgen/opt/backend), accumulated across compiles.
        self.stage_timings: Counter = Counter()
        #: Stage spans accumulate into ``stage_timings``; a fuzzer's
        #: telemetry session may attach its sink/clock for event emission.
        self.tracer = Tracer(timings=self.stage_timings)
        #: Compiles served by function-granular middle-end replay, and
        #: incremental attempts that aborted back to a full middle end.
        self.middle_incremental_hits = 0
        self.middle_incremental_fallbacks = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Compiler {self.name}>"

    # ------------------------------------------------------------------

    def compile(
        self,
        source_text: str,
        opt_level: int = 2,
        flags: tuple[str, ...] = (),
        cache: FrontendCache | None = None,
        edits_from: tuple[str, tuple] | None = None,
        paranoid: bool = False,
        session: "CompileSession | None" = _SESSION_DEFAULT,
    ) -> CompileResult:
        """Compile ``source_text``; never raises for input-driven outcomes.

        ``edits_from=(parent_text, edit_script)`` names the already-compiled
        program this text was mutated from, enabling dirty-region front-end
        reuse and function-granular middle-end replay.  ``session`` (default:
        the compiler's own) interns per-function middle-end artifacts across
        compiles; pass ``session=None`` explicitly to force a session-less
        run.  ``paranoid=True`` cross-checks every cached/incremental/
        session-served compile against a from-scratch one and raises
        ``IncrementalDivergence`` on any observable mismatch.
        """
        session = self.session if session is _SESSION_DEFAULT else session
        cov = CoverageMap()
        result = CompileResult(False, self.name, coverage=cov)
        features: dict = {
            "opt_level": opt_level,
            "flags": tuple(flags),
            "personality": self.personality,
        }
        result.features = features
        cache = cache if cache is not None else self.cache
        journal: list | None = (
            [] if cache is not None or session is not None else None
        )
        if journal is not None:
            cov.journal = journal
        stages = ["frontend"]
        try:
            self._run_pipeline(
                source_text, opt_level, flags, cov, features, result,
                cache, edits_from=edits_from, paranoid=paranoid,
                journal=journal, stages=stages, session=session,
            )
        except CompilerCrash as crash:
            result.ok = False
            result.crash = crash
            cov.hit("crash", crash.bug_id)
        except CompilerHang as hang:
            result.ok = False
            result.hang = hang
            cov.hit("hang", hang.bug_id)
        result.stages = tuple(stages)
        # Virtual cost scaled by the stages the compile reached; the terms
        # sum to the historical 0.05 + u for a full three-stage compile.
        u = min(len(source_text), 40_000) / 22_000.0
        cost = 0.02 + 0.45 * u
        if "middle" in stages:
            cost += 0.02 + 0.35 * u
        if "backend" in stages:
            cost += 0.01 + 0.20 * u
        result.cost = cost
        if paranoid and (cache is not None or session is not None):
            # The reference runs on the object IR even when this compiler is
            # flat, so every paranoid check doubles as a flat-vs-object
            # differential on top of the cached-vs-fresh one.
            flat_prev = self.flat_ir
            flat_native_prev = self.flat_native
            self.flat_ir = False
            self.flat_native = False
            try:
                reference = self.compile(
                    source_text, opt_level, flags, cache=None, session=None
                )
            finally:
                self.flat_ir = flat_prev
                self.flat_native = flat_native_prev
            if session is not None:
                session.paranoid_checks += 1
            assert_results_equal(result, reference)
        return result

    def compile_batch(
        self,
        requests,
        opt_level: int = 2,
        flags: tuple[str, ...] = (),
        cache: FrontendCache | None = None,
        paranoid: bool = False,
        session: "CompileSession | None" = _SESSION_DEFAULT,
        until=None,
    ) -> list[CompileResult]:
        """Compile one mutation attempt set against one session.

        ``requests`` is an iterable of ``(text, edits_from)`` pairs — lazily
        consumed, so a generator that draws fuzzer randomness keeps its exact
        sequential draw order.  The first request's parent is materialized in
        the session once per batch (if not already interned), so every
        attempt's clean functions replay instead of re-lowering.  ``until``,
        when given, is invoked with each result and truthy return stops the
        batch early (μCFuzz's keep/crash early exit).
        """
        session = self.session if session is _SESSION_DEFAULT else session
        cache = cache if cache is not None else self.cache
        results: list[CompileResult] = []
        materialized = False
        for text, edits_from in requests:
            if (
                session is not None
                and edits_from is not None
                and not materialized
            ):
                parent_text = edits_from[0]
                options = middle_memo_key(
                    self.name,
                    self.bug_seed,
                    opt_level,
                    tuple(flags),
                    mode="flat-native" if self.flat_native else "",
                )
                if not session.has_result(options, parent_text):
                    # Observationally pure for the caller: the parent was
                    # already compiled when it entered the pool, so this
                    # warm-up adds no coverage/pool state and consumes no
                    # fuzzer randomness.
                    self.compile(
                        parent_text, opt_level, flags,
                        cache=cache, session=session,
                    )
                    session.materializations += 1
                materialized = True
            result = self.compile(
                text, opt_level, flags, cache=cache, edits_from=edits_from,
                paranoid=paranoid, session=session,
            )
            results.append(result)
            if until is not None and until(result):
                break
        return results

    # ------------------------------------------------------------------

    def _run_pipeline(
        self,
        source_text: str,
        opt_level: int,
        flags: tuple[str, ...],
        cov: CoverageMap,
        features: dict,
        result: CompileResult,
        cache: FrontendCache | None = None,
        edits_from: tuple[str, tuple] | None = None,
        paranoid: bool = False,
        journal: list | None = None,
        stages: list | None = None,
        session: "CompileSession | None" = None,
    ) -> None:
        # ---- Front end: lex/parse/sema, shared via the content cache. ----
        # The per-text summary (coverage edges, feature vector, diagnostics)
        # is deterministic, so cache hits replay identical bookkeeping into
        # this call's CoverageMap/CompileResult; bug checks stay per-call
        # because they depend on opt_level/flags.
        plan = None
        if cache is None:
            entry = analyze_front_end(source_text, tracer=self.tracer)
        elif edits_from is not None:
            parent_text, edits = edits_from
            parent_entry = cache.peek(parent_text) if edits else None
            if parent_entry is not None:
                entry, plan = cache.front_end_incremental(
                    source_text, parent_entry, edits,
                    paranoid=paranoid, tracer=self.tracer,
                )
            else:
                entry = cache.front_end(source_text, tracer=self.tracer)
        else:
            entry = cache.front_end(source_text, tracer=self.tracer)
        summary = _frontend_summary(entry, plan, session)
        cov.merge(summary.edges)
        features.update(summary.features)
        result.diagnostics.extend(summary.diagnostics)
        # Front-end bug checks run even on malformed input: a fuzzer can
        # crash the parser without producing a valid program.
        self.bugs.check("front-end", features)
        if entry.unit is None or result.diagnostics:
            return

        # ---- Middle + back end (session- and incremental-aware). ---------
        if stages is not None:
            stages.append("middle")
        if session is not None:
            # The session path supersedes the journal/parent-memo machinery:
            # reuse is content-keyed, so it fires across steps and lineages.
            lower_and_optimize_session(
                self, session, entry, opt_level, flags, cov, features,
                result, journal=journal, plan=plan, stages=stages,
            )
            return
        lower_and_optimize(
            self, entry, opt_level, flags, cov, features, result,
            journal=journal, plan=plan, stages=stages,
        )

    def _personality_flags(self, flags: tuple[str, ...]) -> tuple[str, ...]:
        extra: tuple[str, ...] = ()
        if self.personality == "clang-sim":
            # clang-sim's pipeline always vectorizes at -O2 like LLVM.
            extra = ("-ftree-vectorize",)
        return tuple(flags) + extra


@dataclass(frozen=True)
class _FrontendSummary:
    """Per-text front-end bookkeeping, replayed into each compile call."""

    edges: frozenset
    features: dict
    diagnostics: tuple[str, ...]


def _frontend_summary(
    entry: FrontendEntry, plan=None, session=None
) -> _FrontendSummary:
    """Coverage edges, features, and diagnostics for one front-end result.

    Deterministic per source text, so it is memoized on the cache entry; the
    caller merges it into per-call state.  The summary dict/edge set are
    treated as immutable after construction.  With an incremental ``plan``,
    the per-declaration AST work (coverage walk + feature extraction) is
    grafted from the parent entry for every unchanged declaration.  With a
    ``session``, per-decl summaries are additionally interned across entries
    by content digest, so a decl shared between unrelated lineages is only
    walked once per session.
    """
    summary = entry.memo.get("driver_summary")
    if summary is not None:
        return summary
    cov = CoverageMap()
    features: dict = {}
    diagnostics: list[str] = []
    if entry.lex_error is not None:
        cov.hit("fe:lex_error", entry.lex_error.message.split(" ")[0])
    features.update(feat.lexical_features(entry.source.text, entry.tokens))
    # Even broken inputs exercise the lexer up to the failure point.
    _cover_tokens(entry.token_prefix, cov)
    if entry.unit is None:
        message = (entry.parse_error or "")[:64]
        cov.hit("fe:diag", message.split(" ")[0])
        cov.hit("fe:diag_detail", message[:28])
        diagnostics.append(f"error: {message}")
        features["parse_failed"] = 1
        if entry.parse_recursion:
            features["parse_depth_overflow"] = 1
    else:
        cov.hit("fe:decls", min(len(entry.unit.decls), 32))
        # Semantic analysis ran before feature extraction — type-dependent
        # fingerprints (e.g. swapped subscripts) need annotated nodes.
        for d in entry.sema_diags:
            cov.hit("sema:diag", d.message.split("'")[0][:48])
            if d.severity == "error":
                diagnostics.append(d.message)
        if diagnostics:
            features["sema_failed"] = 1
        decl_summaries = _decl_summaries(entry, plan, session)
        features.update(
            feat.merge_ast_features(f for _, f in decl_summaries)
        )
        cov.hit("fe:node", "TranslationUnit")
        for decl in entry.unit.decls:
            cov.hit("fe:edge", ("TranslationUnit", decl.kind))
        for edges, _ in decl_summaries:
            cov.merge(edges)
    summary = _FrontendSummary(frozenset(cov.edges), features, tuple(diagnostics))
    entry.memo["driver_summary"] = summary
    return summary


def _decl_summaries(entry: FrontendEntry, plan, session=None) -> list:
    """Per-decl (coverage edges, feature vector) pairs, grafted when clean.

    Both halves are pure over the decl subtree (offset-shift invariant), so
    an unchanged declaration reuses its parent's pair; only the dirty decls
    are walked.  Memoized on the entry for this text's future compiles.
    With a ``session``, freshly-walked pairs are also interned in the
    session's summary store keyed by ``(header digests, decl digest)`` — the
    header tuple pins the declaration environment (typedefs change how a
    decl's text parses), the decl digest pins its own text — so a decl
    reappearing in an unrelated lineage replays instead of re-walking.
    """
    cached = entry.memo.get("decl_summaries")
    if cached is not None:
        return cached
    parent_sums = (
        plan.parent.memo.get("decl_summaries") if plan is not None else None
    )
    intern = session.summary_intern if session is not None else None
    if intern is not None:
        full_digests, header_digests = decl_digests(
            entry, plan, memo_stats=session.digest_stats
        )
    summaries = []
    for i, decl in enumerate(entry.unit.decls):
        parent_index = plan.decl_map[i] if parent_sums is not None else None
        if parent_index is not None:
            summaries.append(parent_sums[parent_index])
            continue
        if intern is None:
            summaries.append(_decl_summary(decl, entry.source.text))
            continue
        ikey = (header_digests, full_digests[i])
        pair = intern.get(ikey)
        if pair is not None:
            intern.move_to_end(ikey)
            session.summary_hits += 1
        else:
            pair = _decl_summary(decl, entry.source.text)
            intern[ikey] = pair
            while len(intern) > session.maxsize:
                intern.popitem(last=False)
        summaries.append(pair)
    entry.memo["decl_summaries"] = summaries
    return summaries


def _decl_summary(decl: ast.Node, source_text: str) -> tuple:
    cov = CoverageMap()
    # One materialized pre-order walk (same order as ``Node.walk``), shared
    # by the coverage and feature passes; built with a plain loop because
    # the generator's per-node resume is the hot path's dominant cost.
    nodes: list[ast.Node] = []
    stack = [decl]
    while stack:
        node = stack.pop()
        nodes.append(node)
        children = list(node.children())
        children.reverse()
        stack.extend(children)
    _cover_ast(decl, cov, nodes=nodes)
    return (
        frozenset(cov.edges),
        feat.decl_ast_features(decl, source_text, nodes=nodes),
    )


def _cover_tokens(tokens, cov: CoverageMap) -> None:
    from repro.cast.lexer import TokenKind

    # These maps never carry a journal, so edges go straight into the set.
    assert cov.journal is None
    add = cov.edges.add
    keyword_or_punct = (TokenKind.KEYWORD, TokenKind.PUNCT)
    prev = None
    for tok in tokens[:6000]:
        key = tok.text if tok.kind in keyword_or_punct else tok.kind.name
        add(("fe:token", key))
        if prev is not None:
            add(("fe:token2", (prev, key)))
        prev = key


def _cover_ast(root: ast.Node, cov: CoverageMap, nodes=None) -> None:
    assert cov.journal is None
    add = cov.edges.add
    for node in nodes if nodes is not None else root.walk():
        kind = node.kind
        add(("fe:node", kind))
        for child in node.children():
            add(("fe:edge", (kind, child.kind)))
        if isinstance(node, ast.BinaryOperator):
            add(("fe:binop", node.op))
        elif isinstance(node, ast.UnaryOperator):
            add(("fe:unop", (node.op, node.prefix)))
        elif isinstance(node, (ast.VarDecl, ast.ParmVarDecl, ast.FieldDecl)):
            add(("fe:type", node.type.spelling()))


#: The two evaluation targets of §5.1 (GCC-14 and Clang-18 stand-ins).
GCC_SIM = ("gcc-sim", "14")
CLANG_SIM = ("clang-sim", "18")


def default_compilers() -> list[Compiler]:
    """The GCC-14 / Clang-18 pair used throughout the evaluation."""
    return [Compiler(*GCC_SIM), Compiler(*CLANG_SIM)]
