"""The compiler facade: personalities, options, and the full pipeline.

``Compiler.compile`` never raises for input-dependent outcomes: the result
carries diagnostics (the program didn't compile), a crash (an internal
compiler error — a seeded bug fired), or a hang, plus the coverage edges the
run produced.  This is exactly the interface a fuzzer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cast import ast_nodes as ast
from repro.cast.parser import ParseError, Parser
from repro.cast.sema import Sema
from repro.cast.source import SourceFile
from repro.compiler import features as feat
from repro.compiler.backend import lower_to_asm
from repro.compiler.bugs import BugRegistry
from repro.compiler.coverage import CoverageMap
from repro.compiler.crash import CompilerCrash, CompilerHang
from repro.compiler.ir import IRModule
from repro.compiler.irgen import IRGen, LoweringError
from repro.compiler.passes import OptContext, run_pipeline


@dataclass
class CompileResult:
    ok: bool
    compiler: str
    diagnostics: list[str] = field(default_factory=list)
    crash: CompilerCrash | None = None
    hang: CompilerHang | None = None
    asm: str = ""
    module: IRModule | None = None
    coverage: CoverageMap = field(default_factory=CoverageMap)
    features: dict = field(default_factory=dict)
    #: Virtual compile time in seconds (used by the campaign clock).
    cost: float = 0.09

    @property
    def crashed(self) -> bool:
        return self.crash is not None or self.hang is not None


#: Command-line flags the macro fuzzer samples (§3.4 enhancement 1).
SAMPLABLE_FLAGS = (
    "-fno-tree-vrp",
    "-funroll-loops",
    "-ftree-vectorize",
    "-fno-inline",
    "-fomit-frame-pointer",
    "-fwrapv",
)


class Compiler:
    """One compiler personality (gcc-sim-14 or clang-sim-18)."""

    def __init__(self, personality: str, version: str, bug_seed: int = 20240427) -> None:
        assert personality in ("gcc-sim", "clang-sim")
        self.personality = personality
        self.version = version
        self.name = f"{personality}-{version}"
        self.bugs = BugRegistry.for_compiler(personality, seed=bug_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Compiler {self.name}>"

    # ------------------------------------------------------------------

    def compile(
        self,
        source_text: str,
        opt_level: int = 2,
        flags: tuple[str, ...] = (),
    ) -> CompileResult:
        cov = CoverageMap()
        result = CompileResult(False, self.name, coverage=cov)
        features: dict = {
            "opt_level": opt_level,
            "flags": tuple(flags),
            "personality": self.personality,
        }
        result.features = features
        try:
            self._run_pipeline(source_text, opt_level, flags, cov, features, result)
        except CompilerCrash as crash:
            result.ok = False
            result.crash = crash
            cov.hit("crash", crash.bug_id)
        except CompilerHang as hang:
            result.ok = False
            result.hang = hang
            cov.hit("hang", hang.bug_id)
        result.cost = 0.05 + min(len(source_text), 40_000) / 22_000.0
        return result

    # ------------------------------------------------------------------

    def _run_pipeline(
        self,
        source_text: str,
        opt_level: int,
        flags: tuple[str, ...],
        cov: CoverageMap,
        features: dict,
        result: CompileResult,
    ) -> None:
        # ---- Front end: lex once, share the token stream. ----------------
        from repro.cast.lexer import Lexer

        prefix, lex_error = Lexer(SourceFile(source_text)).tokens_best_effort()
        tokens = None if lex_error is not None else prefix
        if lex_error is not None:
            cov.hit("fe:lex_error", lex_error.message.split(" ")[0])
        features.update(feat.lexical_features(source_text, tokens))
        # Even broken inputs exercise the lexer up to the failure point.
        self._cover_tokens(prefix, cov)

        unit = self._parse(source_text, tokens, cov, features, result)
        # Front-end bug checks run even on malformed input: a fuzzer can
        # crash the parser without producing a valid program.  Semantic
        # analysis runs before feature extraction — type-dependent
        # fingerprints (e.g. swapped subscripts) need annotated nodes.
        sema = None
        if unit is not None:
            sema = Sema()
            diags = sema.analyze(unit)
            for d in diags:
                cov.hit("sema:diag", d.message.split("'")[0][:48])
                if d.severity == "error":
                    result.diagnostics.append(d.message)
            if result.diagnostics:
                features["sema_failed"] = 1
            features.update(feat.ast_features(unit, source_text))
            self._cover_ast(unit, cov)
        self.bugs.check("front-end", features)
        if unit is None or result.diagnostics:
            return

        # ---- IR generation. ---------------------------------------------
        assert sema is not None
        irgen = IRGen(sema, cov)
        try:
            module = irgen.lower(unit)
        except (LoweringError, RecursionError) as exc:
            result.diagnostics.append(f"sorry, unimplemented: {exc}")
            features["lowering_failed"] = 1
            self.bugs.check("ir-gen", features)
            return
        features.update(irgen.stats.counters)
        self.bugs.check("ir-gen", features)

        # ---- Optimizer. ---------------------------------------------------
        def checkpoint(point: str, extra: dict) -> None:
            merged = dict(features)
            merged.update(extra)
            self.bugs.check(point, merged)

        effective_flags = self._personality_flags(flags)
        ctx = OptContext(
            cov=cov,
            opt_level=opt_level,
            flags=effective_flags,
            checkpoint=checkpoint,
        )
        run_pipeline(module, ctx)
        features.update(ctx.stats.counters)
        self.bugs.check("optimization", features)

        # ---- Back end. -------------------------------------------------------
        be = lower_to_asm(module, ctx)
        features.update(be.stats)
        self.bugs.check("back-end", features)

        result.ok = True
        result.asm = be.asm
        result.module = module

    def _personality_flags(self, flags: tuple[str, ...]) -> tuple[str, ...]:
        extra: tuple[str, ...] = ()
        if self.personality == "clang-sim":
            # clang-sim's pipeline always vectorizes at -O2 like LLVM.
            extra = ("-ftree-vectorize",)
        return tuple(flags) + extra

    def _parse(
        self,
        source_text: str,
        tokens,
        cov: CoverageMap,
        features: dict,
        result: CompileResult,
    ) -> ast.TranslationUnit | None:
        try:
            parser = Parser(SourceFile(source_text), tokens=tokens)
            unit = parser.parse()
        except (ParseError, RecursionError) as exc:
            message = str(exc)[:64]
            cov.hit("fe:diag", message.split(" ")[0])
            cov.hit("fe:diag_detail", message[:28])
            result.diagnostics.append(f"error: {message}")
            features["parse_failed"] = 1
            if isinstance(exc, RecursionError):
                features["parse_depth_overflow"] = 1
            return None
        cov.hit("fe:decls", min(len(unit.decls), 32))
        return unit

    def _cover_tokens(self, tokens, cov: CoverageMap) -> None:
        from repro.cast.lexer import TokenKind

        prev = None
        for tok in tokens[:6000]:
            key = tok.text if tok.kind in (TokenKind.KEYWORD, TokenKind.PUNCT) else tok.kind.name
            cov.hit("fe:token", key)
            if prev is not None:
                cov.hit("fe:token2", (prev, key))
            prev = key

    def _cover_ast(self, unit: ast.TranslationUnit, cov: CoverageMap) -> None:
        for node in unit.walk():
            cov.hit("fe:node", node.kind)
            for child in node.children():
                cov.hit("fe:edge", (node.kind, child.kind))
            if isinstance(node, ast.BinaryOperator):
                cov.hit("fe:binop", node.op)
            elif isinstance(node, ast.UnaryOperator):
                cov.hit("fe:unop", (node.op, node.prefix))
            elif isinstance(node, (ast.VarDecl, ast.ParmVarDecl, ast.FieldDecl)):
                cov.hit("fe:type", node.type.spelling())


#: The two evaluation targets of §5.1 (GCC-14 and Clang-18 stand-ins).
GCC_SIM = ("gcc-sim", "14")
CLANG_SIM = ("clang-sim", "18")


def default_compilers() -> list[Compiler]:
    """The GCC-14 / Clang-18 pair used throughout the evaluation."""
    return [Compiler(*GCC_SIM), Compiler(*CLANG_SIM)]
