"""The compiler facade: personalities, options, and the full pipeline.

``Compiler.compile`` never raises for input-dependent outcomes: the result
carries diagnostics (the program didn't compile), a crash (an internal
compiler error — a seeded bug fired), or a hang, plus the coverage edges the
run produced.  This is exactly the interface a fuzzer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cast import ast_nodes as ast
from repro.cast.cache import FrontendCache, FrontendEntry, analyze_front_end
from repro.compiler import features as feat
from repro.compiler.backend import lower_to_asm
from repro.compiler.bugs import BugRegistry
from repro.compiler.coverage import CoverageMap
from repro.compiler.crash import CompilerCrash, CompilerHang
from repro.compiler.ir import IRModule
from repro.compiler.irgen import IRGen, LoweringError
from repro.compiler.passes import OptContext, run_pipeline


@dataclass
class CompileResult:
    ok: bool
    compiler: str
    diagnostics: list[str] = field(default_factory=list)
    crash: CompilerCrash | None = None
    hang: CompilerHang | None = None
    asm: str = ""
    module: IRModule | None = None
    coverage: CoverageMap = field(default_factory=CoverageMap)
    features: dict = field(default_factory=dict)
    #: Virtual compile time in seconds (used by the campaign clock).
    cost: float = 0.09

    @property
    def crashed(self) -> bool:
        return self.crash is not None or self.hang is not None


#: Command-line flags the macro fuzzer samples (§3.4 enhancement 1).
SAMPLABLE_FLAGS = (
    "-fno-tree-vrp",
    "-funroll-loops",
    "-ftree-vectorize",
    "-fno-inline",
    "-fomit-frame-pointer",
    "-fwrapv",
)


class Compiler:
    """One compiler personality (gcc-sim-14 or clang-sim-18)."""

    def __init__(
        self,
        personality: str,
        version: str,
        bug_seed: int = 20240427,
        cache: FrontendCache | None = None,
    ) -> None:
        assert personality in ("gcc-sim", "clang-sim")
        self.personality = personality
        self.version = version
        self.name = f"{personality}-{version}"
        self.bug_seed = bug_seed
        self.bugs = BugRegistry.for_compiler(personality, seed=bug_seed)
        #: Optional shared front-end cache; ``compile(cache=...)`` overrides.
        self.cache = cache

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Compiler {self.name}>"

    # ------------------------------------------------------------------

    def compile(
        self,
        source_text: str,
        opt_level: int = 2,
        flags: tuple[str, ...] = (),
        cache: FrontendCache | None = None,
    ) -> CompileResult:
        cov = CoverageMap()
        result = CompileResult(False, self.name, coverage=cov)
        features: dict = {
            "opt_level": opt_level,
            "flags": tuple(flags),
            "personality": self.personality,
        }
        result.features = features
        try:
            self._run_pipeline(
                source_text, opt_level, flags, cov, features, result,
                cache if cache is not None else self.cache,
            )
        except CompilerCrash as crash:
            result.ok = False
            result.crash = crash
            cov.hit("crash", crash.bug_id)
        except CompilerHang as hang:
            result.ok = False
            result.hang = hang
            cov.hit("hang", hang.bug_id)
        result.cost = 0.05 + min(len(source_text), 40_000) / 22_000.0
        return result

    # ------------------------------------------------------------------

    def _run_pipeline(
        self,
        source_text: str,
        opt_level: int,
        flags: tuple[str, ...],
        cov: CoverageMap,
        features: dict,
        result: CompileResult,
        cache: FrontendCache | None = None,
    ) -> None:
        # ---- Front end: lex/parse/sema, shared via the content cache. ----
        # The per-text summary (coverage edges, feature vector, diagnostics)
        # is deterministic, so cache hits replay identical bookkeeping into
        # this call's CoverageMap/CompileResult; bug checks stay per-call
        # because they depend on opt_level/flags.
        entry = cache.front_end(source_text) if cache is not None else analyze_front_end(source_text)
        summary = _frontend_summary(entry)
        cov.merge(summary.edges)
        features.update(summary.features)
        result.diagnostics.extend(summary.diagnostics)
        # Front-end bug checks run even on malformed input: a fuzzer can
        # crash the parser without producing a valid program.
        self.bugs.check("front-end", features)
        if entry.unit is None or result.diagnostics:
            return
        unit = entry.unit

        # ---- IR generation. ---------------------------------------------
        sema = entry.sema
        assert sema is not None
        irgen = IRGen(sema, cov)
        try:
            module = irgen.lower(unit)
        except (LoweringError, RecursionError) as exc:
            result.diagnostics.append(f"sorry, unimplemented: {exc}")
            features["lowering_failed"] = 1
            self.bugs.check("ir-gen", features)
            return
        features.update(irgen.stats.counters)
        self.bugs.check("ir-gen", features)

        # ---- Optimizer. ---------------------------------------------------
        def checkpoint(point: str, extra: dict) -> None:
            merged = dict(features)
            merged.update(extra)
            self.bugs.check(point, merged)

        effective_flags = self._personality_flags(flags)
        ctx = OptContext(
            cov=cov,
            opt_level=opt_level,
            flags=effective_flags,
            checkpoint=checkpoint,
        )
        run_pipeline(module, ctx)
        features.update(ctx.stats.counters)
        self.bugs.check("optimization", features)

        # ---- Back end. -------------------------------------------------------
        be = lower_to_asm(module, ctx)
        features.update(be.stats)
        self.bugs.check("back-end", features)

        result.ok = True
        result.asm = be.asm
        result.module = module

    def _personality_flags(self, flags: tuple[str, ...]) -> tuple[str, ...]:
        extra: tuple[str, ...] = ()
        if self.personality == "clang-sim":
            # clang-sim's pipeline always vectorizes at -O2 like LLVM.
            extra = ("-ftree-vectorize",)
        return tuple(flags) + extra


@dataclass(frozen=True)
class _FrontendSummary:
    """Per-text front-end bookkeeping, replayed into each compile call."""

    edges: frozenset
    features: dict
    diagnostics: tuple[str, ...]


def _frontend_summary(entry: FrontendEntry) -> _FrontendSummary:
    """Coverage edges, features, and diagnostics for one front-end result.

    Deterministic per source text, so it is memoized on the cache entry; the
    caller merges it into per-call state.  The summary dict/edge set are
    treated as immutable after construction.
    """
    summary = entry.memo.get("driver_summary")
    if summary is not None:
        return summary
    cov = CoverageMap()
    features: dict = {}
    diagnostics: list[str] = []
    if entry.lex_error is not None:
        cov.hit("fe:lex_error", entry.lex_error.message.split(" ")[0])
    features.update(feat.lexical_features(entry.source.text, entry.tokens))
    # Even broken inputs exercise the lexer up to the failure point.
    _cover_tokens(entry.token_prefix, cov)
    if entry.unit is None:
        message = (entry.parse_error or "")[:64]
        cov.hit("fe:diag", message.split(" ")[0])
        cov.hit("fe:diag_detail", message[:28])
        diagnostics.append(f"error: {message}")
        features["parse_failed"] = 1
        if entry.parse_recursion:
            features["parse_depth_overflow"] = 1
    else:
        cov.hit("fe:decls", min(len(entry.unit.decls), 32))
        # Semantic analysis ran before feature extraction — type-dependent
        # fingerprints (e.g. swapped subscripts) need annotated nodes.
        for d in entry.sema_diags:
            cov.hit("sema:diag", d.message.split("'")[0][:48])
            if d.severity == "error":
                diagnostics.append(d.message)
        if diagnostics:
            features["sema_failed"] = 1
        features.update(feat.ast_features(entry.unit, entry.source.text))
        _cover_ast(entry.unit, cov)
    summary = _FrontendSummary(frozenset(cov.edges), features, tuple(diagnostics))
    entry.memo["driver_summary"] = summary
    return summary


def _cover_tokens(tokens, cov: CoverageMap) -> None:
    from repro.cast.lexer import TokenKind

    prev = None
    for tok in tokens[:6000]:
        key = tok.text if tok.kind in (TokenKind.KEYWORD, TokenKind.PUNCT) else tok.kind.name
        cov.hit("fe:token", key)
        if prev is not None:
            cov.hit("fe:token2", (prev, key))
        prev = key


def _cover_ast(unit: ast.TranslationUnit, cov: CoverageMap) -> None:
    for node in unit.walk():
        cov.hit("fe:node", node.kind)
        for child in node.children():
            cov.hit("fe:edge", (node.kind, child.kind))
        if isinstance(node, ast.BinaryOperator):
            cov.hit("fe:binop", node.op)
        elif isinstance(node, ast.UnaryOperator):
            cov.hit("fe:unop", (node.op, node.prefix))
        elif isinstance(node, (ast.VarDecl, ast.ParmVarDecl, ast.FieldDecl)):
            cov.hit("fe:type", node.type.spelling())


#: The two evaluation targets of §5.1 (GCC-14 and Clang-18 stand-ins).
GCC_SIM = ("gcc-sim", "14")
CLANG_SIM = ("clang-sim", "18")


def default_compilers() -> list[Compiler]:
    """The GCC-14 / Clang-18 pair used throughout the evaluation."""
    return [Compiler(*GCC_SIM), Compiler(*CLANG_SIM)]
