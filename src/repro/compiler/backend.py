"""The back end: instruction selection, register allocation, emission.

Produces a toy RISC-ish assembly text.  Reports the structural features the
back-end bug triggers key on (register pressure, empty label blocks in void
functions — the Clang #63762 pattern — spill density, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.coverage import CoverageMap
from repro.compiler.ir import (
    BinOp, Br, Call, Cast, Gep, GlobalAddr, ImmFloat, ImmInt, IRFunction,
    IRModule, IRType, Jmp, Load, LocalAddr, Memcpy, Ret, Store, Temp, UnOp,
)
from repro.compiler.passes.common import OptContext

NUM_REGS = 8

_OPCODE = {
    "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
    "/u": "udiv", "%u": "urem", "<<": "shl", ">>": "sar", ">>u": "shr",
    "&": "and", "|": "or", "^": "xor",
    "lt": "cmplt", "le": "cmple", "gt": "cmpgt", "ge": "cmpge",
    "eq": "cmpeq", "ne": "cmpne",
    "ltu": "cmpltu", "leu": "cmpleu", "gtu": "cmpgtu", "geu": "cmpgeu",
    "equ": "cmpeq", "neu": "cmpne",
}


@dataclass
class BackendResult:
    asm: str
    stats: dict[str, int] = field(default_factory=dict)


def _live_intervals(instrs: list) -> dict[int, tuple[int, int]]:
    intervals: dict[int, tuple[int, int]] = {}
    for i, instr in enumerate(instrs):
        dst = instr.dest()
        if dst is not None:
            lo, hi = intervals.get(dst.index, (i, i))
            intervals[dst.index] = (min(lo, i), max(hi, i))
        for op in instr.operands():
            if isinstance(op, Temp):
                lo, hi = intervals.get(op.index, (i, i))
                intervals[op.index] = (min(lo, i), max(hi, i))
    return intervals


def _allocate(intervals: dict[int, tuple[int, int]]) -> tuple[dict[int, str], int, int]:
    """Greedy linear-scan allocation; returns (assignment, spills, pressure)."""
    assignment: dict[int, str] = {}
    events: list[tuple[int, int, int]] = []  # (start, end, temp)
    for t, (lo, hi) in intervals.items():
        events.append((lo, hi, t))
    events.sort()
    active: list[tuple[int, int, str]] = []  # (end, temp, reg)
    free = [f"r{i}" for i in range(NUM_REGS)]
    spills = 0
    pressure = 0
    for start, end, t in events:
        expired = [a for a in active if a[0] < start]
        for a in expired:
            active.remove(a)
            free.append(a[2])
        pressure = max(pressure, len(active) + 1)
        if free:
            reg = free.pop()
            assignment[t] = reg
            active.append((end, t, reg))
        else:
            spills += 1
            assignment[t] = f"[sp+{8 * spills}]"
    return assignment, spills, pressure


def lower_to_asm(
    module: IRModule, ctx: OptContext, fn_lowerer=None
) -> BackendResult:
    """Emit the whole module.

    ``fn_lowerer(fn, ctx) -> BackendResult`` overrides per-function lowering
    (the incremental middle end replays unchanged functions through it); the
    cumulative statistics and the module/function checkpoints always run
    live, because they depend on the preceding functions' totals.
    """
    lines: list[str] = []
    cov = ctx.cov
    lower = fn_lowerer if fn_lowerer is not None else _lower_function
    total_stats = {
        "be_blocks": 0, "be_instrs": 0, "be_spills": 0, "be_pressure": 0,
        "be_calls": 0, "be_label_blocks": 0,
        "be_void_trailing_label": 0, "be_empty_label_after_call": 0,
    }
    for g in module.globals.values():
        lines.append(f".data {g.name}: .space {g.size}")
        cov.hit("backend:global", (g.const, g.volatile, g.size > 16))
    for fn in module.functions.values():
        result = lower(fn, ctx)
        lines.append(result.asm)
        for k, v in result.stats.items():
            if k in ("be_pressure",):
                total_stats[k] = max(total_stats[k], v)
            else:
                total_stats[k] = total_stats.get(k, 0) + v
        features = dict(total_stats)
        features.update({f"fn_{k}": v for k, v in result.stats.items()})
        ctx.check("backend:function", features)
    ctx.check("backend:module", total_stats)
    return BackendResult("\n".join(lines), total_stats)


def _lower_function(fn: IRFunction, ctx: OptContext) -> BackendResult:
    if getattr(ctx, "flat", False):
        return _lower_function_flat(fn, ctx)
    cov = ctx.cov
    instrs = [i for b in fn.blocks for i in b.instrs]
    intervals = _live_intervals(instrs)
    assignment, spills, pressure = _allocate(intervals)
    cov.hit("backend:regalloc", (spills > 0, pressure))

    stats = {
        "be_blocks": len(fn.blocks),
        "be_instrs": len(instrs),
        "be_spills": spills,
        "be_pressure": pressure,
        "be_calls": sum(1 for i in instrs if isinstance(i, Call)),
        "be_label_blocks": sum(
            1 for b in fn.blocks if b.label.startswith("ul_")
        ),
        "be_void_trailing_label": 0,
        "be_empty_label_after_call": 0,
    }

    # The Clang #63762 shape: a void function whose user-label blocks are
    # empty (their returns were removed) directly following call-carrying
    # code.  Ret2V mutants of label-heavy seeds produce exactly this.
    if fn.ret_ty is IRType.VOID and stats["be_calls"] >= 1:
        for b in fn.blocks:
            if b.label.startswith("ul_"):
                meaningful = [
                    i for i in b.instrs if not isinstance(i, (Jmp, Ret))
                ]
                if not meaningful:
                    stats["be_empty_label_after_call"] += 1
        if fn.blocks and fn.blocks[-1].label.startswith("ul_"):
            stats["be_void_trailing_label"] = 1

    def reg(op) -> str:
        if isinstance(op, ImmInt):
            return f"#{op.value}"
        if isinstance(op, ImmFloat):
            return f"#{op.value!r}"
        return assignment.get(op.index, "r?")

    lines = [f".text {fn.name}:"]
    for block in fn.blocks:
        lines.append(f"{fn.name}.{block.label}:")
        for instr in block.instrs:
            if isinstance(instr, BinOp):
                opc = _OPCODE.get(instr.op, instr.op)
                if instr.ty.is_float:
                    opc = "f" + opc
                cov.hit("backend:isel", (opc, instr.ty))
                cov.hit(
                    "backend:isel_shape",
                    (opc, isinstance(instr.lhs, Temp), isinstance(instr.rhs, Temp)),
                )
                lines.append(
                    f"  {opc} {reg(instr.dst)}, {reg(instr.lhs)}, {reg(instr.rhs)}"
                )
            elif isinstance(instr, UnOp):
                cov.hit("backend:isel", (instr.op, instr.ty))
                lines.append(f"  {instr.op} {reg(instr.dst)}, {reg(instr.src)}")
            elif isinstance(instr, Cast):
                cov.hit("backend:isel", ("cast", instr.from_ty, instr.to_ty))
                lines.append(f"  mov.{instr.to_ty.value} {reg(instr.dst)}, {reg(instr.src)}")
            elif isinstance(instr, LocalAddr):
                lines.append(f"  lea {reg(instr.dst)}, {instr.slot}")
            elif isinstance(instr, GlobalAddr):
                lines.append(f"  lea {reg(instr.dst)}, ={instr.name}")
            elif isinstance(instr, Load):
                cov.hit("backend:isel", ("load", instr.ty, instr.volatile))
                lines.append(f"  ld.{instr.ty.value} {reg(instr.dst)}, [{reg(instr.ptr)}]")
            elif isinstance(instr, Store):
                cov.hit("backend:isel", ("store", instr.ty, instr.volatile))
                lines.append(f"  st.{instr.ty.value} [{reg(instr.ptr)}], {reg(instr.value)}")
            elif isinstance(instr, Gep):
                lines.append(
                    f"  lea {reg(instr.dst)}, [{reg(instr.base)} + "
                    f"{reg(instr.index)}*{instr.scale} + {instr.offset}]"
                )
            elif isinstance(instr, Call):
                cov.hit("backend:isel", ("call", len(instr.args)))
                args = ", ".join(reg(a) for a in instr.args)
                dst = f"{reg(instr.dst)} = " if instr.dst else ""
                lines.append(f"  {dst}call {instr.callee}({args})")
            elif isinstance(instr, Memcpy):
                lines.append(
                    f"  memcpy [{reg(instr.dst_ptr)}], [{reg(instr.src_ptr)}], "
                    f"#{instr.size}"
                )
            elif isinstance(instr, Jmp):
                lines.append(f"  b {fn.name}.{instr.target}")
            elif isinstance(instr, Br):
                cov.hit("backend:isel", ("br",))
                lines.append(
                    f"  cbnz {reg(instr.cond)}, {fn.name}.{instr.if_true}, "
                    f"{fn.name}.{instr.if_false}"
                )
            elif isinstance(instr, Ret):
                value = f" {reg(instr.value)}" if instr.value is not None else ""
                lines.append(f"  ret{value}")
    return BackendResult("\n".join(lines), stats)


def _flat_live_intervals(buf) -> dict[int, tuple[int, int]]:
    from repro.compiler import flatir as F

    intervals: dict[int, tuple[int, int]] = {}
    opcl, dstl, al, bl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.aux
    pos = 0
    for _label, idxs in buf.blocks:
        for i in idxs:
            d = dstl[i]
            if d is not None:
                lo, hi = intervals.get(d, (pos, pos))
                intervals[d] = (min(lo, pos), max(hi, pos))
            op = opcl[i]
            if op in _FLAT_AB_OPS:
                encs = (al[i], bl[i])
            elif op in _FLAT_A_OPS:
                encs = (al[i],)
            elif op == F.OP_CALL:
                encs = buf.xdata[auxl[i]][1]
            else:
                encs = ()
            for e in encs:
                if e & 3 == F.TAG_TEMP:
                    t = e >> 2
                    lo, hi = intervals.get(t, (pos, pos))
                    intervals[t] = (min(lo, pos), max(hi, pos))
            pos += 1
    return intervals


def _lower_function_flat(fn: IRFunction, ctx: OptContext) -> BackendResult:
    """The buffer-walk twin of :func:`_lower_function`.

    Emits byte-identical assembly and fires the same coverage hits with the
    same decoded keys; dispatch is over opcode ints instead of isinstance
    chains and operands never materialize as objects.
    """
    from repro.compiler import flatir as F

    cov = ctx.cov
    buffer = getattr(fn, "buffer", None)
    if buffer is not None:  # FlatFunction: walk its live buffer directly
        buf = buffer()
    else:
        buf = F.from_nodes(fn, getattr(ctx, "bridge", None))
    names = buf.names
    imms = buf.imms
    opcl, dstl, al, bl, tyl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.ty, buf.aux
    TYPES = F.TYPES

    intervals = _flat_live_intervals(buf)
    assignment, spills, pressure = _allocate(intervals)
    cov.hit("backend:regalloc", (spills > 0, pressure))

    n_instrs = sum(len(idxs) for _l, idxs in buf.blocks)
    stats = {
        "be_blocks": len(buf.blocks),
        "be_instrs": n_instrs,
        "be_spills": spills,
        "be_pressure": pressure,
        "be_calls": sum(
            1 for _l, idxs in buf.blocks for i in idxs if opcl[i] == F.OP_CALL
        ),
        "be_label_blocks": sum(
            1 for l, _idxs in buf.blocks if names[l].startswith("ul_")
        ),
        "be_void_trailing_label": 0,
        "be_empty_label_after_call": 0,
    }

    # The Clang #63762 shape (see _lower_function).
    if buf.ret_ty == F.VOID_TAG and stats["be_calls"] >= 1:
        for l, idxs in buf.blocks:
            if names[l].startswith("ul_"):
                if all(opcl[i] in (F.OP_JMP, F.OP_RET) for i in idxs):
                    stats["be_empty_label_after_call"] += 1
        if buf.blocks and names[buf.blocks[-1][0]].startswith("ul_"):
            stats["be_void_trailing_label"] = 1

    def reg(enc: int) -> str:
        if enc & 3 == F.TAG_IMM:
            v = imms[enc >> 2]
            if type(v) is ImmInt:
                return f"#{v.value}"
            return f"#{v.value!r}"
        return assignment.get(enc >> 2, "r?")

    def dreg(d: int) -> str:
        return assignment.get(d, "r?")

    fname = buf.name
    lines = [f".text {fname}:"]
    for label_id, idxs in buf.blocks:
        lines.append(f"{fname}.{names[label_id]}:")
        for i in idxs:
            op = opcl[i]
            if op == F.OP_BINOP:
                opn = names[auxl[i]]
                ty = TYPES[tyl[i]]
                opc = _OPCODE.get(opn, opn)
                if ty.is_float:
                    opc = "f" + opc
                cov.hit("backend:isel", (opc, ty))
                cov.hit(
                    "backend:isel_shape",
                    (opc, al[i] & 3 == F.TAG_TEMP, bl[i] & 3 == F.TAG_TEMP),
                )
                lines.append(
                    f"  {opc} {dreg(dstl[i])}, {reg(al[i])}, {reg(bl[i])}"
                )
            elif op == F.OP_UNOP:
                opn = names[auxl[i]]
                cov.hit("backend:isel", (opn, TYPES[tyl[i]]))
                lines.append(f"  {opn} {dreg(dstl[i])}, {reg(al[i])}")
            elif op == F.OP_CAST:
                to_ty = TYPES[tyl[i]]
                cov.hit("backend:isel", ("cast", TYPES[auxl[i] >> 1], to_ty))
                lines.append(
                    f"  mov.{to_ty.value} {dreg(dstl[i])}, {reg(al[i])}"
                )
            elif op == F.OP_LOCALADDR:
                lines.append(f"  lea {dreg(dstl[i])}, {names[auxl[i]]}")
            elif op == F.OP_GLOBALADDR:
                lines.append(f"  lea {dreg(dstl[i])}, ={names[auxl[i]]}")
            elif op == F.OP_LOAD:
                ty = TYPES[tyl[i]]
                cov.hit("backend:isel", ("load", ty, bool(auxl[i])))
                lines.append(
                    f"  ld.{ty.value} {dreg(dstl[i])}, [{reg(al[i])}]"
                )
            elif op == F.OP_STORE:
                ty = TYPES[tyl[i]]
                cov.hit("backend:isel", ("store", ty, bool(auxl[i])))
                lines.append(
                    f"  st.{ty.value} [{reg(al[i])}], {reg(bl[i])}"
                )
            elif op == F.OP_GEP:
                scale, offset = buf.xdata[auxl[i]]
                lines.append(
                    f"  lea {dreg(dstl[i])}, [{reg(al[i])} + "
                    f"{reg(bl[i])}*{scale} + {offset}]"
                )
            elif op == F.OP_CALL:
                callee, arg_encs, _arg_tys = buf.xdata[auxl[i]]
                cov.hit("backend:isel", ("call", len(arg_encs)))
                args = ", ".join(reg(a) for a in arg_encs)
                d = dstl[i]
                dst = f"{dreg(d)} = " if d is not None else ""
                lines.append(f"  {dst}call {names[callee]}({args})")
            elif op == F.OP_MEMCPY:
                lines.append(
                    f"  memcpy [{reg(al[i])}], [{reg(bl[i])}], #{auxl[i]}"
                )
            elif op == F.OP_JMP:
                lines.append(f"  b {fname}.{names[auxl[i]]}")
            elif op == F.OP_BR:
                cov.hit("backend:isel", ("br",))
                lines.append(
                    f"  cbnz {reg(al[i])}, {fname}.{names[bl[i]]}, "
                    f"{fname}.{names[auxl[i]]}"
                )
            else:  # OP_RET
                value = f" {reg(al[i])}" if al[i] != F.NONE else ""
                lines.append(f"  ret{value}")
    return BackendResult("\n".join(lines), stats)


def _flat_op_groups():
    from repro.compiler import flatir as F

    ab = frozenset((F.OP_BINOP, F.OP_STORE, F.OP_GEP, F.OP_MEMCPY))
    a = frozenset((F.OP_UNOP, F.OP_CAST, F.OP_LOAD, F.OP_BR, F.OP_RET))
    return ab, a


_FLAT_AB_OPS, _FLAT_A_OPS = _flat_op_groups()
