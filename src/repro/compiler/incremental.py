"""Function-granular middle-end capture and replay.

The fuzzing hot path compiles mutants that differ from an already-compiled
parent in one or two top-level declarations.  The middle end (IR generation
and the optimizer) is per-declaration work stitched together by a small
amount of module-global state, so when the front end hands us an
:class:`~repro.cast.incremental.IncrementalPlan` we re-lower and re-optimize
only the dirty functions and *replay* everything else from the parent's
recorded run.

Replay is exact, not approximate.  During every cached middle-end run a
single ordered **journal** records each observable event — coverage hits
(``("cov", site, outcome)``), optimizer statistics (``("stat", key, n)``)
and bug-checkpoint firings (``("check", point, extra)``) — interleaved in
pipeline order.  The journal is sliced per declaration (IR generation) and
per (pass-phase, function) (optimization), and those slices are stored in
``FrontendEntry.memo`` together with the lowered function objects, emitted
globals, statistics deltas and name-counter schedules.  Replaying a clean
function applies its slices through the same hooks a real run uses, so the
replayed compile journals itself and produces a memo for *its* children.

Anything that could make a clean function's recorded run stale aborts the
incremental attempt (:class:`_MiddleAbort`) and falls back to a full middle
end: changed enum tables, changed string/static name-counter schedules,
dirty functions that are (or were) inline candidates, non-function dirty
decls.  Abort is safe mid-run because every event applied up to that point
is an exact prefix of what the full run produces (coverage hits are
idempotent set-inserts and the feature dict has not been merged yet).

``paranoid=True`` on :meth:`Compiler.compile` additionally re-runs the full
pipeline with no cache and asserts the entire :class:`CompileResult` —
diagnostics, crash identity, asm, coverage edges, features, cost — is
bit-identical (:func:`assert_results_equal`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cast import ast_nodes as ast
from repro.cast.incremental import IncrementalDivergence
from repro.compiler.backend import BackendResult, _lower_function, lower_to_asm
from repro.compiler.flatir import FunctionSnapshot
from repro.compiler.ir import IRFunction, IRModule
from repro.compiler.irgen import FlatIRGen, IRGen, LoweringError
from repro.compiler.passes import (
    OptContext,
    cleanup_opt,
    flat_inline_into_caller,
    flat_inlinable,
    flat_loop_vectorize,
    flat_strlen_opt_fn,
    inline_candidates,
    inline_into_caller,
    local_opt,
    loop_vectorize,
    strlen_opt_fn,
)
from repro.compiler.passes.inline import _inlinable
from repro.telemetry.spans import span


class _MiddleAbort(Exception):
    """Internal: the incremental middle end hit an ineligible state."""


def middle_memo_key(
    name: str, bug_seed: int, opt_level: int, flags: tuple, mode: str = ""
) -> str:
    """Memo key for one (personality, bug seed, options) middle-end run.

    ``mode`` keys the function-carrier representation: flat-native runs
    store :class:`~repro.compiler.flatir.FlatFunction` records in the memo,
    so they must never share a memo slot with object-IR runs even if a
    cache were handed between differently-configured compilers.
    """
    suffix = f":{mode}" if mode else ""
    return f"middle:{name}:{bug_seed}:{opt_level}:{','.join(flags)}{suffix}"


@dataclass(frozen=True)
class DeclRecord:
    """Everything IR generation did for one top-level declaration."""

    kind: str  # "fn" | "var" | "other"
    name: str | None
    events: tuple
    stats_delta: tuple  # ((key, n), ...) applied to IRGenStats
    globals_added: tuple  # ((name, GlobalVar), ...) in emission order
    fn: IRFunction | None  # live post-pipeline object (mutated in place)
    str_start: int
    static_start: int
    str_delta: int
    static_delta: int


@dataclass(frozen=True)
class ResultMemo:
    """The complete observable outcome of one non-crashing compile."""

    ok: bool
    diagnostics: tuple
    asm: str
    module: IRModule | None
    features: dict
    events: tuple
    stages: tuple


@dataclass
class MiddleMemo:
    """Per-(compiler, options) middle-end record attached to a cache entry."""

    decl_records: tuple = ()
    enum_values: dict = field(default_factory=dict)
    fn_names: tuple = ()
    candidate_names: frozenset = frozenset()
    candidate_snapshots: dict = field(default_factory=dict)
    phase_events: dict = field(default_factory=dict)  # (phase, fn) -> events
    #: fn name -> (events, stats, asm): one function's back-end output.
    backend_records: dict = field(default_factory=dict)
    #: True once the records describe a full, successful pipeline run and can
    #: seed children's incremental compiles.
    complete: bool = False
    #: Whole-result replay for exact re-compiles of the same text.
    result: ResultMemo | None = None


def _apply_events(events, cov, checkpoint, stats) -> None:
    """Replay a journal slice through the live hooks (which re-journal it)."""
    for ev in events:
        tag = ev[0]
        if tag == "cov":
            cov.hit(ev[1], ev[2])
        elif tag == "stat":
            stats.bump(ev[1], ev[2])
        else:
            checkpoint(ev[1], dict(ev[2]))


def _stats_delta(before: Counter, after: Counter) -> tuple:
    return tuple(
        (k, after[k] - before.get(k, 0))
        for k in after
        if after[k] != before.get(k, 0)
    )


def _decl_kind(decl) -> tuple[str, str | None]:
    if isinstance(decl, ast.FunctionDecl) and decl.body is not None:
        return "fn", decl.name
    if isinstance(decl, ast.VarDecl):
        return "var", decl.name
    return "other", getattr(decl, "name", None)


def _incremental_pairing(plan, parent_unit, unit):
    """Dirty (parent_decl, new_decl) pairs, or abort if not function-shaped.

    The middle end only replays around dirty regions where every changed
    decl is a function definition whose name is stable: edits to globals,
    typedefs, records, or decl insertions/deletions change cross-function
    state (layouts, initializers, inline candidacy sets) in ways the
    per-function records cannot express.
    """
    mapped = {m for m in plan.decl_map if m is not None}
    parent_dirty = [i for i in range(len(parent_unit.decls)) if i not in mapped]
    new_dirty = list(plan.dirty_indices)
    if len(parent_dirty) != len(new_dirty):
        raise _MiddleAbort("dirty decl count changed")
    pairs = []
    for pi, ni in zip(parent_dirty, new_dirty):
        pd, nd = parent_unit.decls[pi], unit.decls[ni]
        pk, pname = _decl_kind(pd)
        nk, nname = _decl_kind(nd)
        if pk != "fn" or nk != "fn" or pname != nname:
            raise _MiddleAbort("dirty decl is not a stable function definition")
        pairs.append((pi, ni))
    return parent_dirty, new_dirty


class _MiddleRun:
    """One instrumented middle-end run (full or incremental).

    Drives IR generation per declaration and the optimizer per (phase,
    function), recording journal slices as it goes; in incremental mode the
    clean units are replayed from ``reuse``/``phase_reuse`` instead of
    executed.
    """

    def __init__(
        self,
        compiler,
        entry,
        opt_level: int,
        flags: tuple,
        cov,
        features: dict,
        journal: list | None,
    ) -> None:
        self.compiler = compiler
        self.entry = entry
        self.unit = entry.unit
        self.opt_level = opt_level
        self.flags = flags
        self.cov = cov
        self.features = features
        #: Whether this run is being recorded for memoization (a cache is in
        #: play).  Uncached runs skip all slicing/snapshotting overhead.
        self.capture = journal is not None
        self.journal = journal if journal is not None else []
        # new decl index -> DeclRecord to replay; absent entries run real.
        self.reuse: dict[int, DeclRecord] = {}
        # new dirty decl index -> parent dirty decl index (from the pairing).
        self.dirty_parent: dict[int, int] = {}
        self.parent_memo: MiddleMemo | None = None
        self.memo = MiddleMemo()

        def checkpoint(point: str, extra: dict) -> None:
            if self.capture:
                self.journal.append(("check", point, dict(extra)))
            merged = dict(self.features)
            merged.update(extra)
            self.compiler.bugs.check(point, merged)

        self.checkpoint = checkpoint

    # ---------------------------------------------------------------- irgen

    def lower(self) -> IRModule:
        if getattr(self.compiler, "flat_native", False):
            # Buffer-direct emission: dirty declarations lower straight into
            # IRBuffers and replayed DeclRecords re-inject the parent's
            # FlatFunction carriers verbatim — no encode, no decode.
            irgen = FlatIRGen(
                self.entry.sema,
                self.cov,
                counters=getattr(self.compiler, "bridge", None),
            )
        else:
            irgen = IRGen(self.entry.sema, self.cov)
        irgen._collect_enums(self.unit)
        if self.capture:
            self.memo.enum_values = dict(irgen._enum_values)
        if self.parent_memo is not None and (
            dict(irgen._enum_values) != self.parent_memo.enum_values
        ):
            raise _MiddleAbort("enum table changed")
        records = []
        for i, decl in enumerate(self.unit.decls):
            kind, name = _decl_kind(decl)
            rec = self.reuse.get(i)
            start = len(self.journal)
            stats0 = Counter(irgen.stats.counters) if self.capture else None
            g0 = len(irgen.module.globals)
            str0, static0 = irgen._string_counter, irgen._static_counter
            if rec is not None:
                if (str0, static0) != (rec.str_start, rec.static_start):
                    raise _MiddleAbort("name counter schedule drifted")
                _apply_events(rec.events, self.cov, self.checkpoint, _NO_STATS)
                irgen.stats.counters.update(dict(rec.stats_delta))
                for gname, gvar in rec.globals_added:
                    irgen.module.globals[gname] = gvar
                if rec.fn is not None:
                    irgen.module.functions[rec.name] = rec.fn
                irgen._string_counter += rec.str_delta
                irgen._static_counter += rec.static_delta
            else:
                if kind == "var":
                    irgen._lower_global(decl)
                elif kind == "fn":
                    irgen._lower_function(decl)
                if self.parent_memo is not None:
                    # A dirty decl must keep its parent's name-counter
                    # schedule, or every later decl's interned-string /
                    # local-static names (already memoized) would be wrong.
                    prec = self.parent_memo.decl_records[self.dirty_parent[i]]
                    if (str0, static0) != (prec.str_start, prec.static_start) or (
                        irgen._string_counter - str0,
                        irgen._static_counter - static0,
                    ) != (prec.str_delta, prec.static_delta):
                        raise _MiddleAbort("name counter schedule drifted")
            if self.capture:
                records.append(
                    DeclRecord(
                        kind=kind,
                        name=name,
                        events=tuple(self.journal[start:]),
                        stats_delta=_stats_delta(stats0, irgen.stats.counters),
                        globals_added=tuple(
                            list(irgen.module.globals.items())[g0:]
                        ),
                        fn=irgen.module.functions.get(name)
                        if kind == "fn"
                        else None,
                        str_start=str0,
                        static_start=static0,
                        str_delta=irgen._string_counter - str0,
                        static_delta=irgen._static_counter - static0,
                    )
                )
        self.memo.decl_records = tuple(records)
        self.irgen = irgen
        module = irgen.module
        self.memo.fn_names = tuple(module.functions)
        if self.parent_memo is not None and (
            self.memo.fn_names != self.parent_memo.fn_names
        ):
            raise _MiddleAbort("function name sequence changed")
        return module

    # ------------------------------------------------------------ optimizer

    def optimize(self, module: IRModule, ctx: OptContext) -> None:
        if ctx.opt_level <= 0:
            return
        dirty = self._dirty_fn_names()

        def drive(phase: str, fn, runner) -> None:
            start = len(self.journal)
            key = (phase, fn.name)
            if fn.name in dirty or self.parent_memo is None:
                runner()
            else:
                events = self.parent_memo.phase_events.get(key)
                if events is None:
                    raise _MiddleAbort(f"missing parent phase record {key}")
                _apply_events(events, self.cov, self.checkpoint, ctx.stats)
            if self.capture:
                self.memo.phase_events[key] = tuple(self.journal[start:])

        # Flat-native runs splice/scan IRBuffers directly; the object
        # stage entry points remain the paranoid reference path.
        inline_fn = flat_inline_into_caller if ctx.flat_native else inline_into_caller
        strlen_fn = flat_strlen_opt_fn if ctx.flat_native else strlen_opt_fn
        vectorize_fn = flat_loop_vectorize if ctx.flat_native else loop_vectorize

        for fn in list(module.functions.values()):
            drive("local", fn, lambda f=fn: local_opt(f, ctx))
        if ctx.opt_level >= 2:
            candidates = self._candidates(module, dirty)
            if candidates:
                for caller in module.functions.values():
                    drive(
                        "inline",
                        caller,
                        lambda c=caller: inline_fn(c, candidates, ctx),
                    )
            for fn in module.functions.values():
                drive("strlen", fn, lambda f=fn: strlen_fn(f, module, ctx))
            for fn in list(module.functions.values()):
                drive("cleanup", fn, lambda f=fn: cleanup_opt(f, ctx))
        if ctx.opt_level >= 3 or ctx.flag("-ftree-vectorize"):
            for fn in list(module.functions.values()):
                drive("vectorize", fn, lambda f=fn: vectorize_fn(f, ctx))

    # -------------------------------------------------------------- backend

    def backend(self, module: IRModule, ctx: OptContext) -> BackendResult:
        """Run the back end, replaying unchanged functions' records.

        Per-function lowering is pure over the function's (final, post-
        optimizer) IR, so a clean function replays its recorded coverage
        events and reuses its asm/stats verbatim; the cumulative module
        statistics and the ``backend:function``/``backend:module``
        checkpoints always run live inside :func:`lower_to_asm` because they
        fold in the preceding (possibly dirty) functions' totals.
        """
        dirty = self._dirty_fn_names()

        def lower_fn(fn, fn_ctx) -> BackendResult:
            start = len(self.journal)
            if fn.name not in dirty and self.parent_memo is not None:
                rec = self.parent_memo.backend_records.get(fn.name)
                if rec is None:
                    raise _MiddleAbort(f"missing backend record {fn.name}")
                events, stats, asm = rec
                _apply_events(events, self.cov, self.checkpoint, _NO_STATS)
                res = BackendResult(asm, dict(stats))
            else:
                res = _lower_function(fn, fn_ctx)
            if self.capture:
                self.memo.backend_records[fn.name] = (
                    tuple(self.journal[start:]), dict(res.stats), res.asm
                )
            return res

        return lower_to_asm(module, ctx, fn_lowerer=lower_fn)

    def _dirty_fn_names(self) -> set:
        if self.parent_memo is None:
            return set()
        return {
            _decl_kind(self.unit.decls[i])[1]
            for i in range(len(self.unit.decls))
            if i not in self.reuse
        }

    def _candidates(self, module: IRModule, dirty: set) -> dict:
        flat_native = getattr(self.compiler, "flat_native", False)
        if self.parent_memo is None:
            if flat_native:
                candidates = {
                    name: fn.buffer()
                    for name, fn in module.functions.items()
                    if flat_inlinable(fn.buffer())
                }
            else:
                candidates = inline_candidates(module)
            if self.capture:
                # Candidate bodies get inlined into callers by value;
                # snapshot them at this (post-local-opt) point so children
                # can reuse them after later phases mutate the live objects.
                self.memo.candidate_names = frozenset(candidates)
                self.memo.candidate_snapshots = {
                    name: FunctionSnapshot.of(module.functions[name])
                    for name in candidates
                }
            return candidates
        for name in dirty:
            fn = module.functions[name]
            is_candidate = (
                flat_inlinable(fn.buffer()) if flat_native else _inlinable(fn)
            )
            if name in self.parent_memo.candidate_names or is_candidate:
                # A dirty function that is (or was) an inline candidate can
                # change the bodies inlined into *clean* callers.
                raise _MiddleAbort("dirty function affects inline candidacy")
        self.memo.candidate_names = self.parent_memo.candidate_names
        self.memo.candidate_snapshots = self.parent_memo.candidate_snapshots
        if flat_native:
            # Serve the snapshot buffers directly to the flat inliner:
            # cache-served callee bodies never cross the IR bridge.
            return {
                name: snap.buf
                for name, snap in self.parent_memo.candidate_snapshots.items()
            }
        return {
            name: snap.materialize()
            for name, snap in self.parent_memo.candidate_snapshots.items()
        }


class _NoStats:
    def bump(self, key: str, n: int = 1) -> None:  # pragma: no cover - guard
        raise _MiddleAbort("IR generation never records optimizer stats")


_NO_STATS = _NoStats()


def lower_and_optimize(
    compiler,
    entry,
    opt_level: int,
    flags: tuple,
    cov,
    features: dict,
    result,
    *,
    journal: list | None = None,
    plan=None,
    stages: list | None = None,
) -> None:
    """The middle end + back end of ``Compiler.compile``.

    Runs IR generation, the optimizer, and the back end, mutating
    ``cov``/``features``/``result`` exactly like the monolithic pipeline
    did.  When ``journal`` is provided (a cache is in play) the run is
    instrumented and memoized on ``entry.memo``; when ``plan`` points at a
    completed parent run, clean declarations are replayed instead of
    recompiled.  ``stages`` collects which pipeline stages logically ran
    (for the stage-scaled cost model).
    """
    key = middle_memo_key(
        compiler.name,
        compiler.bug_seed,
        opt_level,
        tuple(flags),
        mode="flat-native" if getattr(compiler, "flat_native", False) else "",
    )
    memoized = entry.memo.get(key) if journal is not None else None
    if memoized is not None and memoized.result is not None:
        _replay_result(memoized.result, cov, features, result, stages)
        return
    parent_memo = None
    if plan is not None and journal is not None:
        parent_memo = plan.parent.memo.get(key)
        if parent_memo is not None and not parent_memo.complete:
            parent_memo = None
    if parent_memo is not None:
        try:
            _run_middle(
                compiler, entry, opt_level, flags, cov, features, result,
                journal, plan, parent_memo, stages, key,
            )
            compiler.middle_incremental_hits += 1
            return
        except _MiddleAbort:
            compiler.middle_incremental_fallbacks += 1
            # Every event applied so far is a prefix of the full run's
            # stream: wipe the journal and recompute from scratch.  The
            # polluted coverage edges are a subset of what the full run
            # re-adds, and the feature dict has not been merged yet.
            journal.clear()
    _run_middle(
        compiler, entry, opt_level, flags, cov, features, result,
        journal, None, None, stages, key,
    )


def _run_middle(
    compiler,
    entry,
    opt_level,
    flags,
    cov,
    features,
    result,
    journal,
    plan,
    parent_memo,
    stages,
    key,
) -> None:
    run = _MiddleRun(
        compiler, entry, opt_level, flags, cov, features, journal,
    )
    if parent_memo is not None:
        parent_dirty, new_dirty = _incremental_pairing(
            plan, plan.parent.unit, entry.unit
        )
        run.parent_memo = parent_memo
        run.dirty_parent = dict(zip(new_dirty, parent_dirty))
        for ni, pi in enumerate(plan.decl_map):
            if pi is not None:
                run.reuse[ni] = parent_memo.decl_records[pi]
    try:
        with span(compiler.tracer, "irgen"):
            module = run.lower()
    except (LoweringError, RecursionError) as exc:
        result.diagnostics.append(f"sorry, unimplemented: {exc}")
        features["lowering_failed"] = 1
        compiler.bugs.check("ir-gen", features)
        if journal is not None:
            run.memo.result = ResultMemo(
                ok=False,
                diagnostics=tuple(result.diagnostics),
                asm="",
                module=None,
                features=dict(features),
                events=tuple(journal),
                stages=tuple(stages) if stages is not None else (),
            )
            entry.memo[key] = run.memo
        return
    features.update(run.irgen.stats.counters)
    compiler.bugs.check("ir-gen", features)

    with span(compiler.tracer, "opt"):
        ctx = OptContext(
            cov=cov,
            opt_level=opt_level,
            flags=compiler._personality_flags(flags),
            checkpoint=run.checkpoint,
            fuse=getattr(compiler, "fuse_passes", False),
            flat=getattr(compiler, "flat_ir", False),
            flat_native=getattr(compiler, "flat_native", False),
            bridge=getattr(compiler, "bridge", None),
        )
        if journal is not None:
            ctx.stats.journal = run.journal
        run.optimize(module, ctx)
    features.update(ctx.stats.counters)
    compiler.bugs.check("optimization", features)
    if ctx.fused_runs:
        compiler.fused_pass_runs += ctx.fused_runs

    with span(compiler.tracer, "backend"):
        be = run.backend(module, ctx)
    if stages is not None:
        stages.append("backend")
    features.update(be.stats)
    compiler.bugs.check("back-end", features)

    result.ok = True
    result.asm = be.asm
    result.module = module
    if journal is not None:
        run.memo.complete = True
        run.memo.result = ResultMemo(
            ok=True,
            diagnostics=(),
            asm=be.asm,
            module=module,
            features=dict(features),
            events=tuple(journal),
            stages=tuple(stages) if stages is not None else (),
        )
        entry.memo[key] = run.memo


def _replay_result(memo: ResultMemo, cov, features, result, stages) -> None:
    """Re-apply a memoized compile outcome (same text, same options)."""
    for ev in memo.events:
        if ev[0] == "cov":
            cov.hit(ev[1], ev[2])
    result.diagnostics.extend(memo.diagnostics)
    features.update(memo.features)
    result.ok = memo.ok
    result.asm = memo.asm
    result.module = memo.module
    if stages is not None:
        for stage in memo.stages:
            if stage not in stages:
                stages.append(stage)


# ---------------------------------------------------------------------------
# paranoid differential comparison


def assert_results_equal(inc, full) -> None:
    """Raise :class:`IncrementalDivergence` unless two CompileResults match.

    ``inc`` is the result produced with caching/incremental replay, ``full``
    a from-scratch compile of the same text and options.  Every observable
    field must agree; modules are compared by dump.
    """

    def _fail(aspect: str, a, b):
        raise IncrementalDivergence(
            f"paranoid middle-end check failed on {aspect}: {a!r} != {b!r}"
        )

    if inc.ok != full.ok:
        _fail("ok", inc.ok, full.ok)
    if list(inc.diagnostics) != list(full.diagnostics):
        _fail("diagnostics", inc.diagnostics, full.diagnostics)
    inc_crash = inc.crash.bug_id if inc.crash else None
    full_crash = full.crash.bug_id if full.crash else None
    if inc_crash != full_crash:
        _fail("crash", inc_crash, full_crash)
    inc_hang = inc.hang.bug_id if inc.hang else None
    full_hang = full.hang.bug_id if full.hang else None
    if inc_hang != full_hang:
        _fail("hang", inc_hang, full_hang)
    if inc.asm != full.asm:
        _fail("asm", len(inc.asm), len(full.asm))
    if inc.coverage.edges != full.coverage.edges:
        only_inc = list(inc.coverage.edges - full.coverage.edges)[:4]
        only_full = list(full.coverage.edges - inc.coverage.edges)[:4]
        _fail("coverage edges", only_inc, only_full)
    if dict(inc.features) != dict(full.features):
        diff = {
            k: (inc.features.get(k), full.features.get(k))
            for k in set(inc.features) | set(full.features)
            if inc.features.get(k) != full.features.get(k)
        }
        _fail("features", diff, "")
    if inc.cost != full.cost:
        _fail("cost", inc.cost, full.cost)
    inc_dump = inc.module.dump() if inc.module is not None else None
    full_dump = full.module.dump() if full.module is not None else None
    if inc_dump != full_dump:
        _fail("module", len(inc_dump or ""), len(full_dump or ""))
