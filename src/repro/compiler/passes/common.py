"""Shared optimizer infrastructure."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.compiler.coverage import CoverageMap
from repro.compiler.ir import Block, IRFunction, Operand, Temp


@dataclass
class OptStats:
    counters: Counter = field(default_factory=Counter)
    #: Optional event sink mirroring :attr:`CoverageMap.journal`: every bump
    #: is appended as ``("stat", key, n)`` so the incremental middle end can
    #: replay an unchanged function's statistics without re-running passes.
    journal: list | None = field(default=None, repr=False, compare=False)

    def bump(self, key: str, n: int = 1) -> None:
        if self.journal is not None:
            self.journal.append(("stat", key, n))
        self.counters[key] += n

    def get(self, key: str, default: int = 0) -> int:
        return self.counters.get(key, default)


@dataclass
class OptContext:
    cov: CoverageMap
    stats: OptStats = field(default_factory=OptStats)
    opt_level: int = 2
    flags: tuple[str, ...] = ()
    #: Hook invoked at named points with the evolving feature dict; the bug
    #: registry uses it to fire seeded crashes mid-pass.
    checkpoint: Callable[[str, dict], None] | None = None
    #: Run :func:`~repro.compiler.passes.fused.fused_local_opt` (the
    #: single-walk const_fold+forward_store+cse fusion) in place of the
    #: sequential :func:`~repro.compiler.passes.local_opt` round loop.
    fuse: bool = False
    #: How many fused fixpoint loops ran under this context.  Deliberately
    #: *not* an :class:`OptStats` counter: stats feed the compared feature
    #: dict, and fused vs. sequential runs must stay bit-identical there.
    fused_runs: int = 0
    #: Run the local rounds over the flat :class:`~repro.compiler.flatir`
    #: buffer (:mod:`repro.compiler.passes.flat`) instead of the object IR.
    #: Takes precedence over :attr:`fuse` for pass selection; results are
    #: bit-identical either way.
    flat: bool = False
    #: Keep the *whole* middle end on the buffer: irgen emits buffers,
    #: inlining/strlen/vectorize run their flat ports, and the journal
    #: replays buffer snapshots.  Implies :attr:`flat`; results are
    #: bit-identical either way.
    flat_native: bool = False
    #: Per-compiler :class:`~repro.compiler.flatir.BridgeCounters`, threaded
    #: through so passes can charge any object<->buffer bridge crossing they
    #: cause.  Like :attr:`fused_runs`, deliberately not an ``OptStats``
    #: counter: bridge accounting must not leak into the compared feature
    #: dict or the replay journal.
    bridge: object | None = None

    def flag(self, name: str) -> bool:
        return name in self.flags

    def check(self, point: str, features: dict) -> None:
        if self.checkpoint is not None:
            self.checkpoint(point, features)


def use_counts(fn: IRFunction) -> Counter:
    uses: Counter = Counter()
    for instr in fn.instructions():
        for op in instr.operands():
            if isinstance(op, Temp):
                uses[op.index] += 1
    return uses


def replace_uses(fn: IRFunction, mapping: dict[Operand, Operand]) -> None:
    if not mapping:
        return
    for instr in fn.instructions():
        instr.replace_operands(mapping)


def reachable_blocks(fn: IRFunction) -> set[str]:
    if not fn.blocks:
        return set()
    seen = {fn.blocks[0].label}
    work = [fn.blocks[0]]
    block_map = fn.block_map()
    while work:
        b = work.pop()
        for s in b.successors():
            if s not in seen and s in block_map:
                seen.add(s)
                work.append(block_map[s])
    return seen
