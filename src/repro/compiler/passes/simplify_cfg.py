"""CFG simplification: unreachable-block elimination, jump threading, and
straight-line block merging."""

from __future__ import annotations

from repro.compiler.ir import Br, IRFunction, Jmp
from repro.compiler.passes.common import OptContext, reachable_blocks


def simplify_cfg(fn: IRFunction, ctx: OptContext) -> bool:
    changed = False
    # 1. Drop unreachable blocks.
    reach = reachable_blocks(fn)
    before = len(fn.blocks)
    fn.blocks = [b for b in fn.blocks if b.label in reach]
    if len(fn.blocks) != before:
        ctx.cov.hit("opt:unreachable", before - len(fn.blocks) > 2)
        ctx.stats.bump("unreachable_removed", before - len(fn.blocks))
        changed = True

    # 2. Thread jumps through empty forwarding blocks.
    forward: dict[str, str] = {}
    for b in fn.blocks:
        if len(b.instrs) == 1 and isinstance(b.instrs[0], Jmp):
            forward[b.label] = b.instrs[0].target
    if forward:
        def resolve(label: str) -> str:
            seen = set()
            while label in forward and label not in seen:
                seen.add(label)
                label = forward[label]
            return label

        for b in fn.blocks:
            term = b.terminator
            if isinstance(term, Jmp) and resolve(term.target) != term.target:
                term.target = resolve(term.target)
                changed = True
                ctx.stats.bump("jumps_threaded")
            elif isinstance(term, Br):
                t, f = resolve(term.if_true), resolve(term.if_false)
                if (t, f) != (term.if_true, term.if_false):
                    term.if_true, term.if_false = t, f
                    changed = True
                    ctx.stats.bump("jumps_threaded")

    # 3. Merge a block into its unique predecessor.
    preds = fn.predecessors()
    merged = True
    while merged:
        merged = False
        block_map = fn.block_map()
        for b in fn.blocks:
            term = b.terminator
            if not isinstance(term, Jmp):
                continue
            succ = block_map.get(term.target)
            if succ is None or succ is b or succ is fn.blocks[0]:
                continue
            if len(preds.get(succ.label, [])) != 1:
                continue
            b.instrs = b.instrs[:-1] + succ.instrs
            fn.blocks.remove(succ)
            ctx.cov.hit("opt:merge", len(succ.instrs) > 4)
            ctx.stats.bump("blocks_merged")
            changed = True
            merged = True
            preds = fn.predecessors()
            break

    # 4. Collapse br with identical targets.
    for b in fn.blocks:
        term = b.terminator
        if isinstance(term, Br) and term.if_true == term.if_false:
            b.instrs[-1] = Jmp(term.if_true)
            ctx.stats.bump("br_collapsed")
            changed = True
    return changed
