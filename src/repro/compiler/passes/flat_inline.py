"""Table-driven buffer splicing: the flat port of :mod:`.inline`.

Inlines a candidate callee by copying its single block's rows into the
caller's buffer — translating imm-pool indices, interned name ids, and xdata
entries into the caller's tables, renumbering callee temps into the caller's
temp space, and substituting parameter sentinels with the call's argument
encodings.  The algorithm replicates :func:`.inline.inline_into_caller`
decision for decision (same temp-assignment encounter order, same trailing
``Cast``, same coverage edges and stats), so flat-native inlining is
bit-identical to the object inliner under ``to_nodes``.

Callee bodies come in as :class:`~repro.compiler.flatir.IRBuffer` snapshots
(see ``FunctionSnapshot.buf``); splicing only *reads* the callee arrays, so
candidates can be shared across callers and steps without copies.
"""

from __future__ import annotations

from repro.compiler.flatir import (
    IRBuffer, NONE, TAG_TEMP, TYPE_TAG,
    OP_BINOP, OP_BR, OP_CALL, OP_CAST, OP_GEP, OP_GLOBALADDR, OP_JMP,
    OP_LOAD, OP_LOCALADDR, OP_MEMCPY, OP_RET, OP_STORE, OP_UNOP,
)
from repro.compiler.ir import IRType
from repro.compiler.passes.inline import MAX_INLINE_INSTRS

_VOID_TAG = TYPE_TAG[IRType.VOID]
_I64_TAG = TYPE_TAG[IRType.I64]


def flat_inlinable(buf: IRBuffer) -> bool:
    """The buffer-side mirror of :func:`.inline._inlinable`."""
    if len(buf.blocks) != 1 or buf.slots:
        return False
    if "noinline" in " ".join(buf.attributes):
        return False
    idxs = buf.blocks[0][1]
    # The object check counts ``block.instrs`` (terminator excluded); the
    # buffer's index list includes the Ret row, hence the +1.
    if len(idxs) > MAX_INLINE_INSTRS + 1:
        return False
    if not idxs or buf.opc[idxs[-1]] != OP_RET:
        return False
    return all(buf.opc[i] != OP_CALL for i in idxs)


def _max_temp(buf: IRBuffer) -> int:
    """Highest temp index used by *live* rows (mirrors object ``_max_temp``).

    Walks block index lists, not the raw arrays: dead rows left behind by
    flat DCE must not influence the renumbering base or flat and object
    inlining would diverge.
    """
    best = 0
    opcl, dstl, al, bl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.aux
    xdata = buf.xdata
    for _label, idxs in buf.blocks:
        for i in idxs:
            d = dstl[i]
            if d is not None and d > best:
                best = d
            op = opcl[i]
            if op == OP_CALL:
                encs = xdata[auxl[i]][1]
            elif op in (OP_BINOP, OP_STORE, OP_GEP, OP_MEMCPY):
                encs = (al[i], bl[i])
            elif op in (OP_UNOP, OP_CAST, OP_LOAD, OP_BR, OP_RET):
                encs = (al[i],)
            else:
                continue
            for enc in encs:
                if enc != NONE and enc & 3 == TAG_TEMP and enc >> 2 > best:
                    best = enc >> 2
    return best


def flat_inline_into_caller(fn, candidates: dict[str, IRBuffer], ctx) -> bool:
    """Inline candidate callees into one buffer-backed caller."""
    buf = fn.buffer()
    changed = False
    next_temp = _max_temp(buf) + 1
    caller_name = buf.name
    opcl, dstl, al, bl, tyl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.ty, buf.aux
    push = buf.push
    nid = buf.name_id
    imm_enc = buf.imm_enc
    for blk in buf.blocks:
        new_idxs: list[int] = []
        for i in blk[1]:
            if opcl[i] != OP_CALL:
                new_idxs.append(i)
                continue
            call_xd = buf.xdata[auxl[i]]
            callee_name = buf.names[call_xd[0]]
            callee = candidates.get(callee_name)
            if callee is None or callee_name == caller_name:
                new_idxs.append(i)
                continue

            remap: dict[int, int] = {}

            def temp_for(index: int) -> int:
                nonlocal next_temp
                nt = remap.get(index)
                if nt is None:
                    nt = next_temp
                    next_temp += 1
                    remap[index] = nt
                return nt

            # Parameter sentinels map to the call's argument encodings
            # (already in caller space).
            args = call_xd[1]
            n_args = len(args)

            def trans(enc: int) -> int:
                if enc == NONE:
                    return NONE
                tag = enc & 3
                if tag == TAG_TEMP:
                    t = enc >> 2
                    if t < 0 and -t <= n_args:
                        return args[-t - 1]
                    return (temp_for(t) << 2) | TAG_TEMP
                return imm_enc(callee.imms[enc >> 2])

            copcl, cdstl, cal, cbl, ctyl, cauxl = (
                callee.opc, callee.dst, callee.a, callee.b,
                callee.ty, callee.aux,
            )
            cnames = callee.names
            ret_enc = None
            for ci in callee.blocks[0][1]:
                cop = copcl[ci]
                if cop == OP_RET:
                    v = cal[ci]
                    ret_enc = trans(v) if v != NONE else None
                    break
                # Source operands are translated *before* the destination:
                # temp-assignment order must match the object inliner, which
                # maps operands first and the dest after.
                if cop in (OP_BINOP, OP_GEP):
                    a2 = trans(cal[ci])
                    b2 = trans(cbl[ci])
                    d2 = temp_for(cdstl[ci])
                    if cop == OP_GEP:
                        buf.xdata.append(callee.xdata[cauxl[ci]])
                        aux2 = len(buf.xdata) - 1
                    else:
                        aux2 = nid(cnames[cauxl[ci]])
                    new_idxs.append(push(cop, d2, a2, b2, ctyl[ci], aux2))
                elif cop in (OP_UNOP, OP_CAST, OP_LOAD):
                    a2 = trans(cal[ci])
                    d2 = temp_for(cdstl[ci])
                    aux2 = (
                        nid(cnames[cauxl[ci]]) if cop == OP_UNOP
                        else cauxl[ci]
                    )
                    new_idxs.append(push(cop, d2, a2, NONE, ctyl[ci], aux2))
                elif cop in (OP_STORE, OP_MEMCPY):
                    a2 = trans(cal[ci])
                    b2 = trans(cbl[ci])
                    new_idxs.append(
                        push(cop, None, a2, b2, ctyl[ci], cauxl[ci])
                    )
                elif cop in (OP_LOCALADDR, OP_GLOBALADDR):
                    d2 = temp_for(cdstl[ci])
                    new_idxs.append(
                        push(cop, d2, NONE, NONE, ctyl[ci],
                             nid(cnames[cauxl[ci]]))
                    )
                elif cop == OP_JMP:
                    new_idxs.append(
                        push(OP_JMP, None, NONE, NONE, 0,
                             nid(cnames[cauxl[ci]]))
                    )
                elif cop == OP_BR:
                    a2 = trans(cal[ci])
                    new_idxs.append(
                        push(OP_BR, None, a2, nid(cnames[cbl[ci]]), 0,
                             nid(cnames[cauxl[ci]]))
                    )
                # OP_CALL is impossible: flat_inlinable rejects callees
                # containing calls.
            if dstl[i] is not None:
                src = ret_enc if ret_enc is not None else buf.imm_int_enc(0)
                ty_tag = tyl[i] if tyl[i] != _VOID_TAG else _I64_TAG
                # Cast(dst, src, ty, ty) with the default signed=True.
                new_idxs.append(
                    push(OP_CAST, dstl[i], src, NONE, ty_tag,
                         (ty_tag << 1) | 1)
                )
            ctx.cov.hit("opt:inline", callee_name == "main")
            ctx.stats.bump("inlined")
            changed = True
        blk[1] = new_idxs
    return changed
