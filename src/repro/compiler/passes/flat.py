"""The local optimization rounds executed over the flat IR buffer.

:func:`flat_local_opt` and :func:`flat_cleanup_opt` are drop-in replacements
for :func:`repro.compiler.passes.local_opt` / ``cleanup_opt``: the function
is encoded into an :class:`~repro.compiler.flatir.IRBuffer` once, every
fixpoint round runs as int-dispatch loops over the parallel arrays (no
instruction or operand objects are allocated while optimizing), and the
result is decoded back once at the end.

Exactness is inherited rather than re-argued: the flat round implements the
*fused* algorithm of :mod:`repro.compiler.passes.fused` — whose equivalence
to the sequential five-pass round is already property-tested — with the
operand chain map keyed by encoded-operand ints instead of operand objects.
The parity-critical details:

* Immediate-pool deduplication makes enc equality coincide with operand
  object equality for ints.  Floats pool by ``repr`` (so ``-0.0`` decodes
  losslessly), so CSE keys use the pooled *objects* for immediates — giving
  exactly the object pass's ``==``/sort-by-``repr`` semantics, including the
  ``-0.0 == 0.0`` corner.
* Coverage hits decode type tags and op-name ids back to the real
  ``IRType``/string values before firing, so edges are bit-identical.
* ``flat_cleanup_opt`` keeps the standalone ``const_fold`` semantics (plain
  single-level mapping + one finalizing sweep), while ``flat_local_opt``
  uses the fused chain-resolving mapping.
"""

from __future__ import annotations

from repro.compiler.flatir import (
    F32_TAG, NONE, OP_BINOP, OP_BR, OP_CALL, OP_CAST, OP_GEP, OP_GLOBALADDR,
    OP_JMP, OP_LOAD, OP_LOCALADDR, OP_MEMCPY, OP_RET, OP_STORE, OP_UNOP,
    TAG_IMM, TAG_TEMP, TERMINATOR_OPS, TYPES, from_nodes, to_nodes,
)
from repro.compiler.ir import ImmInt
from repro.compiler.passes.const_fold import _wrap, fold_binop_values
from repro.compiler.passes.cse import COMMUTATIVE

#: Opcodes whose a *and* b fields are value operands / only a is.
_AB_OPS = frozenset((OP_BINOP, OP_STORE, OP_GEP, OP_MEMCPY))
_A_OPS = frozenset((OP_UNOP, OP_CAST, OP_LOAD, OP_BR, OP_RET))
_SIDE_EFFECT_OPS = frozenset((OP_STORE, OP_CALL, OP_MEMCPY))

#: Identity-simplifiable ops against a zero right-hand side.
_RHS_ZERO_OPS = ("+", "-", "|", "^", "<<", ">>", ">>u")
_LHS_ZERO_OPS = ("+", "|", "^")


def _chain_get(mapping: dict, enc: int) -> int:
    """Transitive mapping lookup, mirroring ``fused._ChainMap.get``."""
    nxt = mapping.get(enc)
    if nxt is None:
        return enc
    seen = None
    while True:
        following = mapping.get(nxt)
        if following is None:
            return nxt
        if seen is None:
            seen = {enc}
        if nxt in seen:  # pragma: no cover - defensive
            return nxt
        seen.add(nxt)
        nxt = following


def _flat_get(mapping: dict, enc: int) -> int:
    """Single-level lookup, mirroring a plain ``dict`` operand mapping."""
    return mapping.get(enc, enc)


def _resolve_instr(buf, i: int, mapping: dict, resolve) -> None:
    """The flat form of ``instr.replace_operands(mapping)``."""
    op = buf.opc[i]
    if op in _AB_OPS:
        buf.a[i] = resolve(mapping, buf.a[i])
        buf.b[i] = resolve(mapping, buf.b[i])
    elif op in _A_OPS:
        buf.a[i] = resolve(mapping, buf.a[i])
    elif op == OP_CALL:
        args = buf.xdata[buf.aux[i]][1]
        for k in range(len(args)):
            args[k] = resolve(mapping, args[k])


def _identity_enc(buf, opn: str, ae: int, be: int) -> int | None:
    """x+0, x*1, x&0... -> operand enc; mirrors ``_identity_simplify``."""
    imms = buf.imms
    if be & 3 == TAG_IMM:
        rhs = imms[be >> 2]
        if type(rhs) is ImmInt:
            v = rhs.value
            if v == 0 and opn in _RHS_ZERO_OPS:
                return ae
            if opn == "*" and v == 1:
                return ae
            if opn == "*" and v == 0:
                return buf.imm_int_enc(0)
            if opn == "&" and v == 0:
                return buf.imm_int_enc(0)
    if ae & 3 == TAG_IMM:
        lhs = imms[ae >> 2]
        if type(lhs) is ImmInt:
            v = lhs.value
            if v == 0 and opn in _LHS_ZERO_OPS:
                return be
            if opn == "*" and v == 1:
                return be
            if opn == "*" and v == 0:
                return buf.imm_int_enc(0)
    return None


def _const_fold(buf, ctx, mapping: dict, resolve) -> bool:
    changed = False
    cov = ctx.cov
    stats = ctx.stats
    opcl, dstl, al, bl, tyl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.ty, buf.aux
    imms = buf.imms
    names = buf.names
    for blk in buf.blocks:
        kept = []
        append = kept.append
        for i in blk[1]:
            if mapping:
                _resolve_instr(buf, i, mapping, resolve)
            op = opcl[i]
            if op == OP_BINOP:
                ae, be = al[i], bl[i]
                opn = names[auxl[i]]
                if ae & 3 == TAG_IMM and be & 3 == TAG_IMM:
                    ty = TYPES[tyl[i]]
                    folded = fold_binop_values(
                        opn, ty, imms[ae >> 2].value, imms[be >> 2].value
                    )
                    if folded is not None:
                        if ty.is_float:
                            enc = buf.imm_float_enc(float(folded))
                        else:
                            enc = buf.imm_int_enc(int(folded))
                        mapping[(dstl[i] << 2) | TAG_TEMP] = enc
                        cov.hit("opt:constfold", opn)
                        bucket = min(int(abs(folded)).bit_length(), 64)
                        cov.hit("opt:constfold_val", (opn, bucket, folded < 0))
                        stats.bump("folded")
                        changed = True
                        continue
                simplified = _identity_enc(buf, opn, ae, be)
                if simplified is not None:
                    mapping[(dstl[i] << 2) | TAG_TEMP] = simplified
                    cov.hit("opt:identity", opn)
                    stats.bump("identities")
                    changed = True
                    continue
            elif op == OP_UNOP:
                ae = al[i]
                if ae & 3 == TAG_IMM:
                    v = imms[ae >> 2].value
                    opn = names[auxl[i]]
                    if opn == "neg":
                        out = -v
                    elif opn == "lnot":
                        out = int(not v)
                    else:
                        out = ~int(v)
                    ty = TYPES[tyl[i]]
                    if ty.is_float:
                        enc = buf.imm_float_enc(float(out))
                    else:
                        enc = buf.imm_int_enc(_wrap(int(out), ty))
                    mapping[(dstl[i] << 2) | TAG_TEMP] = enc
                    stats.bump("folded")
                    changed = True
                    continue
            elif op == OP_CAST:
                ae = al[i]
                if ae & 3 == TAG_IMM:
                    v = imms[ae >> 2].value
                    to_ty = TYPES[tyl[i]]
                    if to_ty.is_float:
                        enc = buf.imm_float_enc(float(v))
                    elif to_ty.is_int:
                        # Mirror the interpreter: unsigned casts zero-extend.
                        iv = _wrap(int(v), to_ty)
                        if not (auxl[i] & 1):
                            iv &= (1 << to_ty.bits) - 1
                        enc = buf.imm_int_enc(iv)
                    else:
                        enc = buf.imm_int_enc(int(v))
                    mapping[(dstl[i] << 2) | TAG_TEMP] = enc
                    stats.bump("folded")
                    changed = True
                    continue
            elif op == OP_BR:
                ae = al[i]
                if ae & 3 == TAG_IMM:
                    v = imms[ae >> 2].value
                    target = bl[i] if v else auxl[i]
                    opcl[i] = OP_JMP
                    auxl[i] = target
                    al[i] = NONE
                    bl[i] = NONE
                    append(i)
                    cov.hit("opt:brfold", bool(v))
                    stats.bump("branches_folded")
                    changed = True
                    continue
            append(i)
        blk[1] = kept
    return changed


def _successors(buf, idxs) -> tuple:
    if not idxs:
        return ()
    i = idxs[-1]
    op = buf.opc[i]
    if op == OP_JMP:
        return (buf.aux[i],)
    if op == OP_BR:
        return (buf.b[i], buf.aux[i])
    return ()


def _predecessors(buf) -> dict:
    preds: dict = {blk[0]: [] for blk in buf.blocks}
    for blk in buf.blocks:
        for s in _successors(buf, blk[1]):
            preds.setdefault(s, []).append(blk[0])
    return preds


def _simplify_cfg(buf, ctx) -> bool:
    if not buf.blocks:
        return False
    changed = False
    opcl, auxl, bl = buf.opc, buf.aux, buf.b

    # 1. Drop unreachable blocks.
    blocks = buf.blocks
    block_by_label = {blk[0]: blk for blk in blocks}
    seen = {blocks[0][0]}
    work = [blocks[0]]
    while work:
        blk = work.pop()
        for s in _successors(buf, blk[1]):
            if s not in seen and s in block_by_label:
                seen.add(s)
                work.append(block_by_label[s])
    before = len(blocks)
    if len(seen) != before:
        buf.blocks = blocks = [blk for blk in blocks if blk[0] in seen]
        removed = before - len(blocks)
        ctx.cov.hit("opt:unreachable", removed > 2)
        ctx.stats.bump("unreachable_removed", removed)
        changed = True

    # 2. Thread jumps through empty forwarding blocks.
    forward: dict[int, int] = {}
    for blk in blocks:
        idxs = blk[1]
        if len(idxs) == 1 and opcl[idxs[0]] == OP_JMP:
            forward[blk[0]] = auxl[idxs[0]]
    if forward:
        def resolve(label: int) -> int:
            seen = set()
            while label in forward and label not in seen:
                seen.add(label)
                label = forward[label]
            return label

        for blk in blocks:
            idxs = blk[1]
            if not idxs:
                continue
            t = idxs[-1]
            op = opcl[t]
            if op == OP_JMP:
                r = resolve(auxl[t])
                if r != auxl[t]:
                    auxl[t] = r
                    changed = True
                    ctx.stats.bump("jumps_threaded")
            elif op == OP_BR:
                rt, rf = resolve(bl[t]), resolve(auxl[t])
                if (rt, rf) != (bl[t], auxl[t]):
                    bl[t], auxl[t] = rt, rf
                    changed = True
                    ctx.stats.bump("jumps_threaded")

    # 3. Merge a block into its unique predecessor.
    preds = _predecessors(buf)
    merged = True
    while merged:
        merged = False
        block_by_label = {blk[0]: blk for blk in buf.blocks}
        for blk in buf.blocks:
            idxs = blk[1]
            if not idxs or opcl[idxs[-1]] != OP_JMP:
                continue
            succ = block_by_label.get(auxl[idxs[-1]])
            if succ is None or succ is blk or succ is buf.blocks[0]:
                continue
            if len(preds.get(succ[0], ())) != 1:
                continue
            blk[1] = idxs[:-1] + succ[1]
            buf.blocks.remove(succ)
            ctx.cov.hit("opt:merge", len(succ[1]) > 4)
            ctx.stats.bump("blocks_merged")
            changed = True
            merged = True
            preds = _predecessors(buf)
            break

    # 4. Collapse br with identical targets.
    for blk in buf.blocks:
        idxs = blk[1]
        if idxs:
            t = idxs[-1]
            if opcl[t] == OP_BR and bl[t] == auxl[t]:
                opcl[t] = OP_JMP
                buf.a[t] = NONE
                bl[t] = NONE
                ctx.stats.bump("br_collapsed")
                changed = True
    return changed


def _kop(buf, enc: int):
    """A CSE key element: temp encs stay ints, immediates use the pooled
    object so key equality matches the object pass (``-0.0 == 0.0`` etc.)."""
    return buf.imms[enc >> 2] if enc & 3 == TAG_IMM else enc


def _krepr(buf, enc: int, reprs: dict) -> str:
    r = reprs.get(enc)
    if r is None:
        if enc & 3 == TAG_TEMP:
            r = f"%t{enc >> 2}"
        else:
            r = repr(buf.imms[enc >> 2])
        reprs[enc] = r
    return r


def _cse_key(buf, i: int, reprs: dict):
    op = buf.opc[i]
    if op == OP_BINOP:
        opn = buf.names[buf.aux[i]]
        ae, be = buf.a[i], buf.b[i]
        k1, k2 = _kop(buf, ae), _kop(buf, be)
        if opn in COMMUTATIVE and _krepr(buf, be, reprs) < _krepr(buf, ae, reprs):
            k1, k2 = k2, k1
        return ("bin", opn, buf.ty[i], (k1, k2))
    if op == OP_UNOP:
        return ("un", buf.names[buf.aux[i]], buf.ty[i], _kop(buf, buf.a[i]))
    if op == OP_CAST:
        aux = buf.aux[i]
        return ("cast", aux >> 1, buf.ty[i], aux & 1, _kop(buf, buf.a[i]))
    if op == OP_GEP:
        scale, offset = buf.xdata[buf.aux[i]]
        return ("gep", _kop(buf, buf.a[i]), _kop(buf, buf.b[i]), scale, offset)
    if op == OP_LOCALADDR:
        return ("local", buf.aux[i])
    if op == OP_GLOBALADDR:
        return ("global", buf.aux[i])
    return None


def _forward_cse(buf, ctx, mapping: dict, resolve) -> bool:
    """forward_store and cse in one flat traversal (mirrors ``fused``)."""
    changed = False
    cov = ctx.cov
    stats = ctx.stats
    opcl, dstl, al, bl, tyl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.ty, buf.aux
    imms = buf.imms
    reprs: dict = {}
    for blk in buf.blocks:
        known: dict = {}
        slot_of_temp: dict = {}
        available: dict = {}
        kept = []
        append = kept.append
        for i in blk[1]:
            if mapping:
                _resolve_instr(buf, i, mapping, resolve)
            op = opcl[i]
            if op == OP_LOCALADDR:
                slot_of_temp[dstl[i]] = auxl[i]
                # LocalAddr is also a CSE key: fall through.
            elif op == OP_STORE:
                pe = al[i]
                slot = slot_of_temp.get(pe >> 2) if pe & 3 == TAG_TEMP else None
                if slot is None or auxl[i]:
                    known.clear()  # store through an unknown pointer
                else:
                    known[slot] = (bl[i], tyl[i])
                append(i)
                continue
            elif op == OP_LOAD:
                forwarded = False
                if not auxl[i]:
                    pe = al[i]
                    slot = (
                        slot_of_temp.get(pe >> 2)
                        if pe & 3 == TAG_TEMP
                        else None
                    )
                    if slot is not None and slot in known:
                        venc, vtag = known[slot]
                        if vtag == tyl[i] and vtag != F32_TAG:
                            ty = TYPES[vtag]
                            vimm = imms[venc >> 2] if venc & 3 == TAG_IMM else None
                            if ty.is_int and type(vimm) is ImmInt:
                                mapping[(dstl[i] << 2) | TAG_TEMP] = (
                                    buf.imm_int_enc(_wrap(vimm.value, ty))
                                )
                            elif ty.is_int:
                                # The narrowing round trip survives as a
                                # same-type signed cast; CSE it below.
                                opcl[i] = OP_CAST
                                al[i] = venc
                                tyl[i] = vtag
                                auxl[i] = (vtag << 1) | 1
                            else:  # ptr / f64 round-trip unchanged
                                mapping[(dstl[i] << 2) | TAG_TEMP] = venc
                            cov.hit("opt:fwdstore", ty)
                            stats.bump("stores_forwarded")
                            changed = True
                            forwarded = opcl[i] == OP_LOAD
                if opcl[i] == OP_LOAD:
                    if not forwarded:
                        append(i)
                    continue
                # else: the forward became a Cast; CSE it like any pure op.
            elif op == OP_CALL or op == OP_MEMCPY:
                known.clear()
                append(i)
                continue
            key = _cse_key(buf, i, reprs)
            if key is None:
                append(i)
                continue
            existing = available.get(key)
            if existing is not None:
                mapping[(dstl[i] << 2) | TAG_TEMP] = existing
                cov.hit("opt:cse", key[0])
                stats.bump("cse_removed")
                changed = True
                continue
            d = dstl[i]
            if d is not None:
                available[key] = (d << 2) | TAG_TEMP
            append(i)
        blk[1] = kept
    return changed


def _replace_all(buf, mapping: dict, resolve) -> None:
    if not mapping:
        return
    for blk in buf.blocks:
        for i in blk[1]:
            _resolve_instr(buf, i, mapping, resolve)


def _dce(buf, ctx) -> bool:
    changed = False
    opcl, dstl, al, bl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.aux
    xdata = buf.xdata
    while True:
        uses: dict = {}
        for blk in buf.blocks:
            for i in blk[1]:
                op = opcl[i]
                if op in _AB_OPS:
                    e = al[i]
                    if e & 3 == TAG_TEMP:
                        t = e >> 2
                        uses[t] = uses.get(t, 0) + 1
                    e = bl[i]
                    if e & 3 == TAG_TEMP:
                        t = e >> 2
                        uses[t] = uses.get(t, 0) + 1
                elif op in _A_OPS:
                    e = al[i]
                    if e & 3 == TAG_TEMP:
                        t = e >> 2
                        uses[t] = uses.get(t, 0) + 1
                elif op == OP_CALL:
                    for e in xdata[auxl[i]][1]:
                        if e & 3 == TAG_TEMP:
                            t = e >> 2
                            uses[t] = uses.get(t, 0) + 1
        removed = 0
        for blk in buf.blocks:
            kept = []
            for i in blk[1]:
                d = dstl[i]
                op = opcl[i]
                if (
                    d is not None
                    and op not in _SIDE_EFFECT_OPS
                    and not (op == OP_LOAD and auxl[i])
                    and op not in TERMINATOR_OPS
                    and uses.get(d, 0) == 0
                ):
                    removed += 1
                    continue
                kept.append(i)
            blk[1] = kept
        if removed == 0:
            return changed
        ctx.cov.hit("opt:dce", removed > 8)
        ctx.stats.bump("dce_removed", removed)
        changed = True


def _enter_buffer(fn, ctx):
    """The working buffer for ``fn`` plus whether to write object IR back.

    A buffer-backed :class:`~repro.compiler.flatir.FlatFunction` is mutated
    in place with no bridge crossing; a plain ``IRFunction`` pays the
    encode/decode bridge, charged to ``ctx.bridge``.
    """
    buffer = getattr(fn, "buffer", None)
    if buffer is not None:
        return buffer(), False
    return from_nodes(fn, ctx.bridge), True


def flat_local_opt(fn, ctx) -> None:
    """The per-function -O1 fixpoint round over the flat buffer.

    Runs the fused-round algorithm regardless of ``ctx.fuse`` (the fused and
    sequential rounds are bit-identical in IR, coverage, and stats);
    ``fused_runs`` is only bumped when the context actually asked for
    fusion, keeping that non-stat diagnostic comparable across knobs.
    """
    buf, writeback = _enter_buffer(fn, ctx)
    if ctx.fuse:
        ctx.fused_runs += 1
    changed = True
    rounds = 0
    while changed and rounds < 4:
        rounds += 1
        changed = False
        mapping: dict = {}
        changed |= _const_fold(buf, ctx, mapping, _chain_get)
        changed |= _simplify_cfg(buf, ctx)
        changed |= _forward_cse(buf, ctx, mapping, _chain_get)
        # One combined sweep catches the (rare) use-before-def stragglers
        # the per-instruction rewrites could not see yet.
        _replace_all(buf, mapping, _chain_get)
        changed |= _dce(buf, ctx)
    ctx.stats.bump("opt_rounds", rounds)
    if writeback:
        fn.blocks = to_nodes(buf, ctx.bridge).blocks


def flat_cleanup_opt(fn, ctx) -> None:
    """The post-inline cleanup round (const_fold + simplify_cfg + dce)."""
    buf, writeback = _enter_buffer(fn, ctx)
    mapping: dict = {}
    _const_fold(buf, ctx, mapping, _flat_get)
    _replace_all(buf, mapping, _flat_get)
    _simplify_cfg(buf, ctx)
    _dce(buf, ctx)
    if writeback:
        fn.blocks = to_nodes(buf, ctx.bridge).blocks
