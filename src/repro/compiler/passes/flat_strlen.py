"""Flat port of :mod:`.strlen_opt` (sprintf → strlen strength reduction).

Mirrors :func:`.strlen_opt.strlen_opt_fn` decision for decision over the
buffer: same global-address tracking, same format-string match, same
coverage edge, stats bump, and ``verify_range`` checkpoint features — so the
seeded GCC §5.2 crash fires identically in flat-native mode.  The rewrite
reuses the sprintf call's xdata entry in place (dst dropped, return type
voided) and inserts a fresh strlen call row after it.
"""

from __future__ import annotations

from repro.compiler.flatir import (
    IRBuffer, NONE, TAG_TEMP, TYPE_TAG,
    OP_CALL, OP_GLOBALADDR,
)
from repro.compiler.ir import IRType

_VOID_TAG = TYPE_TAG[IRType.VOID]
_I64_TAG = TYPE_TAG[IRType.I64]
_PTR_TAG = TYPE_TAG[IRType.PTR]


def flat_strlen_opt_fn(fn, module, ctx) -> bool:
    """The per-function strlen pass over a buffer-backed function."""
    buf: IRBuffer = fn.buffer()
    changed = False
    names = buf.names
    opcl, dstl, tyl, auxl = buf.opc, buf.dst, buf.ty, buf.aux
    xdata = buf.xdata
    # Track which temps hold which global addresses (post-constfold IR
    # is simple enough for this to be block-local-accurate).
    global_of: dict[int, str] = {}
    for _label, idxs in buf.blocks:
        for i in idxs:
            if opcl[i] == OP_GLOBALADDR:
                global_of[dstl[i]] = names[auxl[i]]

    def addr_name(enc: int) -> str | None:
        if enc != NONE and enc & 3 == TAG_TEMP:
            return global_of.get(enc >> 2)
        return None

    for blk in buf.blocks:
        idxs = blk[1]
        for pos, i in enumerate(idxs):
            if opcl[i] != OP_CALL:
                continue
            xd = xdata[auxl[i]]
            if names[xd[0]] != "sprintf":
                continue
            args = xd[1]
            if len(args) < 3 or dstl[i] is None:
                continue
            fmt_name = addr_name(args[1])
            fmt_global = module.globals.get(fmt_name or "")
            if fmt_global is None or fmt_global.bytes_init != b"%s\x00":
                continue
            dst_name = addr_name(args[0])
            src_name = addr_name(args[2])
            ctx.cov.hit("opt:strlen", (dst_name == src_name))
            ctx.stats.bump("strlen_opts")
            src_global = module.globals.get(src_name or "")
            features = {
                "strlen_same_object": int(
                    dst_name is not None and dst_name == src_name
                ),
                "strlen_src_qualified": int(
                    src_global is not None
                    and (src_global.const or src_global.volatile)
                ),
            }
            ctx.check("opt:strlen_opt:verify_range", features)
            # Rewrite: the sprintf result becomes strlen(src); keep the
            # sprintf for its side effect, add the strlen for the value.
            call_dst = dstl[i]
            dstl[i] = None
            tyl[i] = _VOID_TAG
            xdata.append((buf.name_id("strlen"), [args[2]], (_PTR_TAG,)))
            strlen_row = buf.push(
                OP_CALL, call_dst, NONE, NONE, _I64_TAG, len(xdata) - 1
            )
            idxs.insert(pos + 1, strlen_row)
            changed = True
            break
    return changed
