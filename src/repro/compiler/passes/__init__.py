"""The optimizer: a pipeline of semantic IR passes.

The pass set mirrors the compiler components the paper's mutants exercised —
constant folding, CFG simplification, DCE, local CSE, store-to-load
forwarding, a small inliner, GCC's sprintf→strlen strength reduction, and a
loop vectorizer.  Passes record coverage edges and accumulate statistics used
by the seeded-bug triggers.
"""

from repro.compiler.passes.common import OptContext, OptStats
from repro.compiler.passes.const_fold import const_fold
from repro.compiler.passes.simplify_cfg import simplify_cfg
from repro.compiler.passes.dce import dce
from repro.compiler.passes.cse import cse
from repro.compiler.passes.forward_store import forward_store
from repro.compiler.passes.inline import inline_small_functions
from repro.compiler.passes.strlen_opt import strlen_opt
from repro.compiler.passes.loop_vectorize import loop_vectorize

__all__ = [
    "OptContext",
    "OptStats",
    "const_fold",
    "simplify_cfg",
    "dce",
    "cse",
    "forward_store",
    "inline_small_functions",
    "strlen_opt",
    "loop_vectorize",
    "run_pipeline",
]


def run_pipeline(module, ctx: OptContext) -> None:
    """Run the optimization pipeline at the context's -O level."""
    if ctx.opt_level <= 0:
        return
    for fn in list(module.functions.values()):
        changed = True
        rounds = 0
        while changed and rounds < 4:
            rounds += 1
            changed = False
            changed |= const_fold(fn, ctx)
            changed |= simplify_cfg(fn, ctx)
            changed |= forward_store(fn, ctx)
            changed |= cse(fn, ctx)
            changed |= dce(fn, ctx)
        ctx.stats.bump("opt_rounds", rounds)
    if ctx.opt_level >= 2:
        inline_small_functions(module, ctx)
        strlen_opt(module, ctx)
        for fn in list(module.functions.values()):
            const_fold(fn, ctx)
            simplify_cfg(fn, ctx)
            dce(fn, ctx)
    if ctx.opt_level >= 3 or ctx.flag("-ftree-vectorize"):
        for fn in list(module.functions.values()):
            loop_vectorize(fn, ctx)
