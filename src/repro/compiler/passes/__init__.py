"""The optimizer: a pipeline of semantic IR passes.

The pass set mirrors the compiler components the paper's mutants exercised —
constant folding, CFG simplification, DCE, local CSE, store-to-load
forwarding, a small inliner, GCC's sprintf→strlen strength reduction, and a
loop vectorizer.  Passes record coverage edges and accumulate statistics used
by the seeded-bug triggers.
"""

from repro.compiler.passes.common import OptContext, OptStats
from repro.compiler.passes.const_fold import const_fold
from repro.compiler.passes.simplify_cfg import simplify_cfg
from repro.compiler.passes.dce import dce
from repro.compiler.passes.cse import cse
from repro.compiler.passes.forward_store import forward_store
from repro.compiler.passes.inline import (
    inline_candidates,
    inline_into_caller,
    inline_small_functions,
)
from repro.compiler.passes.strlen_opt import strlen_opt, strlen_opt_fn
from repro.compiler.passes.loop_vectorize import loop_vectorize
from repro.compiler.passes.fused import fused_local_opt
from repro.compiler.passes.flat import flat_cleanup_opt, flat_local_opt
from repro.compiler.passes.flat_inline import (
    flat_inlinable,
    flat_inline_into_caller,
)
from repro.compiler.passes.flat_strlen import flat_strlen_opt_fn
from repro.compiler.passes.flat_vectorize import flat_loop_vectorize

__all__ = [
    "OptContext",
    "OptStats",
    "const_fold",
    "simplify_cfg",
    "dce",
    "cse",
    "forward_store",
    "inline_candidates",
    "inline_into_caller",
    "inline_small_functions",
    "strlen_opt",
    "strlen_opt_fn",
    "loop_vectorize",
    "fused_local_opt",
    "flat_local_opt",
    "flat_cleanup_opt",
    "flat_inlinable",
    "flat_inline_into_caller",
    "flat_strlen_opt_fn",
    "flat_loop_vectorize",
    "local_opt",
    "cleanup_opt",
    "run_pipeline",
]


def local_opt(fn, ctx: OptContext) -> None:
    """The per-function -O1 fixpoint round (first pipeline stage).

    With ``ctx.fuse`` set, the round runs as the single-walk fusion of
    :mod:`repro.compiler.passes.fused` — bit-identical in resulting IR,
    coverage hits, and stats bumps, but three traversals instead of five.
    With ``ctx.flat`` set, the same fused algorithm runs over the flat
    :class:`~repro.compiler.flatir.IRBuffer` (no per-node objects at all).
    """
    if ctx.flat:
        flat_local_opt(fn, ctx)
        return
    if ctx.fuse:
        fused_local_opt(fn, ctx)
        return
    changed = True
    rounds = 0
    while changed and rounds < 4:
        rounds += 1
        changed = False
        changed |= const_fold(fn, ctx)
        changed |= simplify_cfg(fn, ctx)
        changed |= forward_store(fn, ctx)
        changed |= cse(fn, ctx)
        changed |= dce(fn, ctx)
    ctx.stats.bump("opt_rounds", rounds)


def cleanup_opt(fn, ctx: OptContext) -> None:
    """The per-function post-inline cleanup round (-O2 stage tail)."""
    if ctx.flat:
        flat_cleanup_opt(fn, ctx)
        return
    const_fold(fn, ctx)
    simplify_cfg(fn, ctx)
    dce(fn, ctx)


def run_pipeline(module, ctx: OptContext) -> None:
    """Run the optimization pipeline at the context's -O level.

    Kept decomposed into per-function stage entry points (:func:`local_opt`,
    :func:`inline_into_caller`, :func:`strlen_opt_fn`, :func:`cleanup_opt`,
    :func:`loop_vectorize`) so the incremental middle end
    (:mod:`repro.compiler.incremental`) can replay unchanged functions and
    re-run only the dirty ones while preserving the exact per-function event
    order of this loop.
    """
    if ctx.opt_level <= 0:
        return
    flat_native = ctx.flat_native
    for fn in list(module.functions.values()):
        local_opt(fn, ctx)
    if ctx.opt_level >= 2:
        if flat_native:
            candidates = {}
            for name, fn in module.functions.items():
                buf = fn.buffer()
                if flat_inlinable(buf):
                    candidates[name] = buf
            if candidates:
                for caller in module.functions.values():
                    flat_inline_into_caller(caller, candidates, ctx)
            for fn in module.functions.values():
                flat_strlen_opt_fn(fn, module, ctx)
        else:
            candidates = inline_candidates(module)
            if candidates:
                for caller in module.functions.values():
                    inline_into_caller(caller, candidates, ctx)
            for fn in module.functions.values():
                strlen_opt_fn(fn, module, ctx)
        for fn in list(module.functions.values()):
            cleanup_opt(fn, ctx)
    if ctx.opt_level >= 3 or ctx.flag("-ftree-vectorize"):
        for fn in list(module.functions.values()):
            if flat_native:
                flat_loop_vectorize(fn, ctx)
            else:
                loop_vectorize(fn, ctx)
